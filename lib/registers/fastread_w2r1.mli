(** The paper's W2R1 register (Algorithm 1 & 2) — two-round writes,
    one-round admissibility-certified reads.  Implements
    {!Protocol.Register_intf.S}; see the implementation header for the
    algorithm description. *)

val name : string
val design_point : Quorums.Bounds.design_point

val algo : Client_core.algo
(** The protocol's client algorithm, backend-agnostic: the simulator
    cluster below and the live TCP transport both instantiate exactly
    this. *)

type cluster

val create : Protocol.Env.t -> cluster
val control : cluster -> Protocol.Control.t

val set_probe : cluster -> (Client_core.read_probe -> unit) option -> unit
(** Install an observation hook invoked on every fast read — used by the
    Appendix-A lemma tests to watch degrees, maxTS, and fallbacks. *)

val write :
  cluster ->
  writer:int ->
  value:int ->
  k:(Checker.Mw_properties.tag option -> unit) ->
  unit

val read :
  cluster -> reader:int -> k:(int -> Checker.Mw_properties.tag option -> unit) -> unit
