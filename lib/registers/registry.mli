(** First-class handles on every register protocol in the repository. *)

val abd_mwmr : Protocol.Register_intf.t
val abd_swmr : Protocol.Register_intf.t
val fastread_w2r1 : Protocol.Register_intf.t
val dglv_w1r1 : Protocol.Register_intf.t
val naive_w1r2 : Protocol.Register_intf.t
val naive_w1r1 : Protocol.Register_intf.t

val adaptive : Protocol.Register_intf.t
(** The adaptive "semifast-style" register ({!Adaptive_read}): fast reads
    when a margin-safe certificate exists, one repair round otherwise.
    Atomic at any reader count — the constructive answer to what lies
    beyond the [R < S/t − 2] threshold.  Not part of {!multi_writer}
    (Table 1 covers strictly-fast designs only). *)

val slow_write_w3r1 : Protocol.Register_intf.t
(** WkR1 with k = 3 ({!Slow_write_w3r1}): three-round writes, fast reads.
    Demonstrates §5.1's remark that the fast-read bound does not depend
    on the write's round count. *)

val all : Protocol.Register_intf.t list
(** Every protocol, slow-to-fast. *)

val multi_writer : Protocol.Register_intf.t list
(** Protocols whose clusters accept [W ≥ 2] — one per design point of
    Table 1 ({!abd_mwmr}, {!naive_w1r2}, {!fastread_w2r1},
    {!naive_w1r1}). *)

val name : Protocol.Register_intf.t -> string
val design_point : Protocol.Register_intf.t -> Quorums.Bounds.design_point

val client_algo : Protocol.Register_intf.t -> Client_core.algo
(** The protocol's backend-agnostic client algorithm — the body that both
    the simulator cluster and the live TCP transport execute.  Raises
    [Invalid_argument] for a protocol not registered in {!all}. *)

val max_writers : Protocol.Register_intf.t -> int option
(** [Some 1] for the single-writer protocols ({!abd_swmr}, {!dglv_w1r1}),
    [None] when any writer count is accepted. *)

val find : string -> Protocol.Register_intf.t option
(** Lookup by {!name}: case-insensitive substring match, after expanding
    the design-point aliases ([w2r2], [w2r1], [w1r2], [w1r1], [ls97],
    [huang], [swmr], [dglv], …).  This is the one name table — the CLI
    and benches resolve protocols exclusively through it. *)
