(** The adaptive ("semifast-style") register: fast reads when a safe
    certificate exists, a slow write-back round otherwise.

    §6 of the paper situates its results against semifast and
    almost-strong-consistency implementations (refs [14, 25, 28]): if
    strictly-fast reads are impossible beyond [R ≥ S/t − 2], what can a
    register that is *allowed* to occasionally go slow do?  This protocol
    answers constructively:

    - writes are the standard two rounds;
    - a read first runs the fast-read round, but accepts a value only
      when it is admissible at a degree with *margin*: [a] such that
      [S − a·t > t], so the certifying set µ spans more than [t] servers
      and therefore intersects every later operation's quorum, whatever
      the reader count.  Note the degree range no longer involves R at
      all — that is what frees the protocol from the threshold.
    - if no value clears that bar, the read falls back to the classic
      second round: write back the maximum value observed, then return
      it (the ABD repair).

    The result is atomic at any [R] (the `sf` benchmark and the test
    suite check it under the very adversary that breaks Algorithm 1 & 2
    past the threshold), at the cost of a measured fraction of two-round
    reads — quantifying exactly the trade the impossibility theorem
    forces.

    Scope note: this is *not* a semifast implementation in the technical
    sense of Georgiou, Nicolaou & Shvartsman (the paper's ref [14],
    which bounds how many reads per write may be slow — and which §6
    notes is impossible for multi-writer registers).  Under contention
    this register may take arbitrarily many slow reads per write, which
    is precisely how it coexists with that impossibility. *)

open Protocol

let name = "adaptive read (W2R1.5)"

(* Optimistically one round; the design point records the fast path. *)
let design_point = Quorums.Bounds.W2R1

(* Degrees whose certificate spans more than t servers: S − a·t > t. *)
let safe_degrees ~s ~t =
  let rec go a acc = if s - (a * t) > t then go (a + 1) (a :: acc) else acc in
  List.rev (go 1 [])

(* The adaptive read over any backend.  [note] observes which path the
   read took (`Fast or `Slow) — the cluster counts them. *)
let read_core ?(note = fun _ -> ()) (ctx : Client_core.ctx) ~reader ~val_queue ~k =
  let ep = ctx.Client_core.reader_ep reader in
  let s = ctx.Client_core.s in
  let t = ctx.Client_core.t in
  ep.Client_core.exec (Wire.Query !val_queue) (fun replies ->
      let seen = Client_core.vector_values replies in
      let merged =
        List.fold_left
          (fun acc (v : Wire.value) ->
            if
              List.exists
                (fun (u : Wire.value) -> Tstamp.equal u.Wire.tag v.Wire.tag)
                acc
            then acc
            else v :: acc)
          !val_queue seen
      in
      val_queue := Client_core.bound_queue merged;
      let degrees = safe_degrees ~s ~t in
      (* Only the *newest* observed value may be returned fast: returning
         an older value, however well certified, would be a stale read
         whenever the newer one belongs to a completed write.  [seen] is
         sorted descending, so only its head is a fast candidate. *)
      let certified =
        match seen with
        | v :: _
          when List.exists
                 (fun degree ->
                   Client_core.admissible ~s ~t ~value:v ~replies ~degree)
                 degrees ->
          Some v
        | _ -> None
      in
      match certified with
      | Some v ->
        note `Fast;
        k v.Wire.payload (Some v.Wire.tag)
      | None ->
        (* Slow path: the ABD repair round. *)
        note `Slow;
        let maxv = Client_core.max_current replies in
        ep.Client_core.exec (Wire.Update maxv) (fun _acks ->
            k maxv.Wire.payload (Some maxv.Wire.tag)))

let new_writer ctx ~writer =
  let last_written = ref Wire.initial_value_entry in
  fun ~payload ~k ->
    Client_core.two_round_write ctx ~writer ~payload ~last_written ~k

let new_reader ?note ctx ~reader =
  let val_queue = ref [ Wire.initial_value_entry ] in
  fun ~k -> read_core ?note ctx ~reader ~val_queue ~k

let algo =
  {
    Client_core.new_writer;
    new_reader = (fun ctx ~reader -> new_reader ctx ~reader);
  }

type cluster = {
  base : Cluster_base.t;
  writers : Client_core.writer_fn array;
  readers : Client_core.reader_fn array;
  mutable fast_reads : int;
  mutable slow_reads : int;
}

let create env =
  let base = Cluster_base.create env in
  let ctx = Cluster_base.ctx base in
  let rec c =
    lazy
      {
        base;
        writers =
          Array.init (Env.w env) (fun i -> new_writer ctx ~writer:i);
        readers =
          Array.init (Env.r env) (fun i ->
              new_reader
                ~note:(fun path ->
                  let c = Lazy.force c in
                  match path with
                  | `Fast -> c.fast_reads <- c.fast_reads + 1
                  | `Slow -> c.slow_reads <- c.slow_reads + 1)
                ctx ~reader:i);
        fast_reads = 0;
        slow_reads = 0;
      }
  in
  Lazy.force c

let control c = c.base.Cluster_base.ctl

let fast_fraction c =
  let total = c.fast_reads + c.slow_reads in
  if total = 0 then 1.0 else float_of_int c.fast_reads /. float_of_int total

let write c ~writer ~value ~k = c.writers.(writer) ~payload:value ~k

let read c ~reader ~k = c.readers.(reader) ~k
