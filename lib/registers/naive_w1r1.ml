(** The doubly-naive candidate: fast write *and* fast read (W1R1).

    Writers behave like {!Naive_w1r2}; readers do one query round and
    return the maximum value seen, with no write-back and no
    admissibility certificate.  DGLV10 proved this design point empty for
    [W ≥ 2, R ≥ 2, t ≥ 1]; here even the single-writer regime breaks for
    [R ≥ S/t − 2]-style schedules because nothing prevents new/old
    inversions between readers that observe disjoint quorums. *)

let name = "naive fast-write/fast-read"

let design_point = Quorums.Bounds.W1R1

let algo =
  {
    Client_core.new_writer =
      (fun ctx ~writer ->
        let clock = ref Tstamp.initial in
        fun ~payload ~k ->
          Client_core.one_round_write ctx ~writer ~wid:writer ~payload ~clock
            ~learn:true ~k);
    new_reader =
      (fun ctx ~reader -> fun ~k -> Client_core.one_round_read_max ctx ~reader ~k);
  }

type cluster = {
  base : Cluster_base.t;
  writers : Client_core.writer_fn array;
  readers : Client_core.reader_fn array;
}

let create env =
  let base = Cluster_base.create env in
  let ctx = Cluster_base.ctx base in
  {
    base;
    writers =
      Array.init (Protocol.Env.w env) (fun i ->
          algo.Client_core.new_writer ctx ~writer:i);
    readers =
      Array.init (Protocol.Env.r env) (fun i ->
          algo.Client_core.new_reader ctx ~reader:i);
  }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k = c.writers.(writer) ~payload:value ~k

let read c ~reader ~k = c.readers.(reader) ~k
