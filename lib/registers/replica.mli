(** The server replica (Algorithm 2).

    State per server: [valᵢ], the largest value seen, and [valuevector],
    a map from each value ever received to the set of clients that have
    propagated it to this server ([updated]).  [update(val, c)]:

    - if [val > valᵢ]: record [val] with [updated = {c}] and set
      [valᵢ ← val];
    - otherwise: add [c] to [val]'s [updated] set.

    On [(write, val)] the server updates and ACKs; on [(read, valQueue)]
    it updates with every queued value {i before} replying with its full
    state.  Note the server never contacts other servers — the paper's
    model has no server-to-server channel at all.

    The in-memory valuevector is bounded: only the {!max_vector} largest
    tags are retained, and a READACK serialises at most
    {!max_wire_updated} ids per entry (always including the querying
    client, which every replying server enrolled just before the reply).
    Certificates for pruned values regenerate on demand because queries
    fold the client's valQueue back into the vector before the snapshot
    is taken.  Unbounded, the vector grows with every write ever
    performed and replies grow as O(writes × clients) — the live data
    plane collapses under exactly the client counts the scaling sweep
    measures. *)

type t

val max_vector : int
(** Upper bound on retained valuevector entries (largest tags win). *)

val max_wire_updated : int
(** Upper bound on [updated] ids serialised per READACK entry. *)

val create : unit -> t

val handle : t -> client:int -> Wire.req -> Wire.rep
(** Process one request, mutating the replica. *)

val current : t -> Wire.value
(** [valᵢ], for tests and traces. *)

val vector_size : t -> int
(** Number of distinct values in the valuevector. *)

val updated_set : t -> Wire.value -> int list
(** The [updated] set recorded for a value (sorted), or [[]]. *)

(** {2 Snapshot / restore}

    The crash-stop model assumes a crashed server never returns; a
    server that {e does} return must either carry its full pre-crash
    state (making the restart indistinguishable from a slow server,
    which the proofs do cover) or it silently weakens the quorum
    intersection argument.  [save]/[load] make both executable: a
    restart that [load]s a [save]d state preserves atomicity, and a
    restart from {!create} (fresh state) is a model violation the
    atomicity checker catches. *)

type state = { s_current : Wire.value; s_vector : (Wire.value * int list) list }
(** [valᵢ] plus the full valuevector with its [updated] sets, values in
    ascending tag order. *)

val save : t -> state
(** A deterministic snapshot of the replica's entire state. *)

val load : state -> t
(** A fresh replica carrying exactly the [save]d state. *)
