(** The doomed candidate: a best-effort multi-writer *fast write* (W1R2).

    Writers pick timestamps from purely local knowledge — a local clock
    folded with every timestamp the servers have ever ACKed back to them
    — and update all servers in a single round.  Reads are the full slow
    two-round read with write-back, so all the blame for any violation
    falls on the fast write.

    Theorem 1 says no choice of local strategy can make this atomic with
    [W ≥ 2, R ≥ 2, t ≥ 1]; the learning writer is deliberately the
    strongest cheap attempt, and the checker still finds stale reads:
    two non-concurrent writes by different writers can obtain inverted
    timestamps because the later writer hasn't yet *heard* about the
    earlier write (it never queries before writing — that query is
    precisely the second round Theorem 1 proves necessary). *)

let name = "naive fast-write"

let design_point = Quorums.Bounds.W1R2

let algo =
  {
    Client_core.new_writer =
      (fun ctx ~writer ->
        let clock = ref Tstamp.initial in
        fun ~payload ~k ->
          Client_core.one_round_write ctx ~writer ~wid:writer ~payload ~clock
            ~learn:true ~k);
    new_reader =
      (fun ctx ~reader -> fun ~k -> Client_core.two_round_read ctx ~reader ~k);
  }

type cluster = {
  base : Cluster_base.t;
  writers : Client_core.writer_fn array;
  readers : Client_core.reader_fn array;
}

let create env =
  let base = Cluster_base.create env in
  let ctx = Cluster_base.ctx base in
  {
    base;
    writers =
      Array.init (Protocol.Env.w env) (fun i ->
          algo.Client_core.new_writer ctx ~writer:i);
    readers =
      Array.init (Protocol.Env.r env) (fun i ->
          algo.Client_core.new_reader ctx ~reader:i);
  }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k = c.writers.(writer) ~payload:value ~k

let read c ~reader ~k = c.readers.(reader) ~k
