let abd_mwmr : Protocol.Register_intf.t = (module Abd_mwmr)

let abd_swmr : Protocol.Register_intf.t = (module Abd_swmr)

let fastread_w2r1 : Protocol.Register_intf.t = (module Fastread_w2r1)

let dglv_w1r1 : Protocol.Register_intf.t = (module Dglv_w1r1)

let naive_w1r2 : Protocol.Register_intf.t = (module Naive_w1r2)

let naive_w1r1 : Protocol.Register_intf.t = (module Naive_w1r1)

let adaptive : Protocol.Register_intf.t = (module Adaptive_read)

let slow_write_w3r1 : Protocol.Register_intf.t = (module Slow_write_w3r1)

(* The single source of truth: every protocol, its backend-agnostic
   client algorithm, and its writer-count restriction.  Everything else
   (the CLI, both benches, the live transport) derives from this row
   set — add a protocol here and it shows up everywhere. *)
let rows :
    (Protocol.Register_intf.t * Client_core.algo * int option) list =
  [
    (abd_mwmr, Abd_mwmr.algo, None);
    (abd_swmr, Abd_swmr.algo, Some 1);
    (fastread_w2r1, Fastread_w2r1.algo, None);
    (dglv_w1r1, Dglv_w1r1.algo, Some 1);
    (naive_w1r2, Naive_w1r2.algo, None);
    (naive_w1r1, Naive_w1r1.algo, None);
    (adaptive, Adaptive_read.algo, None);
    (slow_write_w3r1, Slow_write_w3r1.algo, None);
  ]

let all = List.map (fun (r, _, _) -> r) rows

let multi_writer = [ abd_mwmr; naive_w1r2; fastread_w2r1; naive_w1r1 ]

let name (r : Protocol.Register_intf.t) =
  let module R = (val r) in
  R.name

let design_point (r : Protocol.Register_intf.t) =
  let module R = (val r) in
  R.design_point

let row_of needle =
  List.find_opt (fun (r, _, _) -> name r = name needle) rows

let client_algo r =
  match row_of r with
  | Some (_, algo, _) -> algo
  | None -> invalid_arg "Registry.client_algo: unregistered protocol"

let max_writers r =
  match row_of r with
  | Some (_, _, mw) -> mw
  | None -> invalid_arg "Registry.max_writers: unregistered protocol"

(* Short design-point spellings and historical names accepted anywhere a
   protocol is named (previously duplicated in bin/mwreg.ml). *)
let aliases =
  [
    ("w2r2", "ls97"); ("ls97", "ls97 abd-mw"); ("w2r1", "huang");
    ("huang", "huang et al. w2r1"); ("w1r2", "naive fast-write");
    ("w1r1", "naive fast-write/fast-read"); ("swmr", "abd'95");
    ("sw", "abd'95"); ("abd95", "abd'95"); ("dglv", "dglv10");
    ("w3r1", "w3r1 (3-round write)"); ("semifast", "adaptive");
  ]

let find needle =
  let needle =
    match List.assoc_opt (String.lowercase_ascii needle) aliases with
    | Some alias -> alias
    | None -> needle
  in
  let lower = String.lowercase_ascii needle in
  let contains hay =
    let hay = String.lowercase_ascii hay in
    let n = String.length lower and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = lower || go (i + 1)) in
    n = 0 || go 0
  in
  List.find_opt (fun r -> contains (name r)) all
