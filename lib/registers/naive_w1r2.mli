(** See the module implementation header for the protocol description.
    Implements {!Protocol.Register_intf.S}. *)

val name : string
val design_point : Quorums.Bounds.design_point

val algo : Client_core.algo
(** The protocol's client algorithm, backend-agnostic: the simulator
    cluster below and the live TCP transport both instantiate exactly
    this. *)

type cluster

val create : Protocol.Env.t -> cluster
val control : cluster -> Protocol.Control.t

val write :
  cluster ->
  writer:int ->
  value:int ->
  k:(Checker.Mw_properties.tag option -> unit) ->
  unit

val read :
  cluster -> reader:int -> k:(int -> Checker.Mw_properties.tag option -> unit) -> unit
