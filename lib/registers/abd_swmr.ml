(** ABD'95: the single-writer register (Attiya, Bar-Noy & Dolev).

    The lone writer numbers its own writes, so a write is *fast* — one
    update round — while reads take two rounds (query + write-back).
    This is the W1R2 design point at [W = 1]: it exists, and it marks the
    exact boundary of Theorem 1, which kills W1R2 as soon as [W ≥ 2].
    The cluster refuses multi-writer environments. *)

let name = "ABD'95 SWMR"

let design_point = Quorums.Bounds.W1R2

let algo =
  {
    Client_core.new_writer =
      (fun ctx ~writer ->
        assert (writer = 0);
        let clock = ref Tstamp.initial in
        fun ~payload ~k ->
          Client_core.one_round_write ctx ~writer ~wid:0 ~payload ~clock
            ~learn:false ~k);
    new_reader =
      (fun ctx ~reader -> fun ~k -> Client_core.two_round_read ctx ~reader ~k);
  }

type cluster = {
  base : Cluster_base.t;
  writers : Client_core.writer_fn array;
  readers : Client_core.reader_fn array;
}

let create env =
  if Protocol.Env.w env <> 1 then
    invalid_arg "Abd_swmr.create: the single-writer protocol needs exactly 1 writer";
  let base = Cluster_base.create env in
  let ctx = Cluster_base.ctx base in
  {
    base;
    writers = [| algo.Client_core.new_writer ctx ~writer:0 |];
    readers =
      Array.init (Protocol.Env.r env) (fun i ->
          algo.Client_core.new_reader ctx ~reader:i);
  }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k = c.writers.(writer) ~payload:value ~k

let read c ~reader ~k = c.readers.(reader) ~k
