open Protocol
open Simulation

type endpoint = (Wire.req, Wire.rep) Round_trip.t

type t = {
  env : Env.t;
  net : (Wire.req, Wire.rep) Message.t Network.t;
  replicas : Replica.t array;
  writer_eps : endpoint array;
  reader_eps : endpoint array;
  ctl : Control.t;
}

let create (env : Env.t) =
  let topo = env.Env.topology in
  let net =
    Network.create env.Env.engine ~latency:env.Env.latency ?trace:env.Env.trace ()
  in
  Network.forbid net (fun ~src ~dst -> Topology.forbidden topo ~src ~dst);
  let replicas =
    Array.init topo.Topology.servers (fun i ->
        let replica = Replica.create () in
        Server.attach ~net
          ~node:(Topology.server_node topo i)
          ~handler:(fun ~client req -> Replica.handle replica ~client req);
        replica)
  in
  let servers = Topology.server_nodes topo in
  let quorum = Env.quorum_size env in
  let writer_eps =
    Array.init topo.Topology.writers (fun i ->
        Round_trip.create ~net ~node:(Topology.writer_node topo i) ~servers ~quorum)
  in
  let reader_eps =
    Array.init topo.Topology.readers (fun i ->
        Round_trip.create ~net ~node:(Topology.reader_node topo i) ~servers ~quorum)
  in
  let ctl = Control.of_network net ~topology:topo in
  { env; net; replicas; writer_eps; reader_eps; ctl }

(* Present the simulator endpoints as the backend-agnostic client
   context, so the Client_core algorithms run unchanged on either the
   discrete-event engine or the live TCP transport. *)
let ctx t =
  let wrap ep = { Client_core.exec = (fun req k -> Round_trip.exec ep req k) } in
  {
    Client_core.writer_ep = (fun i -> wrap t.writer_eps.(i));
    reader_ep = (fun i -> wrap t.reader_eps.(i));
    s = Env.s t.env;
    t = Env.t_ t.env;
    r = Env.r t.env;
  }

let writer_node t i = Topology.writer_node t.env.Env.topology i

let reader_node t i = Topology.reader_node t.env.Env.topology i

let quorum t = Env.quorum_size t.env

let s t = Env.s t.env

let tolerance t = Env.t_ t.env

let readers t = Env.r t.env
