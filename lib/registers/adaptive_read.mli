(** The adaptive ("semifast-style") register: fast reads on margin-safe
    certificates, an ABD repair round otherwise — atomic at any reader
    count.  Implements {!Protocol.Register_intf.S}; see the
    implementation header for the rationale and the §6 context. *)

val name : string
val design_point : Quorums.Bounds.design_point

val algo : Client_core.algo
(** The protocol's client algorithm, backend-agnostic: the simulator
    cluster below and the live TCP transport both instantiate exactly
    this. *)

type cluster

val create : Protocol.Env.t -> cluster
val control : cluster -> Protocol.Control.t

val fast_fraction : cluster -> float
(** Fraction of this cluster's completed reads that took the fast path
    (1.0 when no reads have completed). *)

val safe_degrees : s:int -> t:int -> int list
(** The admissibility degrees with certificate margin: all [a ≥ 1] with
    [S − a·t > t].  Independent of the reader count — that is what frees
    the protocol from the [R < S/t − 2] threshold. *)

val write :
  cluster ->
  writer:int ->
  value:int ->
  k:(Checker.Mw_properties.tag option -> unit) ->
  unit

val read :
  cluster -> reader:int -> k:(int -> Checker.Mw_properties.tag option -> unit) -> unit
