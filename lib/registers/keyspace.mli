(** A named keyspace of atomic registers: one {!Replica} per key.

    Replicas are instantiated lazily, on the first request that names
    their key, and the set of fully-materialised replicas is
    recency-bounded the way {!Replica}'s own value vector is: past
    [max_hot] resident replicas, the least recently used are demoted to
    their {!Replica.save} snapshots and rebuilt on the next access.
    Demotion is loss-free — the snapshot carries the vector with its
    [updated] certificate sets — so bounding memory never costs
    atomicity, only a rebuild when a cold key is touched again.

    The keyspace is not itself thread-safe: the server serialises all
    access behind its replica lock, preserving the model's
    one-message-at-a-time server semantics per key. *)

type t

val create : ?max_hot:int -> unit -> t
(** An empty keyspace keeping at most [max_hot] (default 4096) replicas
    fully materialised. *)

val find : t -> string -> Replica.t
(** The replica for a key, creating or rehydrating it as needed and
    marking it most recently used. *)

val handle : t -> key:string -> client:int -> Wire.req -> Wire.rep
(** [handle t ~key ~client req] runs [req] against [key]'s replica —
    {!Replica.handle} on {!find}'s result. *)

val key_count : t -> int
(** Distinct keys ever touched (resident + demoted). *)

val hot_count : t -> int
(** Keys currently holding a materialised replica. *)

val keys : t -> string list
(** Every key, sorted. *)

type state = (string * Replica.state) list
(** Durable snapshot of the whole keyspace, sorted by key. *)

val save : t -> state

val load : ?max_hot:int -> state -> t
(** Rebuild from a snapshot.  All keys start demoted and rehydrate
    lazily on first access. *)
