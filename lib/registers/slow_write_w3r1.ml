(** WkR1 with k = 3: a three-round write with the fast read.

    §5.1 notes the fast-read impossibility "does not depend on how many
    round-trips a write operation has" — slowing writes down further buys
    nothing for readers.  This register makes that executable: writes
    take *three* rounds (query, update, and a redundant confirm round
    re-sending the same value), reads are the admissible fast read.  The
    threshold experiment shows it lives and dies at exactly the same
    [R < S/t − 2] boundary as the two-round-write version. *)

let name = "W3R1 (3-round write)"

let design_point = Quorums.Bounds.W2R1 (* reads fast; writes ≥ 2 rounds *)

let new_writer (ctx : Client_core.ctx) ~writer =
  let ep = ctx.Client_core.writer_ep writer in
  let last_written = ref Wire.initial_value_entry in
  fun ~payload ~k ->
    ep.Client_core.exec (Wire.Query [ !last_written ]) (fun replies ->
        let maxv = Client_core.max_current replies in
        let tag = Tstamp.next maxv.Wire.tag ~wid:writer in
        let v = { Wire.tag; payload } in
        last_written := v;
        ep.Client_core.exec (Wire.Update v) (fun _ ->
            (* The redundant third round: re-announce the same value. *)
            ep.Client_core.exec (Wire.Update v) (fun _ -> k (Some tag))))

let algo =
  {
    Client_core.new_writer;
    new_reader =
      (fun ctx ~reader ->
        let val_queue = ref [ Wire.initial_value_entry ] in
        fun ~k -> Client_core.fast_read ctx ~reader ~val_queue ~k);
  }

type cluster = {
  base : Cluster_base.t;
  writers : Client_core.writer_fn array;
  readers : Client_core.reader_fn array;
}

let create env =
  let base = Cluster_base.create env in
  let ctx = Cluster_base.ctx base in
  {
    base;
    writers =
      Array.init (Protocol.Env.w env) (fun i ->
          algo.Client_core.new_writer ctx ~writer:i);
    readers =
      Array.init (Protocol.Env.r env) (fun i ->
          algo.Client_core.new_reader ctx ~reader:i);
  }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k = c.writers.(writer) ~payload:value ~k

let read c ~reader ~k = c.readers.(reader) ~k
