(** LS97: the multi-writer W2R2 baseline (Lynch & Shvartsman 1997).

    Two-round writes (query [maxTS], then update [(maxTS+1, wᵢ)]) and
    two-round reads (query, then write back the maximum before
    returning).  Atomic whenever [t < S/2] — the top of the Fig. 2
    lattice and the "slow but safe" reference every fast variant is
    measured against. *)

let name = "LS97 ABD-MW"

let design_point = Quorums.Bounds.W2R2

let algo =
  {
    Client_core.new_writer =
      (fun ctx ~writer ->
        let last_written = ref Wire.initial_value_entry in
        fun ~payload ~k ->
          Client_core.two_round_write ctx ~writer ~payload ~last_written ~k);
    new_reader =
      (fun ctx ~reader -> fun ~k -> Client_core.two_round_read ctx ~reader ~k);
  }

type cluster = {
  base : Cluster_base.t;
  writers : Client_core.writer_fn array;
  readers : Client_core.reader_fn array;
}

let create env =
  let base = Cluster_base.create env in
  let ctx = Cluster_base.ctx base in
  {
    base;
    writers =
      Array.init (Protocol.Env.w env) (fun i ->
          algo.Client_core.new_writer ctx ~writer:i);
    readers =
      Array.init (Protocol.Env.r env) (fun i ->
          algo.Client_core.new_reader ctx ~reader:i);
  }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k = c.writers.(writer) ~payload:value ~k

let read c ~reader ~k = c.readers.(reader) ~k
