(** DGLV10: the single-writer *fast* register (Dutta, Guerraoui, Levy &
    Vukolić, "Fast access to distributed atomic memory").

    Both operations are one round-trip: the single writer numbers its own
    writes locally and updates all servers in one round; readers use the
    admissible-predicate fast read.  Atomic exactly when [W = 1] and
    [R < S/t − 2] — the W1R1 design point on the single-writer side of
    the boundary that this paper's Table 1 closes for [W ≥ 2]. *)

let name = "DGLV10 SW-fast"

let design_point = Quorums.Bounds.W1R1

let algo =
  {
    Client_core.new_writer =
      (fun ctx ~writer ->
        assert (writer = 0);
        let clock = ref Tstamp.initial in
        fun ~payload ~k ->
          Client_core.one_round_write ctx ~writer ~wid:0 ~payload ~clock
            ~learn:false ~k);
    new_reader =
      (fun ctx ~reader ->
        let val_queue = ref [ Wire.initial_value_entry ] in
        fun ~k -> Client_core.fast_read ctx ~reader ~val_queue ~k);
  }

type cluster = {
  base : Cluster_base.t;
  writers : Client_core.writer_fn array;
  readers : Client_core.reader_fn array;
}

let create env =
  if Protocol.Env.w env <> 1 then
    invalid_arg "Dglv_w1r1.create: the single-writer protocol needs exactly 1 writer";
  let base = Cluster_base.create env in
  let ctx = Cluster_base.ctx base in
  {
    base;
    writers = [| algo.Client_core.new_writer ctx ~writer:0 |];
    readers =
      Array.init (Protocol.Env.r env) (fun i ->
          algo.Client_core.new_reader ctx ~reader:i);
  }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k = c.writers.(writer) ~payload:value ~k

let read c ~reader ~k = c.readers.(reader) ~k
