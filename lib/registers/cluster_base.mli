(** Shared cluster plumbing.

    Every protocol cluster consists of the same physical pieces: one
    private network (with the model's server↔server and client↔client
    bans installed), [S] replicas attached as servers, and one
    {!Protocol.Round_trip} endpoint per writer and per reader.  Protocols
    build on this and add only their client-side state. *)

open Protocol
open Simulation

type endpoint = (Wire.req, Wire.rep) Round_trip.t

type t = {
  env : Env.t;
  net : (Wire.req, Wire.rep) Message.t Network.t;
  replicas : Replica.t array;
  writer_eps : endpoint array;
  reader_eps : endpoint array;
  ctl : Control.t;
}

val create : Env.t -> t

val ctx : t -> Client_core.ctx
(** The cluster's endpoints and parameters as the backend-agnostic client
    context consumed by every {!Client_core} algorithm.  The live TCP
    transport builds the same [ctx] from real sockets. *)

val writer_node : t -> int -> int
val reader_node : t -> int -> int

val quorum : t -> int
(** [S − t]. *)

val s : t -> int
val tolerance : t -> int
val readers : t -> int
