(* A named keyspace of registers: one {!Replica} per key, instantiated
   the first time the key is touched.  Like the replica's own value
   vector, the set of fully-materialised replicas is a recency window,
   not an archive: past [max_hot] resident replicas, the least recently
   used are demoted to their {!Replica.save} snapshots and rebuilt on the
   next access.  Demotion is loss-free — the snapshot carries the full
   vector with its [updated] certificate sets — so eviction can never
   cost atomicity, only a rebuild on the next touch of a cold key. *)

type slot = { replica : Replica.t; mutable last_use : int }

type t = {
  max_hot : int;
  hot : (string, slot) Hashtbl.t;
  cold : (string, Replica.state) Hashtbl.t;
  mutable tick : int; (* recency stamp source *)
}

let default_max_hot = 4096

let create ?(max_hot = default_max_hot) () =
  if max_hot < 1 then invalid_arg "Keyspace.create: max_hot must be >= 1";
  {
    max_hot;
    hot = Hashtbl.create 64;
    cold = Hashtbl.create 64;
    tick = 0;
  }

(* Demote in batches: one eviction pass sorts the hot set by recency and
   snapshots the oldest quarter, so the O(hot log hot) cost amortises
   over [max_hot / 4] accesses instead of recurring per operation. *)
let evict t =
  if Hashtbl.length t.hot > t.max_hot then begin
    let slots = Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.hot [] in
    let slots =
      List.sort (fun (_, a) (_, b) -> compare a.last_use b.last_use) slots
    in
    let keep = max 1 (3 * t.max_hot / 4) in
    let drop = List.length slots - keep in
    List.iteri
      (fun i (k, s) ->
        if i < drop then begin
          Hashtbl.remove t.hot k;
          Hashtbl.replace t.cold k (Replica.save s.replica)
        end)
      slots
  end

let find t key =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.hot key with
  | Some s ->
    s.last_use <- t.tick;
    s.replica
  | None ->
    let replica =
      match Hashtbl.find_opt t.cold key with
      | Some st ->
        Hashtbl.remove t.cold key;
        Replica.load st
      | None -> Replica.create ()
    in
    Hashtbl.replace t.hot key { replica; last_use = t.tick };
    evict t;
    replica

let handle t ~key ~client req = Replica.handle (find t key) ~client req

let key_count t = Hashtbl.length t.hot + Hashtbl.length t.cold

let hot_count t = Hashtbl.length t.hot

let keys t =
  let ks = Hashtbl.fold (fun k _ acc -> k :: acc) t.hot [] in
  let ks = Hashtbl.fold (fun k _ acc -> k :: acc) t.cold ks in
  List.sort compare ks

(* The durable state: every key's full replica snapshot, sorted for
   determinism.  [load] parks them all cold — a recovered server rebuilds
   each register lazily, on its first post-restart access. *)
type state = (string * Replica.state) list

let save t =
  let acc =
    Hashtbl.fold (fun k s acc -> (k, Replica.save s.replica) :: acc) t.hot []
  in
  let acc = Hashtbl.fold (fun k st acc -> (k, st) :: acc) t.cold acc in
  List.sort (fun (a, _) (b, _) -> compare a b) acc

let load ?max_hot st =
  let t = create ?max_hot () in
  List.iter (fun (k, s) -> Hashtbl.replace t.cold k s) st;
  t
