module Iset = Set.Make (Int)

type entry = { payload : int; mutable updated : Iset.t }

type t = {
  mutable current : Wire.value;
  vector : (Tstamp.t, entry) Hashtbl.t;
}

(* The vector is a *window*, not an archive.  Entries below the
   [max_vector] largest tags are pruned: their certificates regenerate on
   demand, because every query folds the client's valQueue back into the
   vector before the reply snapshot is taken — a value any client still
   tracks is re-inserted (and the client re-enrolled) by that very query.
   Without the bound the vector grows with every write ever performed and
   a READACK serialises all of it, which is what melts the server at high
   client counts.  [t.current] always carries the maximum tag, so pruning
   can never evict it. *)
let max_vector = 32

(* Per-entry cap on the [updated] ids a READACK carries.  The replica
   keeps the full set (recovery and the Appendix-A certificates need it);
   only the wire snapshot truncates.  The querying client is always
   included — it was enrolled in every entry just before the reply, so
   any value present in [s − t] reply vectors stays degree-1 admissible
   through the client itself — and the smallest ids come first, so the
   subset is deterministic and coalitions survive across servers. *)
let max_wire_updated = 8

let create () =
  let t = { current = Wire.initial_value_entry; vector = Hashtbl.create 16 } in
  Hashtbl.replace t.vector Tstamp.initial
    { payload = Wire.initial_value_entry.Wire.payload; updated = Iset.empty };
  t

let prune t =
  let n = Hashtbl.length t.vector in
  if n > max_vector then begin
    let tags = Hashtbl.fold (fun tag _ acc -> tag :: acc) t.vector [] in
    let tags = List.sort Tstamp.compare tags in
    let drop = n - max_vector in
    List.iteri
      (fun i tag -> if i < drop then Hashtbl.remove t.vector tag)
      tags
  end

(* The raw insert, pruning deferred: the query path must snapshot the
   reply *before* pruning, or a below-window value the client just
   echoed would be evicted again before the reply certifies it. *)
let update_unpruned t (v : Wire.value) c =
  match Hashtbl.find_opt t.vector v.Wire.tag with
  | Some e ->
    e.updated <- Iset.add c e.updated;
    if Wire.compare_value v t.current > 0 then t.current <- v
  | None ->
    Hashtbl.replace t.vector v.Wire.tag
      { payload = v.Wire.payload; updated = Iset.singleton c };
    if Wire.compare_value v t.current > 0 then t.current <- v

let update t (v : Wire.value) c =
  update_unpruned t v c;
  prune t

let snapshot t =
  Hashtbl.fold
    (fun tag e acc ->
      (({ Wire.tag; payload = e.payload } : Wire.value), Iset.elements e.updated)
      :: acc)
    t.vector []
  |> List.sort (fun (a, _) (b, _) -> Wire.compare_value a b)

(* The truncated updated set a READACK carries for one entry: the
   querying client first, then the smallest other ids, [max_wire_updated]
   in total.  Elements are sorted, so every server that holds the same
   set serialises the same subset. *)
let wire_updated ~client u =
  if Iset.cardinal u <= max_wire_updated then Iset.elements u
  else begin
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    if Iset.mem client u then
      client :: take (max_wire_updated - 1) (Iset.elements (Iset.remove client u))
    else take max_wire_updated (Iset.elements u)
  end

let snapshot_wire t ~client =
  Hashtbl.fold
    (fun tag e acc ->
      ( ({ Wire.tag; payload = e.payload } : Wire.value),
        wire_updated ~client e.updated )
      :: acc)
    t.vector []
  |> List.sort (fun (a, _) (b, _) -> Wire.compare_value a b)

let handle t ~client req =
  match req with
  | Wire.Update v ->
    update t v client;
    Wire.Write_ack { current = t.current }
  | Wire.Query vq ->
    (* Echoed valQueue values are folded in unpruned: they must survive
       until this reply's snapshot, so the queue maximum always leaves
       with a fresh certificate (Lemma 3) even when it sits below the
       retention window.  The transient overshoot is bounded by the
       client-side queue cap; the window is re-enforced right after the
       snapshot. *)
    List.iter (fun v -> update_unpruned t v client) vq;
    (* Record that this client is being told every value in the reply,
       before replying — the rule the Appendix-A proofs rely on ("every
       server which replies to r₂ adds r₂ to its updated set before
       replying", used for arbitrary values in Lemmas 5 and 8).  Without
       it, a completed write is not admissible with degree 2 (MWA2
       breaks) and one read's certificate is invisible to later reads
       (MWA4 breaks). *)
    Hashtbl.iter (fun _ e -> e.updated <- Iset.add client e.updated) t.vector;
    let rep =
      Wire.Read_ack { current = t.current; vector = snapshot_wire t ~client }
    in
    prune t;
    rep

(* The full durable state: enough to rebuild the replica exactly, as a
   plain (sorted, deterministic) value for recovery tests and tooling.
   Note the [updated] sets are part of it — the admissibility
   certificates of the fast protocols live there, so a recovery that
   dropped them would be no recovery at all. *)
type state = { s_current : Wire.value; s_vector : (Wire.value * int list) list }

let save t = { s_current = t.current; s_vector = snapshot t }

let load st =
  let t = create () in
  List.iter
    (fun ((v : Wire.value), updated) ->
      match Hashtbl.find_opt t.vector v.Wire.tag with
      | Some e -> e.updated <- Iset.union e.updated (Iset.of_list updated)
      | None ->
        Hashtbl.replace t.vector v.Wire.tag
          { payload = v.Wire.payload; updated = Iset.of_list updated })
    st.s_vector;
  t.current <- st.s_current;
  t

let current t = t.current

let vector_size t = Hashtbl.length t.vector

let updated_set t (v : Wire.value) =
  match Hashtbl.find_opt t.vector v.Wire.tag with
  | None -> []
  | Some e -> Iset.elements e.updated
