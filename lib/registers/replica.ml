module Iset = Set.Make (Int)

type entry = { payload : int; mutable updated : Iset.t }

type t = {
  mutable current : Wire.value;
  vector : (Tstamp.t, entry) Hashtbl.t;
}

let create () =
  let t = { current = Wire.initial_value_entry; vector = Hashtbl.create 16 } in
  Hashtbl.replace t.vector Tstamp.initial
    { payload = Wire.initial_value_entry.Wire.payload; updated = Iset.empty };
  t

let update t (v : Wire.value) c =
  match Hashtbl.find_opt t.vector v.Wire.tag with
  | Some e ->
    e.updated <- Iset.add c e.updated;
    if Wire.compare_value v t.current > 0 then t.current <- v
  | None ->
    Hashtbl.replace t.vector v.Wire.tag
      { payload = v.Wire.payload; updated = Iset.singleton c };
    if Wire.compare_value v t.current > 0 then t.current <- v

let snapshot t =
  Hashtbl.fold
    (fun tag e acc ->
      (({ Wire.tag; payload = e.payload } : Wire.value), Iset.elements e.updated)
      :: acc)
    t.vector []
  |> List.sort (fun (a, _) (b, _) -> Wire.compare_value a b)

let handle t ~client req =
  match req with
  | Wire.Update v ->
    update t v client;
    Wire.Write_ack { current = t.current }
  | Wire.Query vq ->
    List.iter (fun v -> update t v client) vq;
    (* Record that this client is being told every value in the reply,
       before replying — the rule the Appendix-A proofs rely on ("every
       server which replies to r₂ adds r₂ to its updated set before
       replying", used for arbitrary values in Lemmas 5 and 8).  Without
       it, a completed write is not admissible with degree 2 (MWA2
       breaks) and one read's certificate is invisible to later reads
       (MWA4 breaks). *)
    Hashtbl.iter (fun _ e -> e.updated <- Iset.add client e.updated) t.vector;
    Wire.Read_ack { current = t.current; vector = snapshot t }

(* The full durable state: enough to rebuild the replica exactly, as a
   plain (sorted, deterministic) value for recovery tests and tooling.
   Note the [updated] sets are part of it — the admissibility
   certificates of the fast protocols live there, so a recovery that
   dropped them would be no recovery at all. *)
type state = { s_current : Wire.value; s_vector : (Wire.value * int list) list }

let save t = { s_current = t.current; s_vector = snapshot t }

let load st =
  let t = create () in
  List.iter
    (fun ((v : Wire.value), updated) ->
      match Hashtbl.find_opt t.vector v.Wire.tag with
      | Some e -> e.updated <- Iset.union e.updated (Iset.of_list updated)
      | None ->
        Hashtbl.replace t.vector v.Wire.tag
          { payload = v.Wire.payload; updated = Iset.of_list updated })
    st.s_vector;
  t.current <- st.s_current;
  t

let current t = t.current

let vector_size t = Hashtbl.length t.vector

let updated_set t (v : Wire.value) =
  match Hashtbl.find_opt t.vector v.Wire.tag with
  | None -> []
  | Some e -> Iset.elements e.updated
