(** Client-side building blocks shared by the register protocols.

    Each function is one client algorithm expressed over an abstract
    {!endpoint} — "broadcast a request to all [S] servers and hand me any
    [S − t] replies in arrival order" — so the *same algorithm body* runs
    on two execution backends: the discrete-event simulator
    ({!Cluster_base.ctx}, over {!Protocol.Round_trip}) and the live TCP
    transport ([Transport.Cluster], over real sockets).  The algorithms:
    the two-round write of LS97/Algorithm 1, the classic two-round read
    with write-back, the local-clock one-round write used by the
    single-writer and naive protocols, the naive one-round read, and the
    paper's one-round *fast read* built on the [admissible] predicate of
    DGLV/Algorithm 1. *)

type endpoint = { exec : Wire.req -> ((int * Wire.rep) list -> unit) -> unit }
(** One client's round-trip capability: [exec req k] broadcasts [req] to
    all servers and calls [k replies] once a quorum of [(server_index,
    reply)] pairs has arrived, in arrival order.  The continuation may
    start another round trip (the two-round algorithms nest execs); on
    the simulator it fires from the event loop, on the live transport it
    runs in the calling client's thread. *)

type ctx = {
  writer_ep : int -> endpoint;  (** Endpoint of writer [i] (0-based). *)
  reader_ep : int -> endpoint;  (** Endpoint of reader [j] (0-based). *)
  s : int;  (** Number of servers. *)
  t : int;  (** Crash tolerance (quorum = [s - t]). *)
  r : int;  (** Number of readers (bounds the admissible degree). *)
}
(** Everything a client algorithm needs to know about the cluster it runs
    against, independent of how messages actually move. *)

val admissible :
  s:int ->
  t:int ->
  value:Wire.value ->
  replies:(int * Wire.rep) list ->
  degree:int ->
  bool
(** [admissible(v, Msg, a)] (Algorithm 1, line 32): does there exist a
    subset µ of the READACK replies such that every message in µ carries
    [v], [|µ| ≥ S − a·t], and at least [a] clients are common to the
    [updated] sets that µ's servers recorded for [v]?

    Faithful to the predicate including its degenerate regime: when
    [S − a·t ≤ 0] the empty µ satisfies it vacuously — this is exactly
    how the algorithm misbehaves when [R ≥ S/t − 2] (too many admissible
    degrees), which the `fig9` experiment exploits. *)

val max_current : (int * Wire.rep) list -> Wire.value
(** Largest [valᵢ] among READACK replies (initial value if none). *)

val vector_values : (int * Wire.rep) list -> Wire.value list
(** All distinct values appearing in the replies' vectors, largest
    first. *)

val max_queue : int
(** Upper bound on a reader's valQueue length after a merge. *)

val bound_queue : Wire.value list -> Wire.value list
(** The {!max_queue} largest values, descending — the recency window a
    reader carries between rounds.  Mirrors the replica-side
    {!Replica.max_vector} bound: without it every QUERY grows with the
    length of the run. *)

val two_round_write :
  ctx ->
  writer:int ->
  payload:int ->
  last_written:Wire.value ref ->
  k:(Checker.Mw_properties.tag option -> unit) ->
  unit
(** Algorithm 1's writer: round 1 queries all servers (propagating the
    writer's last written value, the paper's [(read, maxTS)] message) and
    computes [maxTS]; round 2 updates [(maxTS + 1, wᵢ)] everywhere and
    waits for [S − t] ACKs.  Non-concurrent writes thus obtain strictly
    increasing timestamps (property MWA0). *)

val one_round_write :
  ctx ->
  writer:int ->
  wid:int ->
  payload:int ->
  clock:Tstamp.t ref ->
  learn:bool ->
  k:(Checker.Mw_properties.tag option -> unit) ->
  unit
(** A fast (single round-trip) write: picks [(clock.ts + 1, wid)] from
    purely local knowledge, updates all servers, waits for [S − t] ACKs.
    With [learn = true] the writer additionally folds the timestamps
    servers return into [clock] for *future* writes (the best-effort
    variant the W1R2 impossibility theorem dooms anyway); with a single
    writer and [learn = false] this is exactly ABD'95's fast write. *)

val two_round_read :
  ctx ->
  reader:int ->
  k:(int -> Checker.Mw_properties.tag option -> unit) ->
  unit
(** The classic slow read: round 1 queries all servers and selects the
    maximum value; round 2 writes that value back to [S − t] servers
    before returning it (preventing new/old inversions). *)

val one_round_read_max :
  ctx ->
  reader:int ->
  k:(int -> Checker.Mw_properties.tag option -> unit) ->
  unit
(** The naive fast read: one query round, return the maximum value seen.
    No write-back, no admissibility — the baseline whose new/old
    inversions the checker catches. *)

type read_probe = {
  returned : Tstamp.t;        (** Tag of the value returned. *)
  max_seen : Tstamp.t;        (** Largest timestamp among the replies. *)
  degree : int option;        (** Admissibility degree used, if any. *)
  candidates_skipped : int;   (** Values scanned past before returning. *)
  fallback : bool;            (** True if the Lemma-3 fallback fired (it
                                  must not — asserted in the tests). *)
}
(** Observation record for one fast read, for the Appendix-A lemma tests
    (e.g. Lemma 2: [returned.ts >= max_seen.ts - 1]; Lemma 3: no
    fallback). *)

val fast_read :
  ?probe:(read_probe -> unit) ->
  ctx ->
  reader:int ->
  val_queue:Wire.value list ref ->
  k:(int -> Checker.Mw_properties.tag option -> unit) ->
  unit
(** Algorithm 1's reader: sends its [valQueue] (so servers fold it in
    before replying), collects [S − t] READACKs, then returns the largest
    value admissible with some degree [a ∈ [1, R+1]].  The value queue is
    updated with everything seen, to be propagated by the next read.
    Termination: the queue's own maximum is always admissible with degree
    1 (Lemma 3), so the descending scan cannot fall off the end. *)

type writer_fn = payload:int -> k:(Checker.Mw_properties.tag option -> unit) -> unit
(** One writer's [write] operation, with its per-writer state already
    closed over. *)

type reader_fn = k:(int -> Checker.Mw_properties.tag option -> unit) -> unit
(** One reader's [read] operation, with its per-reader state (e.g. the
    valQueue) already closed over. *)

type algo = {
  new_writer : ctx -> writer:int -> writer_fn;
  new_reader : ctx -> reader:int -> reader_fn;
}
(** A whole client-side protocol, backend-agnostic: instantiating
    [new_writer]/[new_reader] allocates that client's private state
    (local clock, last-written value, valQueue) and returns its
    operation.  {!Registry.client_algo} names one per protocol; the
    simulator clusters and the live transport both run exactly these. *)
