module Iset = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* The execution backend abstraction                                    *)
(* ------------------------------------------------------------------ *)

type endpoint = { exec : Wire.req -> ((int * Wire.rep) list -> unit) -> unit }

type ctx = {
  writer_ep : int -> endpoint;
  reader_ep : int -> endpoint;
  s : int;
  t : int;
  r : int;
}

(* ------------------------------------------------------------------ *)
(* Reply plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let read_acks replies =
  List.filter_map
    (fun (server, rep) ->
      match rep with
      | Wire.Read_ack { current; vector } -> Some (server, current, vector)
      | Wire.Write_ack _ -> None)
    replies

let max_current replies =
  List.fold_left
    (fun acc (_, current, _) -> Wire.value_max acc current)
    Wire.initial_value_entry (read_acks replies)

let ack_currents replies =
  List.filter_map
    (fun (_, rep) ->
      match rep with
      | Wire.Write_ack { current } -> Some current
      | Wire.Read_ack { current; _ } -> Some current)
    replies

(* The reader's valQueue is a recency window, mirroring the replica-side
   vector bound: only the [max_queue] largest values survive a merge.
   The queue's job — re-asserting certificates for values the reader may
   still return (Lemma 3 needs its maximum degree-1 admissible) — only
   concerns the newest values; carrying every value ever seen makes each
   QUERY grow with the length of the run. *)
let max_queue = 16

let bound_queue vs =
  let sorted = List.sort (fun a b -> Wire.compare_value b a) vs in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take max_queue sorted

(* All distinct values appearing in the READACK vectors, largest first. *)
let all_values replies =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (_, _, vector) ->
      List.iter
        (fun ((v : Wire.value), _) ->
          if not (Hashtbl.mem tbl v.Wire.tag) then Hashtbl.replace tbl v.Wire.tag v)
        vector)
    (read_acks replies);
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> Wire.compare_value b a)

(* ------------------------------------------------------------------ *)
(* The admissible predicate                                            *)
(* ------------------------------------------------------------------ *)

let admissible ~s ~t ~value ~replies ~degree =
  assert (degree >= 1);
  let need = s - (degree * t) in
  if need <= 0 then true
  else begin
    (* Replies whose vector carries [value], with the updated set each
       server recorded for it. *)
    let relevant =
      List.filter_map
        (fun (_, _, vector) ->
          List.find_opt
            (fun ((v : Wire.value), _) -> Tstamp.equal v.Wire.tag value.Wire.tag)
            vector)
        (read_acks replies)
      |> List.map (fun (_, updated) -> Iset.of_list updated)
    in
    let nmsg = List.length relevant in
    if nmsg < need then false
    else begin
      (* Does some set C of [degree] clients appear in the updated sets
         of at least [need] of the relevant messages?  Clients and reply
         counts are tiny, so an exact DFS over candidate clients works:
         each client maps to the bitmask of messages that recorded it. *)
      let masks = Array.of_list relevant in
      let clients =
        Array.fold_left (fun acc set -> Iset.union acc set) Iset.empty masks
        |> Iset.elements
      in
      let client_mask c =
        let m = ref 0 in
        Array.iteri (fun i set -> if Iset.mem c set then m := !m lor (1 lsl i)) masks;
        !m
      in
      let popcount m =
        let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
        go m 0
      in
      let cmasks = List.map client_mask clients in
      let rec search chosen mask = function
        | [] -> chosen >= degree && popcount mask >= need
        | cm :: rest ->
          if chosen >= degree then popcount mask >= need || search chosen mask rest
          else begin
            let mask' = mask land cm in
            (popcount mask' >= need && search (chosen + 1) mask' rest)
            || search chosen mask rest
          end
      in
      (* Start with the full-message mask (intersection over zero clients
         is "all relevant messages"). *)
      let full = (1 lsl nmsg) - 1 in
      search 0 full cmasks
    end
  end

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)
(* ------------------------------------------------------------------ *)

let vector_values = all_values

let two_round_write ctx ~writer ~payload ~last_written ~k =
  let ep = ctx.writer_ep writer in
  ep.exec (Wire.Query [ !last_written ]) (fun replies ->
      let maxv = max_current replies in
      let tag = Tstamp.next maxv.Wire.tag ~wid:writer in
      let value = { Wire.tag; payload } in
      last_written := value;
      ep.exec (Wire.Update value) (fun _acks -> k (Some tag)))

let one_round_write ctx ~writer ~wid ~payload ~clock ~learn ~k =
  let ep = ctx.writer_ep writer in
  let tag = Tstamp.next !clock ~wid in
  clock := tag;
  let value = { Wire.tag; payload } in
  ep.exec (Wire.Update value) (fun acks ->
      if learn then
        List.iter
          (fun (c : Wire.value) -> clock := Tstamp.max !clock c.Wire.tag)
          (ack_currents acks);
      k (Some tag))

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)
(* ------------------------------------------------------------------ *)

let two_round_read ctx ~reader ~k =
  let ep = ctx.reader_ep reader in
  ep.exec (Wire.Query []) (fun replies ->
      let maxv = max_current replies in
      ep.exec (Wire.Update maxv) (fun _acks ->
          k maxv.Wire.payload (Some maxv.Wire.tag)))

let one_round_read_max ctx ~reader ~k =
  let ep = ctx.reader_ep reader in
  ep.exec (Wire.Query []) (fun replies ->
      let maxv = max_current replies in
      k maxv.Wire.payload (Some maxv.Wire.tag))

type read_probe = {
  returned : Tstamp.t;
  max_seen : Tstamp.t;
  degree : int option;
  candidates_skipped : int;
  fallback : bool;
}

let fast_read ?probe ctx ~reader ~val_queue ~k =
  let ep = ctx.reader_ep reader in
  let s = ctx.s in
  let t = ctx.t in
  let r = ctx.r in
  ep.exec (Wire.Query !val_queue) (fun replies ->
      (* Fold everything seen into the queue for the next read. *)
      let seen = all_values replies in
      let merged =
        List.fold_left
          (fun acc (v : Wire.value) ->
            if
              List.exists
                (fun (u : Wire.value) -> Tstamp.equal u.Wire.tag v.Wire.tag)
                acc
            then acc
            else v :: acc)
          !val_queue seen
      in
      val_queue := bound_queue merged;
      let degrees = List.init (r + 1) (fun i -> i + 1) in
      let max_seen =
        List.fold_left Wire.value_max (max_current replies) seen
      in
      let observe ~returned ~degree ~skipped ~fallback =
        match probe with
        | None -> ()
        | Some f ->
          f
            {
              returned = returned.Wire.tag;
              max_seen = max_seen.Wire.tag;
              degree;
              candidates_skipped = skipped;
              fallback;
            }
      in
      let rec scan skipped = function
        | [] ->
          (* Unreachable when the protocol's invariants hold (Lemma 3):
             the valQueue maximum is admissible with degree 1. *)
          let maxv = max_current replies in
          observe ~returned:maxv ~degree:None ~skipped ~fallback:true;
          k maxv.Wire.payload (Some maxv.Wire.tag)
        | v :: rest -> (
          match
            List.find_opt
              (fun degree -> admissible ~s ~t ~value:v ~replies ~degree)
              degrees
          with
          | Some degree ->
            observe ~returned:v ~degree:(Some degree) ~skipped ~fallback:false;
            k v.Wire.payload (Some v.Wire.tag)
          | None -> scan (skipped + 1) rest)
      in
      scan 0 seen)

(* ------------------------------------------------------------------ *)
(* Whole-client algorithms, backend-agnostic                            *)
(* ------------------------------------------------------------------ *)

type writer_fn = payload:int -> k:(Checker.Mw_properties.tag option -> unit) -> unit

type reader_fn = k:(int -> Checker.Mw_properties.tag option -> unit) -> unit

type algo = {
  new_writer : ctx -> writer:int -> writer_fn;
  new_reader : ctx -> reader:int -> reader_fn;
}
