(** The paper's W2R1 implementation (Algorithm 1 & 2, §5.2, Appendix A).

    Writes take two rounds: the writer queries all servers for the
    maximum timestamp (propagating its own last value — the [(read,
    maxTS)] message) and then updates [(maxTS + 1, wᵢ)] everywhere, so
    non-concurrent writes from different writers are ordered by timestamp
    and concurrent ones by writer id (MWA0).

    Reads are *fast*: a single round.  The reader sends its [valQueue]
    (servers fold it in before replying — that propagation is what lets
    later readers certify values), collects [S − t] READACKs, and returns
    the largest value [admissible] with some degree [a ∈ [1, R+1]].

    Atomic exactly when [R < S/t − 2]; beyond that threshold the
    admissible predicate degenerates (see `fig9`). *)

let name = "Huang et al. W2R1"

let design_point = Quorums.Bounds.W2R1

let new_writer ctx ~writer =
  let last_written = ref Wire.initial_value_entry in
  fun ~payload ~k ->
    Client_core.two_round_write ctx ~writer ~payload ~last_written ~k

(* The probe hook (lemma tests) is read at call time so it can be
   installed after the cluster is built. *)
let new_reader ?probe_ref ctx ~reader =
  let val_queue = ref [ Wire.initial_value_entry ] in
  fun ~k ->
    let probe = Option.bind probe_ref (fun r -> !r) in
    Client_core.fast_read ?probe ctx ~reader ~val_queue ~k

let algo =
  {
    Client_core.new_writer;
    new_reader = (fun ctx ~reader -> new_reader ctx ~reader);
  }

type cluster = {
  base : Cluster_base.t;
  writers : Client_core.writer_fn array;
  readers : Client_core.reader_fn array;
  probe : (Client_core.read_probe -> unit) option ref;
}

let create env =
  let base = Cluster_base.create env in
  let ctx = Cluster_base.ctx base in
  let probe = ref None in
  {
    base;
    writers =
      Array.init (Protocol.Env.w env) (fun i -> new_writer ctx ~writer:i);
    readers =
      Array.init (Protocol.Env.r env) (fun i ->
          new_reader ~probe_ref:probe ctx ~reader:i);
    probe;
  }

(** Install an observation hook on every fast read (lemma tests). *)
let set_probe c probe = c.probe := probe

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k = c.writers.(writer) ~payload:value ~k

let read c ~reader ~k = c.readers.(reader) ~k
