(** WkR1 with k = 3 — a three-round write with the admissible fast read.
    Executable form of the §5.1 remark that the fast-read threshold
    [R < S/t − 2] does not depend on how many rounds a write takes; see
    the implementation header. *)

val name : string
val design_point : Quorums.Bounds.design_point

val algo : Client_core.algo
(** The protocol's client algorithm, backend-agnostic: the simulator
    cluster below and the live TCP transport both instantiate exactly
    this. *)

type cluster

val create : Protocol.Env.t -> cluster
val control : cluster -> Protocol.Control.t

val write :
  cluster ->
  writer:int ->
  value:int ->
  k:(Checker.Mw_properties.tag option -> unit) ->
  unit

val read :
  cluster -> reader:int -> k:(int -> Checker.Mw_properties.tag option -> unit) -> unit
