(** Public facade of the multi-writer atomic register library.

    One [open Mwregister] (or qualified use) reaches every layer:

    - {!Sim}, {!Net}: the discrete-event substrate;
    - {!Op}, {!History}: executions and the atomicity specification;
    - {!Atomicity}, {!Linearizability}, {!Consistency}, {!Mw_properties}:
      the checkers;
    - {!Bounds}, {!Quorum}: Table 1's predicates;
    - {!Env}, {!Runtime}, {!Register_intf}: running protocols;
    - {!Registry} and the individual protocol modules;
    - {!Impossibility} namespace: the mechanized proofs;
    - {!Adversary}, {!Threshold}, {!Stats}: workloads and experiments;
    - {!Pool}: the work-sharing domain pool for parallel sweeps;
    - {!Live} namespace: the TCP transport — the same algorithms over
      real sockets;
    - {!Kv} namespace: the sharded multi-register keyspace over the
      live transport, with {!Ycsb} supplying its workload shapes.

    The convenience entry point {!run_and_check} wires the common loop:
    build an environment, run a workload against a protocol, and return
    the history with all checker verdicts. *)

module Sim = Simulation.Engine
module Rng = Simulation.Rng
module Latency = Simulation.Latency
module Net = Simulation.Network
module Trace = Simulation.Trace

module Op = Histories.Op
module History = Histories.History
module Recorder = Histories.Recorder
module Serial = Histories.Serial

module Witness = Checker.Witness
module Atomicity = Checker.Atomicity
module Linearizability = Checker.Linearizability
module Consistency = Checker.Consistency
module Mw_properties = Checker.Mw_properties
module Staleness = Checker.Staleness
module Interval = Checker.Interval
module Online = Checker.Online

module Quorum = Quorums.Quorum
module Coterie = Quorums.Coterie
module Bounds = Quorums.Bounds

module Topology = Protocol.Topology
module Env = Protocol.Env
module Control = Protocol.Control
module Runtime = Protocol.Runtime
module Register_intf = Protocol.Register_intf

module Registry = Registers.Registry
module Tstamp = Registers.Tstamp

module Impossible = struct
  module Token = Impossibility.Token
  module Exec_model = Impossibility.Exec_model
  module Strategy = Impossibility.Strategy
  module Chain_alpha = Impossibility.Chain_alpha
  module Chain_beta = Impossibility.Chain_beta
  module Zigzag = Impossibility.Zigzag
  module W1r2_theorem = Impossibility.W1r2_theorem
  module Sieve = Impossibility.Sieve
  module K_round = Impossibility.K_round
  module Realizability = Impossibility.Realizability
  module Report = Impossibility.Report
end

module Pool = Parallel.Pool

module Live = struct
  module Clock = Transport.Clock
  module Netio = Transport.Netio
  module Codec = Transport.Codec
  module Server = Transport.Server
  module Mux = Transport.Mux
  module Endpoint = Transport.Endpoint
  module Cluster = Transport.Cluster
  module Session = Transport.Session
  module Check_sink = Transport.Check_sink
  module Faults = Transport.Faults
  module Geo = Transport.Geo
  module Chaos = Transport.Chaos
end

module Kv = struct
  module Placement = Kv.Placement
  module Keyspace = Registers.Keyspace
  module Cluster = Kv.Kv_cluster
  module Router = Kv.Router
  module Session = Kv.Kv_session
end

module Adversary = Workload.Adversary
module Threshold = Workload.Threshold
module Stats = Workload.Stats
module Generator = Workload.Generator
module Exhaustive = Workload.Exhaustive
module Hunter = Workload.Hunter
module Ycsb = Workload.Ycsb

let version = "1.0.0"

type verdict = {
  outcome : Runtime.outcome;
  consistency : Consistency.level;
  atomicity_witness : Witness.t option;
  mwa_failures : (string * Witness.t) list;
  wait_free : bool;  (** Every scheduled operation completed. *)
}

let run_and_check ?(seed = 42) ?latency ?adversary ~register ~s ~t ~w ~r plans =
  let env = Env.make ~seed ?latency ~s ~t ~w ~r () in
  let outcome = Runtime.run ~register ~env ~plans ?adversary () in
  let history = outcome.Runtime.history in
  let consistency = Consistency.classify history in
  let atomicity_witness =
    match Atomicity.check history with Ok () -> None | Error w -> Some w
  in
  let mwa_failures =
    Mw_properties.failures (Mw_properties.check outcome.Runtime.tagged)
  in
  let wait_free =
    List.for_all Op.is_complete (History.ops history)
  in
  { outcome; consistency; atomicity_witness; mwa_failures; wait_free }
