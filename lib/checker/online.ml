open Histories

(* Streaming atomicity checker.

   Same obligation system as {!Atomicity} (E1-E4 over writes, plus the
   local no-future-read / no-stale-read conditions), maintained
   incrementally over a stream of completed operations instead of a
   recorded history.  The resident state is the *interval-order window*:
   operations that can still participate in a violation together with a
   future operation.  Everything older is garbage-collected, folding its
   ordering obligations into the survivors, so memory is O(window)
   rather than O(history).

   Feed contract (the sinks in the transport/kv layers uphold it):
   - written values are globally unique and never [History.initial_value];
   - each process feeds its operations in program order;
   - every operation fed after [advance ~watermark:w] has invocation
     time >= w (w is a low-watermark over in-flight invocations).

   GC rule (also stated in the README): with watermark W,
   - a read retires once its response time is < W;
   - a write [w] retires once resp(w) < W and some other write [w']
     with inv(w') > resp(w) has resp(w') < W (a settled superseding
     write) — any future read returning [w]'s value would then be a
     stale read and is reported on sight;
   - before removal, a retiring write folds its obligations into the
     survivors: every surviving predecessor [p] (edge p -> w) inherits
     [blocked_after <- min resp(w) blocked_after(w)] (p must linearize
     before every write invoked after that time, because w must) and a
     direct edge to every surviving successor of [w].

   A cycle that would have passed through retired nodes therefore shows
   up either as a window cycle, as a node whose own invocation lies
   after its [blocked_after] bound, or as an immediately-reported read
   of a retired value. *)

type wnode = {
  w_op : Op.t;
  succs : (int, wnode) Hashtbl.t; (* obligation edges, keyed by op id *)
  mutable blocked_after : float;
      (* must linearize before every write invoked after this time *)
  mutable min_read_resp : float;
      (* earliest response among resolved reads of this write *)
}

type rnode = { r_op : Op.t; rho : wnode }

type t = {
  writes : (int, wnode) Hashtbl.t; (* window writes, by op id *)
  by_value : (int, wnode) Hashtbl.t; (* window writes, by written value *)
  mutable reads : rnode list; (* window resolved reads *)
  parked : (int, Op.t list) Hashtbl.t; (* value -> reads awaiting their write *)
  mutable parked_count : int;
  mutable watermark : float;
  mutable settled_max_inv : float;
      (* max invocation among writes whose response predates the watermark *)
  mutable verdict : Witness.t option;
  mutable retired_writes : int;
  mutable seen : int;
  mutable peak : int;
  mutable dirty : bool; (* edges added since the last cycle pass *)
}

let create () =
  let t =
    {
      writes = Hashtbl.create 64;
      by_value = Hashtbl.create 64;
      reads = [];
      parked = Hashtbl.create 8;
      parked_count = 0;
      watermark = neg_infinity;
      settled_max_inv = neg_infinity;
      verdict = None;
      retired_writes = 0;
      seen = 0;
      peak = 0;
      dirty = false;
    }
  in
  (* The virtual initial write participates like any other write; it is
     superseded (and retired) as soon as a real write settles. *)
  let init =
    {
      w_op = Atomicity.initial_write;
      succs = Hashtbl.create 8;
      blocked_after = infinity;
      min_read_resp = infinity;
    }
  in
  Hashtbl.replace t.writes Atomicity.initial_write.Op.id init;
  Hashtbl.replace t.by_value History.initial_value init;
  t

let resident t = Hashtbl.length t.writes + List.length t.reads + t.parked_count

(* A further watermark raise cannot change this instance: verdict
   already fixed, or nothing parked, no resident reads, no edges
   awaiting a cycle pass, and every completed resident write already
   responded below the watermark — so every retirement decision is
   final until the next feed.  Lets the keyed checker advance only the
   keys that can still move, instead of sweeping the whole keyspace on
   every drain batch. *)
let quiescent t =
  t.verdict <> None
  || t.parked_count = 0
     && t.reads = []
     && (not t.dirty)
     && Hashtbl.fold
          (fun _ wn acc ->
            acc
            &&
            match wn.w_op.Op.resp with
            | None -> true
            | Some f -> f < t.watermark)
          t.writes true

let peak_resident t = t.peak

let ops_seen t = t.seen

let note_peak t =
  let r = resident t in
  if r > t.peak then t.peak <- r

let violate t reason =
  if t.verdict = None then
    t.verdict <- Some (Witness.make reason ~history_size:t.seen)

let add_edge t (u : wnode) (v : wnode) =
  if u != v && not (Hashtbl.mem u.succs v.w_op.Op.id) then begin
    Hashtbl.replace u.succs v.w_op.Op.id v;
    t.dirty <- true
  end

(* Resolve read [r] against its write node [wn]: local conditions first,
   then the incremental E2/E3/E4 edges against the current window. *)
let resolve t (r : Op.t) (wn : wnode) =
  if Op.precedes r wn.w_op then
    violate t (Witness.Future_read { read = r; write = wn.w_op })
  else begin
    Hashtbl.iter
      (fun _ (u : wnode) ->
        if u != wn then begin
          (* Local stale read: wn < u < r. *)
          if Op.precedes wn.w_op u.w_op && Op.precedes u.w_op r then
            violate t
              (Witness.Stale_read { read = r; write = wn.w_op; newer = u.w_op });
          (* E2: u < r implies u -> rho(r). *)
          if Op.precedes u.w_op r then add_edge t u wn;
          (* E3 (forward): some read of u responded before r invoked. *)
          if u.min_read_resp < r.Op.inv then add_edge t u wn;
          (* E4 (backward feed): r < u implies rho(r) -> u. *)
          if Op.precedes r u.w_op then add_edge t wn u
        end)
      t.writes;
    (* E3 (backward feed): r precedes an already-resident read. *)
    List.iter
      (fun rn ->
        if rn.rho != wn && Op.precedes r rn.r_op then add_edge t wn rn.rho)
      t.reads;
    (match r.Op.resp with
    | Some f -> if f < wn.min_read_resp then wn.min_read_resp <- f
    | None -> ());
    t.reads <- { r_op = r; rho = wn } :: t.reads
  end

let feed_write t (op : Op.t) v =
  if v = History.initial_value then
    invalid_arg "Online.feed: write of the initial value";
  if Hashtbl.mem t.by_value v then
    invalid_arg "Online.feed: written values are not unique";
  let node =
    { w_op = op; succs = Hashtbl.create 8; blocked_after = infinity;
      min_read_resp = infinity }
  in
  Hashtbl.iter
    (fun _ (u : wnode) ->
      (* E1 in both feed orders. *)
      if Op.precedes u.w_op op then add_edge t u node;
      if Op.precedes op u.w_op then add_edge t node u;
      (* E4: some read of u responded before this write invoked. *)
      if u.min_read_resp < op.Op.inv then add_edge t u node)
    t.writes;
  List.iter
    (fun rn ->
      (* Backward-feed stale read: rho(r) < op < r. *)
      if Op.precedes rn.rho.w_op op && Op.precedes op rn.r_op then
        violate t
          (Witness.Stale_read { read = rn.r_op; write = rn.rho.w_op; newer = op });
      (* E2: op < r implies op -> rho(r). *)
      if rn.rho != node && Op.precedes op rn.r_op then add_edge t node rn.rho)
    t.reads;
  Hashtbl.replace t.writes op.Op.id node;
  Hashtbl.replace t.by_value v node;
  (* Reads that arrived before their write (the write was still in
     flight when they completed) resolve now. *)
  match Hashtbl.find_opt t.parked v with
  | None -> ()
  | Some rs ->
    Hashtbl.remove t.parked v;
    t.parked_count <- t.parked_count - List.length rs;
    List.iter (fun r -> resolve t r node) (List.rev rs)

let feed t (op : Op.t) =
  if t.verdict <> None then t.seen <- t.seen + 1
  else begin
    t.seen <- t.seen + 1;
    (match op.Op.kind with
    | Op.Write v -> feed_write t op v
    | Op.Read -> (
      match (op.Op.resp, op.Op.result) with
      | None, _ | _, None -> () (* pending reads impose no obligation *)
      | Some _, Some v -> (
        match Hashtbl.find_opt t.by_value v with
        | Some wn -> resolve t op wn
        | None ->
          let rs = Option.value ~default:[] (Hashtbl.find_opt t.parked v) in
          Hashtbl.replace t.parked v (op :: rs);
          t.parked_count <- t.parked_count + 1)));
    note_peak t
  end

(* Cycle pass over the window graph, plus the blocked-after check that
   stands in for edges through retired nodes. *)
let cycle_pass t =
  if t.dirty && t.verdict = None then begin
    t.dirty <- false;
    let color = Hashtbl.create (Hashtbl.length t.writes) in
    (* 1 = on stack, 2 = done *)
    let cycle = ref None in
    let rec visit (u : wnode) (stack : wnode list) =
      if !cycle = None then begin
        Hashtbl.replace color u.w_op.Op.id 1;
        let stack = u :: stack in
        Hashtbl.iter
          (fun _ (v : wnode) ->
            if !cycle = None then
              match Hashtbl.find_opt color v.w_op.Op.id with
              | Some 1 ->
                (* Nodes from v (exclusive) back to u, in edge order. *)
                let rec take acc = function
                  | [] -> acc
                  | x :: rest ->
                    if x == v then x :: acc else take (x :: acc) rest
                in
                cycle := Some (take [] stack)
              | Some _ -> ()
              | None -> visit v stack)
          u.succs;
        if !cycle = None then Hashtbl.replace color u.w_op.Op.id 2
      end
    in
    Hashtbl.iter
      (fun id u ->
        if !cycle = None && not (Hashtbl.mem color id) then visit u [])
      t.writes;
    (match !cycle with
    | Some nodes ->
      violate t (Witness.Ordering_cycle (List.map (fun n -> n.w_op) nodes))
    | None ->
      (* Effective blocked-after: u must linearize before every write
         invoked after min(blocked_after over nodes reachable from u).
         A write invoked after its own bound closes a cycle through
         retired nodes. *)
      let eff = Hashtbl.create (Hashtbl.length t.writes) in
      let rec bound (u : wnode) =
        match Hashtbl.find_opt eff u.w_op.Op.id with
        | Some b -> b
        | None ->
          Hashtbl.replace eff u.w_op.Op.id u.blocked_after; (* cut cycles *)
          let b =
            Hashtbl.fold (fun _ v acc -> Stdlib.min acc (bound v)) u.succs
              u.blocked_after
          in
          Hashtbl.replace eff u.w_op.Op.id b;
          b
      in
      Hashtbl.iter
        (fun _ (u : wnode) ->
          if t.verdict = None && u.w_op.Op.inv > bound u then
            violate t
              (Witness.Property
                 {
                   name = "retired-ordering-cycle";
                   detail =
                     "write must linearize before operations that were \
                      garbage-collected behind it";
                   culprits = [ u.w_op ];
                 }))
        t.writes)
  end

let retire t =
  let w = t.watermark in
  (* Reads behind the watermark retire unconditionally: their E3/E4
     obligations live on in their write's [min_read_resp]. *)
  t.reads <-
    List.filter
      (fun rn ->
        match rn.r_op.Op.resp with Some f -> f >= w | None -> true)
      t.reads;
  (* Settled writes push the superseding frontier forward. *)
  Hashtbl.iter
    (fun _ (u : wnode) ->
      match u.w_op.Op.resp with
      | Some f when f < w ->
        if u.w_op.Op.inv > t.settled_max_inv then
          t.settled_max_inv <- u.w_op.Op.inv
      | _ -> ())
    t.writes;
  let retiring =
    Hashtbl.fold
      (fun _ (u : wnode) acc ->
        match u.w_op.Op.resp with
        | Some f when f < w && t.settled_max_inv > f -> u :: acc
        | _ -> acc)
      t.writes []
  in
  (* One node at a time: folding w1 into a later-retiring w2 first gives
     w2 the inherited edges, which the next iteration folds onward, so
     chains of retiring nodes close transitively. *)
  List.iter
    (fun (g : wnode) ->
      let inherited = Stdlib.min g.blocked_after
          (match g.w_op.Op.resp with Some f -> f | None -> infinity)
      in
      Hashtbl.iter
        (fun _ (p : wnode) ->
          if p != g && Hashtbl.mem p.succs g.w_op.Op.id then begin
            Hashtbl.remove p.succs g.w_op.Op.id;
            if inherited < p.blocked_after then begin
              p.blocked_after <- inherited;
              t.dirty <- true
            end;
            Hashtbl.iter (fun _ s -> add_edge t p s) g.succs
          end)
        t.writes;
      Hashtbl.remove t.writes g.w_op.Op.id;
      t.retired_writes <- t.retired_writes + 1;
      (match Op.written_value g.w_op with
      | Some v -> Hashtbl.remove t.by_value v
      | None -> ()))
    retiring

let flag_parked t ~deadline ~reason =
  if t.verdict = None then begin
    let expired = ref [] in
    Hashtbl.iter
      (fun v rs ->
        List.iter
          (fun (r : Op.t) ->
            match r.Op.resp with
            | Some f when f < deadline -> expired := (v, r) :: !expired
            | _ -> ())
          rs)
      t.parked;
    (* Deterministic pick: earliest (inv, id), matching the batch
       checker's first-unwritten-read order at finalize. *)
    match
      List.sort
        (fun (_, (a : Op.t)) (_, (b : Op.t)) ->
          compare (a.Op.inv, a.Op.id) (b.Op.inv, b.Op.id))
        !expired
    with
    | [] -> ()
    | (v, r) :: _ -> violate t (reason r v)
  end

let advance t ~watermark =
  if watermark > t.watermark then t.watermark <- watermark;
  if t.verdict = None then begin
    (* A parked read whose response predates the watermark can never
       resolve cleanly: its value was either never written, written in
       its future, or belonged to a retired (superseded) write — a
       violation in every case. *)
    flag_parked t ~deadline:t.watermark ~reason:(fun r v ->
        Witness.Property
          {
            name = "stale-or-unwritten-read";
            detail =
              Printf.sprintf
                "read returned %d, a value never written, written in the \
                 read's future, or superseded before the read was invoked"
                v;
            culprits = [ r ];
          });
    if t.verdict = None then begin
      (* Cycle pass before retirement: a cycle formed since the last
         advance is reported over direct obligation edges; after
         retirement a second pass covers the folded shortcut edges. *)
      cycle_pass t;
      if t.verdict = None then begin
        retire t;
        cycle_pass t
      end
    end
  end

let finalize t =
  (* Parked reads that survive the end of the stream: when no write was
     ever garbage-collected this matches the batch checker's build-time
     unwritten-value witness exactly; otherwise the value may instead
     have belonged to a retired (superseded) write — a stale read — so
     the witness only claims the disjunction. *)
  flag_parked t ~deadline:infinity ~reason:(fun r v ->
      if t.retired_writes = 0 then Witness.Unwritten_value { read = r; value = v }
      else
        Witness.Property
          {
            name = "stale-or-unwritten-read";
            detail =
              Printf.sprintf
                "read returned %d, a value never written or superseded \
                 before the read was invoked"
                v;
            culprits = [ r ];
          });
  cycle_pass t;
  match t.verdict with None -> Ok () | Some w -> Error w

let verdict t = match t.verdict with None -> Ok () | Some w -> Error w

module Keyed = struct
  type instance = t

  let create_instance : unit -> instance = create

  type nonrec t = {
    instances : (string, instance) Hashtbl.t;
    hot : (string, unit) Hashtbl.t;
        (* keys fed since their instance last went quiescent; only these
           can move when the watermark rises *)
    on_violation : (string -> Witness.t -> unit) option;
    mutable viols : (string * Witness.t) list;
    mutable k_seen : int;
    mutable k_resident : int; (* sum of [resident] across instances *)
    mutable k_peak : int;
  }

  let create ?on_violation () =
    {
      instances = Hashtbl.create 64;
      hot = Hashtbl.create 64;
      on_violation;
      viols = [];
      k_seen = 0;
      k_resident = 0;
      k_peak = 0;
    }

  let instance t key =
    match Hashtbl.find_opt t.instances key with
    | Some i -> i
    | None ->
      let i = create_instance () in
      Hashtbl.replace t.instances key i;
      t.k_resident <- t.k_resident + resident i;
      i

  let note t key (i : instance) had =
    if had = None then
      match i.verdict with
      | Some w ->
        t.viols <- (key, w) :: t.viols;
        (match t.on_violation with Some f -> f key w | None -> ())
      | None -> ()

  let feed t ~key op =
    let i = instance t key in
    let had = i.verdict in
    let before = resident i in
    feed i op;
    t.k_seen <- t.k_seen + 1;
    t.k_resident <- t.k_resident + resident i - before;
    if t.k_resident > t.k_peak then t.k_peak <- t.k_resident;
    Hashtbl.replace t.hot key ();
    note t key i had

  let advance t ~watermark =
    (* Snapshot before mutating: keys whose instance settles drop out of
       the hot set, so a steady-state zipfian keyspace costs O(active
       keys) per batch instead of O(all keys ever touched). *)
    let keys = Hashtbl.fold (fun key () acc -> key :: acc) t.hot [] in
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.instances key with
        | None -> Hashtbl.remove t.hot key
        | Some i ->
          let had = i.verdict in
          let before = resident i in
          advance i ~watermark;
          t.k_resident <- t.k_resident + resident i - before;
          note t key i had;
          if quiescent i then Hashtbl.remove t.hot key)
      keys;
    if t.k_resident > t.k_peak then t.k_peak <- t.k_resident

  let finalize t =
    let out =
      Hashtbl.fold
        (fun key i acc ->
          let had = i.verdict in
          let v = finalize i in
          note t key i had;
          (key, v) :: acc)
        t.instances []
    in
    List.sort (fun (a, _) (b, _) -> compare a b) out

  let resident t = Hashtbl.fold (fun _ i acc -> acc + resident i) t.instances 0

  let peak_resident t =
    (* The aggregate is sampled at [advance]; the current total covers
       growth since the last sample. *)
    Stdlib.max t.k_peak (resident t)

  let ops_seen t = t.k_seen

  let violations t = List.rev t.viols

  let keys t = Hashtbl.length t.instances
end
