(** Streaming atomicity checker: {!Atomicity}'s verdicts over a stream
    of completed operations, with O(window) resident memory.

    The batch checker holds the whole history; at soak scale that is
    the memory and wall-clock bottleneck.  This checker consumes each
    operation once, keeps only the {e interval-order window} —
    operations that can still participate in a violation together with
    a future operation — and garbage-collects everything older, folding
    retired obligations into the survivors.

    {2 Feed contract}

    - Written values are globally unique and never
      {!Histories.History.initial_value} ([Invalid_argument] otherwise,
      mirroring the batch checker's precondition).
    - Each process feeds its operations in program order; processes may
      interleave arbitrarily.
    - Every operation fed after [advance ~watermark:w] invokes at or
      after [w].  The sinks derive [w] as the minimum invocation time
      over in-flight operations (each producer publishes its current
      in-flight invocation), so the contract holds by construction.

    {2 Window-GC rule}

    With watermark [W]: a read retires once its response time is below
    [W]; a write [w] retires once [resp w < W] {e and} some other write
    [w'] with [inv w' > resp w] has [resp w' < W] (a settled
    superseding write), because any later read of [w]'s value is
    necessarily stale and is reported on sight.  A retiring write folds
    its obligations into surviving predecessors (a [blocked_after]
    bound and shortcut edges), so ordering cycles through retired
    operations are still detected.

    On a fully-fed stream with no [advance] calls, [finalize] returns
    exactly the batch checker's verdict, with witnesses of the same
    kinds; after GC, verdicts still agree and witnesses remain valid,
    but a violation against a retired write is reported as a
    {!Witness.Property} witness naming the offending read. *)

open Histories

type t

val create : unit -> t
(** A fresh checker holding only the virtual initial write. *)

val feed : t -> Op.t -> unit
(** Consume one operation.  Reads without a response are ignored (they
    impose no obligation); writes without a response participate as
    writes that may take effect, exactly as in the batch checker.  A
    read whose value has no resident write parks until the write
    arrives (it was still in flight) or the watermark proves it can
    never resolve.  After the first violation the stream is only
    counted, not analysed. *)

val advance : t -> watermark:float -> unit
(** Raise the watermark (monotonic; lower values are ignored), flag
    parked reads that can no longer resolve, garbage-collect the
    window, and run the cycle pass over any new edges. *)

val finalize : t -> (unit, Witness.t) result
(** End of stream: remaining parked reads become
    {!Witness.Unwritten_value} witnesses, a final cycle pass runs, and
    the verdict is returned. *)

val verdict : t -> (unit, Witness.t) result
(** The verdict so far, without ending the stream. *)

val resident : t -> int
(** Operations currently held (window writes + window reads + parked). *)

val peak_resident : t -> int
(** High-water mark of {!resident} — the number the soak benchmarks
    record as the checker's peak window. *)

val ops_seen : t -> int

(** Per-key multiplexing for the sharded KV plane: one instance per
    key, created on first touch, advancing under one shared watermark. *)
module Keyed : sig
  type nonrec t

  val create : ?on_violation:(string -> Witness.t -> unit) -> unit -> t
  (** [on_violation] fires once per key, when that key's verdict first
      turns — the near-real-time hook the sinks use to surface
      violations mid-run. *)

  val feed : t -> key:string -> Op.t -> unit
  val advance : t -> watermark:float -> unit

  val finalize : t -> (string * (unit, Witness.t) result) list
  (** Per-key verdicts, sorted by key. *)

  val resident : t -> int
  val peak_resident : t -> int
  val ops_seen : t -> int
  val violations : t -> (string * Witness.t) list
  val keys : t -> int
end
