open Histories

(* The virtual initial write: stores History.initial_value and precedes
   every real operation. *)
let initial_write : Op.t =
  Op.write ~id:(-1)
    ~proc:(Op.Writer (-1))
    ~value:History.initial_value ~inv:neg_infinity ~resp:(Some neg_infinity)

type ctx = {
  writes : Op.t array;                    (* index 0 = virtual initial *)
  reads : (Op.t * int) array;             (* read, index of its write *)
  n : int;                                (* number of write nodes *)
  adj : (int, unit) Hashtbl.t array;      (* obligation edges, deduped *)
  history_size : int;
}

let fail ctx reason = Error (Witness.make reason ~history_size:ctx.history_size)

let add_edge ctx i j =
  if i <> j && not (Hashtbl.mem ctx.adj.(i) j) then Hashtbl.replace ctx.adj.(i) j ()

let build h =
  (match History.well_formed h with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Atomicity.check: ill-formed history: " ^ msg));
  if not (History.unique_writes h) then
    invalid_arg "Atomicity.check: written values are not unique";
  let h = History.strip_pending_reads h in
  let history_size = History.length h in
  let writes = Array.of_list (initial_write :: History.writes h) in
  let n = Array.length writes in
  let value_index = Hashtbl.create n in
  Array.iteri
    (fun i w ->
      match Op.written_value w with
      | Some v -> Hashtbl.replace value_index v i
      | None -> assert false)
    writes;
  let reads_or_err =
    List.fold_left
      (fun acc (r : Op.t) ->
        match acc with
        | Error _ as e -> e
        | Ok rs -> (
          match r.Op.result with
          | None -> Ok rs (* unreachable: pending reads stripped *)
          | Some v -> (
            match Hashtbl.find_opt value_index v with
            | None ->
              Error
                (Witness.make (Witness.Unwritten_value { read = r; value = v })
                   ~history_size)
            | Some wi -> Ok ((r, wi) :: rs))))
      (Ok []) (History.reads h)
  in
  match reads_or_err with
  | Error w -> Error w
  | Ok reads ->
    Ok
      {
        writes;
        reads = Array.of_list (List.rev reads);
        n;
        adj = Array.init n (fun _ -> Hashtbl.create 8);
        history_size;
      }

(* Local conditions that yield readable witnesses before the generic
   cycle search: future reads and directly-visible stale reads. *)
let local_conditions ctx =
  let exception Bad of Witness.t in
  try
    Array.iter
      (fun (r, wi) ->
        let w = ctx.writes.(wi) in
        if Op.precedes r w then
          raise (Bad (Witness.make (Witness.Future_read { read = r; write = w })
                        ~history_size:ctx.history_size));
        for j = 0 to ctx.n - 1 do
          if j <> wi then begin
            let w' = ctx.writes.(j) in
            if Op.precedes w w' && Op.precedes w' r then
              raise
                (Bad
                   (Witness.make
                      (Witness.Stale_read { read = r; write = w; newer = w' })
                      ~history_size:ctx.history_size))
          end
        done)
      ctx.reads;
    Ok ()
  with Bad w -> Error w

(* [Op.precedes o1 o2] is [resp o1 < inv o2], so once ops are sorted by
   invocation time the set an op precedes is a suffix: binary-searching
   the first invocation strictly after [resp] skips every pair that
   cannot precede, replacing the all-pairs O(W² + R²) [precedes] scans
   while producing the exact same edge set (the suffix membership test
   *is* the [precedes] test). *)
let first_after invs x =
  let lo = ref 0 and hi = ref (Array.length invs) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if invs.(mid) > x then hi := mid else lo := mid + 1
  done;
  !lo

let sorted_by_inv ops inv_of =
  let n = Array.length ops in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare (inv_of ops.(a)) (inv_of ops.(b))) idx;
  (idx, Array.map (fun i -> inv_of ops.(i)) idx)

let saturate ctx =
  (* E1: real-time order between writes. *)
  let w_idx, w_invs =
    sorted_by_inv ctx.writes (fun (w : Op.t) -> w.Op.inv)
  in
  for i = 0 to ctx.n - 1 do
    match ctx.writes.(i).Op.resp with
    | None -> ()
    | Some resp ->
      for k = first_after w_invs resp to ctx.n - 1 do
        add_edge ctx i w_idx.(k)
      done
  done;
  (* E2 and E4: obligations through each read. *)
  Array.iter
    (fun (r, wi) ->
      for j = 0 to ctx.n - 1 do
        if j <> wi then begin
          let w' = ctx.writes.(j) in
          if Op.precedes w' r then add_edge ctx j wi;
          if Op.precedes r w' then add_edge ctx wi j
        end
      done)
    ctx.reads;
  (* E3: new/old inversions between reads. *)
  let nr = Array.length ctx.reads in
  let r_idx, r_invs =
    sorted_by_inv ctx.reads (fun ((r : Op.t), _) -> r.Op.inv)
  in
  for a = 0 to nr - 1 do
    let r1, w1 = ctx.reads.(a) in
    match r1.Op.resp with
    | None -> ()
    | Some resp ->
      for k = first_after r_invs resp to nr - 1 do
        let _, w2 = ctx.reads.(r_idx.(k)) in
        if w1 <> w2 then add_edge ctx w1 w2
      done
  done

(* Iterative DFS cycle detection returning the cycle's nodes. *)
let find_cycle ctx =
  let white = 0 and grey = 1 and black = 2 in
  let color = Array.make ctx.n white in
  let parent = Array.make ctx.n (-1) in
  let cycle = ref None in
  let rec visit u =
    if !cycle = None then begin
      color.(u) <- grey;
      Hashtbl.iter
        (fun v () ->
          if !cycle = None then
            if color.(v) = grey then begin
              (* Reconstruct u -> ... -> v cycle via parent links. *)
              let rec collect x acc =
                if x = v then v :: acc else collect parent.(x) (x :: acc)
              in
              cycle := Some (collect u [])
            end
            else if color.(v) = white then begin
              parent.(v) <- u;
              visit v
            end)
        ctx.adj.(u);
      if color.(u) = grey then color.(u) <- black
    end
  in
  for u = 0 to ctx.n - 1 do
    if color.(u) = white && !cycle = None then visit u
  done;
  !cycle

let check h =
  match build h with
  | Error w -> Error w
  | Ok ctx -> (
    match local_conditions ctx with
    | Error w -> Error w
    | Ok () ->
      saturate ctx;
      (match find_cycle ctx with
      | None -> Ok ()
      | Some nodes ->
        let ops = List.map (fun i -> ctx.writes.(i)) nodes in
        fail ctx (Witness.Ordering_cycle ops)))

let is_atomic h = match check h with Ok () -> true | Error _ -> false

let obligation_edges h =
  match build h with
  | Error _ -> []
  | Ok ctx ->
    saturate ctx;
    let acc = ref [] in
    Array.iteri
      (fun i tbl ->
        Hashtbl.iter
          (fun j () ->
            if i > 0 && j > 0 then acc := (ctx.writes.(i), ctx.writes.(j)) :: !acc)
          tbl)
      ctx.adj;
    !acc

(* ------------------------------------------------------------------ *)
(* Constructive witness                                                 *)
(* ------------------------------------------------------------------ *)

(* Validate a candidate permutation against Definition 2.1 directly. *)
let valid_permutation ops =
  let real_time_ok =
    let rec go = function
      | [] | [ _ ] -> true
      | a :: rest -> List.for_all (fun b -> not (Op.precedes b a)) rest && go rest
    in
    go ops
  in
  let read_from_ok =
    let rec go state = function
      | [] -> true
      | (o : Op.t) :: rest -> (
        match o.Op.kind with
        | Op.Write v -> go v rest
        | Op.Read -> o.Op.result = Some state && go state rest)
    in
    go History.initial_value ops
  in
  real_time_ok && read_from_ok

let linearization h =
  match build h with
  | Error _ -> None
  | Ok ctx -> (
    match local_conditions ctx with
    | Error _ -> None
    | Ok () ->
      saturate ctx;
      (match find_cycle ctx with
      | Some _ -> None
      | None ->
        (* Kahn's algorithm with min-index tie-breaking for determinism. *)
        let n = ctx.n in
        let indegree = Array.make n 0 in
        Array.iter
          (fun tbl -> Hashtbl.iter (fun j () -> indegree.(j) <- indegree.(j) + 1) tbl)
          ctx.adj;
        let order = ref [] in
        let remaining = ref n in
        let removed = Array.make n false in
        while !remaining > 0 do
          let next = ref (-1) in
          for i = n - 1 downto 0 do
            if (not removed.(i)) && indegree.(i) = 0 then next := i
          done;
          assert (!next >= 0);
          removed.(!next) <- true;
          decr remaining;
          order := !next :: !order;
          Hashtbl.iter
            (fun j () -> indegree.(j) <- indegree.(j) - 1)
            ctx.adj.(!next)
        done;
        let topo = List.rev !order in
        (* Emit each write followed by its readers (by invocation time). *)
        let readers_of = Array.make n [] in
        Array.iter
          (fun (r, wi) -> readers_of.(wi) <- r :: readers_of.(wi))
          ctx.reads;
        let permutation =
          List.concat_map
            (fun wi ->
              let reads =
                List.sort
                  (fun (a : Op.t) (b : Op.t) -> compare (a.Op.inv, a.Op.id) (b.Op.inv, b.Op.id))
                  readers_of.(wi)
              in
              if wi = 0 then reads (* virtual initial write omitted *)
              else ctx.writes.(wi) :: reads)
            topo
        in
        if valid_permutation permutation then Some permutation else None))
