type k_view = {
  reader : int;
  rounds : Exec_model.view_entry list array;
}

type k_strategy = { name : string; k : int; decide : k_view -> int }

(* In the back-to-back execution, wherever a reader's (collapsed) round-2
   token sits, its whole block of rounds 2…k sits contiguously. *)
let expand_prefix ~k prefix =
  List.concat_map
    (fun tok ->
      match tok with
      | Token.R { reader; round = 2 } ->
        List.init (k - 1) (fun j -> Token.r ~reader ~round:(j + 2))
      | (Token.W _ | Token.R _) as other -> [ other ])
    prefix

let expand_entries ~k entries =
  List.map
    (fun (e : Exec_model.view_entry) ->
      { e with Exec_model.prefix = expand_prefix ~k e.Exec_model.prefix })
    entries

let collapse strat =
  if strat.k < 2 then invalid_arg "K_round.collapse: k must be at least 2";
  {
    Strategy.name = Printf.sprintf "%s (collapsed k=%d)" strat.name strat.k;
    decide =
      (fun (v : Exec_model.view) ->
        let me = v.Exec_model.reader in
        let round1 = expand_entries ~k:strat.k v.Exec_model.round1 in
        let base2 = expand_entries ~k:strat.k v.Exec_model.round2 in
        (* Round j ≥ 2 sees everything round 2 saw plus the reader's own
           preceding block tokens (they arrived just before it). *)
        let round_j j =
          let own_block =
            List.init (j - 2) (fun i -> Token.r ~reader:me ~round:(i + 2))
          in
          List.map
            (fun (e : Exec_model.view_entry) ->
              { e with Exec_model.prefix = e.Exec_model.prefix @ own_block })
            base2
        in
        let rounds =
          Array.init strat.k (fun idx ->
              if idx = 0 then round1 else round_j (idx + 1))
        in
        strat.decide { reader = me; rounds })
  }

let run ~s strat = W1r2_theorem.run ~s (collapse strat)

(* ------------------------------------------------------------------ *)
(* Example k-round strategies                                           *)
(* ------------------------------------------------------------------ *)

let last_digit prefix =
  match List.rev (Exec_model.digits_of_prefix prefix) with
  | [] -> None
  | d :: _ -> Some d

let majority ~default digits =
  let ones = List.length (List.filter (Int.equal 1) digits) in
  let twos = List.length (List.filter (Int.equal 2) digits) in
  if ones > twos then 1 else if twos > ones then 2 else default

let last_digits entries =
  List.filter_map (fun (e : Exec_model.view_entry) -> last_digit e.Exec_model.prefix) entries

let majority_of_last_round ~k =
  {
    name = Printf.sprintf "k%d-majority-last-round" k;
    k;
    decide =
      (fun v -> majority ~default:2 (last_digits v.rounds.(Array.length v.rounds - 1)));
  }

let round_vote ~k =
  {
    name = Printf.sprintf "k%d-round-vote" k;
    k;
    decide =
      (fun v ->
        let votes =
          Array.to_list v.rounds
          |> List.filter_map (fun entries ->
                 match last_digits entries with
                 | [] -> None
                 | digits -> Some (majority ~default:2 digits))
        in
        majority ~default:2 votes);
  }

let seeded ~k seed =
  {
    name = Printf.sprintf "k%d-seeded-%d" k seed;
    k;
    decide =
      (fun v ->
        let lasts = last_digits v.rounds.(Array.length v.rounds - 1) in
        match lasts with
        | d :: rest when List.for_all (Int.equal d) rest -> d
        | _ ->
          let fingerprint =
            Array.to_list v.rounds
            |> List.map
                 (List.map (fun (e : Exec_model.view_entry) ->
                      ( e.Exec_model.server,
                        List.map (Format.asprintf "%a" Token.pp) e.Exec_model.prefix )))
          in
          1 + (Hashtbl.hash (seed, v.reader, fingerprint) land 1));
  }
