type t = { label : string; arrivals : Token.t list array }

let validate arrivals =
  Array.iteri
    (fun srv seq ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun tok ->
          if Hashtbl.mem seen tok then
            invalid_arg
              (Format.asprintf "Exec_model: token %a repeated on server %d"
                 Token.pp tok srv);
          Hashtbl.replace seen tok ())
        seq;
      List.iteri
        (fun pos tok ->
          match tok with
          | Token.R { reader; round = 2 } ->
            let round1 = Token.r ~reader ~round:1 in
            let earlier = List.filteri (fun i _ -> i < pos) seq in
            if
              List.exists (Token.equal round1) seq
              && not (List.exists (Token.equal round1) earlier)
            then
              invalid_arg
                (Format.asprintf
                   "Exec_model: round 2 of reader %d precedes its round 1 on server %d"
                   reader srv)
          | Token.W _ | Token.R _ -> ())
        seq)
    arrivals

let make ~label arrivals =
  validate arrivals;
  { label; arrivals = Array.map (fun l -> l) arrivals }

let label t = t.label

let relabel t label = { t with label }

let servers t = Array.length t.arrivals

let arrivals t srv = t.arrivals.(srv)

let update t srv seq =
  let arrivals = Array.copy t.arrivals in
  arrivals.(srv) <- seq;
  validate arrivals;
  { t with arrivals }

let remove t ~server tok =
  update t server (List.filter (fun x -> not (Token.equal x tok)) t.arrivals.(server))

let insert_after t ~server ~after tok =
  let seq = t.arrivals.(server) in
  if List.exists (Token.equal tok) seq then
    invalid_arg
      (Format.asprintf "Exec_model.insert_after: %a already on server %d" Token.pp
         tok server);
  if not (List.exists (Token.equal after) seq) then
    invalid_arg
      (Format.asprintf "Exec_model.insert_after: anchor %a absent on server %d"
         Token.pp after server);
  let rec go = function
    | [] -> []
    | x :: rest -> if Token.equal x after then x :: tok :: rest else x :: go rest
  in
  update t server (go seq)

let append t ~server tok =
  let seq = t.arrivals.(server) in
  if List.exists (Token.equal tok) seq then
    invalid_arg
      (Format.asprintf "Exec_model.append: %a already on server %d" Token.pp tok
         server);
  update t server (seq @ [ tok ])

let equal a b =
  Array.length a.arrivals = Array.length b.arrivals
  && begin
       let same = ref true in
       Array.iteri
         (fun i seq ->
           if not (List.equal Token.equal seq b.arrivals.(i)) then same := false)
         a.arrivals;
       !same
     end

type view_entry = { server : int; prefix : Token.t list }

type view = { reader : int; round1 : view_entry list; round2 : view_entry list }

let round_view t ~reader ~round =
  let tok = Token.r ~reader ~round in
  let entries = ref [] in
  Array.iteri
    (fun srv seq ->
      let rec prefix acc = function
        | [] -> None
        | x :: rest ->
          if Token.equal x tok then Some (List.rev acc) else prefix (x :: acc) rest
      in
      match prefix [] seq with
      | None -> ()
      | Some p -> entries := { server = srv; prefix = p } :: !entries)
    t.arrivals;
  List.sort (fun a b -> compare a.server b.server) !entries

let view t ~reader =
  {
    reader;
    round1 = round_view t ~reader ~round:1;
    round2 = round_view t ~reader ~round:2;
  }

let entry_equal a b =
  a.server = b.server && List.equal Token.equal a.prefix b.prefix

let view_equal a b =
  a.reader = b.reader
  && List.equal entry_equal a.round1 b.round1
  && List.equal entry_equal a.round2 b.round2

let digits_of_prefix prefix = List.filter_map Token.digit prefix

let pp ppf t =
  Format.fprintf ppf "@[<v2>%s:@," t.label;
  Array.iteri
    (fun srv seq ->
      Format.fprintf ppf "s%d: %a@," srv
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           Token.pp)
        seq)
    t.arrivals;
  Format.fprintf ppf "@]"

let pp_view ppf v =
  let pp_entries ppf entries =
    List.iter
      (fun e ->
        Format.fprintf ppf "s%d:[%a] " e.server
          (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
             Token.pp)
          e.prefix)
      entries
  in
  Format.fprintf ppf "@[<v2>reader %d view:@,round1: %around2: %a@]" v.reader
    pp_entries v.round1 pp_entries v.round2
