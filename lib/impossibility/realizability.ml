type report = {
  tokens_unique : bool;
  round_order_ok : bool;
  writes_first : bool;
  skip_budget_ok : bool;
  max_skips : int;
}

let check ~t exec =
  let s = Exec_model.servers exec in
  let all_tokens = Hashtbl.create 16 in
  let presence : (Token.t, int) Hashtbl.t = Hashtbl.create 16 in
  let tokens_unique = ref true in
  let round_order_ok = ref true in
  let writes_first = ref true in
  for srv = 0 to s - 1 do
    let seq = Exec_model.arrivals exec srv in
    let seen = Hashtbl.create 8 in
    let read_seen = ref false in
    List.iter
      (fun tok ->
        Hashtbl.replace all_tokens tok ();
        if Hashtbl.mem seen tok then tokens_unique := false;
        Hashtbl.replace seen tok ();
        Hashtbl.replace presence tok
          (1 + Option.value ~default:0 (Hashtbl.find_opt presence tok));
        (match tok with
        | Token.W _ -> if !read_seen then writes_first := false
        | Token.R _ -> read_seen := true);
        match tok with
        | Token.R { reader; round } when round >= 2 ->
          let prev = Token.r ~reader ~round:(round - 1) in
          if
            List.exists (Token.equal prev) seq
            && not (Hashtbl.mem seen prev)
          then round_order_ok := false
        | Token.W _ | Token.R _ -> ())
      seq
  done;
  let max_skips =
    Hashtbl.fold
      (fun tok () acc ->
        let present = Option.value ~default:0 (Hashtbl.find_opt presence tok) in
        max acc (s - present))
      all_tokens 0
  in
  {
    tokens_unique = !tokens_unique;
    round_order_ok = !round_order_ok;
    writes_first = !writes_first;
    skip_budget_ok = max_skips <= t;
    max_skips;
  }

let realizable ~t exec =
  let r = check ~t exec in
  r.tokens_unique && r.round_order_ok && r.writes_first && r.skip_budget_ok
