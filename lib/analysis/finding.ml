type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let of_loc ~rule ~severity ~file (loc : Location.t) message =
  let start = loc.Location.loc_start in
  {
    rule;
    severity;
    file;
    line = start.Lexing.pos_lnum;
    col = start.Lexing.pos_cnum - start.Lexing.pos_bol + 1;
    message;
  }

let key f = (f.rule, f.file, f.line, f.col)

let compare a b =
  compare
    (a.file, a.line, a.col, a.rule, a.message)
    (b.file, b.line, b.col, b.rule, b.message)

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

(* One finding object per line — the machine-readable form consumed by
   annotation tooling.  Keys are stable; strings are JSON-escaped. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
    (json_escape f.rule)
    (severity_to_string f.severity)
    (json_escape f.file) f.line f.col (json_escape f.message)
