type t = { rule : string; file : string; line : int; message : string }

let of_loc ~rule ~file (loc : Location.t) message =
  { rule; file; line = loc.Location.loc_start.Lexing.pos_lnum; message }

let key f = (f.rule, f.file, f.line)

let compare a b =
  compare
    (a.file, a.line, a.rule, a.message)
    (b.file, b.line, b.rule, b.message)

let to_string f = Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.message
