(** The mwlint engine: run every rule over a set of parsed sources and
    produce the sorted, deduplicated finding list. *)

val analyze : Source.t list -> Finding.t list
(** Single-file rules on each source, then the cross-file LOCK-ORDER
    pass over the union of function summaries.  Findings come back
    sorted by (file, line, rule) with exact duplicates removed. *)

val analyze_string : path:string -> string -> Finding.t list
(** [analyze] on one inline snippet — the test-fixture entry point.
    [path] participates in the path-scoped allowlists exactly as a real
    file's path would. *)
