(** The mwlint engine: run every rule over a set of parsed sources and
    produce the sorted, deduplicated finding list plus the inferred
    lock-ownership map. *)

type result = { findings : Finding.t list; lock_map : string }

val run : Source.t list -> result
(** Decl pre-pass over all sources, single-file rules on each, then the
    cross-file passes: LOCK-ORDER over the union of function summaries,
    escape analysis, and lock-ownership inference (SHARED-ACCESS /
    ATOMIC-DISCIPLINE).  Findings come back sorted by (file, line, col,
    rule) with exact duplicates removed; [lock_map] is the reviewable
    lock -> guarded-cells artifact for [--lock-map]. *)

val analyze : Source.t list -> Finding.t list
(** [run] without the lock map. *)

val analyze_string : path:string -> string -> Finding.t list
(** [analyze] on one inline snippet — the test-fixture entry point.
    [path] participates in the path-scoped allowlists exactly as a real
    file's path would. *)
