(** The mwlint rule set: eight repo-specific concurrency and
    I/O-discipline rules over Parsetrees.  See [RULES.md] for the
    catalog with rationale; the allowlists live here so they are
    code-reviewed along with the rules they scope.

    The walker records, per function: direct lock acquisitions,
    lock-nesting edges, resolved calls with the held set at the call
    site, and every read/write of a tracked mutable cell with the
    lexical held set at the access.  [Escape] and [Lockmap] consume
    these summaries for the shared-state passes, so the summary types
    are exposed here. *)

(** {1 Rule names} *)

val lock_order : string
val blocking_under_lock : string
val monotonic_time : string
val raw_io : string
val condition_wait_loop : string
val catch_all_exn : string
val shared_access : string
val atomic_discipline : string

val all_rules : (string * Finding.severity * string) list
(** [(name, severity, one-line description)] for every shipped rule. *)

val severity_of : string -> Finding.severity

(** {1 Configuration} *)

val spawn_calls : string list
(** Calls whose closure/function arguments run on another thread. *)

val lock_free_allow : (string * string) list
(** [(cell, justification)]: shared cells deliberately accessed without
    a lock.  A pattern is an exact cell name or a module prefix ending
    in [".*"].  Every entry must carry a justification; the
    [--lock-map] artifact prints the matched entries. *)

val allow_justification : string -> string option
(** The justification for a cell, if any allowlist pattern matches. *)

(** {1 Analysis state}

    Per-file walks accumulate findings and per-function summaries into
    a shared state; the cross-file passes (LOCK-ORDER, escape, lock
    inference) run once all files are in. *)

type site = { s_file : string; s_line : int; s_col : int }

type access = {
  a_cell : string;
  a_write : bool;
  a_bool_lit : bool;
  a_site : site;
  a_held : string list;
}

type fsum = {
  f_mod : string;
  mutable f_acquires : string list;
  mutable f_edges : (string * string * site) list;
  mutable f_calls : (string * string list * site) list;
  mutable f_accesses : access list;
}

type decl = { d_mod : string; d_bool : bool; d_tracked : bool }

type cellinfo = {
  c_bool : bool;
  c_creator : string option;
  c_toplevel : bool;  (** module-global binding vs function-local *)
}

type state = {
  funcs : (string, fsum) Hashtbl.t;
  decls : (string, decl) Hashtbl.t;
  cells : (string, cellinfo) Hashtbl.t;
  lookups : (string * string, string option) Hashtbl.t;
      (** callee-resolution cache for [Escape.lookup] *)
  mutable findings : Finding.t list;
}

val create_state : unit -> state

val collect_decls : state -> Source.t -> unit
(** Decl pre-pass: record every mutable or container-typed record
    label with its declaring module.  Must run over ALL sources before
    any [analyze_file] call so cross-module field accesses resolve
    independently of file order. *)

val analyze_file : state -> Source.t -> unit
(** Run the single-file rules on one source and record its function
    summaries.  Findings accumulate in the state. *)

val lock_order_findings : state -> Finding.t list
(** Build the inter-module lock-acquisition graph from every summary
    recorded so far (lexical nesting plus held-set x transitive
    acquisitions at call sites) and report each edge participating in a
    cycle, including self-edges (stdlib mutexes are not reentrant). *)

val findings : state -> Finding.t list
(** The single-file findings recorded so far (unsorted). *)

val path_matches : suffix:string -> string -> bool
(** Whole-component suffix match used by every path-scoped allowlist. *)
