(** The mwlint rule set: six repo-specific concurrency and
    I/O-discipline rules over Parsetrees.  See [RULES.md] for the
    catalog with rationale; the allowlists live here so they are
    code-reviewed along with the rules they scope. *)

(** {1 Rule names} *)

val lock_order : string
val blocking_under_lock : string
val monotonic_time : string
val raw_io : string
val condition_wait_loop : string
val catch_all_exn : string

val all_rules : (string * string) list
(** [(name, one-line description)] for every shipped rule. *)

(** {1 Analysis state}

    Per-file walks accumulate findings and per-function lock/call
    summaries into a shared state; the cross-file LOCK-ORDER pass runs
    once all files are in. *)

type state

val create_state : unit -> state

val analyze_file : state -> Source.t -> unit
(** Run the single-file rules on one source and record its function
    summaries.  Findings accumulate in the state. *)

val lock_order_findings : state -> Finding.t list
(** Build the inter-module lock-acquisition graph from every summary
    recorded so far (lexical nesting plus held-set x transitive
    acquisitions at call sites) and report each edge participating in a
    cycle, including self-edges (stdlib mutexes are not reentrant). *)

val findings : state -> Finding.t list
(** The single-file findings recorded so far (unsorted). *)

val path_matches : suffix:string -> string -> bool
(** Whole-component suffix match used by every path-scoped allowlist. *)
