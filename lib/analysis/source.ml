type t = { path : string; ast : Parsetree.structure }

exception Parse_error of string

let parse_string ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> { path; ast }
  | exception exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
      | Some `Already_displayed | None ->
        Printf.sprintf "%s: unparseable: %s" path (Printexc.to_string exn)
    in
    raise (Parse_error msg)

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let src = really_input_string ic (in_channel_length ic) in
      parse_string ~path src)

let skip_dir entry =
  entry = "_build" || (String.length entry > 0 && entry.[0] = '.')

let rec walk acc path =
  if Sys.file_exists path then
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry ->
          if skip_dir entry then acc else walk acc (Filename.concat path entry))
        acc (Sys.readdir path)
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  else acc

let find_ml_files ~roots =
  List.sort_uniq String.compare (List.fold_left walk [] roots)
