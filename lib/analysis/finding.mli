(** Lint findings, keyed by (rule, file, line, col).

    The column is part of the identity: two distinct findings of the
    same rule on the same line (e.g. two shared fields accessed in one
    expression) must not collapse into one baseline key. *)

type severity = Error | Warning

val severity_to_string : severity -> string

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;  (** 1-indexed column of the finding's anchor *)
  message : string;
}

val of_loc :
  rule:string -> severity:severity -> file:string -> Location.t -> string -> t
(** Anchor a finding at the start line/column of an AST location. *)

val key : t -> string * string * int * int
(** The (rule, file, line, col) identity used for baseline matching. *)

val compare : t -> t -> int
(** Order by file, then line, then column, then rule — the report
    order. *)

val to_string : t -> string
(** [file:line:col: \[RULE\] message] — the one-line report form. *)

val to_json : t -> string
(** One JSON object — [{"rule":…,"severity":…,"file":…,"line":…,
    "col":…,"message":…}] — for [--format json] and annotation
    tooling. *)
