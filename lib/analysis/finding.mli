(** Lint findings, keyed by (rule, file, line). *)

type t = { rule : string; file : string; line : int; message : string }

val of_loc : rule:string -> file:string -> Location.t -> string -> t
(** Anchor a finding at the start line of an AST location. *)

val key : t -> string * string * int
(** The (rule, file, line) identity used for baseline matching. *)

val compare : t -> t -> int
(** Order by file, then line, then rule — the report order. *)

val to_string : t -> string
(** [file:line: \[RULE\] message] — the one-line report form. *)
