(** Loading repo sources into Parsetrees for the lint engine.

    The engine works on plain [Parsetree.structure]s — no typing pass —
    so any file the compiler can parse can be linted, including files
    that currently fail to type-check. *)

type t = {
  path : string;  (** as given to the loader; findings carry it verbatim *)
  ast : Parsetree.structure;
}

exception Parse_error of string
(** Raised with a printable, located message when a source does not
    parse. *)

val parse_string : path:string -> string -> t
(** Parse an inline source snippet, attributing locations to [path].
    Used by the test fixtures; [path] also drives the path-scoped
    rules (allowlists match on it). *)

val parse_file : string -> t

val find_ml_files : roots:string list -> string list
(** All [.ml] files under the given roots (a root may itself be a
    file), sorted; [_build], [.git] and other dot-directories are
    skipped. *)
