(** Lock-ownership inference over thread-shared cells.

    For each shared cell, the set of locks held at every access site
    (lexical held sets widened by an optimistic interprocedural
    held-at-entry fixpoint) elects an owner by majority co-occurrence.
    Fully covered cells land in the [--lock-map] artifact; partially
    covered cells yield SHARED-ACCESS findings at each uncovered site;
    uncovered bool signal flags yield ATOMIC-DISCIPLINE findings;
    cells on [Rules.lock_free_allow] are reported in the artifact's
    lock-free section instead of the findings. *)

val infer : Rules.state -> Finding.t list * string
(** [(findings, lock_map_text)].  Deterministic under any file order:
    cells, sites and the fixpoint are all order-independent. *)
