(** The checked-in suppression file.

    One entry per line:

    {v RULE path/to/file.ml:LINE:COL justification text... v}

    ['#'] starts a comment; blank lines are ignored.  Every entry must
    carry a justification — the parser rejects bare suppressions.  An
    entry suppresses exactly one finding keyed by (rule, file, line,
    col), so a suppressed site that drifts shows up again on the next
    run — by design: suppressions are for deliberate, reviewed
    exceptions, not for making the tool quiet.

    The pre-column format [RULE file:LINE why] is still accepted for
    one release: such an entry matches any column on its line and is
    reported with a deprecation note, so existing baselines keep
    working while they are migrated. *)

type entry = {
  rule : string;
  file : string;
  line : int;
  col : int option;  (** [None]: deprecated old-format entry *)
  justification : string;
}

val load : string -> (entry list, string) result
(** Parse a baseline file; a missing file is an empty baseline.
    [Error msg] on a malformed or justification-less line. *)

val apply :
  entries:entry list ->
  Finding.t list ->
  Finding.t list * entry list
(** Partition findings against the baseline: [(new_findings,
    stale_entries)] — findings no entry matches, and entries matching
    no finding (candidates for deletion). *)
