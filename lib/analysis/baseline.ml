type entry = {
  rule : string;
  file : string;
  line : int;
  col : int option;
      (* None: old-format entry (no column) — matches any column on the
         line.  Deprecated; kept for one release so existing baselines
         keep working while they are migrated. *)
  justification : string;
}

let parse_line lineno raw =
  let s = String.trim raw in
  if s = "" || s.[0] = '#' then Ok None
  else
    match String.index_opt s ' ' with
    | None -> Error (Printf.sprintf "line %d: want `RULE file:line:col why`" lineno)
    | Some i -> (
      let rule = String.sub s 0 i in
      let rest = String.trim (String.sub s i (String.length s - i)) in
      let locspec, justification =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some j ->
          ( String.sub rest 0 j,
            String.trim (String.sub rest j (String.length rest - j)) )
      in
      if justification = "" then
        Error
          (Printf.sprintf
             "line %d: suppression of %s has no justification" lineno rule)
      else
        (* [file:line:col] (current) or [file:line] (deprecated): split
           the last one or two ':'-separated integer components off the
           path.  Paths never end in `:digits`, so the parse is
           unambiguous. *)
        let int_suffix spec =
          match String.rindex_opt spec ':' with
          | None -> None
          | Some k -> (
            match
              int_of_string_opt
                (String.sub spec (k + 1) (String.length spec - k - 1))
            with
            | Some n when n >= 0 -> Some (String.sub spec 0 k, n)
            | Some _ | None -> None)
        in
        match int_suffix locspec with
        | None ->
          Error
            (Printf.sprintf "line %d: want file:line:col, got %S" lineno
               locspec)
        | Some (prefix, last) -> (
          match int_suffix prefix with
          | Some (file, line) ->
            Ok (Some { rule; file; line; col = Some last; justification })
          | None ->
            Ok (Some { rule; file = prefix; line = last; col = None; justification })))

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | raw -> (
            match parse_line lineno raw with
            | Ok None -> go (lineno + 1) acc
            | Ok (Some e) -> go (lineno + 1) (e :: acc)
            | Error _ as e -> e)
        in
        go 1 [])
  end

let matches entry (f : Finding.t) =
  entry.rule = f.Finding.rule && entry.line = f.Finding.line
  && (match entry.col with None -> true | Some c -> c = f.Finding.col)
  && (entry.file = f.Finding.file
     || Rules.path_matches ~suffix:entry.file f.Finding.file)

let apply ~entries findings =
  let used = Hashtbl.create 8 in
  let fresh =
    List.filter
      (fun f ->
        match List.find_opt (fun e -> matches e f) entries with
        | Some e ->
          Hashtbl.replace used e ();
          false
        | None -> true)
      findings
  in
  let stale = List.filter (fun e -> not (Hashtbl.mem used e)) entries in
  (fresh, stale)
