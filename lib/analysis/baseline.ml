type entry = {
  rule : string;
  file : string;
  line : int;
  justification : string;
}

let parse_line lineno raw =
  let s = String.trim raw in
  if s = "" || s.[0] = '#' then Ok None
  else
    match String.index_opt s ' ' with
    | None -> Error (Printf.sprintf "line %d: want `RULE file:line why`" lineno)
    | Some i -> (
      let rule = String.sub s 0 i in
      let rest = String.trim (String.sub s i (String.length s - i)) in
      let locspec, justification =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some j ->
          ( String.sub rest 0 j,
            String.trim (String.sub rest j (String.length rest - j)) )
      in
      if justification = "" then
        Error
          (Printf.sprintf
             "line %d: suppression of %s has no justification" lineno rule)
      else
        match String.rindex_opt locspec ':' with
        | None ->
          Error (Printf.sprintf "line %d: want file:line, got %S" lineno locspec)
        | Some k -> (
          let file = String.sub locspec 0 k in
          match
            int_of_string_opt
              (String.sub locspec (k + 1) (String.length locspec - k - 1))
          with
          | None ->
            Error (Printf.sprintf "line %d: bad line number in %S" lineno locspec)
          | Some line -> Ok (Some { rule; file; line; justification })))

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | raw -> (
            match parse_line lineno raw with
            | Ok None -> go (lineno + 1) acc
            | Ok (Some e) -> go (lineno + 1) (e :: acc)
            | Error _ as e -> e)
        in
        go 1 [])
  end

let matches entry (f : Finding.t) =
  entry.rule = f.Finding.rule && entry.line = f.Finding.line
  && (entry.file = f.Finding.file
     || Rules.path_matches ~suffix:entry.file f.Finding.file)

let apply ~entries findings =
  let used = Hashtbl.create 8 in
  let fresh =
    List.filter
      (fun f ->
        match List.find_opt (fun e -> matches e f) entries with
        | Some e ->
          Hashtbl.replace used e ();
          false
        | None -> true)
      findings
  in
  let stale = List.filter (fun e -> not (Hashtbl.mem used e)) entries in
  (fresh, stale)
