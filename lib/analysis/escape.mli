(** Escape/capture analysis: marks mutable cells as thread-shared when
    their accesses span at least two thread origins.

    An origin is one spawn site ([<spawn:LINE>] closure frame, with
    everything it transitively calls) or the main thread (rooted at
    every summary no spawn frame reaches).  A cell is shared when its
    accesses — outside the creating summary of a ref/array/table
    binding — can execute under two distinct origins: a race needs two
    threads.  Threads spawned at the same syntactic site count as one
    origin (the benign per-thread-slot pattern), a documented
    precision tradeoff. *)

val is_spawn_key : string -> bool
(** Is this summary key a synthetic spawned-closure frame? *)

val lookup : Rules.state -> f_mod:string -> string -> string option
(** Resolve a recorded callee to a summary key, trying the caller's
    enclosing module prefixes for nested-module targets
    ([Outq.consume] inside [Server] finds [Server.Outq.consume]). *)

val thread_origins : Rules.state -> (string, string list) Hashtbl.t
(** Summary key -> distinct thread origins (spawn-site keys and/or
    ["<main>"]) that can execute it. *)

val access_counts : Rules.state -> string -> Rules.access -> bool
(** Does this access (in the summary with the given key) count as a
    shared-access site — i.e. is it outside the cell's creator? *)

val shared_cells : Rules.state -> (string, unit) Hashtbl.t
(** Set of thread-shared cell identifiers. *)
