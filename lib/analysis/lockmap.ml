(* Lock-ownership inference over the shared cells found by [Escape].

   For every shared cell, collect the set of locks held at each access
   site.  "Held" is the lexical held set recorded by the walker widened
   by an interprocedural *held-at-entry* fixpoint:

     H(f) = U over call sites (f called from g with lexical set L)
            of (L U H(g))

   The union is optimistic on purpose: if ANY caller holds the lock we
   credit the callee's accesses with it.  An instance-blind lexical
   analysis cannot prove the bare caller runs concurrently (the repo's
   simulators call handler functions single-threaded that the server
   calls under its replica lock), so pessimism here would drown the
   report in false positives.  The spawn frames have no callers, so
   spawned closures correctly start with nothing held.

   Ownership is majority co-occurrence: the lock held at the most
   sites owns the cell.  Full coverage lands in the --lock-map
   artifact; partial coverage is a SHARED-ACCESS finding at each
   uncovered site (including the two-locks-in-two-modules case — the
   sites under the minority lock are "covered by the wrong lock",
   which does not exclude the majority sites); zero coverage is one
   finding per cell — ATOMIC-DISCIPLINE if the cell is a bool signal
   flag, SHARED-ACCESS otherwise. *)

module SS = Set.Make (String)

(* Held-at-entry fixpoint.  Deterministic under any iteration order:
   pure union converges to the least fixpoint of a monotone map. *)
let entry_held (st : Rules.state) =
  let h = Hashtbl.create 64 in
  Hashtbl.iter (fun key _ -> Hashtbl.replace h key SS.empty) st.funcs;
  let get key = Option.value ~default:SS.empty (Hashtbl.find_opt h key) in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun caller (s : Rules.fsum) ->
        let hc = get caller in
        List.iter
          (fun (callee, held, _) ->
            match Escape.lookup st ~f_mod:s.Rules.f_mod callee with
            | None -> ()
            | Some k ->
              let cur = get k in
              let next = SS.union cur (SS.union (SS.of_list held) hc) in
              if not (SS.equal next cur) then begin
                Hashtbl.replace h k next;
                changed := true
              end)
          s.Rules.f_calls)
      st.funcs
  done;
  get

type csite = { cs_access : Rules.access; cs_held : SS.t }

let site_order a b =
  let sa = a.cs_access.Rules.a_site and sb = b.cs_access.Rules.a_site in
  compare
    (sa.Rules.s_file, sa.Rules.s_line, sa.Rules.s_col)
    (sb.Rules.s_file, sb.Rules.s_line, sb.Rules.s_col)

(* All counting sites of every shared cell, with effective held sets. *)
let collect_sites (st : Rules.state) shared =
  let h = entry_held st in
  let tbl = Hashtbl.create 32 in
  Hashtbl.iter
    (fun key (s : Rules.fsum) ->
      List.iter
        (fun (a : Rules.access) ->
          if Hashtbl.mem shared a.Rules.a_cell && Escape.access_counts st key a
          then begin
            let eff = SS.union (SS.of_list a.Rules.a_held) (h key) in
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt tbl a.Rules.a_cell)
            in
            Hashtbl.replace tbl a.Rules.a_cell
              ({ cs_access = a; cs_held = eff } :: prev)
          end)
        s.Rules.f_accesses)
    st.funcs;
  Hashtbl.iter
    (fun cell sites -> Hashtbl.replace tbl cell (List.sort site_order sites))
    tbl;
  tbl

let finding ~rule (a : Rules.access) msg =
  let s = a.Rules.a_site in
  {
    Finding.rule;
    severity = Rules.severity_of rule;
    file = s.Rules.s_file;
    line = s.Rules.s_line;
    col = s.Rules.s_col;
    message = msg;
  }

(* The inferred owner: the lock held at the most sites; ties break to
   the lexicographically smallest name so the verdict is stable. *)
let infer_owner sites =
  let locks =
    List.fold_left (fun acc cs -> SS.union acc cs.cs_held) SS.empty sites
  in
  SS.fold
    (fun lock best ->
      let n =
        List.length (List.filter (fun cs -> SS.mem lock cs.cs_held) sites)
      in
      match best with
      | Some (_, bn) when bn >= n -> best
      | _ -> Some (lock, n))
    locks None

type verdict =
  | Guarded of string * int  (* owner, site count *)
  | LockFree of string  (* allowlist justification *)
  | Findings of Finding.t list

let judge cell (info : Rules.cellinfo) sites =
  match Rules.allow_justification cell with
  | Some why -> LockFree why
  | None -> (
    let n = List.length sites in
    match infer_owner sites with
    | None | Some (_, 0) ->
      (* No lock anywhere near the cell. *)
      if info.Rules.c_bool then
        let anchor =
          match
            List.find_opt (fun cs -> cs.cs_access.Rules.a_write) sites
          with
          | Some cs -> cs.cs_access
          | None -> (List.hd sites).cs_access
        in
        Findings
          [
            finding ~rule:Rules.atomic_discipline anchor
              (Printf.sprintf
                 "plain bool flag %s is accessed from multiple threads (%d \
                  sites, no lock): plain loads/stores have no visibility \
                  guarantee — make it Atomic.t (Atomic.get / Atomic.set)"
                 cell n);
          ]
      else
        Findings
          [
            finding ~rule:Rules.shared_access (List.hd sites).cs_access
              (Printf.sprintf
                 "thread-shared mutable cell %s is accessed at %d sites \
                  with no lock ever held: guard it with one mutex, make it \
                  Atomic.t, or add a justified lock_free_allow entry"
                 cell n);
          ]
    | Some (owner, covered) ->
      if covered = n then Guarded (owner, n)
      else
        Findings
          (List.filter_map
             (fun cs ->
               if SS.mem owner cs.cs_held then None
               else if SS.is_empty cs.cs_held then
                 Some
                   (finding ~rule:Rules.shared_access cs.cs_access
                      (Printf.sprintf
                         "%s is guarded by %s at %d of %d sites, bare here: \
                          take %s around this access (or justify the cell \
                          as lock-free)"
                         cell owner covered n owner))
               else
                 Some
                   (finding ~rule:Rules.shared_access cs.cs_access
                      (Printf.sprintf
                         "%s is guarded by %s at %d of %d sites, but this \
                          site holds {%s}: two different locks do not \
                          exclude each other — pick one owner"
                         cell owner covered n
                         (String.concat ", " (SS.elements cs.cs_held)))))
             sites))

let render_map ~guarded ~lock_free ~flagged ~unshared =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# mwlint lock map: inferred lock -> guarded cells\n";
  Buffer.add_string b
    "# a cell is listed when every thread-shared access site holds the \
     lock\n";
  let by_lock = Hashtbl.create 16 in
  List.iter
    (fun (owner, cell, n) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_lock owner) in
      Hashtbl.replace by_lock owner ((cell, n) :: prev))
    guarded;
  let locks = List.sort_uniq compare (List.map (fun (o, _, _) -> o) guarded) in
  List.iter
    (fun lock ->
      Buffer.add_string b (Printf.sprintf "\n%s:\n" lock);
      List.iter
        (fun (cell, n) ->
          Buffer.add_string b (Printf.sprintf "  %s (%d sites)\n" cell n))
        (List.sort compare (Hashtbl.find_all by_lock lock |> List.concat)))
    locks;
  if lock_free <> [] then begin
    Buffer.add_string b "\n# lock-free (allowlisted, justified)\n";
    List.iter
      (fun (cell, why) ->
        Buffer.add_string b (Printf.sprintf "%s: %s\n" cell why))
      (List.sort compare lock_free)
  end;
  Buffer.add_string b
    (Printf.sprintf "\n# shared cells with findings: %d\n" flagged);
  Buffer.add_string b
    (Printf.sprintf "# tracked cells not thread-shared: %d\n" unshared);
  Buffer.contents b

let infer (st : Rules.state) =
  let shared = Escape.shared_cells st in
  let sites_tbl = collect_sites st shared in
  let cells =
    List.sort compare
      (Hashtbl.fold (fun cell _ acc -> cell :: acc) shared [])
  in
  let guarded = ref [] and lock_free = ref [] and findings = ref [] in
  let flagged = ref 0 in
  List.iter
    (fun cell ->
      match Hashtbl.find_opt sites_tbl cell with
      | None | Some [] -> ()
      | Some sites -> (
        let info = Hashtbl.find st.cells cell in
        match judge cell info sites with
        | Guarded (owner, n) -> guarded := (owner, cell, n) :: !guarded
        | LockFree why -> lock_free := (cell, why) :: !lock_free
        | Findings fs ->
          incr flagged;
          findings := fs @ !findings))
    cells;
  let unshared =
    Hashtbl.fold
      (fun cell _ acc -> if Hashtbl.mem shared cell then acc else acc + 1)
      st.cells 0
  in
  let map =
    render_map ~guarded:(List.rev !guarded) ~lock_free:!lock_free
      ~flagged:!flagged ~unshared
  in
  (List.rev !findings, map)
