let analyze sources =
  let st = Rules.create_state () in
  List.iter (Rules.analyze_file st) sources;
  let all = Rules.lock_order_findings st @ Rules.findings st in
  List.sort_uniq Finding.compare all

let analyze_string ~path src = analyze [ Source.parse_string ~path src ]
