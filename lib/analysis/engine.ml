type result = { findings : Finding.t list; lock_map : string }

let run sources =
  let st = Rules.create_state () in
  (* Decl pre-pass over ALL sources first: cross-module field accesses
     must resolve to their declaring module whatever the file order. *)
  List.iter (Rules.collect_decls st) sources;
  List.iter (Rules.analyze_file st) sources;
  let shared, lock_map = Lockmap.infer st in
  let all = Rules.lock_order_findings st @ Rules.findings st @ shared in
  { findings = List.sort_uniq Finding.compare all; lock_map }

let analyze sources = (run sources).findings

let analyze_string ~path src = analyze [ Source.parse_string ~path src ]
