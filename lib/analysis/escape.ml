(* Escape/capture analysis: which mutable cells are thread-shared.

   The walker records every closure passed to Thread.create /
   Domain.spawn / Pool entry points under a synthetic [<spawn:LINE>]
   summary, and bare function arguments to those calls as calls from
   that summary.  Each spawn SITE is a thread origin; the main thread
   is one more origin, rooted at every summary no spawn frame can
   reach.

   A cell is thread-shared when its accesses span at least TWO
   origins: a race needs two threads.  One origin is not enough —
   a cell touched only by the closure spawned at one site (a worker's
   private state, a per-thread slot array where thread i owns index i)
   has no second thread to race with that the analysis can name.  The
   cost is deliberate: N threads spawned at the same syntactic site
   count as one origin, so same-site sibling races are out of scope —
   that is the per-thread-slot pattern the repo uses everywhere, and
   flagging it would drown the report (the pre-refinement run produced
   171 findings, nearly all of them exactly this shape).

   Accesses confined to the creating summary of a ref/array/table
   binding never count at all: initialization before publication and
   post-join reads are single-threaded by construction. *)

(* substring search without a regex dependency *)
let find_sub ?(from = 0) hay pat =
  let n = String.length hay and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub hay i m = pat then Some i
    else go (i + 1)
  in
  go from

let spawn_tag = "<spawn:"

let is_spawn_key key = find_sub key spawn_tag <> None

(* The thread origin of a spawn-frame-derived key: the prefix ending at
   the LAST spawn tag.  A local function defined inside a spawned
   closure ([A.f.<spawn:10>.echo]) runs on the thread spawned at that
   site, not on a thread of its own; a spawn inside a spawn
   ([A.f.<spawn:10>.<spawn:20>]) is a genuinely new thread. *)
let origin_of_key key =
  let rec last_tag from acc =
    match find_sub ~from key spawn_tag with
    | None -> acc
    | Some i -> last_tag (i + 1) (Some i)
  in
  match last_tag 0 None with
  | None -> None
  | Some i -> (
    (* extend to the closing '>' of the tag *)
    match String.index_from_opt key i '>' with
    | Some j -> Some (String.sub key 0 (j + 1))
    | None -> Some key)

(* Resolve a recorded callee name to a summary key.  [resolve] in the
   walker already qualifies unqualified names with the caller's module,
   so the residual cases are qualified cross-module calls where the
   target module is nested: [Outq.consume] recorded inside [Server]
   must find the [Server.Outq.consume] summary.  Try the name as-is,
   then prefixed with successively shorter prefixes of the caller's
   module path. *)
let lookup (st : Rules.state) ~f_mod callee =
  match Hashtbl.find_opt st.lookups (f_mod, callee) with
  | Some r -> r
  | None ->
    let r =
      if Hashtbl.mem st.funcs callee then Some callee
      else begin
        let parts = String.split_on_char '.' f_mod in
        let rec try_prefix rev_parts =
          match rev_parts with
          | [] ->
            (* Cross-library call written without the wrapper module
               ([Keyspace.apply] from lib/transport must find
               [Registers.Keyspace.apply]): a dotted callee may match
               a key by whole-component suffix — but only a UNIQUE
               match counts.  [Engine.run] matches both the simulation
               engine and the lint engine; guessing wires the caller
               into an unrelated library, so an ambiguous edge is
               dropped instead.  Unqualified names are excluded
               outright or every [run] in the tree would alias. *)
            if String.contains callee '.' then begin
              let suffix = "." ^ callee in
              let matches =
                Hashtbl.fold
                  (fun k _ acc ->
                    if String.ends_with ~suffix k then k :: acc else acc)
                  st.funcs []
              in
              match matches with [ k ] -> Some k | _ -> None
            end
            else None
          | _ ->
            let prefix = String.concat "." (List.rev rev_parts) in
            let k = prefix ^ "." ^ callee in
            if Hashtbl.mem st.funcs k then Some k
            else try_prefix (List.tl rev_parts)
        in
        try_prefix (List.rev parts)
      end
    in
    Hashtbl.replace st.lookups (f_mod, callee) r;
    r

let callees (st : Rules.state) (s : Rules.fsum) =
  List.filter_map
    (fun (callee, _, _) -> lookup st ~f_mod:s.Rules.f_mod callee)
    s.Rules.f_calls

(* Mark everything reachable from [roots] with [origin]. *)
let mark_reachable (st : Rules.state) origins ~origin roots =
  let seen = Hashtbl.create 64 in
  let rec visit key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let prev = Option.value ~default:[] (Hashtbl.find_opt origins key) in
      Hashtbl.replace origins key (origin :: prev);
      match Hashtbl.find_opt st.funcs key with
      | None -> ()
      | Some s -> List.iter visit (callees st s)
    end
  in
  List.iter visit roots

(* origins : summary key -> distinct thread origins that can execute
   it.  Every summary derived from a spawn frame (the frame itself and
   local functions defined inside it) roots the origin of its spawn
   site; the main thread is rooted at every summary no spawn frame
   reaches (anything NOT spawn-reachable runs, if at all, on the
   spawning side). *)
let thread_origins (st : Rules.state) =
  let origins = Hashtbl.create 64 in
  let by_origin = Hashtbl.create 16 in
  Hashtbl.iter
    (fun key _ ->
      match origin_of_key key with
      | None -> ()
      | Some o ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_origin o) in
        Hashtbl.replace by_origin o (key :: prev))
    st.funcs;
  let origin_list =
    List.sort compare (Hashtbl.fold (fun o _ acc -> o :: acc) by_origin [])
  in
  List.iter
    (fun o ->
      mark_reachable st origins ~origin:o
        (List.sort compare (Hashtbl.find by_origin o)))
    origin_list;
  let spawn_reached = Hashtbl.copy origins in
  let main_roots =
    Hashtbl.fold
      (fun key _ acc ->
        if Hashtbl.mem spawn_reached key then acc else key :: acc)
      st.funcs []
  in
  mark_reachable st origins ~origin:"<main>" (List.sort compare main_roots);
  origins

(* An access counts unless it sits in the cell's creating summary. *)
let access_counts (st : Rules.state) key (a : Rules.access) =
  match Hashtbl.find_opt st.cells a.Rules.a_cell with
  | None -> false
  | Some info -> (
    match info.Rules.c_creator with
    | Some creator -> creator <> key
    | None -> true)

module SS = Set.Make (String)

(* A function-local binding is fresh per invocation: two threads both
   CALLING its creator get two distinct cells, not a race.  The only
   way one instance becomes multi-threaded is capture by a closure
   spawned within the creator's lexical scope — so for local binding
   cells, only origins that are spawn sites nested under the creator
   stay distinct; every other origin (the creator's callers, wherever
   they run) collapses into one "outside" origin.  Module-global
   bindings and record fields keep their global origins. *)
let cell_origin (info : Rules.cellinfo) o =
  match info.Rules.c_creator with
  | Some creator
    when (not info.Rules.c_toplevel)
         && not (String.starts_with ~prefix:(creator ^ ".") o) ->
    "<outside>"
  | _ -> o

let shared_cells (st : Rules.state) =
  let origins = thread_origins st in
  let per_cell = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key s ->
      match Hashtbl.find_opt origins key with
      | None | Some [] -> ()
      | Some os ->
        List.iter
          (fun a ->
            if access_counts st key a then begin
              let cell = a.Rules.a_cell in
              match Hashtbl.find_opt st.cells cell with
              | None -> ()
              | Some info ->
                let os = SS.of_list (List.map (cell_origin info) os) in
                let prev_os, prev_w =
                  Option.value ~default:(SS.empty, false)
                    (Hashtbl.find_opt per_cell cell)
                in
                Hashtbl.replace per_cell cell
                  (SS.union prev_os os, prev_w || a.Rules.a_write)
            end)
          s.Rules.f_accesses)
    st.funcs;
  let shared = Hashtbl.create 32 in
  Hashtbl.iter
    (fun cell (os, has_write) ->
      (* A race needs a writer: arrays and tables built once and read
         from every thread ([Mux.conns], shard tables) are immutable
         in every execution that matters here. *)
      if has_write && SS.cardinal os >= 2 then Hashtbl.replace shared cell ())
    per_cell;
  shared
