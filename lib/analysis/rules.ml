(* The rule walker: one recursive pass per file that threads a *lexical
   held-locks* state through every expression, emits the local findings
   (BLOCKING-UNDER-LOCK, MONOTONIC-TIME, RAW-IO, CONDITION-WAIT-LOOP,
   CATCH-ALL-EXN) on the way, and records per-function summaries
   (direct lock acquisitions, lock-nesting edges, resolved calls with
   the held set at the call site) from which the engine later builds
   the inter-module LOCK-ORDER graph.

   The held-lock tracking is deliberately lexical and conservative:

   - [Mutex.protect l (fun () -> e)] holds [l] over [e];
   - [Mutex.lock l; ...; Mutex.unlock l] holds [l] over the sequence
     between the two calls (threaded through [if]/[match] scrutinees,
     sequences and loops; branches are assumed lock-balanced);
   - anonymous closures passed as arguments are assumed to run at the
     call site (true for the [List.iter (fun ...)]-style iteration the
     repo uses), so they inherit the held set;
   - [let f = fun ... ->] bindings are *function definitions*: their
     bodies are walked with an empty held set and get their own
     summary, and calls to them propagate their transitive lock
     acquisitions into the caller's context;
   - closures passed to [Thread.create] / [Domain.spawn] start on a
     fresh stack: they are walked with an empty held set under an
     anonymous summary that no call site can reach, so their locks
     never leak into the spawner's acquisition set (their own nesting
     edges still enter the global lock-order graph). *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Rule catalog                                                        *)
(* ------------------------------------------------------------------ *)

let lock_order = "LOCK-ORDER"

let blocking_under_lock = "BLOCKING-UNDER-LOCK"

let monotonic_time = "MONOTONIC-TIME"

let raw_io = "RAW-IO"

let condition_wait_loop = "CONDITION-WAIT-LOOP"

let catch_all_exn = "CATCH-ALL-EXN"

let all_rules =
  [
    (lock_order, "mutex acquisition order must be acyclic across the repo");
    ( blocking_under_lock,
      "no blocking syscall lexically inside a held-lock region" );
    ( monotonic_time,
      "deadlines and elapsed times use Clock.now, not Unix.gettimeofday" );
    (raw_io, "raw socket reads/writes live only in lib/transport/netio.ml");
    ( condition_wait_loop,
      "Condition.wait only inside a while predicate-recheck loop" );
    ( catch_all_exn,
      "no catch-all exception handler swallowing I/O failures" );
  ]

(* ------------------------------------------------------------------ *)
(* Configuration: call sets and path-scoped allowlists                 *)
(* ------------------------------------------------------------------ *)

(* Whole-component suffix match, so rules behave identically on
   "lib/transport/mux.ml" and "/abs/prefix/lib/transport/mux.ml". *)
let path_matches ~suffix path =
  path = suffix
  || String.length path > String.length suffix
     && String.ends_with ~suffix:("/" ^ suffix) path

let in_files files path =
  List.exists (fun suffix -> path_matches ~suffix path) files

(* MONOTONIC-TIME: the only places allowed to read the wall clock.
   History timestamps are *meant* to be wall time (operators correlate
   them with external logs); everything else — deadlines, backoff
   gates, elapsed-time measurements — must use the monotonic
   [Clock.now]. *)
let wall_clock_files =
  [
    "lib/history/recorder.ml";
    "lib/transport/session.ml";
    "lib/transport/clock.ml" (* defines the gettimeofday fallback *);
  ]

(* RAW-IO: the single EINTR-retrying choke point for socket I/O.  The
   reactor widened the set: readiness waits ([Unix.select]) and accepts
   now count as raw I/O too, because EINTR handling, EAGAIN semantics
   and the FD_SETSIZE=1024 select cliff all live behind Netio's
   non-blocking variants and pollers — a bare select or accept elsewhere
   reintroduces exactly the bugs the choke point exists to contain. *)
let raw_io_files = [ "lib/transport/netio.ml" ]

let raw_io_calls =
  [
    "Unix.read";
    "Unix.write";
    "Unix.single_write";
    "Unix.recv";
    "Unix.send";
    "Unix.select";
    "Unix.accept";
  ]

(* BLOCKING-UNDER-LOCK: calls that can park the thread indefinitely.
   Netio's [*_nb] variants are deliberately absent — they return EAGAIN
   instead of parking, which is the reactor's whole point — while its
   readiness waits are exactly as blocking as the select they wrap. *)
let blocking_calls =
  raw_io_calls
  @ [
      "Unix.sleep";
      "Unix.sleepf";
      "Unix.connect";
      "Netio.read";
      "Netio.write_all";
      "Netio.wait_readable";
      "Netio.Poller.wait";
      "Thread.delay";
      "Thread.join";
    ]

(* (file, enclosing function, callee) triples exempt from
   BLOCKING-UNDER-LOCK.  Empty since the reactor rewrite: the old
   thread-per-connection server wrote replies under a per-connection
   write lock (handler thread vs. fault-plan delayer threads) and
   carried the only two exemptions.  The reactor's flush path is
   non-blocking and lock-free — each shard owns its connections
   outright — so nothing is exempt any more, and a new entry here
   should be treated as a design smell to justify, not a convenience. *)
let blocking_allow : (string * string * string) list = []

(* CATCH-ALL-EXN fires only when the guarded body touches these
   modules: a wildcard around pure code is style, a wildcard around
   I/O swallows link failures (the exact bug class behind the PR-4
   EINTR fix). *)
let io_modules = [ "Unix"; "Netio" ]

(* ------------------------------------------------------------------ *)
(* Summaries shared across files (for LOCK-ORDER)                      *)
(* ------------------------------------------------------------------ *)

type site = { s_file : string; s_line : int }

type fsum = {
  mutable f_acquires : string list;  (* direct lock acquisitions *)
  mutable f_edges : (string * string * site) list;  (* held -> acquired *)
  mutable f_calls : (string * string list * site) list;  (* callee, held *)
}

type state = {
  funcs : (string, fsum) Hashtbl.t;
  mutable findings : Finding.t list;
}

let create_state () = { funcs = Hashtbl.create 64; findings = [] }

(* ------------------------------------------------------------------ *)
(* Small AST helpers                                                   *)
(* ------------------------------------------------------------------ *)

let lid_path lid = String.concat "." (Longident.flatten lid)

(* Normalise [Stdlib.Mutex.lock] and friends to their short form. *)
let strip_stdlib path =
  match String.length path > 7 && String.sub path 0 7 = "Stdlib." with
  | true -> String.sub path 7 (String.length path - 7)
  | false -> path

let head_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (strip_stdlib (lid_path txt))
  | _ -> None

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let rec is_wild p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (q, _) | Ppat_constraint (q, _) -> is_wild q
  | Ppat_or (a, b) -> is_wild a || is_wild b
  | _ -> false

let rec exn_wild p =
  match p.ppat_desc with
  | Ppat_exception q -> is_wild q
  | Ppat_or (a, b) -> exn_wild a || exn_wild b
  | Ppat_constraint (q, _) -> exn_wild q
  | _ -> false

(* Does [e] mention an identifier qualified by one of [mods]? *)
let mentions_module mods e =
  let found = ref false in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | m :: _ :: _ when List.mem m mods -> found := true
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* A handler that re-raises is not swallowing. *)
let reraises e =
  let found = ref false in
  let expr it e =
    (match head_ident e with
    | Some ("raise" | "raise_notrace" | "Printexc.raise_with_backtrace") ->
      found := true
    | _ -> (
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> (
        match strip_stdlib (lid_path txt) with
        | "raise" | "raise_notrace" | "Printexc.raise_with_backtrace" ->
          found := true
        | _ -> ())
      | _ -> ()));
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* The walker                                                          *)
(* ------------------------------------------------------------------ *)

type fctx = {
  st : state;
  file : string;
  mutable modname : string;
  mutable fn_stack : string list;  (* innermost first *)
  mutable locals : (string * string) list;  (* local fn name -> summary key *)
  mutable while_depth : int;
}

let report ctx ~rule loc msg =
  ctx.st.findings <-
    Finding.of_loc ~rule ~file:ctx.file loc msg :: ctx.st.findings

let fn_key ctx =
  match ctx.fn_stack with
  | [] -> ctx.modname ^ ".<top>"
  | fs -> ctx.modname ^ "." ^ String.concat "." (List.rev fs)

let summary ctx =
  let key = fn_key ctx in
  match Hashtbl.find_opt ctx.st.funcs key with
  | Some s -> s
  | None ->
    let s = { f_acquires = []; f_edges = []; f_calls = [] } in
    Hashtbl.add ctx.st.funcs key s;
    s

let site_of ctx loc = { s_file = ctx.file; s_line = line_of loc }

(* Locks are identified by their final field/variable name, qualified
   by the defining module: precise enough to separate [Server.wlock]
   from [Mux.lock], coarse enough that every instance of a
   per-connection lock is one graph node (which is exactly what a
   lock-ORDER discipline is about). *)
let lock_name ctx e =
  let base =
    match e.pexp_desc with
    | Pexp_field (_, { txt; _ }) -> Longident.last txt
    | Pexp_ident { txt; _ } -> Longident.last txt
    | _ -> "<anon>"
  in
  ctx.modname ^ "." ^ base

let record_acquire ctx held name loc =
  let s = summary ctx in
  s.f_acquires <- name :: s.f_acquires;
  List.iter (fun h -> s.f_edges <- (h, name, site_of ctx loc) :: s.f_edges) held

let record_call ctx held callee loc =
  let s = summary ctx in
  s.f_calls <- (callee, held, site_of ctx loc) :: s.f_calls

(* Resolve a call target to a summary key: local function scopes first,
   then a module-level sibling, then (for qualified paths) another
   scanned module's top-level function. *)
let resolve ctx path =
  if String.contains path '.' then path
  else
    match List.assoc_opt path ctx.locals with
    | Some key -> key
    | None -> ctx.modname ^ "." ^ path

let remove_last held name =
  let rec go = function
    | [] -> []
    | h :: tl when h = name -> tl
    | h :: tl -> h :: go tl
  in
  List.rev (go (List.rev held))

let blocking_allowed ctx callee =
  (* The enclosing *named* function: synthetic frames (spawned-closure
     summaries) don't rename the region for allowlisting purposes. *)
  let fn =
    match List.find_opt (fun f -> f = "" || f.[0] <> '<') ctx.fn_stack with
    | Some f -> f
    | None -> "<top>"
  in
  List.exists
    (fun (file, func, call) ->
      path_matches ~suffix:file ctx.file && func = fn && call = callee)
    blocking_allow

let check_ident ctx path loc =
  if path = "Unix.gettimeofday" && not (in_files wall_clock_files ctx.file)
  then
    report ctx ~rule:monotonic_time loc
      "Unix.gettimeofday outside the wall-clock allowlist: deadlines, \
       backoff gates and elapsed times must use the monotonic Clock.now \
       (history timestamps belong in Recorder/Session)";
  if List.mem path raw_io_calls && not (in_files raw_io_files ctx.file) then
    report ctx ~rule:raw_io loc
      (Printf.sprintf
         "raw socket I/O (%s) outside lib/transport/netio.ml: use \
          Netio.write_all / Netio.read so EINTR is retried, not treated \
          as link death"
         path)

let catch_all_msg kind =
  Printf.sprintf
    "catch-all %s swallows failures of an I/O call: match the exceptions \
     the call can raise (e.g. Unix.Unix_error _) so programming errors \
     still crash loudly"
    kind

let rec walk ctx held e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
    check_ident ctx (strip_stdlib (lid_path txt)) e.pexp_loc;
    held
  | Pexp_apply (hd, args) -> walk_apply ctx held e hd args
  | Pexp_sequence (a, b) ->
    let held = walk ctx held a in
    walk ctx held b
  | Pexp_let (_, vbs, body) ->
    let held = List.fold_left (walk_binding ctx) held vbs in
    walk ctx held body
  | Pexp_fun (_, default, _, body) ->
    (* Anonymous closures run at the call site (iteration combinators);
       named ones never reach this case — [walk_binding] and the
       structure walker route them through a fresh summary instead. *)
    Option.iter (fun d -> ignore (walk ctx held d)) default;
    ignore (walk ctx held body);
    held
  | Pexp_function cases ->
    List.iter (walk_case ctx held) cases;
    held
  | Pexp_match (scrut, cases) ->
    List.iter
      (fun c ->
        if
          exn_wild c.pc_lhs && c.pc_guard = None
          && mentions_module io_modules scrut
          && not (reraises c.pc_rhs)
        then
          report ctx ~rule:catch_all_exn c.pc_lhs.ppat_loc
            (catch_all_msg "`exception _` handler"))
      cases;
    let held = walk ctx held scrut in
    List.iter (walk_case ctx held) cases;
    held
  | Pexp_try (body, cases) ->
    List.iter
      (fun c ->
        if
          is_wild c.pc_lhs && c.pc_guard = None
          && mentions_module io_modules body
          && not (reraises c.pc_rhs)
        then
          report ctx ~rule:catch_all_exn c.pc_lhs.ppat_loc
            (catch_all_msg "`with _` handler"))
      cases;
    ignore (walk ctx held body);
    List.iter (walk_case ctx held) cases;
    held
  | Pexp_ifthenelse (c, a, b) ->
    let held = walk ctx held c in
    ignore (walk ctx held a);
    Option.iter (fun b -> ignore (walk ctx held b)) b;
    held
  | Pexp_while (cond, body) ->
    let held = walk ctx held cond in
    ctx.while_depth <- ctx.while_depth + 1;
    ignore (walk ctx held body);
    ctx.while_depth <- ctx.while_depth - 1;
    held
  | Pexp_for (_, lo, hi, _, body) ->
    let held = walk ctx held lo in
    let held = walk ctx held hi in
    ignore (walk ctx held body);
    held
  | _ ->
    (* Everything else: visit children with the current held set and
       assume the construct is lock-balanced. *)
    let expr _ e' = ignore (walk ctx held e') in
    let it = { Ast_iterator.default_iterator with expr } in
    Ast_iterator.default_iterator.expr it e;
    held

and walk_case ctx held c =
  Option.iter (fun g -> ignore (walk ctx held g)) c.pc_guard;
  ignore (walk ctx held c.pc_rhs)

and walk_binding ctx held vb =
  match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
  | Ppat_var { txt = name; _ }, (Pexp_fun _ | Pexp_function _) ->
    (* A named local function: body runs at call time with no lexical
       locks; register it so later calls pull in its acquisitions. *)
    ctx.fn_stack <- name :: ctx.fn_stack;
    let key = fn_key ctx in
    ignore (summary ctx);
    (match vb.pvb_expr.pexp_desc with
    | Pexp_fun (_, default, _, body) ->
      Option.iter (fun d -> ignore (walk ctx [] d)) default;
      ignore (walk ctx [] body)
    | Pexp_function cases -> List.iter (walk_case ctx []) cases
    | _ -> ());
    ctx.fn_stack <- List.tl ctx.fn_stack;
    ctx.locals <- (name, key) :: ctx.locals;
    held
  | _ -> walk ctx held vb.pvb_expr

and walk_apply ctx held e hd args =
  match head_ident hd with
  | None ->
    let held = walk ctx held hd in
    List.fold_left (fun h (_, a) -> walk ctx h a) held args
  | Some path -> (
    let loc = e.pexp_loc in
    let walk_args held =
      List.fold_left (fun h (_, a) -> walk ctx h a) held args
    in
    let is_with_lock =
      path = "Mutex.protect"
      || String.ends_with ~suffix:"with_lock" (String.lowercase_ascii path)
    in
    match (path, args) with
    | "Mutex.lock", [ (_, le) ] ->
      let name = lock_name ctx le in
      record_acquire ctx held name loc;
      ignore (walk ctx held le);
      held @ [ name ]
    | "Mutex.unlock", [ (_, le) ] ->
      ignore (walk ctx held le);
      remove_last held (lock_name ctx le)
    | _, [ (_, le); (_, fn) ] when is_with_lock ->
      let name = lock_name ctx le in
      record_acquire ctx held name loc;
      ignore (walk ctx held le);
      let held_in = held @ [ name ] in
      (match fn.pexp_desc with
      | Pexp_fun (_, _, _, body) -> ignore (walk ctx held_in body)
      | Pexp_ident { txt; _ } ->
        record_call ctx held_in (resolve ctx (strip_stdlib (lid_path txt))) loc
      | _ -> ignore (walk ctx held_in fn));
      held
    | ("Thread.create" | "Domain.spawn"), _ ->
      (* The spawned closure starts on a fresh stack: walk it with no
         held locks under an unreachable summary, so its acquisitions
         never count as the spawner's. *)
      let tag = Printf.sprintf "<spawn:%d>" (line_of loc) in
      ctx.fn_stack <- tag :: ctx.fn_stack;
      List.iter (fun (_, a) -> ignore (walk ctx [] a)) args;
      ctx.fn_stack <- List.tl ctx.fn_stack;
      held
    | "Condition.wait", _ ->
      if ctx.while_depth = 0 then
        report ctx ~rule:condition_wait_loop loc
          "Condition.wait outside a while loop: a wait must sit in a \
           predicate-recheck loop (wake-ups are spurious and broadcast \
           tickers wake everyone)";
      walk_args held
    | _ ->
      check_ident ctx path loc;
      if List.mem path blocking_calls && held <> []
         && not (blocking_allowed ctx path)
      then
        report ctx ~rule:blocking_under_lock loc
          (Printf.sprintf
             "blocking call %s lexically inside a held-lock region (held: \
              %s): drop the lock around the syscall or stage the I/O"
             path
             (String.concat ", " held));
      record_call ctx held (resolve ctx path) loc;
      walk_args held)

(* ------------------------------------------------------------------ *)
(* Structure traversal                                                 *)
(* ------------------------------------------------------------------ *)

let module_name_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

let rec walk_structure ctx items =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let name =
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> txt
              | _ -> "<top>"
            in
            ctx.fn_stack <- [ name ];
            ignore (summary ctx);
            ignore (walk ctx [] vb.pvb_expr);
            ctx.fn_stack <- [])
          vbs
      | Pstr_eval (e, _) ->
        ctx.fn_stack <- [ "<top>" ];
        ignore (walk ctx [] e);
        ctx.fn_stack <- []
      | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_structure sub_items ->
          let saved_mod = ctx.modname and saved_locals = ctx.locals in
          ctx.modname <- ctx.modname ^ "." ^ sub;
          ctx.locals <- [];
          walk_structure ctx sub_items;
          ctx.modname <- saved_mod;
          ctx.locals <- saved_locals
        | _ -> ())
      | _ -> ())
    items

let analyze_file st (src : Source.t) =
  let ctx =
    {
      st;
      file = src.Source.path;
      modname = module_name_of_path src.Source.path;
      fn_stack = [];
      locals = [];
      while_depth = 0;
    }
  in
  walk_structure ctx src.Source.ast

(* ------------------------------------------------------------------ *)
(* LOCK-ORDER: transitive acquisition sets and cycle detection         *)
(* ------------------------------------------------------------------ *)

module SS = Set.Make (String)

(* acquires*(f): every lock f may take, directly or via calls into
   scanned functions (fixpoint over the call graph). *)
let transitive_acquires st =
  let acq = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key s -> Hashtbl.replace acq key (SS.of_list s.f_acquires))
    st.funcs;
  let get key = Option.value ~default:SS.empty (Hashtbl.find_opt acq key) in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun key s ->
        let cur = get key in
        let next =
          List.fold_left
            (fun set (callee, _, _) -> SS.union set (get callee))
            cur s.f_calls
        in
        if not (SS.equal next cur) then begin
          Hashtbl.replace acq key next;
          changed := true
        end)
      st.funcs
  done;
  get

(* All lock-nesting edges: lexical nesting recorded during the walk,
   plus held-set x acquires*(callee) at every call site. *)
let lock_edges st =
  let acq = transitive_acquires st in
  let edges = Hashtbl.create 64 in
  let add a b site =
    if not (Hashtbl.mem edges (a, b)) then Hashtbl.add edges (a, b) site
  in
  Hashtbl.iter
    (fun _ s ->
      List.iter (fun (a, b, site) -> add a b site) s.f_edges;
      List.iter
        (fun (callee, held, site) ->
          SS.iter (fun b -> List.iter (fun a -> add a b site) held)
            (acq callee))
        s.f_calls)
    st.funcs;
  edges

(* Strongly connected components of the lock graph (Tarjan).  An edge
   inside an SCC of size > 1 — or a self-edge — participates in a
   cycle. *)
let sccs nodes succs =
  let index = Hashtbl.create 16 and low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 in
  let comp = Hashtbl.create 16 in
  let ncomp = ref 0 in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: tl ->
          stack := tl;
          Hashtbl.remove on_stack w;
          Hashtbl.replace comp w !ncomp;
          if w <> v then pop ()
      in
      pop ();
      incr ncomp
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) nodes;
  comp

let findings st = st.findings

let lock_order_findings st =
  let edges = lock_edges st in
  let nodes =
    Hashtbl.fold (fun (a, b) _ acc -> SS.add a (SS.add b acc)) edges SS.empty
  in
  let succs v =
    Hashtbl.fold
      (fun (a, b) _ acc -> if a = v then b :: acc else acc)
      edges []
  in
  let comp = sccs (SS.elements nodes) succs in
  let scc_sizes = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ c ->
      Hashtbl.replace scc_sizes c
        (1 + Option.value ~default:0 (Hashtbl.find_opt scc_sizes c)))
    comp;
  let cyclic (a, b) =
    a = b
    || Hashtbl.find comp a = Hashtbl.find comp b
       && Hashtbl.find scc_sizes (Hashtbl.find comp a) > 1
  in
  Hashtbl.fold
    (fun (a, b) site acc ->
      if cyclic (a, b) then
        {
          Finding.rule = lock_order;
          file = site.s_file;
          line = site.s_line;
          message =
            (if a = b then
               Printf.sprintf
                 "lock %s re-acquired while already held (self-deadlock: \
                  stdlib mutexes are not reentrant)"
                 a
             else
               let members =
                 SS.elements
                   (SS.filter
                      (fun v -> Hashtbl.find comp v = Hashtbl.find comp a)
                      nodes)
               in
               Printf.sprintf
                 "lock acquisition %s -> %s closes a cycle through {%s}: \
                  pick one global order and stick to it"
                 a b
                 (String.concat ", " members));
        }
        :: acc
      else acc)
    edges []
