(* The rule walker: one recursive pass per file that threads a *lexical
   held-locks* state through every expression, emits the local findings
   (BLOCKING-UNDER-LOCK, MONOTONIC-TIME, RAW-IO, CONDITION-WAIT-LOOP,
   CATCH-ALL-EXN) on the way, and records per-function summaries
   (direct lock acquisitions, lock-nesting edges, resolved calls with
   the held set at the call site) from which the engine later builds
   the inter-module LOCK-ORDER graph.

   The held-lock tracking is deliberately lexical and conservative:

   - [Mutex.protect l (fun () -> e)] holds [l] over [e];
   - [Mutex.lock l; ...; Mutex.unlock l] holds [l] over the sequence
     between the two calls (threaded through [if]/[match] scrutinees,
     sequences and loops; branches are assumed lock-balanced);
   - anonymous closures passed as arguments are assumed to run at the
     call site (true for the [List.iter (fun ...)]-style iteration the
     repo uses), so they inherit the held set;
   - [let f = fun ... ->] bindings are *function definitions*: their
     bodies are walked with an empty held set and get their own
     summary, and calls to them propagate their transitive lock
     acquisitions into the caller's context;
   - closures passed to [Thread.create] / [Domain.spawn] start on a
     fresh stack: they are walked with an empty held set under an
     anonymous summary that no call site can reach, so their locks
     never leak into the spawner's acquisition set (their own nesting
     edges still enter the global lock-order graph). *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Rule catalog                                                        *)
(* ------------------------------------------------------------------ *)

let lock_order = "LOCK-ORDER"

let blocking_under_lock = "BLOCKING-UNDER-LOCK"

let monotonic_time = "MONOTONIC-TIME"

let raw_io = "RAW-IO"

let condition_wait_loop = "CONDITION-WAIT-LOOP"

let catch_all_exn = "CATCH-ALL-EXN"

let shared_access = "SHARED-ACCESS"

let atomic_discipline = "ATOMIC-DISCIPLINE"

let all_rules =
  [
    ( lock_order,
      Finding.Error,
      "mutex acquisition order must be acyclic across the repo" );
    ( blocking_under_lock,
      Finding.Error,
      "no blocking syscall lexically inside a held-lock region" );
    ( monotonic_time,
      Finding.Warning,
      "deadlines and elapsed times use Clock.now, not Unix.gettimeofday" );
    ( raw_io,
      Finding.Warning,
      "raw socket reads/writes live only in lib/transport/netio.ml" );
    ( condition_wait_loop,
      Finding.Error,
      "Condition.wait only inside a while predicate-recheck loop" );
    ( catch_all_exn,
      Finding.Warning,
      "no catch-all exception handler swallowing I/O failures" );
    ( shared_access,
      Finding.Error,
      "thread-shared mutable state is accessed under its inferred owner \
       lock (or carries a lock-free justification)" );
    ( atomic_discipline,
      Finding.Error,
      "cross-thread signal flags are Atomic.t and atomic RMW uses \
       compare_and_set / fetch_and_add" );
  ]

let severity_of rule =
  match List.find_opt (fun (r, _, _) -> r = rule) all_rules with
  | Some (_, sev, _) -> sev
  | None -> Finding.Error

(* ------------------------------------------------------------------ *)
(* Configuration: call sets and path-scoped allowlists                 *)
(* ------------------------------------------------------------------ *)

(* Whole-component suffix match, so rules behave identically on
   "lib/transport/mux.ml" and "/abs/prefix/lib/transport/mux.ml". *)
let path_matches ~suffix path =
  path = suffix
  || String.length path > String.length suffix
     && String.ends_with ~suffix:("/" ^ suffix) path

let in_files files path =
  List.exists (fun suffix -> path_matches ~suffix path) files

(* MONOTONIC-TIME: the only places allowed to read the wall clock.
   History timestamps are *meant* to be wall time (operators correlate
   them with external logs); everything else — deadlines, backoff
   gates, elapsed-time measurements — must use the monotonic
   [Clock.now]. *)
let wall_clock_files =
  [
    "lib/history/recorder.ml";
    "lib/transport/session.ml";
    "lib/transport/clock.ml" (* defines the gettimeofday fallback *);
  ]

(* RAW-IO: the single EINTR-retrying choke point for socket I/O.  The
   reactor widened the set: readiness waits ([Unix.select]) and accepts
   now count as raw I/O too, because EINTR handling, EAGAIN semantics
   and the FD_SETSIZE=1024 select cliff all live behind Netio's
   non-blocking variants and pollers — a bare select or accept elsewhere
   reintroduces exactly the bugs the choke point exists to contain. *)
let raw_io_files = [ "lib/transport/netio.ml" ]

let raw_io_calls =
  [
    "Unix.read";
    "Unix.write";
    "Unix.single_write";
    "Unix.recv";
    "Unix.send";
    "Unix.select";
    "Unix.accept";
  ]

(* BLOCKING-UNDER-LOCK: calls that can park the thread indefinitely.
   Netio's [*_nb] variants are deliberately absent — they return EAGAIN
   instead of parking, which is the reactor's whole point — while its
   readiness waits are exactly as blocking as the select they wrap. *)
let blocking_calls =
  raw_io_calls
  @ [
      "Unix.sleep";
      "Unix.sleepf";
      "Unix.connect";
      "Netio.read";
      "Netio.write_all";
      "Netio.wait_readable";
      "Netio.Poller.wait";
      "Thread.delay";
      "Thread.join";
    ]

(* (file, enclosing function, callee) triples exempt from
   BLOCKING-UNDER-LOCK.  Empty since the reactor rewrite: the old
   thread-per-connection server wrote replies under a per-connection
   write lock (handler thread vs. fault-plan delayer threads) and
   carried the only two exemptions.  The reactor's flush path is
   non-blocking and lock-free — each shard owns its connections
   outright — so nothing is exempt any more, and a new entry here
   should be treated as a design smell to justify, not a convenience. *)
let blocking_allow : (string * string * string) list = []

(* CATCH-ALL-EXN fires only when the guarded body touches these
   modules: a wildcard around pure code is style, a wildcard around
   I/O swallows link failures (the exact bug class behind the PR-4
   EINTR fix). *)
let io_modules = [ "Unix"; "Netio" ]

(* Calls whose closure/function arguments run on another thread.  Used
   by the escape pass to seed spawn-reachability: any mutable cell
   touched from code reachable from one of these arguments is
   thread-shared.  Pool's entry points count — their thunks run on
   worker domains. *)
let spawn_calls =
  [
    "Thread.create";
    "Domain.spawn";
    "Pool.run_tasks";
    "Pool.map";
    "Pool.map_reduce";
    "Pool.iter_seeds";
  ]

(* SHARED-ACCESS lock-free allowlist: (cell, justification).  A cell is
   the declaring-module-qualified name of a mutable field, or the
   function-qualified name of a ref/array/table binding.  Every entry
   silences the cell globally and MUST carry a justification — these
   are reviewed design decisions (CAS retry loops, single-owner-thread
   state), not suppressions of unread findings.  The `--lock-map`
   artifact prints this table so the decisions stay visible. *)
let lock_free_allow : (string * string) list =
  [
    (* -- transport: documented single-owner designs ---------------- *)
    ( "Transport.Check_sink.ports",
      "built before start (enforced by invalid_arg); the checker \
       thread is the sole reader afterwards — the completion path \
       itself is the CAS stack (queue/inflight are Atomic.t)" );
    ( "Transport.Check_sink.next",
      "per-port id counter: only the owning client thread calls \
       completed on its port" );
    ( "Transport.Check_sink.batches",
      "checker-thread-private counter; stop reads it only after \
       joining the checker thread" );
    ( "Transport.Check_sink.busy",
      "checker-thread-private counter; stop reads it only after \
       joining the checker thread" );
    ( "Transport.Mux.staging",
      "flusher-owned swap space: only the thread that set [flushing] \
       under the conn lock touches it until it clears the flag" );
    ( "Transport.Mux.mb_from",
      "documented benign race: the broadcast path reads the dedup \
       array outside the mailbox lock; worst case is a duplicate \
       send and replica operations are idempotent" );
    ( "Transport.Mux.mb_enc",
      "per-handle encode staging; a handle belongs to one client \
       thread" );
    ( "Transport.Mux.mb_out",
      "per-handle write staging; a handle belongs to one client \
       thread" );
    ( "Transport.Endpoint.*",
      "one client thread owns the endpoint (module design comment): \
       the private per-client-socket plane has no locks at all" );
    ( "Transport.Codec.Stream.*",
      "a decode stream belongs to the one thread that reads its \
       connection (demux thread / shard reactor)" );
    ( "Transport.Session.*",
      "per-client op logs written by the owning client thread; \
       merge_history reads them after every client has joined" );
    ( "Transport.Cluster.*",
      "harness control plane: kill/restart/addrs run on the \
       coordinating thread only, never on client or server threads" );
    (* -- transport/server: shard confinement ----------------------- *)
    ( "Transport.Server.Outq.*",
      "shard-confined: each reactor thread owns its connections' \
       out-queues (see the reactor design comment)" );
    ( "Transport.Server.conns",
      "shard-confined: the owning reactor thread is the only one that \
       touches the shard's connection table" );
    ( "Transport.Server.timers",
      "shard-confined: the timer list belongs to the shard's reactor \
       thread" );
    ( "Transport.Server.frames",
      "shard-confined per-connection counter" );
    ( "Transport.Server.rbuf",
      "shard-confined read buffer" );
    ( "Transport.Server.want_write",
      "shard-confined: poller interest toggles happen only on the \
       owning reactor thread" );
    ( "Transport.Server.sever",
      "shard-confined: set and read only by the owning reactor \
       thread while it processes the connection" );
    ( "Transport.Server.rr",
      "round-robin accept cursor: shard 0's thread only (field \
       comment)" );
    ( "Transport.Server.runners",
      "guarded by the stopping Atomic.exchange gate: only the winning \
       stop caller touches the list, after joining every shard" );
    ( "Transport.Netio.Poller.*",
      "per-shard poller owned by its reactor thread" );
    (* -- registers: served state's off-thread edges ----------------- *)
    ( "Registers.Keyspace.hot",
      "bare sites are load (fresh instance, pre-publication) and \
       save/stats (post-stop); all in-service access runs under \
       Server.replica_lock" );
    ( "Registers.Keyspace.cold",
      "bare sites are load (fresh instance, pre-publication) and \
       save/stats (post-stop); all in-service access runs under \
       Server.replica_lock" );
    ( "Registers.Replica.current",
      "bare sites are load (fresh instance) and post-stop snapshot \
       getters; all in-service access runs under Server.replica_lock" );
    ( "Registers.Replica.vector",
      "bare sites are load (fresh instance) and post-stop snapshot \
       getters; all in-service access runs under Server.replica_lock" );
    ( "Registers.Replica.updated",
      "bare sites are load (fresh instance) and post-stop snapshot \
       getters; all in-service access runs under Server.replica_lock" );
    (* -- single-threaded planes driven from worker harnesses -------- *)
    ( "Simulation.*",
      "discrete-event simulation instances are single-threaded by \
       design; each worker/test owns its engine outright" );
    ( "Registers.Abd_mwmr.*",
      "simulation-plane register state, driven by one engine instance \
       at a time" );
    ( "Protocol.*",
      "simulation-plane protocol state, driven by one engine instance \
       at a time" );
    ( "Checker.*",
      "a checker instance is thread-confined: each soak/worker owns \
       its checker, or feeds it through Check_sink's single checker \
       thread" );
    ( "Histories.Recorder.*",
      "one recorder per client thread; merges read them after join" );
    ( "Workload.Stats.Hist.*",
      "per-thread histograms, merged after the workers join" );
    ( "Kv.Kv_session.*",
      "per-client session logs; history_of_key reads them post-join" );
  ]

(* An allowlist entry is an exact cell name or a module prefix
   ("Transport.Endpoint.*"): prefixes exist so a subsystem whose whole
   design is single-owner (the endpoint, the simulation plane) is one
   reviewed decision instead of a dozen copies of it. *)
let allow_justification cell =
  let matches (pat, _) =
    pat = cell
    || String.ends_with ~suffix:".*" pat
       && String.starts_with
            ~prefix:(String.sub pat 0 (String.length pat - 1))
            cell
  in
  Option.map snd (List.find_opt matches lock_free_allow)

(* ------------------------------------------------------------------ *)
(* Summaries shared across files (for LOCK-ORDER)                      *)
(* ------------------------------------------------------------------ *)

type site = { s_file : string; s_line : int; s_col : int }

(* One read or write of a tracked mutable cell, with the lexical held
   set at the point of access.  The lockmap pass later widens the held
   set with the interprocedural held-at-entry fixpoint. *)
type access = {
  a_cell : string;
  a_write : bool;
  a_bool_lit : bool;  (* write of a literal true/false *)
  a_site : site;
  a_held : string list;
}

type fsum = {
  f_mod : string;  (* module path at definition, for callee lookup *)
  mutable f_acquires : string list;  (* direct lock acquisitions *)
  mutable f_edges : (string * string * site) list;  (* held -> acquired *)
  mutable f_calls : (string * string list * site) list;  (* callee, held *)
  mutable f_accesses : access list;  (* tracked-cell reads/writes *)
}

(* A record-label declaration seen during the decl pre-pass.  EVERY
   label is recorded, not just mutable/container ones: resolution must
   see immutable same-named labels or [stopping : bool Atomic.t] in
   Server resolves to Mux's plain [mutable stopping : bool] and the
   server file inherits another module's findings.  [d_tracked] marks
   the labels whose accesses the walker actually records. *)
type decl = { d_mod : string; d_bool : bool; d_tracked : bool }

(* Identity + metadata of a tracked mutable cell.  [c_creator] is the
   summary key of the binding that created a ref/array/table cell:
   accesses inside the creator are initialization-before-publication
   (or post-join reads) and never count as shared-access sites.  Field
   cells have no creator.  [c_toplevel] distinguishes module-global
   bindings (shared by anything) from function-local ones (fresh per
   invocation — only a spawn nested under the creator can share
   them). *)
type cellinfo = {
  c_bool : bool;
  c_creator : string option;
  c_toplevel : bool;
}

type state = {
  funcs : (string, fsum) Hashtbl.t;
  decls : (string, decl) Hashtbl.t;  (* label -> decls (multi) *)
  cells : (string, cellinfo) Hashtbl.t;
  lookups : (string * string, string option) Hashtbl.t;
      (* (caller module, callee) -> resolved summary key.  Callee
         resolution falls back to an O(|funcs|) suffix scan for
         cross-library calls; the reachability and held-set fixpoints
         resolve the same edges over and over, so cache per state
         (NOT globally — test fixtures reuse module names across
         independent states). *)
  mutable findings : Finding.t list;
}

let create_state () =
  {
    funcs = Hashtbl.create 64;
    decls = Hashtbl.create 64;
    cells = Hashtbl.create 64;
    lookups = Hashtbl.create 64;
    findings = [];
  }

(* ------------------------------------------------------------------ *)
(* Small AST helpers                                                   *)
(* ------------------------------------------------------------------ *)

let lid_path lid = String.concat "." (Longident.flatten lid)

(* Normalise [Stdlib.Mutex.lock] and friends to their short form. *)
let strip_stdlib path =
  match String.length path > 7 && String.sub path 0 7 = "Stdlib." with
  | true -> String.sub path 7 (String.length path - 7)
  | false -> path

let head_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (strip_stdlib (lid_path txt))
  | _ -> None

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let col_of (loc : Location.t) =
  let s = loc.Location.loc_start in
  s.Lexing.pos_cnum - s.Lexing.pos_bol + 1

let rec is_bool_lit e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false"); _ }, None)
    ->
    true
  | Pexp_constraint (e', _) -> is_bool_lit e'
  | _ -> false

(* Head constructor of a core type: ["bool"], ["array"], ["Hashtbl.t"],
   ["Atomic.t"], ...  Used to classify record labels in the decl
   pre-pass — no typing environment, so this is syntactic. *)
let rec type_head t =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) ->
    strip_stdlib (String.concat "." (Longident.flatten txt))
  | Ptyp_poly (_, t') -> type_head t'
  | _ -> ""

(* Immutable labels of these types still hold mutable state: the
   container contents.  Buffer is deliberately absent — the repo's
   Buffers are either owner-thread staging or already lock-guarded,
   and Buffer.add_* appears in too many formatting helpers to track
   without drowning the report. *)
let container_heads = [ "array"; "bytes"; "Bytes.t"; "Hashtbl.t"; "Queue.t" ]

(* Container operations, classified by whether they mutate.  An
   application of one of these to a tracked ref/array/table binding is
   an access of that cell ([a.(i)] and [s.[i]] parse to Array.get /
   String.get applications, so index syntax is covered for free). *)
let container_write_ops =
  [
    "Array.set";
    "Array.unsafe_set";
    "Array.fill";
    "Array.blit";
    "Bytes.set";
    "Bytes.unsafe_set";
    "Bytes.fill";
    "Bytes.blit";
    "Bytes.blit_string";
    "Hashtbl.add";
    "Hashtbl.replace";
    "Hashtbl.remove";
    "Hashtbl.clear";
    "Hashtbl.reset";
    "Hashtbl.filter_map_inplace";
    "Queue.push";
    "Queue.add";
    "Queue.pop";
    "Queue.take";
    "Queue.take_opt";
    "Queue.clear";
    "Queue.transfer";
  ]

let container_read_ops =
  [
    "Array.get";
    "Array.unsafe_get";
    "Array.length";
    "Array.iter";
    "Array.iteri";
    "Array.fold_left";
    "Array.map";
    "Array.mapi";
    "Array.to_list";
    "Array.copy";
    "Array.sub";
    "Bytes.get";
    "Bytes.unsafe_get";
    "Bytes.length";
    "Bytes.sub";
    "Bytes.sub_string";
    "Bytes.to_string";
    "Hashtbl.find";
    "Hashtbl.find_opt";
    "Hashtbl.find_all";
    "Hashtbl.mem";
    "Hashtbl.length";
    "Hashtbl.iter";
    "Hashtbl.fold";
    "Hashtbl.to_seq";
    "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
    "Queue.peek";
    "Queue.peek_opt";
    "Queue.top";
    "Queue.length";
    "Queue.is_empty";
    "Queue.iter";
    "Queue.fold";
  ]

let container_access path =
  if List.mem path container_write_ops then Some true
  else if List.mem path container_read_ops then Some false
  else None

(* [let x = ref/Array.make/Hashtbl.create ... ] — a binding that
   creates a fresh mutable cell.  Returns [Some is_bool_flag]. *)
let creation_of e =
  match e.pexp_desc with
  | Pexp_apply (hd, args) -> (
    match head_ident hd with
    | Some "ref" -> (
      match args with [ (_, v) ] -> Some (is_bool_lit v) | _ -> None)
    | Some
        ( "Array.make" | "Array.init" | "Array.create_float"
        | "Bytes.create" | "Bytes.make" | "Hashtbl.create" | "Queue.create"
          ) ->
      Some false
    | _ -> None)
  | _ -> None

let rec is_record_literal e =
  match e.pexp_desc with
  | Pexp_record _ -> true
  | Pexp_constraint (e', _) -> is_record_literal e'
  | _ -> false

(* Syntactic identity of an Atomic.t location, for the get-then-set
   RMW check: field accesses compare by label, plain idents by path. *)
let rec atomic_target e =
  match e.pexp_desc with
  | Pexp_field (_, { txt; _ }) -> Some ("#" ^ Longident.last txt)
  | Pexp_ident { txt; _ } -> Some (lid_path txt)
  | Pexp_constraint (e', _) -> atomic_target e'
  | _ -> None

let contains_atomic_get tgt v =
  let found = ref false in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (hd, [ (_, a) ]) when head_ident hd = Some "Atomic.get" ->
      if atomic_target a = Some tgt then found := true
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it v;
  !found

let rec is_wild p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (q, _) | Ppat_constraint (q, _) -> is_wild q
  | Ppat_or (a, b) -> is_wild a || is_wild b
  | _ -> false

let rec exn_wild p =
  match p.ppat_desc with
  | Ppat_exception q -> is_wild q
  | Ppat_or (a, b) -> exn_wild a || exn_wild b
  | Ppat_constraint (q, _) -> exn_wild q
  | _ -> false

(* Does [e] mention an identifier qualified by one of [mods]? *)
let mentions_module mods e =
  let found = ref false in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | m :: _ :: _ when List.mem m mods -> found := true
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* A handler that re-raises is not swallowing. *)
let reraises e =
  let found = ref false in
  let expr it e =
    (match head_ident e with
    | Some ("raise" | "raise_notrace" | "Printexc.raise_with_backtrace") ->
      found := true
    | _ -> (
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> (
        match strip_stdlib (lid_path txt) with
        | "raise" | "raise_notrace" | "Printexc.raise_with_backtrace" ->
          found := true
        | _ -> ())
      | _ -> ()));
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* The walker                                                          *)
(* ------------------------------------------------------------------ *)

type fctx = {
  st : state;
  file : string;
  mutable modname : string;
  mutable fn_stack : string list;  (* innermost first *)
  mutable locals : (string * string) list;  (* local fn name -> summary key *)
  mutable tracked : (string * string) list;  (* ref/array binding -> cell *)
  mutable owned : string list;
      (* vars bound to record literals in this function: accesses
         through them are construction-before-publication, not shared
         accesses.  Cleared inside spawned closures and local function
         bodies, which may run after publication. *)
  mutable while_depth : int;
}

let report ctx ~rule loc msg =
  ctx.st.findings <-
    Finding.of_loc ~rule ~severity:(severity_of rule) ~file:ctx.file loc msg
    :: ctx.st.findings

let fn_key ctx =
  match ctx.fn_stack with
  | [] -> ctx.modname ^ ".<top>"
  | fs -> ctx.modname ^ "." ^ String.concat "." (List.rev fs)

let summary ctx =
  let key = fn_key ctx in
  match Hashtbl.find_opt ctx.st.funcs key with
  | Some s -> s
  | None ->
    let s =
      {
        f_mod = ctx.modname;
        f_acquires = [];
        f_edges = [];
        f_calls = [];
        f_accesses = [];
      }
    in
    Hashtbl.add ctx.st.funcs key s;
    s

let site_of ctx loc =
  { s_file = ctx.file; s_line = line_of loc; s_col = col_of loc }

(* Locks are identified by their final field/variable name, qualified
   by the defining module: precise enough to separate [Server.wlock]
   from [Mux.lock], coarse enough that every instance of a
   per-connection lock is one graph node (which is exactly what a
   lock-ORDER discipline is about). *)
let lock_name ctx e =
  let base =
    match e.pexp_desc with
    | Pexp_field (_, { txt; _ }) -> Longident.last txt
    | Pexp_ident { txt; _ } -> Longident.last txt
    | _ -> "<anon>"
  in
  ctx.modname ^ "." ^ base

let record_acquire ctx held name loc =
  let s = summary ctx in
  s.f_acquires <- name :: s.f_acquires;
  List.iter (fun h -> s.f_edges <- (h, name, site_of ctx loc) :: s.f_edges) held

let record_call ctx held callee loc =
  let s = summary ctx in
  s.f_calls <- (callee, held, site_of ctx loc) :: s.f_calls

(* Resolve a call target to a summary key: local function scopes first,
   then a module-level sibling, then (for qualified paths) another
   scanned module's top-level function. *)
let resolve ctx path =
  if String.contains path '.' then path
  else
    match List.assoc_opt path ctx.locals with
    | Some key -> key
    | None -> ctx.modname ^ "." ^ path

(* ------------------------------------------------------------------ *)
(* Tracked-cell plumbing                                               *)
(* ------------------------------------------------------------------ *)

let register_cell ctx cell ~bool ~creator ~toplevel =
  if not (Hashtbl.mem ctx.st.cells cell) then
    Hashtbl.add ctx.st.cells cell
      { c_bool = bool; c_creator = creator; c_toplevel = toplevel }

(* Resolve a field label to its declaring module, preferring lexical
   scope: the accessing module itself, then an enclosing module, then
   an enclosed one, then a qualifier on the access path, then the
   lexicographically smallest declarer (deterministic under any file
   order — the shuffle test depends on this). *)
let field_cell ctx lid =
  let label = Longident.last lid in
  match Hashtbl.find_all ctx.st.decls label with
  | [] -> None
  | ds ->
    let qual =
      match lid with
      | Longident.Ldot (m, _) ->
        Some (String.concat "." (Longident.flatten m))
      | _ -> None
    in
    let score d =
      if Some d.d_mod = qual then 6
      else if
        match qual with
        | Some q -> String.ends_with ~suffix:("." ^ q) d.d_mod
        | None -> false
      then 5
      else if d.d_mod = ctx.modname then 4
      else if String.starts_with ~prefix:(d.d_mod ^ ".") ctx.modname then 3
      else if String.starts_with ~prefix:(ctx.modname ^ ".") d.d_mod then 2
      else 0
    in
    let best =
      List.fold_left
        (fun acc d ->
          match acc with
          | None -> Some d
          | Some b ->
            let sd = score d and sb = score b in
            if sd > sb || (sd = sb && d.d_mod < b.d_mod) then Some d
            else acc)
        None ds
    in
    (* Resolution runs over ALL labels so lexical scope wins; only a
       tracked winner names a cell.  An untracked winner (immutable,
       or Atomic.t) shadows any same-named tracked label elsewhere. *)
    Option.bind best (fun d ->
        if d.d_tracked then Some (d.d_mod ^ "." ^ label, d.d_bool) else None)

let tracked_ident ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } ->
    List.assoc_opt x ctx.tracked
  | _ -> None

let obj_owned ctx obj =
  match obj.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> List.mem x ctx.owned
  | _ -> false

let record_access ctx held ~cell ~write ~bool_lit loc =
  let s = summary ctx in
  s.f_accesses <-
    {
      a_cell = cell;
      a_write = write;
      a_bool_lit = bool_lit;
      a_site = site_of ctx loc;
      a_held = held;
    }
    :: s.f_accesses

let record_field ctx held ~write ?value obj lid loc =
  if not (obj_owned ctx obj) then
    match field_cell ctx lid with
    | None -> ()
    | Some (cell, d_bool) ->
      register_cell ctx cell ~bool:d_bool ~creator:None ~toplevel:false;
      let bool_lit =
        match value with Some v -> is_bool_lit v | None -> false
      in
      record_access ctx held ~cell ~write ~bool_lit loc

let remove_last held name =
  let rec go = function
    | [] -> []
    | h :: tl when h = name -> tl
    | h :: tl -> h :: go tl
  in
  List.rev (go (List.rev held))

let blocking_allowed ctx callee =
  (* The enclosing *named* function: synthetic frames (spawned-closure
     summaries) don't rename the region for allowlisting purposes. *)
  let fn =
    match List.find_opt (fun f -> f = "" || f.[0] <> '<') ctx.fn_stack with
    | Some f -> f
    | None -> "<top>"
  in
  List.exists
    (fun (file, func, call) ->
      path_matches ~suffix:file ctx.file && func = fn && call = callee)
    blocking_allow

let check_ident ctx path loc =
  if path = "Unix.gettimeofday" && not (in_files wall_clock_files ctx.file)
  then
    report ctx ~rule:monotonic_time loc
      "Unix.gettimeofday outside the wall-clock allowlist: deadlines, \
       backoff gates and elapsed times must use the monotonic Clock.now \
       (history timestamps belong in Recorder/Session)";
  if List.mem path raw_io_calls && not (in_files raw_io_files ctx.file) then
    report ctx ~rule:raw_io loc
      (Printf.sprintf
         "raw socket I/O (%s) outside lib/transport/netio.ml: use \
          Netio.write_all / Netio.read so EINTR is retried, not treated \
          as link death"
         path)

let catch_all_msg kind =
  Printf.sprintf
    "catch-all %s swallows failures of an I/O call: match the exceptions \
     the call can raise (e.g. Unix.Unix_error _) so programming errors \
     still crash loudly"
    kind

let rec walk ctx held e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
    check_ident ctx (strip_stdlib (lid_path txt)) e.pexp_loc;
    held
  | Pexp_field (obj, { txt; _ }) ->
    record_field ctx held ~write:false obj txt e.pexp_loc;
    walk ctx held obj
  | Pexp_setfield (obj, { txt; _ }, v) ->
    record_field ctx held ~write:true ~value:v obj txt e.pexp_loc;
    let held = walk ctx held obj in
    ignore (walk ctx held v);
    held
  | Pexp_apply (hd, args) -> walk_apply ctx held e hd args
  | Pexp_sequence (a, b) ->
    let held = walk ctx held a in
    walk ctx held b
  | Pexp_let (_, vbs, body) ->
    let held = List.fold_left (walk_binding ctx) held vbs in
    walk ctx held body
  | Pexp_fun (_, default, _, body) ->
    (* Anonymous closures run at the call site (iteration combinators);
       named ones never reach this case — [walk_binding] and the
       structure walker route them through a fresh summary instead. *)
    Option.iter (fun d -> ignore (walk ctx held d)) default;
    ignore (walk ctx held body);
    held
  | Pexp_function cases ->
    List.iter (walk_case ctx held) cases;
    held
  | Pexp_match (scrut, cases) ->
    List.iter
      (fun c ->
        if
          exn_wild c.pc_lhs && c.pc_guard = None
          && mentions_module io_modules scrut
          && not (reraises c.pc_rhs)
        then
          report ctx ~rule:catch_all_exn c.pc_lhs.ppat_loc
            (catch_all_msg "`exception _` handler"))
      cases;
    let held = walk ctx held scrut in
    List.iter (walk_case ctx held) cases;
    held
  | Pexp_try (body, cases) ->
    List.iter
      (fun c ->
        if
          is_wild c.pc_lhs && c.pc_guard = None
          && mentions_module io_modules body
          && not (reraises c.pc_rhs)
        then
          report ctx ~rule:catch_all_exn c.pc_lhs.ppat_loc
            (catch_all_msg "`with _` handler"))
      cases;
    ignore (walk ctx held body);
    List.iter (walk_case ctx held) cases;
    held
  | Pexp_ifthenelse (c, a, b) ->
    let held = walk ctx held c in
    ignore (walk ctx held a);
    Option.iter (fun b -> ignore (walk ctx held b)) b;
    held
  | Pexp_while (cond, body) ->
    let held = walk ctx held cond in
    ctx.while_depth <- ctx.while_depth + 1;
    ignore (walk ctx held body);
    ctx.while_depth <- ctx.while_depth - 1;
    held
  | Pexp_for (_, lo, hi, _, body) ->
    let held = walk ctx held lo in
    let held = walk ctx held hi in
    ignore (walk ctx held body);
    held
  | _ ->
    (* Everything else: visit children with the current held set and
       assume the construct is lock-balanced. *)
    let expr _ e' = ignore (walk ctx held e') in
    let it = { Ast_iterator.default_iterator with expr } in
    Ast_iterator.default_iterator.expr it e;
    held

and walk_case ctx held c =
  Option.iter (fun g -> ignore (walk ctx held g)) c.pc_guard;
  ignore (walk ctx held c.pc_rhs)

and walk_binding ctx held vb =
  match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
  | Ppat_var { txt = name; _ }, (Pexp_fun _ | Pexp_function _) ->
    (* A named local function: body runs at call time with no lexical
       locks; register it so later calls pull in its acquisitions.
       Outer tracked cells stay visible (closure capture); the owned
       set does not — the body may run after publication. *)
    ctx.fn_stack <- name :: ctx.fn_stack;
    let key = fn_key ctx in
    ignore (summary ctx);
    let saved_tracked = ctx.tracked and saved_owned = ctx.owned in
    ctx.owned <- [];
    (match vb.pvb_expr.pexp_desc with
    | Pexp_fun (_, default, _, body) ->
      Option.iter (fun d -> ignore (walk ctx [] d)) default;
      ignore (walk ctx [] body)
    | Pexp_function cases -> List.iter (walk_case ctx []) cases
    | _ -> ());
    ctx.tracked <- saved_tracked;
    ctx.owned <- saved_owned;
    ctx.fn_stack <- List.tl ctx.fn_stack;
    ctx.locals <- (name, key) :: ctx.locals;
    held
  | Ppat_var { txt = name; _ }, _ ->
    let held = walk ctx held vb.pvb_expr in
    (* Rebinding the name invalidates any earlier classification. *)
    ctx.tracked <- List.remove_assoc name ctx.tracked;
    ctx.owned <- List.filter (fun o -> o <> name) ctx.owned;
    (match creation_of vb.pvb_expr with
    | Some is_bool ->
      let cell = fn_key ctx ^ "." ^ name in
      register_cell ctx cell ~bool:is_bool ~creator:(Some (fn_key ctx))
        ~toplevel:false;
      ctx.tracked <- (name, cell) :: ctx.tracked
    | None ->
      if is_record_literal vb.pvb_expr then ctx.owned <- name :: ctx.owned);
    held
  | _ -> walk ctx held vb.pvb_expr

and walk_apply ctx held e hd args =
  match head_ident hd with
  | None ->
    let held = walk ctx held hd in
    List.fold_left (fun h (_, a) -> walk ctx h a) held args
  | Some path -> (
    let loc = e.pexp_loc in
    let walk_args held =
      List.fold_left (fun h (_, a) -> walk ctx h a) held args
    in
    let is_with_lock =
      path = "Mutex.protect"
      || String.ends_with ~suffix:"with_lock" (String.lowercase_ascii path)
    in
    match (path, args) with
    | "Mutex.lock", [ (_, le) ] ->
      let name = lock_name ctx le in
      record_acquire ctx held name loc;
      ignore (walk ctx held le);
      held @ [ name ]
    | "Mutex.unlock", [ (_, le) ] ->
      ignore (walk ctx held le);
      remove_last held (lock_name ctx le)
    | _, [ (_, le); (_, fn) ] when is_with_lock ->
      let name = lock_name ctx le in
      record_acquire ctx held name loc;
      ignore (walk ctx held le);
      let held_in = held @ [ name ] in
      (match fn.pexp_desc with
      | Pexp_fun (_, _, _, body) -> ignore (walk ctx held_in body)
      | Pexp_ident { txt; _ } ->
        record_call ctx held_in (resolve ctx (strip_stdlib (lid_path txt))) loc
      | _ -> ignore (walk ctx held_in fn));
      held
    | "!", [ (_, a) ] ->
      (match tracked_ident ctx a with
      | Some cell ->
        record_access ctx held ~cell ~write:false ~bool_lit:false loc
      | None -> ());
      walk_args held
    | ":=", [ (_, a); (_, v) ] ->
      (match tracked_ident ctx a with
      | Some cell ->
        record_access ctx held ~cell ~write:true ~bool_lit:(is_bool_lit v)
          loc
      | None -> ());
      walk_args held
    | ("incr" | "decr"), [ (_, a) ] ->
      (match tracked_ident ctx a with
      | Some cell ->
        record_access ctx held ~cell ~write:true ~bool_lit:false loc
      | None -> ());
      walk_args held
    | "Atomic.set", [ (_, t); (_, v) ] ->
      (match atomic_target t with
      | Some tgt when contains_atomic_get tgt v ->
        report ctx ~rule:atomic_discipline loc
          "Atomic.get-then-Atomic.set is not atomic: another thread can \
           interleave between the read and the write — use \
           Atomic.compare_and_set (or fetch_and_add / incr) instead"
      | _ -> ());
      walk_args held
    | _, _ when List.mem path spawn_calls ->
      (* The spawned closure starts on a fresh stack: walk it with no
         held locks under an unreachable summary, so its acquisitions
         never count as the spawner's.  Bare function arguments
         ([Domain.spawn worker]) are recorded as calls from the spawn
         frame so the escape pass can reach their bodies; the owned
         set is cleared because the closure runs after publication. *)
      let tag = Printf.sprintf "<spawn:%d>" (line_of loc) in
      ctx.fn_stack <- tag :: ctx.fn_stack;
      let saved_owned = ctx.owned in
      ctx.owned <- [];
      List.iter
        (fun (_, a) ->
          (match a.pexp_desc with
          | Pexp_ident { txt; _ } ->
            record_call ctx []
              (resolve ctx (strip_stdlib (lid_path txt)))
              a.pexp_loc
          | _ -> ());
          ignore (walk ctx [] a))
        args;
      ctx.owned <- saved_owned;
      ctx.fn_stack <- List.tl ctx.fn_stack;
      held
    | "Condition.wait", _ ->
      if ctx.while_depth = 0 then
        report ctx ~rule:condition_wait_loop loc
          "Condition.wait outside a while loop: a wait must sit in a \
           predicate-recheck loop (wake-ups are spurious and broadcast \
           tickers wake everyone)";
      walk_args held
    | _ ->
      check_ident ctx path loc;
      (match container_access path with
      | Some write ->
        List.iter
          (fun (_, a) ->
            match tracked_ident ctx a with
            | Some cell ->
              record_access ctx held ~cell ~write ~bool_lit:false loc
            | None -> ())
          args
      | None -> ());
      if List.mem path blocking_calls && held <> []
         && not (blocking_allowed ctx path)
      then
        report ctx ~rule:blocking_under_lock loc
          (Printf.sprintf
             "blocking call %s lexically inside a held-lock region (held: \
              %s): drop the lock around the syscall or stage the I/O"
             path
             (String.concat ", " held));
      record_call ctx held (resolve ctx path) loc;
      walk_args held)

(* ------------------------------------------------------------------ *)
(* Structure traversal                                                 *)
(* ------------------------------------------------------------------ *)

(* Module identity must be globally unique or two same-named files
   merge: lib/simulation/engine.ml and lib/analysis/engine.ml both
   keyed [Engine.run] once made the simulation's run loop "call" the
   lint's own fixpoint.  Namespace each lib file by its dune library
   wrapper (the parent directory, with the few dirs whose library name
   differs aliased), which is also how cross-library source refers to
   it; executables under bin/test/bench/examples stay bare so sibling
   references ([Hunter.run_shape]) keep resolving. *)
let wrapper_of_dir = function
  | "history" -> "Histories"
  | "quorum" -> "Quorums"
  | "core" -> "Mwregister"
  | d -> String.capitalize_ascii d

let module_name_of_path path =
  let base =
    String.capitalize_ascii
      (Filename.remove_extension (Filename.basename path))
  in
  match Filename.basename (Filename.dirname path) with
  | "" | "." | ".." | "lib" | "bin" | "test" | "bench" | "examples" -> base
  | dir -> wrapper_of_dir dir ^ "." ^ base

let rec walk_structure ctx items =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let name =
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> txt
              | _ -> "<top>"
            in
            ctx.fn_stack <- [ name ];
            ignore (summary ctx);
            let saved_tracked = ctx.tracked and saved_owned = ctx.owned in
            (* A top-level ref/array/table is a module-global cell:
               visible to every function that follows.  Its own init
               expression is the creator summary.  Top-level record
               literals are NOT owned — a module-global record is
               published to everyone by definition. *)
            let top_cell =
              if name <> "<top>" && creation_of vb.pvb_expr <> None then begin
                let cell = ctx.modname ^ "." ^ name in
                register_cell ctx cell
                  ~bool:(creation_of vb.pvb_expr = Some true)
                  ~creator:(Some (fn_key ctx)) ~toplevel:true;
                Some (name, cell)
              end
              else None
            in
            ignore (walk ctx [] vb.pvb_expr);
            ctx.tracked <-
              (match top_cell with
              | Some tc -> tc :: saved_tracked
              | None -> saved_tracked);
            ctx.owned <- saved_owned;
            ctx.fn_stack <- [])
          vbs
      | Pstr_eval (e, _) ->
        ctx.fn_stack <- [ "<top>" ];
        ignore (walk ctx [] e);
        ctx.fn_stack <- []
      | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_structure sub_items ->
          let saved_mod = ctx.modname
          and saved_locals = ctx.locals
          and saved_tracked = ctx.tracked in
          ctx.modname <- ctx.modname ^ "." ^ sub;
          ctx.locals <- [];
          walk_structure ctx sub_items;
          ctx.modname <- saved_mod;
          ctx.locals <- saved_locals;
          ctx.tracked <- saved_tracked
        | _ -> ())
      | _ -> ())
    items

(* Decl pre-pass: record every mutable record label (and every
   container-typed label — immutable [bool array] fields still hold
   mutable contents) with its declaring module.  Runs over ALL sources
   before any analysis pass so cross-module field accesses resolve no
   matter the file order.  Atomic.t labels are exempt by construction:
   atomics are the sanctioned lock-free primitive. *)
let collect_decls st (src : Source.t) =
  let add_decl modname (ld : label_declaration) =
    let head = type_head ld.pld_type in
    let mut = ld.pld_mutable = Asttypes.Mutable in
    let tracked =
      (mut || List.mem head container_heads) && head <> "Atomic.t"
    in
    let label = ld.pld_name.Asttypes.txt in
    let dup =
      List.exists
        (fun d -> d.d_mod = modname)
        (Hashtbl.find_all st.decls label)
    in
    if not dup then
      Hashtbl.add st.decls label
        { d_mod = modname; d_bool = head = "bool"; d_tracked = tracked }
  in
  let rec go modname items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_type (_, tds) ->
          List.iter
            (fun td ->
              match td.ptype_kind with
              | Ptype_record labels -> List.iter (add_decl modname) labels
              | _ -> ())
            tds
        | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_structure sub_items -> go (modname ^ "." ^ sub) sub_items
          | _ -> ())
        | _ -> ())
      items
  in
  go (module_name_of_path src.Source.path) src.Source.ast

let analyze_file st (src : Source.t) =
  let ctx =
    {
      st;
      file = src.Source.path;
      modname = module_name_of_path src.Source.path;
      fn_stack = [];
      locals = [];
      tracked = [];
      owned = [];
      while_depth = 0;
    }
  in
  walk_structure ctx src.Source.ast

(* ------------------------------------------------------------------ *)
(* LOCK-ORDER: transitive acquisition sets and cycle detection         *)
(* ------------------------------------------------------------------ *)

module SS = Set.Make (String)

(* acquires*(f): every lock f may take, directly or via calls into
   scanned functions (fixpoint over the call graph). *)
let transitive_acquires st =
  let acq = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key s -> Hashtbl.replace acq key (SS.of_list s.f_acquires))
    st.funcs;
  let get key = Option.value ~default:SS.empty (Hashtbl.find_opt acq key) in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun key s ->
        let cur = get key in
        let next =
          List.fold_left
            (fun set (callee, _, _) -> SS.union set (get callee))
            cur s.f_calls
        in
        if not (SS.equal next cur) then begin
          Hashtbl.replace acq key next;
          changed := true
        end)
      st.funcs
  done;
  get

(* All lock-nesting edges: lexical nesting recorded during the walk,
   plus held-set x acquires*(callee) at every call site. *)
let lock_edges st =
  let acq = transitive_acquires st in
  let edges = Hashtbl.create 64 in
  let add a b site =
    if not (Hashtbl.mem edges (a, b)) then Hashtbl.add edges (a, b) site
  in
  Hashtbl.iter
    (fun _ s ->
      List.iter (fun (a, b, site) -> add a b site) s.f_edges;
      List.iter
        (fun (callee, held, site) ->
          SS.iter (fun b -> List.iter (fun a -> add a b site) held)
            (acq callee))
        s.f_calls)
    st.funcs;
  edges

(* Strongly connected components of the lock graph (Tarjan).  An edge
   inside an SCC of size > 1 — or a self-edge — participates in a
   cycle. *)
let sccs nodes succs =
  let index = Hashtbl.create 16 and low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 in
  let comp = Hashtbl.create 16 in
  let ncomp = ref 0 in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: tl ->
          stack := tl;
          Hashtbl.remove on_stack w;
          Hashtbl.replace comp w !ncomp;
          if w <> v then pop ()
      in
      pop ();
      incr ncomp
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) nodes;
  comp

let findings st = st.findings

let lock_order_findings st =
  let edges = lock_edges st in
  let nodes =
    Hashtbl.fold (fun (a, b) _ acc -> SS.add a (SS.add b acc)) edges SS.empty
  in
  let succs v =
    Hashtbl.fold
      (fun (a, b) _ acc -> if a = v then b :: acc else acc)
      edges []
  in
  let comp = sccs (SS.elements nodes) succs in
  let scc_sizes = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ c ->
      Hashtbl.replace scc_sizes c
        (1 + Option.value ~default:0 (Hashtbl.find_opt scc_sizes c)))
    comp;
  let cyclic (a, b) =
    a = b
    || Hashtbl.find comp a = Hashtbl.find comp b
       && Hashtbl.find scc_sizes (Hashtbl.find comp a) > 1
  in
  Hashtbl.fold
    (fun (a, b) site acc ->
      if cyclic (a, b) then
        {
          Finding.rule = lock_order;
          severity = Finding.Error;
          file = site.s_file;
          line = site.s_line;
          col = site.s_col;
          message =
            (if a = b then
               Printf.sprintf
                 "lock %s re-acquired while already held (self-deadlock: \
                  stdlib mutexes are not reentrant)"
                 a
             else
               let members =
                 SS.elements
                   (SS.filter
                      (fun v -> Hashtbl.find comp v = Hashtbl.find comp a)
                      nodes)
               in
               Printf.sprintf
                 "lock acquisition %s -> %s closes a cycle through {%s}: \
                  pick one global order and stick to it"
                 a b
                 (String.concat ", " members));
        }
        :: acc
      else acc)
    edges []
