(** The YCSB-shaped closed-loop workload driver over a sharded keyspace.

    One OS thread per client; each draws keys and operation kinds from
    its own seeded generator and runs the chosen registry protocol
    per key through the placement {!Router}.  Every operation's latency
    is recorded; full operation histories only for the hottest
    [sample_keys] ranks, so {!Checker.Atomicity} can pass per-key
    verdicts without the driver holding millions of operations. *)

type spec = {
  clients : int;
  ops_per_client : int;
  keys : int;  (** keyspace size (ranks 0..keys-1) *)
  dist : Workload.Ycsb.dist;
  mix : Workload.Ycsb.mix;
  seed : int;
  sample_keys : int;
      (** record + atomicity-check the first [sample_keys] ranks *)
  think : float;  (** per-op pause in seconds; 0 = closed loop *)
}

val default_spec : spec

type key_verdict = {
  vkey : string;
  vops : int;  (** operations recorded against this key *)
  atomic : bool;
  witness : Checker.Witness.t option;  (** present iff not [atomic] *)
}

type result = {
  duration : float;
  ops : int;  (** completed operations across all clients *)
  throughput : float;  (** completed operations per second *)
  all_lat : Workload.Stats.summary;
  read_lat : Workload.Stats.summary;
  write_lat : Workload.Stats.summary;  (** latencies in seconds *)
  verdicts : key_verdict list;  (** one per sampled key, rank order *)
  starved : int;  (** clients aborted by [Endpoint.Unavailable] *)
  late : int;
  retries : int;
  dropped : int;  (** mux demux drops (unknown client / stale key) *)
  group_ops : int array;  (** operations routed to each shard group *)
  keys_touched : int;  (** distinct keys operated on *)
  online : Transport.Check_sink.report option;
      (** Streaming checker report when the run had
          [~live_check:true]; [None] otherwise. *)
}

val run :
  ?transport:Transport.Cluster.transport ->
  ?rt_timeout:float ->
  ?max_rt_retries:int ->
  ?faults:Transport.Faults.t ->
  ?register:Protocol.Register_intf.t ->
  ?live_check:bool ->
  ?on_violation:(string -> Checker.Witness.t -> unit) ->
  cluster:Kv_cluster.t ->
  spec ->
  result
(** [run ~cluster spec] drives [spec.clients] threads of
    [spec.ops_per_client] operations each against the sharded keyspace.
    [register] defaults to the multi-writer ABD descendant
    ({!Registers.Registry.abd_mwmr}); protocols with a writer bound
    (e.g. single-writer naive registers) are rejected unless the mix is
    read-only.  [live_check] streams {e every} key's completed
    operations through a {!Transport.Check_sink} into the
    {!Checker.Online} checker while the run is in flight — the
    checker's window stays bounded, so unlike the sampled batch path
    this covers the whole keyspace; violations surface through
    [on_violation] as they happen and the report lands in
    [result.online].  [faults] installs a client-side fault plan (e.g. a
    {!Transport.Geo} profile's latency rules) on every per-group plane.
    Raises [Invalid_argument] on bad specs. *)
