(* Consistent-hash placement of keys onto shard groups.

   Each group contributes [vnodes] points to a hash ring; a key belongs
   to the group owning the first point clockwise of the key's own hash.
   Because group [g]'s points depend only on [g] (never on how many
   groups exist), growing an [n]-group ring to [n+1] only *adds* points:
   a key either keeps its successor point — same group as before — or is
   captured by one of the new group's points.  Shrinking is the mirror
   image.  That is the ~K/N remap property the qcheck suite pins down,
   and it is why the ring beats [hash mod n] (which remaps almost
   everything on every resize).

   Hashing is FNV-1a over the full 64-bit state — deterministic across
   runs and processes, unlike [Hashtbl.hash] which is documented to vary;
   placement must agree between a client today and a client tomorrow.
   Plain FNV-1a mixes short, similar strings ("shard-0/vnode-1", "user42")
   mostly into the low bits, and ring order is decided by the *high* bits,
   so we finish with a 64-bit avalanche (murmur3's fmix64) to spread the
   entropy across the whole word. *)

let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let avalanche h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let hash64 s =
  let h = ref fnv_offset in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) fnv_prime)
    s;
  avalanche !h

let default_vnodes = 128

type t = {
  groups : int;
  vnodes : int;
  (* The ring, sorted by unsigned point hash: [points.(i)] is owned by
     [owners.(i)].  Ties (astronomically unlikely) break by owner, so
     the sort — and therefore placement — is deterministic. *)
  points : int64 array;
  owners : int array;
}

let point_name g v = Printf.sprintf "shard-%d/vnode-%d" g v

let make ?(vnodes = default_vnodes) ~groups () =
  if groups < 1 then invalid_arg "Placement.make: groups must be >= 1";
  if vnodes < 1 then invalid_arg "Placement.make: vnodes must be >= 1";
  let pts = Array.make (groups * vnodes) (0L, 0) in
  for g = 0 to groups - 1 do
    for v = 0 to vnodes - 1 do
      pts.((g * vnodes) + v) <- (hash64 (point_name g v), g)
    done
  done;
  Array.sort
    (fun (ha, ga) (hb, gb) ->
      match Int64.unsigned_compare ha hb with 0 -> compare ga gb | c -> c)
    pts;
  {
    groups;
    vnodes;
    points = Array.map fst pts;
    owners = Array.map snd pts;
  }

let groups t = t.groups

let vnodes t = t.vnodes

(* First ring point at or clockwise-after the key's hash (unsigned),
   wrapping to point 0 past the ring's end: binary search for the
   leftmost point >= h. *)
let group_of t key =
  let h = hash64 key in
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare t.points.(mid) h < 0 then lo := mid + 1
    else hi := mid
  done;
  t.owners.(if !lo = n then 0 else !lo)

let spread t keys =
  let counts = Array.make t.groups 0 in
  List.iter
    (fun k ->
      let g = group_of t k in
      counts.(g) <- counts.(g) + 1)
    keys;
  counts
