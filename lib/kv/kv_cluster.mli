(** A sharded keyspace deployment: [groups] independent loopback
    register clusters plus the consistent-hash {!Placement} ring that
    assigns every key to exactly one group.

    Groups never communicate — each key's register lives entirely inside
    one group's [S]/[S − tol] quorum system, so per-key atomicity (and
    therefore keyspace atomicity, which is per-key by definition)
    composes across shards while throughput scales with the group
    count. *)

type t

val start :
  ?faults:Transport.Faults.t ->
  ?shards:int ->
  ?vnodes:int ->
  groups:int ->
  s:int ->
  tol:int ->
  unit ->
  t
(** [start ~groups ~s ~tol ()] spawns [groups × s] servers:
    [groups] clusters of [s], each tolerating [tol] crashes.  [shards]
    is each server's reactor event-loop count, [vnodes] the placement
    ring's per-group point count, [faults] a plan installed on every
    server of every group. *)

val group_count : t -> int

val group : t -> int -> Transport.Cluster.t
(** The [g]-th shard group's cluster (kill/restart/replica access). *)

val placement : t -> Placement.t

val group_of : t -> string -> int
(** The shard group owning [key]. *)

val s : t -> int
val tolerance : t -> int
val quorum : t -> int

val shutdown : t -> unit
(** Stop every server of every group. *)
