(** The client-side placement router over the keyspace.

    One router per process views every shard group's data plane: on the
    [`Mux] transport it owns one shared {!Transport.Mux.t} per group
    (all clients ride [groups × s] connections total); on [`Sockets]
    each client owns private per-group endpoints.  {!key_ctx} then turns
    (client, key) into a {!Registers.Client_core.ctx} whose endpoint
    stamps the key on every round trip — the protocol algorithms stay
    key-blind and run per-key unchanged. *)

type t

val create :
  ?transport:Transport.Cluster.transport ->
  ?rt_timeout:float ->
  ?max_rt_retries:int ->
  ?faults:Transport.Faults.t ->
  clients:int ->
  Kv_cluster.t ->
  t
(** [create ~clients kc] builds the process-wide plane view.  [clients]
    is the client-population size the per-key contexts report as their
    reader count [r] (the fast-read admissibility scan needs it).
    [faults] installs a client-side fault plan on every per-group plane
    — e.g. a {!Transport.Geo} profile's latency rules. *)

val transport : t -> Transport.Cluster.transport

type client
(** One client's view: an endpoint per shard group plus its node
    identity.  Belongs to one thread; operations are sequential. *)

val client : t -> index:int -> client
(** Client [index]'s handles.  Its node id is [s + index] (servers
    first, as in {!Protocol.Topology}); the same id serves as writer
    [index] (tag wid) and reader [index], since KV clients interleave
    both kinds. *)

val index : client -> int

val node : client -> int

val group_endpoint : client -> int -> Transport.Endpoint.t
(** The client's endpoint for shard group [g] (stats/tests). *)

val key_ctx : client -> string -> Registers.Client_core.ctx
(** The backend context for operating on [key]: endpoints pinned to
    [key]'s shard group carrying [key] on every round trip, with the
    group's [s]/[t] and the router's client population as [r]. *)

val rounds_completed : client -> int
val late_replies : client -> int
val retries : client -> int

val dropped_replies : t -> int
(** Sum of {!Transport.Mux.dropped_replies} across the per-group shared
    planes (0 on [`Sockets]). *)

val close_client : client -> unit

val shutdown : t -> unit
(** Shut down the shared per-group planes ([`Mux]); call after every
    client is closed. *)
