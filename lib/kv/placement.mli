(** Consistent-hash placement of register keys onto shard groups.

    Each group plants [vnodes] points on a 64-bit hash ring; a key
    belongs to the group owning the first point clockwise of the key's
    hash.  Group [g]'s points depend only on [g], so resizing from [n]
    to [n ± 1] groups remaps only the ~K/N keys whose successor point
    changes hands — every other key stays put (the property the qcheck
    suite pins).  Hashing is FNV-1a, deterministic across runs and
    processes. *)

type t

val default_vnodes : int
(** 128 — enough that per-group load imbalance stays within a few tens
    of percent of the mean. *)

val make : ?vnodes:int -> groups:int -> unit -> t

val groups : t -> int
val vnodes : t -> int

val group_of : t -> string -> int
(** The shard group owning [key], in [0 .. groups-1]. *)

val spread : t -> string list -> int array
(** Per-group key counts for a concrete key population (balance
    reporting and tests). *)

val hash64 : string -> int64
(** The raw FNV-1a key hash (exposed for tests). *)
