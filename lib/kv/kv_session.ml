open Histories
open Registers
open Simulation
open Transport
open Workload

(* The YCSB-shaped closed-loop driver over a sharded keyspace: one OS
   thread per client, each drawing keys and operation kinds from its own
   seeded generator, running the chosen registry protocol per key
   through the placement router.  Every operation's latency lands in a
   constant-memory histogram; full operation histories are kept only
   for a small sampled key set, so the batch checker can pass per-key
   verdicts without the driver holding millions of operations — and
   with [live_check] the streaming checker covers every key in O(window)
   memory on top. *)

type spec = {
  clients : int;
  ops_per_client : int;
  keys : int;
  dist : Ycsb.dist;
  mix : Ycsb.mix;
  seed : int;
  sample_keys : int; (* record + check the first [sample_keys] ranks *)
  think : float;
}

let default_spec =
  {
    clients = 4;
    ops_per_client = 50;
    keys = 100;
    dist = Ycsb.Zipfian Ycsb.default_theta;
    mix = Ycsb.A;
    seed = 42;
    sample_keys = 4;
    think = 0.0;
  }

type key_verdict = {
  vkey : string;
  vops : int; (* operations recorded against this key *)
  atomic : bool;
  witness : Checker.Witness.t option;
}

type result = {
  duration : float;
  ops : int; (* completed operations across all clients *)
  throughput : float; (* completed ops per second *)
  all_lat : Stats.summary;
  read_lat : Stats.summary;
  write_lat : Stats.summary; (* latencies in seconds *)
  verdicts : key_verdict list;
  starved : int; (* clients aborted by Unavailable *)
  late : int;
  retries : int;
  dropped : int;
  group_ops : int array; (* operations routed to each shard group *)
  keys_touched : int;
  online : Check_sink.report option;
}

(* One sampled operation: same shape as the session runner's private
   logs — created at invocation (so an op pending at the end of the run
   stays visible to the checker as pending), completed in the
   continuation. *)
type sop = {
  s_kind : Op.kind;
  s_reader : bool;
  s_inv : float;
  mutable s_resp : float option;
  mutable s_result : int option;
}

let history_of_key records =
  let ops =
    List.map
      (fun (client, s) ->
        {
          Op.id = 0;
          proc = (if s.s_reader then Op.Reader client else Op.Writer client);
          kind = s.s_kind;
          inv = s.s_inv;
          resp = s.s_resp;
          result = s.s_result;
        })
      records
  in
  let ops =
    List.sort
      (fun (a : Op.t) b -> compare (a.Op.inv, a.Op.proc) (b.Op.inv, b.Op.proc))
      ops
  in
  History.of_ops (List.mapi (fun id (o : Op.t) -> { o with Op.id }) ops)

let op_of_sop client s =
  {
    Op.id = 0;
    proc = (if s.s_reader then Op.Reader client else Op.Writer client);
    kind = s.s_kind;
    inv = s.s_inv;
    resp = s.s_resp;
    result = s.s_result;
  }

let run ?(transport = `Mux) ?rt_timeout ?max_rt_retries ?faults
    ?(register = Registry.abd_mwmr) ?(live_check = false) ?on_violation
    ~cluster spec =
  if spec.clients < 1 then invalid_arg "Kv_session.run: clients must be >= 1";
  if spec.keys < 1 then invalid_arg "Kv_session.run: keys must be >= 1";
  (match Registry.max_writers register with
  | Some m when spec.clients > m && spec.mix <> Ycsb.C ->
    invalid_arg
      (Printf.sprintf "Kv_session.run: %s accepts at most %d writer(s)"
         (Registry.name register) m)
  | _ -> ());
  let algo = Registry.client_algo register in
  let router =
    Router.create ~transport ?rt_timeout ?max_rt_retries ?faults
      ~clients:spec.clients cluster
  in
  let ycsb = Ycsb.create ~dist:spec.dist ~keys:spec.keys in
  let nsample = min spec.sample_keys spec.keys in
  let sampled = Hashtbl.create (max 1 nsample) in
  for rank = 0 to nsample - 1 do
    Hashtbl.replace sampled (Ycsb.key_name rank) ()
  done;
  let ngroups = Kv_cluster.group_count cluster in
  (* Live checking covers every key, not just the sampled ranks: the
     streaming checker's window stays bounded regardless of how many
     operations flow, so there is no need to down-sample. *)
  let sink =
    if live_check then Some (Check_sink.create ?on_violation ~now:Clock.now ())
    else None
  in
  let ports = Array.init spec.clients (fun _ -> Option.map Check_sink.port sink) in
  (* Per-thread result slots — no cross-thread mutation, no locks.  All
     timestamps are monotonic ({!Clock.now}), one clock for every
     thread, so the merged per-key histories order correctly. *)
  (* Per-thread constant-memory histograms instead of per-op lists:
     the million-op soak records every latency in ~5KB per series. *)
  let read_hists = Array.init spec.clients (fun _ -> Stats.Hist.create ()) in
  let write_hists = Array.init spec.clients (fun _ -> Stats.Hist.create ()) in
  let sample_logs = Array.make spec.clients [] in
  let group_ops = Array.init spec.clients (fun _ -> Array.make ngroups 0) in
  let touched = Array.init spec.clients (fun _ -> Hashtbl.create 64) in
  let completed = Array.make spec.clients 0 in
  let starved = Array.make spec.clients false in
  let late_counts = Array.make spec.clients 0 in
  let retry_counts = Array.make spec.clients 0 in
  (* Distinct written values without a shared counter: client [i] owns
     the contiguous block starting at [initial + 1 + i * ops]. *)
  let value_base = History.initial_value + 1 in
  let body i () =
    let rng = Rng.create ~seed:(spec.seed + ((i + 1) * 7919)) in
    let cl = Router.client router ~index:i in
    (* Protocol instances are per (client, key): the writer/reader
       closures carry per-register state (clocks, valQueues), so one
       instance per key this client touches, memoized. *)
    let writers = Hashtbl.create 64 in
    let readers = Hashtbl.create 64 in
    let writer_for key =
      match Hashtbl.find_opt writers key with
      | Some w -> w
      | None ->
        let w = algo.Client_core.new_writer (Router.key_ctx cl key) ~writer:i in
        Hashtbl.replace writers key w;
        w
    in
    let reader_for key =
      match Hashtbl.find_opt readers key with
      | Some r -> r
      | None ->
        let r = algo.Client_core.new_reader (Router.key_ctx cl key) ~reader:i in
        Hashtbl.replace readers key r;
        r
    in
    let port = ports.(i) in
    let invoke () =
      match port with Some p -> Check_sink.invoked p | None -> Clock.now ()
    in
    let publish key s =
      match port with
      | Some p -> Check_sink.completed p ~key (op_of_sop i s)
      | None -> ()
    in
    let current = ref None in
    let slog = ref [] in
    (try
       for n = 0 to spec.ops_per_client - 1 do
         let rank = Ycsb.next_key ycsb rng in
         let key = Ycsb.key_name rank in
         Hashtbl.replace touched.(i) key ();
         let g = Kv_cluster.group_of cluster key in
         group_ops.(i).(g) <- group_ops.(i).(g) + 1;
         let is_sampled = Hashtbl.mem sampled key in
         let record s =
           if is_sampled then slog := (key, s) :: !slog;
           current := Some (key, s)
         in
         (match Ycsb.next_op spec.mix rng with
         | `Write ->
           let write = writer_for key in
           let value = value_base + (i * spec.ops_per_client) + n in
           let t0 = invoke () in
           let s =
             {
               s_kind = Op.Write value;
               s_reader = false;
               s_inv = t0;
               s_resp = None;
               s_result = None;
             }
           in
           record s;
           write ~payload:value ~k:(fun _tag ->
               let t1 = Clock.now () in
               s.s_resp <- Some t1;
               Stats.Hist.add write_hists.(i) (t1 -. t0);
               completed.(i) <- completed.(i) + 1);
           publish key s
         | `Read ->
           let read = reader_for key in
           let t0 = invoke () in
           let s =
             {
               s_kind = Op.Read;
               s_reader = true;
               s_inv = t0;
               s_resp = None;
               s_result = None;
             }
           in
           record s;
           read ~k:(fun value _tag ->
               let t1 = Clock.now () in
               s.s_resp <- Some t1;
               s.s_result <- Some value;
               Stats.Hist.add read_hists.(i) (t1 -. t0);
               completed.(i) <- completed.(i) + 1);
           publish key s);
         if spec.think > 0.0 then Thread.delay spec.think
       done
     with Endpoint.Unavailable _ ->
       starved.(i) <- true;
       (* Keep the aborted operation visible to the checker as
          pending — an interrupted write may have taken effect at a
          quorum minority. *)
       (match !current with
       | Some (key, s) when s.s_resp = None -> publish key s
       | _ -> ()));
    sample_logs.(i) <- !slog;
    late_counts.(i) <- Router.late_replies cl;
    retry_counts.(i) <- Router.retries cl;
    Router.close_client cl
  in
  Option.iter Check_sink.start sink;
  let t0 = Clock.now () in
  let threads =
    List.init spec.clients (fun i -> Thread.create (body i) ())
  in
  List.iter Thread.join threads;
  let duration = Clock.now () -. t0 in
  let online = Option.map Check_sink.stop sink in
  let dropped = Router.dropped_replies router in
  Router.shutdown router;
  (* Aggregate the per-thread histograms. *)
  let read_h = Stats.Hist.create () in
  let write_h = Stats.Hist.create () in
  Array.iter (fun h -> Stats.Hist.merge ~into:read_h h) read_hists;
  Array.iter (fun h -> Stats.Hist.merge ~into:write_h h) write_hists;
  let all_h = Stats.Hist.create () in
  Stats.Hist.merge ~into:all_h read_h;
  Stats.Hist.merge ~into:all_h write_h;
  let all_lat = Stats.Hist.summary all_h in
  let read_lat = Stats.Hist.summary read_h in
  let write_lat = Stats.Hist.summary write_h in
  let ops = Array.fold_left ( + ) 0 completed in
  let verdicts =
    List.init nsample (fun rank ->
        let key = Ycsb.key_name rank in
        let records =
          Array.to_list
            (Array.mapi
               (fun i log ->
                 List.filter_map
                   (fun (k, s) -> if k = key then Some (i, s) else None)
                   log)
               sample_logs)
          |> List.concat
        in
        let history = history_of_key records in
        let atomic, witness =
          match Checker.Atomicity.check history with
          | Ok () -> (true, None)
          | Error w -> (false, Some w)
        in
        { vkey = key; vops = List.length records; atomic; witness })
  in
  let group_totals = Array.make ngroups 0 in
  Array.iter
    (fun per ->
      Array.iteri (fun g n -> group_totals.(g) <- group_totals.(g) + n) per)
    group_ops;
  let distinct = Hashtbl.create 256 in
  Array.iter
    (fun tbl -> Hashtbl.iter (fun k () -> Hashtbl.replace distinct k ()) tbl)
    touched;
  {
    duration;
    ops;
    throughput = (if duration > 0.0 then float_of_int ops /. duration else 0.0);
    all_lat;
    read_lat;
    write_lat;
    verdicts;
    starved = Array.fold_left (fun a b -> if b then a + 1 else a) 0 starved;
    late = Array.fold_left ( + ) 0 late_counts;
    retries = Array.fold_left ( + ) 0 retry_counts;
    dropped;
    group_ops = group_totals;
    keys_touched = Hashtbl.length distinct;
    online;
  }
