open Registers
open Transport

(* The client-side placement router: one process-wide view of every
   shard group's data plane, plus per-client handles that turn a key
   into a {!Client_core.ctx} pinned to that key's group.

   On the [`Mux] plane the router owns one shared {!Mux.t} per group —
   all clients in the process ride [groups × s] connections total.  On
   [`Sockets] each client owns its private per-group endpoints, the
   baseline the mux is measured against, exactly as in the single-
   register stack.  Either way the protocol algorithms stay key-blind:
   {!key_ctx} hands them an endpoint that stamps the key on every round
   trip, so any registry protocol runs per-key unchanged. *)

type t = {
  kc : Kv_cluster.t;
  transport : Cluster.transport;
  muxes : Mux.t option array; (* one per group when [`Mux] *)
  rt_timeout : float option;
  max_rt_retries : int option;
  faults : Faults.t option; (* client-side plan (geo profiles, chaos) *)
  readers : int; (* the ctx's r: how many clients may read *)
}

let create ?(transport = `Mux) ?rt_timeout ?max_rt_retries ?faults ~clients kc
    =
  let n = Kv_cluster.group_count kc in
  let muxes =
    match transport with
    | `Sockets -> Array.make n None
    | `Mux ->
      Array.init n (fun g ->
          Some
            (Mux.create ?rt_timeout ?max_rt_retries ?faults
               ~servers:(Cluster.addrs (Kv_cluster.group kc g))
               ~quorum:(Kv_cluster.quorum kc) ()))
  in
  { kc; transport; muxes; rt_timeout; max_rt_retries; faults; readers = clients }

let transport t = t.transport

type client = {
  index : int;
  node : int; (* id recorded in the servers' updated sets *)
  eps : Endpoint.t array; (* one per shard group *)
  router : t;
}

(* KV clients interleave reads and writes, so one node id serves both
   roles: client [index] is writer [index] (its wid) and reader [index].
   Ids start past the per-group server ids, mirroring Topology's
   servers-first numbering. *)
let client t ~index =
  let node = Kv_cluster.s t.kc + index in
  let eps =
    Array.init (Kv_cluster.group_count t.kc) (fun g ->
        match t.muxes.(g) with
        | Some m -> Endpoint.of_mux (Mux.client m ~client:node)
        | None ->
          Endpoint.create ?rt_timeout:t.rt_timeout
            ?max_rt_retries:t.max_rt_retries ?faults:t.faults ~client:node
            ~servers:(Cluster.addrs (Kv_cluster.group t.kc g))
            ~quorum:(Kv_cluster.quorum t.kc) ())
  in
  { index; node; eps; router = t }

let index c = c.index

let node c = c.node

let group_endpoint c g = c.eps.(g)

let key_ctx c key =
  let t = c.router in
  let g = Kv_cluster.group_of t.kc key in
  let ep = Endpoint.keyed_endpoint c.eps.(g) ~key in
  {
    Client_core.writer_ep = (fun _ -> ep);
    reader_ep = (fun _ -> ep);
    s = Kv_cluster.s t.kc;
    t = Kv_cluster.tolerance t.kc;
    r = t.readers;
  }

let sum_eps f c = Array.fold_left (fun acc ep -> acc + f ep) 0 c.eps

let rounds_completed c = sum_eps Endpoint.rounds_completed c

let late_replies c = sum_eps Endpoint.late_replies c

let retries c = sum_eps Endpoint.retries c

let dropped_replies t =
  Array.fold_left
    (fun acc m ->
      acc + match m with Some m -> Mux.dropped_replies m | None -> 0)
    0 t.muxes

let close_client c = Array.iter Endpoint.close c.eps

let shutdown t = Array.iter (fun m -> Option.iter Mux.shutdown m) t.muxes
