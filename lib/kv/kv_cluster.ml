open Transport

(* A sharded keyspace deployment: [groups] independent register
   clusters, each [s] servers tolerating [tol] crashes, plus the
   placement ring that says which group owns which key.  Groups never
   talk to each other — per-key atomicity composes: every key lives
   entirely inside one group's quorum system, so the whole keyspace is
   atomic iff each register is (the property that lets shards scale
   independently). *)

type t = {
  groups : Cluster.t array;
  placement : Placement.t;
  s : int;
  tol : int;
}

let start ?faults ?shards ?vnodes ~groups ~s ~tol () =
  if groups < 1 then invalid_arg "Kv_cluster.start: groups must be >= 1";
  let cls =
    Array.init groups (fun _ -> Cluster.start ?faults ?shards ~s ~tol ())
  in
  { groups = cls; placement = Placement.make ?vnodes ~groups (); s; tol }

let group_count t = Array.length t.groups

let group t g = t.groups.(g)

let placement t = t.placement

let group_of t key = Placement.group_of t.placement key

let s t = t.s

let tolerance t = t.tol

let quorum t = t.s - t.tol

let shutdown t = Array.iter Cluster.shutdown t.groups
