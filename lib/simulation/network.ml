type 'msg envelope = {
  id : int;
  src : int;
  dst : int;
  sent_at : float;
  payload : 'msg;
}

type action = Deliver | Delay of float | Hold | Drop

type stats = { sent : int; delivered : int; dropped : int; held_ever : int }

type 'msg t = {
  engine : Engine.t;
  latency : Latency.t;
  rng : Rng.t;
  trace : Trace.t option;
  handlers : (int, 'msg envelope -> unit) Hashtbl.t;
  crashed : (int, unit) Hashtbl.t;
  mutable filter : ('msg envelope -> action) option;
  mutable forbidden : (src:int -> dst:int -> bool) list;
  held : 'msg envelope Queue.t; (* FIFO: original send order *)
  mutable next_id : int;
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_dropped : int;
  mutable n_held_ever : int;
}

let create engine ~latency ?trace () =
  {
    engine;
    latency;
    rng = Rng.split (Engine.rng engine);
    trace;
    handlers = Hashtbl.create 64;
    crashed = Hashtbl.create 8;
    filter = None;
    forbidden = [];
    held = Queue.create ();
    next_id = 0;
    n_sent = 0;
    n_delivered = 0;
    n_dropped = 0;
    n_held_ever = 0;
  }

let engine t = t.engine

let log t ~tag detail =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.add tr ~time:(Engine.now t.engine) ~tag detail

let register t ~node handler = Hashtbl.replace t.handlers node handler

let is_crashed t node = Hashtbl.mem t.crashed node

let crashed_count t = Hashtbl.length t.crashed

let crash t node =
  if not (is_crashed t node) then begin
    Hashtbl.replace t.crashed node ();
    log t ~tag:"crash" (Printf.sprintf "node %d crashed" node)
  end

let drop t env reason =
  t.n_dropped <- t.n_dropped + 1;
  log t ~tag:"drop"
    (Printf.sprintf "#%d %d->%d (%s)" env.id env.src env.dst reason)

let deliver_later t env ~delay =
  Engine.schedule t.engine ~delay (fun () ->
      if is_crashed t env.dst || is_crashed t env.src then
        drop t env "endpoint crashed before delivery"
      else begin
        match Hashtbl.find_opt t.handlers env.dst with
        | None ->
          invalid_arg
            (Printf.sprintf "Network: no handler registered for node %d"
               env.dst)
        | Some h ->
          t.n_delivered <- t.n_delivered + 1;
          log t ~tag:"deliver"
            (Printf.sprintf "#%d %d->%d" env.id env.src env.dst);
          h env
      end)

let send t ~src ~dst payload =
  List.iter
    (fun p ->
      if p ~src ~dst then
        invalid_arg
          (Printf.sprintf "Network: send %d->%d is forbidden by the model"
             src dst))
    t.forbidden;
  let env = { id = t.next_id; src; dst; sent_at = Engine.now t.engine; payload } in
  t.next_id <- t.next_id + 1;
  t.n_sent <- t.n_sent + 1;
  log t ~tag:"send" (Printf.sprintf "#%d %d->%d" env.id src dst);
  if is_crashed t src || is_crashed t dst then drop t env "endpoint crashed"
  else begin
    let action =
      match t.filter with None -> Deliver | Some f -> f env
    in
    match action with
    | Deliver ->
      let delay = Latency.sample t.latency t.rng ~src ~dst in
      deliver_later t env ~delay
    | Delay d -> deliver_later t env ~delay:d
    | Hold ->
      t.n_held_ever <- t.n_held_ever + 1;
      Queue.add env t.held;
      log t ~tag:"hold" (Printf.sprintf "#%d %d->%d" env.id src dst)
    | Drop -> drop t env "filtered"
  end

let set_filter t f = t.filter <- f

let forbid t p = t.forbidden <- p :: t.forbidden

let release_held ?(keep = fun _ -> false) t =
  let kept, released = List.partition keep (List.of_seq (Queue.to_seq t.held)) in
  Queue.clear t.held;
  List.iter (fun env -> Queue.add env t.held) kept;
  List.iter
    (fun env ->
      log t ~tag:"release" (Printf.sprintf "#%d %d->%d" env.id env.src env.dst);
      deliver_later t env ~delay:0.0)
    released

let held_count t = Queue.length t.held

let stats t =
  {
    sent = t.n_sent;
    delivered = t.n_delivered;
    dropped = t.n_dropped;
    held_ever = t.n_held_ever;
  }
