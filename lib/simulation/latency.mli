(** Message-delay models.

    A latency model maps a (source, destination) pair and a random stream
    to a one-way message delay.  The paper's model is asynchronous —
    correctness never depends on delays — so latency models only shape the
    *performance* experiments (Fig. 2 lattice, the motivation benchmark)
    and diversify schedules for the checker-driven experiments. *)

type t

val name : t -> string

val sample : t -> Rng.t -> src:int -> dst:int -> float
(** Draw a delay for a message from [src] to [dst]. *)

val constant : float -> t
(** Every message takes exactly the given delay. *)

val uniform : lo:float -> hi:float -> t
(** Delays uniform in [\[lo, hi)]. *)

val exponential : mean:float -> t
(** Exponential delays (heavy-ish tail) with the given mean. *)

val lognormal_like : median:float -> spread:float -> t
(** A skewed distribution approximating WAN behaviour: [median * spread^g]
    where [g] is a centered uniform sample.  [spread >= 1.0]. *)

val geo : region_of:(int -> int) -> local:float -> cross:float -> jitter:float -> t
(** Geo-replication model: messages within a region take about [local],
    messages across regions about [cross], each perturbed by a uniform
    jitter in [\[0, jitter)].  [region_of] maps a node id to its region. *)

val matrix :
  name:string ->
  region_of:(int -> int) ->
  delay:float array array ->
  jitter:float array array ->
  t
(** The full-matrix generalisation of {!geo}: a message from a node in
    region [a] to one in region [b] takes [delay.(a).(b)] seconds plus a
    uniform jitter in [\[0, jitter.(a).(b))].  Rows are source regions,
    columns destinations, so asymmetric (up ≠ down) links are
    expressible.  Both matrices must be square and of equal size.
    [Transport.Geo] profiles compile to this model and to equivalent
    live-transport fault rules, so "who is far from whom" means the
    same thing on the simulator and on sockets.  Raises
    [Invalid_argument] on shape mismatch. *)

val custom : name:string -> (Rng.t -> src:int -> dst:int -> float) -> t
(** Escape hatch for tests and adversarial schedules. *)
