type t = { name : string; draw : Rng.t -> src:int -> dst:int -> float }

let name t = t.name

let sample t rng ~src ~dst = t.draw rng ~src ~dst

let constant d =
  { name = Printf.sprintf "constant(%g)" d; draw = (fun _ ~src:_ ~dst:_ -> d) }

let uniform ~lo ~hi =
  {
    name = Printf.sprintf "uniform(%g,%g)" lo hi;
    draw = (fun rng ~src:_ ~dst:_ -> Rng.float_in_range rng ~lo ~hi);
  }

let exponential ~mean =
  {
    name = Printf.sprintf "exp(%g)" mean;
    draw = (fun rng ~src:_ ~dst:_ -> Rng.exponential rng ~mean);
  }

let lognormal_like ~median ~spread =
  assert (spread >= 1.0);
  {
    name = Printf.sprintf "lognormal(%g,%g)" median spread;
    draw =
      (fun rng ~src:_ ~dst:_ ->
        let g = Rng.float_in_range rng ~lo:(-1.0) ~hi:1.0 in
        median *. (spread ** g));
  }

let geo ~region_of ~local ~cross ~jitter =
  {
    name = Printf.sprintf "geo(local=%g,cross=%g)" local cross;
    draw =
      (fun rng ~src ~dst ->
        let base = if region_of src = region_of dst then local else cross in
        base +. Rng.float rng ~bound:jitter);
  }

let matrix ~name ~region_of ~delay ~jitter =
  let regions = Array.length delay in
  if regions = 0 then invalid_arg "Latency.matrix: empty delay matrix";
  let square m = Array.for_all (fun row -> Array.length row = regions) m in
  if Array.length jitter <> regions || not (square delay) || not (square jitter)
  then invalid_arg "Latency.matrix: delay/jitter must be equal square matrices";
  {
    name;
    draw =
      (fun rng ~src ~dst ->
        let a = region_of src and b = region_of dst in
        (* The jitter draw happens even at bound 0 (it returns 0.0), so
           the random stream's consumption does not depend on which
           region pair a message crosses. *)
        delay.(a).(b) +. Rng.float rng ~bound:jitter.(a).(b));
  }

let custom ~name draw = { name; draw }
