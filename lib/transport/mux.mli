(** A multiplexed live data plane: one TCP connection per server per
    process, shared by every client endpoint.

    The per-client-socket transport ({!Endpoint.create}) opens [C × S]
    sockets for [C] clients against [S] servers and spins a fresh
    [select] poll loop inside every operation.  At production client
    counts that drowns the paper's round-trip economics in transport
    overhead.  The mux replaces it with:

    - [S] shared connections, each written under a per-connection lock
      with a reused encode buffer (no per-frame allocation once warm);
    - one demux reader thread per connection that decodes [Reply] frames
      and routes them by [(client, rt)] into per-client mailboxes
      (mutex + condvar) — no [select], no per-iteration fd scans;
    - {!exec} = encode once, enqueue on the [S] shared connections,
      block on the caller's own mailbox until quorum or timeout.

    The round-trip contract is unchanged from {!Endpoint}: broadcast to
    all [S] servers, complete on the first [S − t] replies in arrival
    order, count stragglers late, re-broadcast on timeout a bounded
    number of times, raise {!Unavailable} when the retry budget is
    spent.  Crashed servers sever their connection (the demux thread
    sees EOF) and reconnects back off exponentially, so [t] real kills
    remain survivable.

    One {!handle} belongs to one client thread; operations are
    sequential per client, so a single in-flight round trip per mailbox
    suffices. *)

exception Unavailable of string
(** Raised by {!exec} when no quorum answered within the retry budget. *)

type t
(** The shared data plane: [S] connections plus their demux threads. *)

type handle
(** One client's view of the plane: a mailbox plus round-trip counters. *)

val create :
  ?rt_timeout:float ->
  ?max_rt_retries:int ->
  ?connect_retries:int ->
  ?connect_backoff:float ->
  ?faults:Faults.t ->
  servers:Unix.sockaddr array ->
  quorum:int ->
  unit ->
  t
(** Dial every server (tolerating failures) and start the demux
    threads.  Parameter meanings and defaults match {!Endpoint.create};
    [faults] subjects every outgoing request frame to the plan's
    [To_server] rules ({!Faults}) — note a truncated frame severs the
    {e shared} connection, so every rider reconnects and retries. *)

val client : t -> client:int -> handle
(** Register client [client] (its node id, {!Protocol.Topology}
    numbering) and return its handle.  Registering the same id again
    replaces the previous route. *)

val exec :
  ?key:string ->
  handle ->
  Registers.Wire.req ->
  ((int * Registers.Wire.rep) list -> unit) ->
  unit
(** One round trip over the shared connections.  The continuation
    receives [(server_index, reply)] pairs in arrival order and runs in
    the calling thread.  With [key] the request addresses that named
    register of each server's keyspace ([Codec.Keyed_request]); only
    replies echoing the same key count toward the quorum — a reply for
    any other key is dropped (see {!dropped_replies}), never delivered.
    @raise Unavailable when fewer than [quorum] servers answered. *)

val rounds_started : handle -> int
val rounds_completed : handle -> int

val late_replies : handle -> int
(** Replies that arrived after their round trip had completed. *)

val retries : handle -> int
(** Re-broadcasts issued after a round-trip timeout. *)

val dropped_replies : t -> int
(** Replies that matched no open round trip at all and were discarded:
    an unknown (released or never-registered) client id, or a key that
    differs from the one the client's open round trip asked for.  Either
    way the reply could not have been delivered anywhere — it is counted
    here and dropped without touching any mailbox's quorum state. *)

val release : handle -> unit
(** Unregister the client's route.  Replies still in flight for it are
    dropped; the shared connections stay up for other clients. *)

val shutdown : t -> unit
(** Sever every connection, stop the demux and ticker threads, and join
    them.  Idempotent. *)
