external clock_monotonic : unit -> float = "mwreg_clock_monotonic"

let monotonic = clock_monotonic () >= 0.0

let now = if monotonic then clock_monotonic else Unix.gettimeofday
