type dir = To_server | From_server

type kind =
  | Drop
  | Delay of float
  | Duplicate
  | Truncate
  | Latency of { base : float; jitter : float }

type frame_rule = {
  kind : kind;
  prob : float;
  dir : dir option; (* None = both directions *)
  servers : int list; (* [] = all *)
  clients : int list; (* [] = all *)
  from_s : float;
  until_s : float;
}

type rule =
  | Frame of frame_rule
  | Partition of { groups : int list list; from_s : float; until_s : float }

type t = {
  seed : int;
  rules : rule list;
  mutable t0 : float; (* negative until armed *)
  lock : Mutex.t;
}

let rule ?dir ?(servers = []) ?(clients = []) ?(from_ = 0.0) ?(until = infinity)
    ?(prob = 1.0) kind =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg "Faults.rule: prob out of [0,1]";
  (match kind with
  | Delay d when not (d > 0.0) -> invalid_arg "Faults.rule: delay must be > 0"
  | Latency { base; jitter } when not (base >= 0.0 && jitter >= 0.0 && base +. jitter > 0.0)
    -> invalid_arg "Faults.rule: latency must have base, jitter >= 0 and base + jitter > 0"
  | Drop | Delay _ | Duplicate | Truncate | Latency _ -> ());
  Frame { kind; prob; dir; servers; clients; from_s = from_; until_s = until }

let cut ?dir ?servers ?clients ?from_ ?until () =
  rule ?dir ?servers ?clients ?from_ ?until ~prob:1.0 Drop

let blackout ~server ~from_ ~until =
  rule ~dir:From_server ~servers:[ server ] ~from_ ~until ~prob:1.0 Drop

let partition ?(from_ = 0.0) ?(until = infinity) groups =
  Partition { groups; from_s = from_; until_s = until }

let create ?(seed = 0) rules = { seed; rules; t0 = -1.0; lock = Mutex.create () }

let none = create []

let seed t = t.seed

(* Whether any rule can schedule a frame for later delivery — the
   client planes use this to decide if their tickers must run at
   sub-tick granularity (a staged deadline may be milliseconds out). *)
let has_delays t =
  List.exists
    (function
      | Frame { kind = Delay _ | Latency _; _ } -> true
      | Frame { kind = Drop | Duplicate | Truncate; _ } -> false
      | Partition _ -> false)
    t.rules

let arm t = Mutex.protect t.lock (fun () -> t.t0 <- Clock.now ())

let elapsed t =
  Mutex.protect t.lock (fun () ->
      if t.t0 < 0.0 then t.t0 <- Clock.now ();
      Clock.now () -. t.t0)

(* ------------------------------------------------------------------ *)
(* Deterministic per-frame randomness                                  *)
(*                                                                     *)
(* A splitmix-style integer mix over the frame's coordinates.  The     *)
(* same (seed, rule, dir, server, client, rt, salt) always yields the  *)
(* same decision, whatever the thread interleaving — rerunning a plan  *)
(* replays its faults.                                                 *)
(* ------------------------------------------------------------------ *)

let mix h k =
  let h = (h lxor k) * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x27220A95 in
  h lxor (h lsr 32)

(* Uniform in [0,1).  [j] separates independent draws for one frame
   (fire? and delay magnitude). *)
let draw t i ~dir ~server ~client ~rt ~salt j =
  let d = match dir with To_server -> 1 | From_server -> 2 in
  let h = mix (t.seed + 0x51ED) ((i * 8) + d) in
  let h = mix h server in
  let h = mix h client in
  let h = mix h rt in
  let h = mix h ((salt * 16) + j) in
  float_of_int (h land 0x3FFFFFFF) /. 1073741824.0

(* ------------------------------------------------------------------ *)
(* Rule evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let mem_or_all l x = l = [] || List.mem x l

let frame_matches r ~dir ~server ~client ~e =
  (match r.dir with None -> true | Some d -> d = dir)
  && mem_or_all r.servers server
  && mem_or_all r.clients client
  && e >= r.from_s && e < r.until_s

let group_of groups x =
  let rec go i = function
    | [] -> None
    | g :: rest -> if List.mem x g then Some i else go (i + 1) rest
  in
  go 0 groups

let partitioned groups ~server ~client =
  match (group_of groups server, group_of groups client) with
  | Some a, Some b -> a <> b
  | _ -> false

type delivery = { after : float; truncated : bool }

let pass = { after = 0.0; truncated = false }

let deliveries t ~dir ~server ~client ~rt ~salt =
  let e = elapsed t in
  let blocked =
    List.exists
      (function
        | Partition { groups; from_s; until_s } ->
          e >= from_s && e < until_s
          && partitioned groups ~server ~client
        | Frame _ -> false)
      t.rules
  in
  if blocked then []
  else begin
    let ds = ref [ pass ] in
    List.iteri
      (fun i ru ->
        match ru with
        | Partition _ -> ()
        | Frame r ->
          if
            !ds <> []
            && frame_matches r ~dir ~server ~client ~e
            && (r.prob >= 1.0
               || draw t i ~dir ~server ~client ~rt ~salt 0 < r.prob)
          then
            (match r.kind with
            | Drop -> ds := []
            | Delay dmax ->
              (* Deterministic magnitude in (dmax/4, dmax]: large enough
                 to matter, bounded so plans stay schedulable.  Each
                 scheduled copy draws independently (j = 1 + copy index),
                 so a duplicated frame's two copies land at distinct
                 deadlines — two slow paths through the network, not one
                 path taken twice. *)
              ds :=
                List.mapi
                  (fun ci dv ->
                    let u = draw t i ~dir ~server ~client ~rt ~salt (1 + ci) in
                    { dv with after = dv.after +. (dmax *. (0.25 +. (0.75 *. u))) })
                  !ds
            | Latency { base; jitter } ->
              (* A modelled link: the full base propagation delay plus a
                 uniform jitter in [0, jitter) — the same distribution
                 the simulator's geo latency models draw from, so one
                 profile means the same thing on both backends.  Jitter
                 is per copy, like [Delay]. *)
              ds :=
                List.mapi
                  (fun ci dv ->
                    let extra =
                      if jitter > 0.0 then
                        jitter *. draw t i ~dir ~server ~client ~rt ~salt (1 + ci)
                      else 0.0
                    in
                    { dv with after = dv.after +. base +. extra })
                  !ds
            | Duplicate -> ds := !ds @ [ pass ]
            | Truncate -> (
              match !ds with
              | dv :: rest -> ds := { dv with truncated = true } :: rest
              | [] -> ())))
      t.rules;
    !ds
  end

let summary t =
  let frames, parts =
    List.fold_left
      (fun (f, p) -> function Frame _ -> (f + 1, p) | Partition _ -> (f, p + 1))
      (0, 0) t.rules
  in
  Printf.sprintf "seed %d, %d rule%s: %d frame, %d partition" t.seed
    (frames + parts)
    (if frames + parts = 1 then "" else "s")
    frames parts
