open Registers

exception Unavailable of string

(* All deadlines, ticker gates and backoff gates run on the monotonic
   clock: a wall time step must not fire or stall every timeout at
   once. *)
let now = Clock.now

(* A server crashing mid-write must surface as EPIPE on that write, not
   kill the client process. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

type conn = {
  index : int; (* server index: the authoritative reply label *)
  addr : Unix.sockaddr;
  lock : Mutex.t; (* guards fd, attempts, and the outgoing buffer *)
  (* The write-combining path (flat combining, no dedicated sender
     thread): an enqueuer appends its frame to [out] under [lock]; if
     no flush is in progress it becomes the flusher, swapping the
     accumulated bytes into [staging] and issuing one [write] per
     batch.  Concurrent enqueuers find [flushing] set, append and
     return without a syscall or a thread handoff — their frames ride
     the current flusher's next iteration, arrive at the server as one
     read, are replica-handled as a batch and answered in one reply
     write. *)
  out : Buffer.t;
  mutable flushing : bool;
  mutable staging : Bytes.t; (* flusher-owned swap space, reused *)
  (* Frames a fault plan scheduled for later delivery on this link:
     (due, payload copy, truncated), sorted by deadline, guarded by
     [lock].  Senders park here and move on — a delay scoped to one
     (client, server) link must never stall another client's batch or
     the rest of a fan-out.  Due entries are merged into the next flush
     and swept by the ticker (at sub-tick granularity when the plan has
     delay rules); there are no delayer threads, mirroring the server
     reactor's timer list. *)
  mutable delayed : (float * Bytes.t * bool) list;
  mutable fd : Unix.file_descr option;
  mutable attempts : int; (* consecutive failed connects *)
  mutable next_attempt : float; (* wall-clock gate for the next connect *)
}

type mailbox = {
  client : int;
  mb_lock : Mutex.t;
  mb_cond : Condition.t;
  (* State of the (single) in-flight round trip.  [mb_rt = -1] means no
     round trip is open: anything routed then is late.  [mb_key] is the
     open round trip's register key ([None] = the default register): a
     reply whose key differs cannot count toward this quorum and is
     dropped, never delivered. *)
  mutable mb_rt : int;
  mutable mb_key : string option;
  mb_from : bool array; (* per-server dedup for the open round trip *)
  mutable mb_replies : (int * Wire.rep) list; (* newest first *)
  mutable mb_n : int;
  mutable mb_late : int;
  mutable mb_next_rt : int;
  mutable mb_deadline : float; (* ticker wakes the waiter only past this *)
  mutable mb_started : int;
  mutable mb_completed : int;
  mutable mb_retried : int; (* re-broadcasts after a round-trip timeout *)
  (* Reused send path: the frame is encoded once per operation into
     [enc], blitted into [out], and the same bytes go to every
     connection — allocation-free once both have reached steady size. *)
  mb_enc : Buffer.t;
  mutable mb_out : Bytes.t;
}

type t = {
  conns : conn array;
  quorum : int;
  rt_timeout : float;
  max_rt_retries : int;
  connect_retries : int;
  connect_backoff : float;
  faults : Faults.t option;
  (* The armed plan can schedule late deliveries: the ticker then runs
     at millisecond granularity so staged deadlines (geo profiles go
     down to sub-millisecond bases) do not quantise to the timeout
     tick. *)
  sub_tick : bool;
  routes : (int, mailbox) Hashtbl.t;
  routes_lock : Mutex.t;
  (* Replies that matched no open round trip at all: unknown client
     (handle released, or a peer inventing ids) or a key mismatch on the
     open round.  Distinct from [mb_late] — a late reply belongs to a
     round this client really ran; a dropped one could never have been
     delivered anywhere. *)
  dropped : int Atomic.t;
  mutable demuxers : Thread.t list; (* joined on shutdown *)
  mutable ticker : Thread.t option;
  stopping : bool Atomic.t;
}

type handle = { mux : t; mb : mailbox }

(* ------------------------------------------------------------------ *)
(* Reply routing (demux threads)                                       *)
(* ------------------------------------------------------------------ *)

let route t ~server_index ~client ~rt ~key rep =
  let mb =
    Mutex.protect t.routes_lock (fun () -> Hashtbl.find_opt t.routes client)
  in
  match mb with
  | None ->
    (* Client released its handle (or the peer invented an id): there is
       no mailbox this could ever belong to. *)
    Atomic.incr t.dropped
  | Some mb ->
    Mutex.protect mb.mb_lock (fun () ->
        if mb.mb_rt = rt then begin
          if key <> mb.mb_key then
            (* Same round-trip id, wrong register: a stale or corrupt
               key route.  Counting it toward the quorum would hand the
               waiter another key's value — drop it instead, and never
               touch the dedup/reply state, so the real replies still
               complete the round (no wedge). *)
            Atomic.incr t.dropped
          else if not mb.mb_from.(server_index) then begin
            mb.mb_from.(server_index) <- true;
            mb.mb_replies <- (server_index, rep) :: mb.mb_replies;
            mb.mb_n <- mb.mb_n + 1;
            (* Quorum-gated wake-up: replies below the quorum cannot
               unblock the waiter, so signalling them would only burn a
               scheduler pass per straggler.  The ticker covers timeout
               detection for rounds that never get there. *)
            if mb.mb_n >= t.quorum then Condition.signal mb.mb_cond
          end
          else mb.mb_late <- mb.mb_late + 1
        end
        else mb.mb_late <- mb.mb_late + 1)

(* The demux thread owns [fd] for the life of one connection: it is the
   only reader, and on any failure it severs the connection — but only
   if the conn still points at its own fd (a reconnect may already have
   replaced it). *)
let disconnect c fd =
  Mutex.protect c.lock (fun () ->
      match c.fd with
      | Some cur when cur == fd -> c.fd <- None
      | _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let demux t c fd () =
  let stream = Codec.Stream.create () in
  let buf = Bytes.create 65536 in
  (try
     let stop = ref false in
     while not !stop do
       match Netio.read fd buf 0 (Bytes.length buf) with
       | 0 -> stop := true
       | n ->
         Codec.Stream.feed stream buf n;
         let rec drain () =
           match Codec.Stream.next stream with
           | Some (Codec.Reply { rt; client; server = _; rep }) ->
             (* Route by (client, rt); the connection's own index is the
                authoritative server label, as in the private path. *)
             route t ~server_index:c.index ~client ~rt ~key:None rep;
             drain ()
           | Some (Codec.Keyed_reply { key; rt; client; server = _; rep }) ->
             route t ~server_index:c.index ~client ~rt ~key:(Some key) rep;
             drain ()
           | Some (Codec.Request _) | Some (Codec.Keyed_request _) ->
             (* Servers never send requests; cut the broken peer off. *)
             stop := true
           | None -> ()
         in
         drain ()
       | exception Unix.Unix_error _ -> stop := true
     done
   with Codec.Decode_error _ -> ());
  disconnect c fd

(* ------------------------------------------------------------------ *)
(* Connecting and sending                                              *)
(* ------------------------------------------------------------------ *)

(* Bounded, exponentially backed-off reconnect; [c.lock] must be held.
   A fresh connection gets a fresh demux thread.  Every failure mode —
   including [socket] itself (EMFILE under fd pressure) and a failed
   [Thread.create] — lands in the backoff path rather than escaping:
   an exception thrown past a caller holding [c.lock] would poison the
   connection (and wedge [shutdown]) forever. *)
let backoff t c =
  c.attempts <- c.attempts + 1;
  c.next_attempt <-
    now () +. (t.connect_backoff *. float_of_int (1 lsl min c.attempts 6))

let try_connect t c =
  match c.fd with
  | Some fd -> Some fd
  | None ->
    if
      Atomic.get t.stopping || c.attempts > t.connect_retries
      || now () < c.next_attempt
    then None
    else begin
      match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error _ ->
        backoff t c;
        None
      | fd -> (
        match
          Unix.connect fd c.addr;
          Unix.setsockopt fd Unix.TCP_NODELAY true
        with
        | () -> (
          c.fd <- Some fd;
          c.attempts <- 0;
          match Thread.create (demux t c fd) () with
          | th ->
            Mutex.protect t.routes_lock (fun () ->
                t.demuxers <- th :: t.demuxers);
            Some fd
          | exception _ ->
            (* No demux thread was created, so this thread is the fd's
               only owner and may close it directly. *)
            c.fd <- None;
            (try Unix.close fd with Unix.Unix_error _ -> ());
            backoff t c;
            None)
        | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          backoff t c;
          None)
    end

(* Send [len] bytes on the shared connection.  The caller appends under
   [c.lock]; if no flush is in progress it becomes the flusher and
   drains the queue itself — uncontended, that is one inline [write]
   with no thread handoff.  While a flush is running, other enqueuers
   just append and return; the flusher's loop re-checks the queue after
   every batch, so their bytes go out in the next combined write.  On a
   write error the link is severed ([shutdown], not [close] — the demux
   thread is the fd's sole closer) and the staged batch is dropped; the
   round-trip retry loop re-broadcasts after reconnect.  Frames that
   other clients appended to [c.out] while the failing write ran
   unlocked are NOT part of that batch and stay queued: the next
   flusher sends them once the link is back. *)
let enqueue t c bytes len =
  Mutex.lock c.lock;
  match try_connect t c with
  | exception e ->
    (* [try_connect] contains its own failures; this is pure defence —
       a leaked [c.lock] would deadlock every later rider and
       [shutdown] itself. *)
    Mutex.unlock c.lock;
    raise e
  | None ->
    Mutex.unlock c.lock;
    false
  | Some _ ->
    Buffer.add_subbytes c.out bytes 0 len;
    if c.flushing then begin
      (* A flusher is active: it will carry these bytes.  No syscall,
         no signal, no context switch on this path. *)
      Mutex.unlock c.lock;
      true
    end
    else begin
      c.flushing <- true;
      let ok = ref true in
      while !ok && Buffer.length c.out > 0 do
        (* Merge staged deliveries that have come due into this batch —
           the flush-time half of the delay drain (the ticker sweeps
           quiet links).  Truncated entries stay for the ticker: they
           sever the link after sending and cannot ride a batch. *)
        let t_now = now () in
        let rec merge () =
          match c.delayed with
          | (due, payload, false) :: rest when due <= t_now ->
            Buffer.add_bytes c.out payload;
            c.delayed <- rest;
            merge ()
          | [] | (_, _, _) :: _ -> ()
        in
        merge ();
        let blen = Buffer.length c.out in
        if blen > Bytes.length c.staging then
          c.staging <- Bytes.create (max blen (2 * Bytes.length c.staging));
        Buffer.blit c.out 0 c.staging 0 blen;
        Buffer.clear c.out;
        match c.fd with
        | None -> ok := false (* link died since the append: drop *)
        | Some fd -> (
          Mutex.unlock c.lock;
          (match Netio.write_all fd c.staging 0 blen with
          | () -> Mutex.lock c.lock
          | exception Unix.Unix_error _ ->
            (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
            Mutex.lock c.lock;
            (match c.fd with
            | Some cur when cur == fd -> c.fd <- None
            | _ -> ());
            (* Only the staging batch is lost with the link.  [c.out]
               may have gained other clients' frames while the write
               ran unlocked — clearing it here would silently discard
               them; they stay for the post-reconnect flusher. *)
            ok := false))
      done;
      c.flushing <- false;
      Mutex.unlock c.lock;
      !ok
    end

(* Truncation fault: the torn frame has gone out on the shared
   connection, so the whole stream is poisoned — sever it and let every
   rider reconnect and retry, exactly what a corrupting link costs on
   this plane. *)
let sever c =
  Mutex.protect c.lock (fun () ->
      match c.fd with
      | Some fd -> (
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      | None -> ())

(* Park one scheduled delivery on the link's deadline queue (sorted
   insert; queues hold a handful of frames, the reactor's timer-list
   idiom).  The payload is the caller's copy — senders reuse their
   encode staging. *)
let stage_delayed c ~due payload truncated =
  Mutex.protect c.lock (fun () ->
      let rec ins = function
        | [] -> [ (due, payload, truncated) ]
        | ((d, _, _) :: _) as l when due < d -> (due, payload, truncated) :: l
        | e :: rest -> e :: ins rest
      in
      c.delayed <- ins c.delayed)

(* Deliver every staged frame whose deadline has passed.  Entries are
   popped under [c.lock] but sent outside it ([enqueue] takes the lock
   itself); a truncated delivery sends its prefix then severs the link,
   as in the immediate path. *)
let drain_delayed t c t_now =
  let due =
    Mutex.protect c.lock (fun () ->
        let rec split acc l =
          match l with
          | (d, payload, tr) :: rest when d <= t_now ->
            split ((payload, tr) :: acc) rest
          | [] | (_, _, _) :: _ ->
            c.delayed <- l;
            List.rev acc
        in
        split [] c.delayed)
  in
  List.iter
    (fun (payload, truncated) ->
      let len = Bytes.length payload in
      if truncated then begin
        ignore (enqueue t c payload (max 1 (len / 2)));
        sever c
      end
      else ignore (enqueue t c payload len))
    due

(* Nearest staged deadline across every link; [infinity] when idle. *)
let next_delayed_due t =
  Array.fold_left
    (fun acc c ->
      Mutex.protect c.lock (fun () ->
          match c.delayed with
          | (d, _, _) :: _ -> Float.min acc d
          | [] -> acc))
    infinity t.conns

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

(* Timeouts are detected on wake-up, and the stdlib condvar has no timed
   wait — one ticker thread per mux broadcasts every few tens of
   milliseconds so blocked operations re-check their deadline.  Normal
   completions never wait for a tick: every routed reply signals its
   mailbox directly. *)
let tick_period t = Float.max 0.005 (Float.min 0.05 (t.rt_timeout /. 4.0))

let ticker_body t () =
  (* The timeout scan keeps its own cadence (tick_period) even when the
     delay drain shortens the sleep below it: sub-tick wake-ups must
     not drag every blocked mailbox through the scheduler hundreds of
     times a second. *)
  let next_scan = ref (now () +. tick_period t) in
  while not (Atomic.get t.stopping) do
    let sleep =
      let tick = tick_period t in
      if not t.sub_tick then tick
      else
        (* Delay-capable plan armed: sleep to the nearest staged
           deadline (0.5 ms floor), or 1 ms when the queues are idle so
           a freshly staged short deadline is picked up promptly. *)
        let due = next_delayed_due t in
        if due = infinity then Float.min tick 0.001
        else Float.max 0.0005 (Float.min tick (due -. now ()))
    in
    Thread.delay sleep;
    let t_now = now () in
    if t.sub_tick then Array.iter (fun c -> drain_delayed t c t_now) t.conns;
    if t_now >= !next_scan then begin
      next_scan := t_now +. tick_period t;
      let mbs =
        Mutex.protect t.routes_lock (fun () ->
            Hashtbl.fold (fun _ mb acc -> mb :: acc) t.routes [])
      in
      List.iter
        (fun mb ->
          Mutex.protect mb.mb_lock (fun () ->
              (* Wake a waiter only when its round has actually timed
                 out; broadcasting every tick would drag every blocked
                 client through the scheduler 20 times a second for
                 nothing. *)
              if mb.mb_rt >= 0 && t_now >= mb.mb_deadline then
                Condition.broadcast mb.mb_cond))
        mbs
    end
  done

let create ?(rt_timeout = 1.0) ?(max_rt_retries = 3) ?(connect_retries = 8)
    ?(connect_backoff = 0.02) ?faults ~servers ~quorum () =
  Lazy.force ignore_sigpipe;
  let n = Array.length servers in
  if quorum <= 0 || quorum > n then
    invalid_arg "Mux.create: quorum out of range";
  let t =
    {
      conns =
        Array.mapi
          (fun index addr ->
            {
              index;
              addr;
              lock = Mutex.create ();
              out = Buffer.create 4096;
              flushing = false;
              staging = Bytes.create 4096;
              delayed = [];
              fd = None;
              attempts = 0;
              next_attempt = 0.0;
            })
          servers;
      quorum;
      rt_timeout;
      max_rt_retries;
      connect_retries;
      connect_backoff;
      faults;
      sub_tick =
        (match faults with Some p -> Faults.has_delays p | None -> false);
      routes = Hashtbl.create 16;
      routes_lock = Mutex.create ();
      dropped = Atomic.make 0;
      demuxers = [];
      ticker = None;
      stopping = Atomic.make false;
    }
  in
  (* Optimistic first dial; failures just leave the conn in backoff. *)
  Array.iter
    (fun c -> Mutex.protect c.lock (fun () -> ignore (try_connect t c)))
    t.conns;
  t.ticker <- Some (Thread.create (ticker_body t) ());
  t

let client t ~client =
  let mb =
    {
      client;
      mb_lock = Mutex.create ();
      mb_cond = Condition.create ();
      mb_rt = -1;
      mb_key = None;
      mb_from = Array.make (Array.length t.conns) false;
      mb_replies = [];
      mb_n = 0;
      mb_late = 0;
      mb_next_rt = 0;
      mb_deadline = infinity;
      mb_started = 0;
      mb_completed = 0;
      mb_retried = 0;
      mb_enc = Buffer.create 256;
      mb_out = Bytes.create 256;
    }
  in
  Mutex.protect t.routes_lock (fun () -> Hashtbl.replace t.routes client mb);
  { mux = t; mb }

let release h =
  Mutex.protect h.mux.routes_lock (fun () ->
      match Hashtbl.find_opt h.mux.routes h.mb.client with
      | Some mb when mb == h.mb -> Hashtbl.remove h.mux.routes h.mb.client
      | _ -> ())

let shutdown t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Severing the sockets pops every demux thread out of [read] and
       fails any in-flight flusher's write. *)
    Array.iter
      (fun c ->
        Mutex.protect c.lock (fun () ->
            match c.fd with
            | Some fd -> (
              try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
            | None -> ()))
      t.conns;
    let demuxers =
      Mutex.protect t.routes_lock (fun () ->
          let ds = t.demuxers in
          t.demuxers <- [];
          ds)
    in
    List.iter Thread.join demuxers;
    (match t.ticker with
    | Some th ->
      Thread.join th;
      t.ticker <- None
    | None -> ())
  end

(* ------------------------------------------------------------------ *)
(* The round trip                                                      *)
(* ------------------------------------------------------------------ *)

let exec ?key h req k =
  let t = h.mux and mb = h.mb in
  let rt =
    Mutex.protect mb.mb_lock (fun () ->
        let rt = mb.mb_next_rt in
        mb.mb_next_rt <- rt + 1;
        mb.mb_started <- mb.mb_started + 1;
        rt)
  in
  Mutex.protect mb.mb_lock (fun () ->
      mb.mb_rt <- rt;
      mb.mb_key <- key;
      Array.fill mb.mb_from 0 (Array.length mb.mb_from) false;
      mb.mb_replies <- [];
      mb.mb_n <- 0;
      mb.mb_deadline <- now () +. t.rt_timeout);
  (* Encode once; the same bytes go out on all S shared connections. *)
  let frame =
    match key with
    | None -> Codec.Request { rt; client = mb.client; req }
    | Some key -> Codec.Keyed_request { key; rt; client = mb.client; req }
  in
  Codec.encode_into mb.mb_enc frame;
  let len = Buffer.length mb.mb_enc in
  if len > Bytes.length mb.mb_out then
    mb.mb_out <- Bytes.create (max len (2 * Bytes.length mb.mb_out));
  Buffer.blit mb.mb_enc 0 mb.mb_out 0 len;
  let attempt = ref 0 in
  let broadcast () =
    Array.iter
      (fun c ->
        (* Racy read of [mb_from] outside the mailbox lock: the worst
           case is a duplicate send to a server that replied this very
           instant, and replica operations are idempotent. *)
        if not mb.mb_from.(c.index) then
          match t.faults with
          | None -> ignore (enqueue t c mb.mb_out len)
          | Some plan ->
            (* Salted by the attempt number: a frame dropped now draws
               afresh on the next re-broadcast. *)
            let ds =
              Faults.deliveries plan ~dir:Faults.To_server ~server:c.index
                ~client:mb.client ~rt ~salt:!attempt
            in
            List.iter
              (fun { Faults.after; truncated } ->
                if after > 0.0 then
                  (* Park on the link's deadline queue — never sleep in
                     the sender: a delay scoped to this link must not
                     stall other clients' batches or the rest of this
                     fan-out.  The payload is copied because [mb.mb_out]
                     is reused by the next operation. *)
                  stage_delayed c ~due:(now () +. after)
                    (Bytes.sub mb.mb_out 0 len) truncated
                else if truncated then begin
                  ignore (enqueue t c mb.mb_out (max 1 (len / 2)));
                  sever c
                end
                else ignore (enqueue t c mb.mb_out len))
              ds)
      t.conns
  in
  broadcast ();
  let give_up = ref false in
  Mutex.lock mb.mb_lock;
  while mb.mb_n < t.quorum && not !give_up do
    Condition.wait mb.mb_cond mb.mb_lock;
    if mb.mb_n < t.quorum && now () >= mb.mb_deadline then begin
      (* Round-trip timed out: re-broadcast to the servers still
         missing (reconnecting dropped links), bounded. *)
      if !attempt >= t.max_rt_retries then give_up := true
      else begin
        incr attempt;
        mb.mb_retried <- mb.mb_retried + 1;
        Mutex.unlock mb.mb_lock;
        broadcast ();
        Mutex.lock mb.mb_lock;
        mb.mb_deadline <- now () +. t.rt_timeout
      end
    end
  done;
  let nreplies = mb.mb_n in
  let replies = List.rev mb.mb_replies in
  mb.mb_rt <- -1;
  mb.mb_key <- None;
  mb.mb_deadline <- infinity;
  mb.mb_replies <- [];
  Mutex.unlock mb.mb_lock;
  if nreplies >= t.quorum then begin
    Mutex.protect mb.mb_lock (fun () ->
        mb.mb_completed <- mb.mb_completed + 1);
    k replies
  end
  else
    raise
      (Unavailable
         (Printf.sprintf "client %d: %d/%d replies after %d attempts of %.3fs"
            mb.client nreplies t.quorum (!attempt + 1) t.rt_timeout))

let rounds_started h =
  Mutex.protect h.mb.mb_lock (fun () -> h.mb.mb_started)

let rounds_completed h =
  Mutex.protect h.mb.mb_lock (fun () -> h.mb.mb_completed)

let late_replies h =
  Mutex.protect h.mb.mb_lock (fun () -> h.mb.mb_late)

let retries h =
  Mutex.protect h.mb.mb_lock (fun () -> h.mb.mb_retried)

let dropped_replies t = Atomic.get t.dropped
