(** Drive a register protocol over a live {!Cluster} and record the
    resulting history.

    The live analogue of {!Protocol.Runtime.run}: one OS thread per
    client runs the protocol's {!Registers.Client_core.algo} against real
    sockets, every operation is recorded with wall-clock timestamps, and
    the finished history feeds the very same atomicity checkers as the
    simulated runs — the live backend cross-checks the simulator and
    vice versa.

    Recording is contention-free: each client thread timestamps and logs
    its own operations privately (no shared recorder lock on the hot
    path); the per-client logs are merged into one {!Histories.History.t}
    after every thread has joined.  Round-trip accounting only counts
    rounds of operations that completed — rounds burned inside an
    operation that later aborted with [Unavailable] are discarded, so a
    crash mid-run cannot skew the Table-1 rounds columns. *)

type spec = {
  writers : int;
  readers : int;
  writes_per_writer : int;
  reads_per_reader : int;
  write_think : float;  (** Seconds between a writer's operations. *)
  read_think : float;   (** Seconds between a reader's operations. *)
}

val default_spec : spec
(** 2×2 clients, 20 writes / 40 reads each, no think time. *)

type result = {
  history : Histories.History.t;
      (** Wall-clock-timestamped, checker-ready. *)
  duration : float;  (** Seconds from first invocation to last response. *)
  write_rounds : float;
      (** Mean round trips per completed write — 2.0 for the two-round
          writers, 1.0 for the fast ones (the paper's Table 1 column,
          measured on real sockets). *)
  read_rounds : float;  (** Mean round trips per completed read. *)
  late : int;  (** Replies arriving after their round trip completed. *)
  retries : int;
      (** Round-trip re-broadcasts across all clients — 0 on a healthy
          run, and the price of lossy links under a fault plan. *)
  unavailable : int;
      (** Clients that aborted because no quorum answered (0 whenever at
          most [tol] servers were killed). *)
  killed : int list;  (** Servers down by the end of the run. *)
  online : Check_sink.report option;
      (** Streaming checker report when the session ran with
          [~live_check:true]; [None] otherwise. *)
}

val run :
  ?kill_at:(float * int) list ->
  ?restart_at:(float * int * Cluster.restart_mode) list ->
  ?faults:Faults.t ->
  ?transport:Cluster.transport ->
  ?rt_timeout:float ->
  ?max_rt_retries:int ->
  ?live_check:bool ->
  ?on_violation:(string -> Checker.Witness.t -> unit) ->
  register:Protocol.Register_intf.t ->
  cluster:Cluster.t ->
  spec ->
  result
(** Run [spec] against [cluster] with [register]'s client algorithm.
    [kill_at] schedules real crashes: [(secs, server)] kills [server]
    that many seconds into the run.  [restart_at] brings killed servers
    back: [(secs, server, mode)] calls {!Cluster.restart} then — kills
    and restarts replay as one time-ordered schedule.  [faults] applies
    a fault plan to every client endpoint of this session (the plan is
    {!Faults.arm}ed at session start; servers use the plan their
    cluster was started with).  [transport] picks the data plane
    (default [`Mux], see {!Cluster.transport}).  [live_check] streams
    every completed operation through a {!Check_sink} into the
    {!Checker.Online} checker while the run is in flight —
    contention-free, so throughput is unaffected — surfacing
    violations through [on_violation] as they happen and a final
    report in [result.online].  Raises
    [Invalid_argument] if [spec] exceeds the protocol's writer bound
    ({!Registers.Registry.max_writers}). *)
