(** Canned chaos scenarios over the live transport, shared by the
    [bench chaos] soak, the [mwreg chaos] subcommand and the test
    suite.

    Two shapes:

    - {!soak}: a randomized-but-seeded fault schedule (drop / delay /
      duplicate on every link, plus a mid-run crash and
      restart-with-recovery) under a full {!Session} workload, verdict
      from {!Checker.Atomicity}.  In the paper's possible regimes the
      protocols must ride this out — lossy links only cost retries.
    - {!restart_scenario}: a deterministic script proving both halves
      of the crash-stop argument executable: a killed server restarted
      {e with} its recovered state preserves atomicity, while the same
      restart with {e fresh} state loses an acknowledged write and
      yields a checker witness. *)

val plan :
  ?seed:int -> ?drop:float -> ?delay:float -> ?duplicate:float -> unit ->
  Faults.t
(** The standard soak plan, all links and both directions: each frame
    independently dropped with probability [drop] (default 0.08),
    delayed up to [delay] seconds with probability 0.25 (default max
    0.03s), duplicated with probability [duplicate] (default 0.1).
    Pass 0 to disable any of the three. *)

type soak = {
  register : Protocol.Register_intf.t;
  transport : Cluster.transport;
  seed : int;
  drop : float;
  delay : float;
  duplicate : float;
  restarted : bool;  (** Whether the kill → recover-restart event ran. *)
  result : Session.result;
  atomic : bool;
  expected_atomic : bool;
      (** {!Quorums.Bounds.possible} at the soak's (s,t,w,r): where the
          theory says "possible", chaos must not break atomicity. *)
}

val soak :
  ?transport:Cluster.transport ->
  ?seed:int ->
  ?drop:float ->
  ?delay:float ->
  ?duplicate:float ->
  ?s:int ->
  ?tol:int ->
  ?ops:int ->
  ?restart:bool ->
  ?server_shards:int ->
  ?live_check:bool ->
  ?on_violation:(string -> Checker.Witness.t -> unit) ->
  register:Protocol.Register_intf.t ->
  unit ->
  soak
(** Run one seeded soak: [s] servers (default 5) tolerating [tol]
    (default 1), 2 writers × 2 readers (1 writer for single-writer
    protocols), [ops] writes per writer and [2·ops] reads per reader
    (default 8), under {!plan}.  With [restart] (default true) server
    [s-1] is killed 0.05s in and restarted with recovered state at
    0.45s — so the soak also exercises {!Cluster.restart} under load.
    [server_shards] (default 1) runs every server with that many
    reactor event loops ({!Cluster.start}), putting the fault timers
    and the restart path under a sharded reactor too.  [live_check]
    and [on_violation] forward to {!Session.run} — the streaming
    checker then rides the whole storm, report in
    [result.Session.online]. *)

type restart_outcome = {
  mode : Cluster.restart_mode;
  atomic : bool;
  witness : string option;
      (** The checker's counterexample, when atomicity broke. *)
  read_value : int option;  (** What the post-restart read returned. *)
  history : Histories.History.t;
}

val restart_scenario :
  ?transport:Cluster.transport ->
  ?server_shards:int ->
  mode:Cluster.restart_mode ->
  unit ->
  restart_outcome
(** The deterministic crash-stop script, on a 3-server cluster
    ([tol = 1], quorum 2) running LS97 (W2R2):

    + one-way cuts confine the write: the writer cannot reach server 2,
      the reader cannot reach server 1;
    + the writer completes a write — it lands exactly on quorum
      [{0, 1}];
    + server 0 is killed and restarted in [mode];
    + the reader reads; its quorum is [{0, 2}].

    With [`Recover], server 0 rejoins carrying the write: the read
    returns it and the history checks atomic.  With [`Fresh], no server
    in the reader's quorum knows the acknowledged write: the read
    returns the initial value and {!Checker.Atomicity} produces a
    witness — the executable proof that crash-stop recovery must carry
    state. *)
