(** Socket I/O for the server reactor and both client planes — the
    transport's single sanctioned raw-I/O module (mwlint's RAW-IO rule
    points every [Unix.read]/[write]/[accept]/[select] outside this file
    back here).

    One EINTR policy for everything: OCaml installs signal handlers
    without [SA_RESTART], so any syscall can be interrupted mid-flight;
    an interrupted call is not a dead link.  Blocking variants retry
    EINTR until they complete.  Non-blocking variants ([*_nb]) also
    retry EINTR, but return [None] on EAGAIN/EWOULDBLOCK so a reactor
    can park the descriptor with its {!Poller} instead of blocking a
    thread.  Every other error still propagates: real link failures
    surface where callers expect them. *)

val write_all : Unix.file_descr -> bytes -> int -> int -> unit
(** [write_all fd buf pos len] writes exactly [len] bytes of [buf]
    starting at [pos], restarting after partial writes and [EINTR].
    Raises the underlying [Unix_error] on any other failure. *)

val read : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read], restarted on [EINTR]. *)

(** {1 Non-blocking variants} *)

val set_nonblock : Unix.file_descr -> unit
(** Put [fd] in non-blocking mode (required before the [*_nb] calls
    below can ever return [None]). *)

val read_nb : Unix.file_descr -> bytes -> int -> int -> int option
(** [Some n] bytes read ([Some 0] = EOF), or [None] when the socket has
    nothing buffered (EAGAIN/EWOULDBLOCK).  EINTR is retried. *)

val write_nb : Unix.file_descr -> bytes -> int -> int -> int option
(** [Some n] bytes accepted by the kernel (possibly short), or [None]
    when the send buffer is full — the caller should register write
    interest and come back when the poller says so (backpressure).
    EINTR is retried. *)

val accept_nb : Unix.file_descr -> Unix.file_descr option
(** Accept one pending connection, or [None] when the backlog is empty.
    EINTR and ECONNABORTED (peer died in the backlog) are retried. *)

(** {1 Wakeup pipes}

    A reactor blocked in its poller is woken by writing a byte to a
    pipe whose read end it watches.  Both calls are non-blocking and
    swallow failure: a full pipe already guarantees a wakeup, and a
    closed one means there is nobody left to wake. *)

val notify : Unix.file_descr -> unit
(** Write one wakeup byte to the pipe's write end. *)

val drain_wake : Unix.file_descr -> unit
(** Discard every buffered wakeup byte from the pipe's read end. *)

(** {1 Readiness} *)

val fd_int : Unix.file_descr -> int
(** The descriptor's integer (Unix-only build): the key both planes use
    for connection tables. *)

val wait_readable : Unix.file_descr list -> float -> Unix.file_descr list
(** [wait_readable fds timeout] blocks until some of [fds] are readable
    (or errored — the caller's read path surfaces the failure) and
    returns them, or [[]] on timeout or EINTR.  Built on poll(2):
    unlike [Unix.select] it keeps working past descriptor number 1024,
    which the high-C client sweep crosses routinely. *)

module Poller : sig
  (** A persistent interest set for a reactor shard: epoll(7) where the
      platform has it, poll(2) over the registered set elsewhere.
      Level-triggered either way — an event repeats until its cause is
      drained, so a shard that processes only part of a socket's data
      is re-told on the next {!wait}. *)

  type t

  val create : unit -> t

  val add : t -> Unix.file_descr -> want_write:bool -> unit
  (** Register [fd]; read interest is always on. *)

  val set_write : t -> Unix.file_descr -> bool -> unit
  (** Toggle write interest — the backpressure lever: on when a
      connection's out-queue could not be flushed, off once it drains.
      No-op for unregistered descriptors. *)

  val remove : t -> Unix.file_descr -> unit
  (** Forget [fd].  Call before closing it. *)

  val registered : t -> int
  (** Number of registered descriptors. *)

  val wait :
    t ->
    timeout:float ->
    (Unix.file_descr -> readable:bool -> writable:bool -> unit) ->
    int
  (** Block up to [timeout] seconds, invoke the callback once per ready
      descriptor, return the ready count (0 on timeout or EINTR).
      Errors (EPOLLERR/HUP, POLLNVAL) are reported as [readable]: the
      owner's read path observes the failure and drops the connection.
      The callback may [add]/[set_write]/[remove] freely, including for
      the descriptor being dispatched. *)

  val close : t -> unit
  (** Release the poller's own resources (registered fds are not
      touched). *)
end
