(** Socket I/O helpers shared by the server and both client planes.

    [Unix.write] and [Unix.read] raise [EINTR] whenever a signal lands
    mid-syscall (OCaml installs handlers without [SA_RESTART]).  An
    interrupted write is not a dead link — treating it as one, as all
    three transport write loops once did, severs a healthy connection
    and forces a pointless reconnect-and-retry cycle.  These wrappers
    retry [EINTR] transparently; every other error still propagates so
    real link failures surface where callers expect them. *)

val write_all : Unix.file_descr -> bytes -> int -> int -> unit
(** [write_all fd buf pos len] writes exactly [len] bytes of [buf]
    starting at [pos], restarting after partial writes and [EINTR].
    Raises the underlying [Unix_error] on any other failure. *)

val read : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read], restarted on [EINTR]. *)
