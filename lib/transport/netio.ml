let rec write_all fd buf pos len =
  if len > 0 then
    match Unix.write fd buf pos len with
    | n -> write_all fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf pos len

let rec read fd buf pos len =
  match Unix.read fd buf pos len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read fd buf pos len
