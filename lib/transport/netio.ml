(* The transport's single raw-I/O choke point (see lib/analysis/RULES.md,
   RAW-IO): every syscall that moves bytes or waits for readiness lives
   here, wrapped with one EINTR policy — blocking variants retry, the
   non-blocking variants retry EINTR but surface EAGAIN/EWOULDBLOCK as
   [None] so a reactor can park the descriptor until the poller says
   otherwise. *)

let rec write_all fd buf pos len =
  if len > 0 then
    match Unix.write fd buf pos len with
    | n -> write_all fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf pos len

let rec read fd buf pos len =
  match Unix.read fd buf pos len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read fd buf pos len

(* ------------------------------------------------------------------ *)
(* Non-blocking variants                                               *)
(* ------------------------------------------------------------------ *)

let set_nonblock fd = Unix.set_nonblock fd

let rec read_nb fd buf pos len =
  match Unix.read fd buf pos len with
  | n -> Some n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_nb fd buf pos len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> None

let rec write_nb fd buf pos len =
  match Unix.write fd buf pos len with
  | n -> Some n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_nb fd buf pos len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> None

let rec accept_nb fd =
  match Unix.accept fd with
  | cfd, _ -> Some cfd
  | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
    (* A connection that died in the backlog is not "no connections":
       another may be waiting right behind it. *)
    accept_nb fd
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> None

(* ------------------------------------------------------------------ *)
(* Wakeup pipes                                                        *)
(* ------------------------------------------------------------------ *)

let wake_byte = Bytes.make 1 '!'

let notify fd =
  (* One byte is one wakeup; a full pipe already guarantees one, so
     EAGAIN is success here.  A torn-down peer (EPIPE/EBADF during
     shutdown races) is equally fine: there is nobody left to wake. *)
  match Unix.write fd wake_byte 0 1 with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> (
    match Unix.write fd wake_byte 0 1 with
    | _ -> ()
    | exception Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let drain_wake =
  let sink = Bytes.create 64 in
  fun fd ->
    let rec go () =
      match read_nb fd sink 0 (Bytes.length sink) with
      | Some n when n > 0 -> go ()
      | Some _ | None -> ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()

(* ------------------------------------------------------------------ *)
(* Readiness waits                                                     *)
(* ------------------------------------------------------------------ *)

(* On Unix a file descriptor is the int; both planes key tables by it. *)
external fd_int : Unix.file_descr -> int = "%identity"
external fd_of_int : int -> Unix.file_descr = "%identity"

(* Event/interest encoding shared with poll_stubs.c:
   (fd lsl 3) lor bits, bits: 1 readable, 2 writable, 4 error. *)
let bit_read = 1
let bit_write = 2
let bit_err = 4

external epoll_create : unit -> int = "mwreg_epoll_create"
external epoll_ctl : int -> int -> int -> int -> unit = "mwreg_epoll_ctl"
external epoll_wait : int -> int -> int array -> int = "mwreg_epoll_wait"
external raw_poll : int array -> int -> int -> int = "mwreg_poll"

let to_ms timeout =
  if timeout <= 0.0 then 0 else int_of_float (Float.ceil (timeout *. 1000.0))

let wait_readable fds timeout =
  match fds with
  | [] -> []
  | _ ->
    let n = List.length fds in
    let arr = Array.make n 0 in
    List.iteri (fun i fd -> arr.(i) <- (fd_int fd lsl 3) lor bit_read) fds;
    if raw_poll arr n (to_ms timeout) = 0 then []
    else
      (* Errors (incl. a descriptor closed underneath us, POLLNVAL)
         count as readable: the caller's read path surfaces the failure
         and drops the connection, exactly as the select path did. *)
      List.filteri (fun i _ -> arr.(i) land (bit_read lor bit_err) <> 0) fds

module Poller = struct
  type t = {
    ep : int; (* epoll instance, or -1 → poll over [interest] *)
    interest : (int, int) Hashtbl.t; (* fd → interest bits *)
    mutable evbuf : int array; (* epoll event staging, reused *)
    mutable pollbuf : int array; (* poll interest staging, reused *)
  }

  let create () =
    {
      ep = epoll_create ();
      interest = Hashtbl.create 64;
      evbuf = Array.make 256 0;
      pollbuf = [||];
    }

  let add t fd ~want_write =
    let bits = if want_write then bit_read lor bit_write else bit_read in
    let k = fd_int fd in
    Hashtbl.replace t.interest k bits;
    if t.ep >= 0 then epoll_ctl t.ep 0 k bits

  let set_write t fd want =
    let k = fd_int fd in
    match Hashtbl.find_opt t.interest k with
    | None -> ()
    | Some bits ->
      let bits' = if want then bits lor bit_write else bits land lnot bit_write in
      if bits' <> bits then begin
        Hashtbl.replace t.interest k bits';
        if t.ep >= 0 then epoll_ctl t.ep 1 k bits'
      end

  let remove t fd =
    let k = fd_int fd in
    if Hashtbl.mem t.interest k then begin
      Hashtbl.remove t.interest k;
      if t.ep >= 0 then epoll_ctl t.ep 2 k 0
    end

  let registered t = Hashtbl.length t.interest

  let dispatch f e =
    let bits = e land 7 in
    if bits <> 0 then
      f
        (fd_of_int (e lsr 3))
        ~readable:(bits land (bit_read lor bit_err) <> 0)
        ~writable:(bits land bit_write <> 0)

  let wait t ~timeout f =
    let ms = to_ms timeout in
    if t.ep >= 0 then begin
      let want = max 64 (Hashtbl.length t.interest + 1) in
      if Array.length t.evbuf < want then t.evbuf <- Array.make want 0;
      let n = epoll_wait t.ep ms t.evbuf in
      for i = 0 to n - 1 do
        dispatch f t.evbuf.(i)
      done;
      n
    end
    else begin
      let m = Hashtbl.length t.interest in
      if m = 0 then begin
        if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0);
        0
      end
      else begin
        if Array.length t.pollbuf < m then t.pollbuf <- Array.make m 0;
        let i = ref 0 in
        Hashtbl.iter
          (fun k bits ->
            t.pollbuf.(!i) <- (k lsl 3) lor bits;
            incr i)
          t.interest;
        let n = raw_poll t.pollbuf m ms in
        if n > 0 then
          for j = 0 to m - 1 do
            dispatch f t.pollbuf.(j)
          done;
        n
      end
    end

  let close t =
    Hashtbl.reset t.interest;
    if t.ep >= 0 then
      try Unix.close (fd_of_int t.ep) with Unix.Unix_error _ -> ()
end
