(** Length-prefixed binary codec for the register wire protocol.

    One frame = a 4-byte big-endian body length followed by the body: a
    tag byte ([Request]/[Reply]), the round-trip id and the client or
    server index, then the {!Registers.Wire.req} or {!Registers.Wire.rep}
    payload — including the full value vector of a READACK, each value
    with its [updated] client set.  Integers travel as 8-byte
    little-endian two's-complement.

    Decoding is strict: short input, bad tags, negative or oversized
    lengths, and trailing bytes all raise {!Decode_error} — a TCP peer
    speaking anything else is disconnected rather than misread. *)

exception Decode_error of string

type frame =
  | Request of { rt : int; client : int; req : Registers.Wire.req }
  | Reply of { rt : int; client : int; server : int; rep : Registers.Wire.rep }
      (** Replies echo the requesting [client]: on a multiplexed
          connection shared by many clients, [(client, rt)] is the
          routing key that delivers the reply to the right mailbox. *)
  | Keyed_request of {
      key : string;
      rt : int;
      client : int;
      req : Registers.Wire.req;
    }
      (** A request addressed to one named register of a server's
          keyspace rather than its single default replica.  Unkeyed
          frames stay on the wire unchanged, so old clients and keyed
          clients share a connection. *)
  | Keyed_reply of {
      key : string;
      rt : int;
      client : int;
      server : int;
      rep : Registers.Wire.rep;
    }
      (** The keyed reply echoes the request's [key]: a client awaiting
          key [k] must drop a reply for any other key rather than count
          it toward its quorum. *)

val max_frame_len : int
(** Largest accepted body, in bytes (corrupt-length guard). *)

val max_key_len : int
(** Longest accepted register key, in bytes.  Encoding a longer key
    raises [Invalid_argument]; decoding one raises {!Decode_error}. *)

val frame_size : frame -> int
(** Exact wire size of [frame] (length prefix included), computed
    without encoding. *)

val encode : frame -> string
(** The full wire bytes: length prefix + body. *)

val encode_into : Buffer.t -> frame -> unit
(** [encode_into b frame] clears [b] and writes exactly the bytes of
    [encode frame] into it.  Reusing one buffer per connection makes the
    hot send path allocation-free once the buffer has grown to its
    steady-state size: [Buffer.contents] is never needed because callers
    blit the buffer straight into a reused [Bytes.t] staging area. *)

val encode_body : frame -> string
(** The body alone, without the length prefix. *)

val decode : string -> frame
(** Inverse of {!encode} on exactly one whole frame.
    @raise Decode_error on any malformation, including trailing bytes. *)

val decode_body : string -> frame
(** Inverse of {!encode_body}.
    @raise Decode_error on any malformation. *)

(** Reassembles frames from an arbitrarily-chunked byte stream (TCP reads
    need not align with frame boundaries). *)
module Stream : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> unit
  (** [feed t buf n] appends the first [n] bytes of [buf]. *)

  val next : t -> frame option
  (** The next complete frame, if one has fully arrived.
      @raise Decode_error if the buffered data is malformed. *)
end
