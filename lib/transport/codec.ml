open Registers

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Decode_error msg)) fmt

type frame =
  | Request of { rt : int; client : int; req : Wire.req }
  | Reply of { rt : int; client : int; server : int; rep : Wire.rep }
  | Keyed_request of { key : string; rt : int; client : int; req : Wire.req }
  | Keyed_reply of {
      key : string;
      rt : int;
      client : int;
      server : int;
      rep : Wire.rep;
    }

(* Hard ceilings so a corrupt or hostile peer cannot make us allocate
   unboundedly.  Generous versus anything the protocols produce. *)
let max_frame_len = 1 lsl 26 (* 64 MiB *)

let max_list_len = 1 lsl 20

(* Keys are short names, not blobs; anything longer is a broken peer. *)
let max_key_len = 1024

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let add_int b n = Buffer.add_int64_le b (Int64.of_int n)

let add_value b (v : Wire.value) =
  add_int b v.Wire.tag.Tstamp.ts;
  add_int b v.Wire.tag.Tstamp.wid;
  add_int b v.Wire.payload

let add_list add b xs =
  add_int b (List.length xs);
  List.iter (add b) xs

let add_req b = function
  | Wire.Query vs ->
    Buffer.add_char b '\000';
    add_list add_value b vs
  | Wire.Update v ->
    Buffer.add_char b '\001';
    add_value b v

let add_rep b = function
  | Wire.Read_ack { current; vector } ->
    Buffer.add_char b '\000';
    add_value b current;
    add_list
      (fun b (v, updated) ->
        add_value b v;
        add_list add_int b updated)
      b vector
  | Wire.Write_ack { current } ->
    Buffer.add_char b '\001';
    add_value b current

(* Encoding an oversized key is a caller bug, caught here rather than at
   the receiving server's strict decoder. *)
let add_key b k =
  if String.length k > max_key_len then
    invalid_arg "Codec: key exceeds max_key_len";
  add_int b (String.length k);
  Buffer.add_string b k

let add_frame b = function
  | Request { rt; client; req } ->
    Buffer.add_char b '\000';
    add_int b rt;
    add_int b client;
    add_req b req
  | Reply { rt; client; server; rep } ->
    Buffer.add_char b '\001';
    add_int b rt;
    add_int b client;
    add_int b server;
    add_rep b rep
  | Keyed_request { key; rt; client; req } ->
    Buffer.add_char b '\002';
    add_key b key;
    add_int b rt;
    add_int b client;
    add_req b req
  | Keyed_reply { key; rt; client; server; rep } ->
    Buffer.add_char b '\003';
    add_key b key;
    add_int b rt;
    add_int b client;
    add_int b server;
    add_rep b rep

(* Exact wire sizes, so [encode_into] can emit the length prefix first
   and never needs a second buffer or a patch-up pass. *)
let value_size = 24 (* ts + wid + payload *)

let req_size = function
  | Wire.Query vs -> 1 + 8 + (value_size * List.length vs)
  | Wire.Update _ -> 1 + value_size

let rep_size = function
  | Wire.Write_ack _ -> 1 + value_size
  | Wire.Read_ack { vector; _ } ->
    1 + value_size + 8
    + List.fold_left
        (fun acc (_, updated) ->
          acc + value_size + 8 + (8 * List.length updated))
        0 vector

let key_size k = 8 + String.length k

let body_size = function
  | Request { req; _ } -> 1 + 8 + 8 + req_size req
  | Reply { rep; _ } -> 1 + 8 + 8 + 8 + rep_size rep
  | Keyed_request { key; req; _ } -> 1 + key_size key + 8 + 8 + req_size req
  | Keyed_reply { key; rep; _ } ->
    1 + key_size key + 8 + 8 + 8 + rep_size rep

let frame_size frame = 4 + body_size frame

let encode_into b frame =
  Buffer.clear b;
  Buffer.add_int32_be b (Int32.of_int (body_size frame));
  add_frame b frame

let encode_body frame =
  let b = Buffer.create 128 in
  add_frame b frame;
  Buffer.contents b

let encode frame =
  let b = Buffer.create (frame_size frame) in
  encode_into b frame;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding (strict: every malformation is a [Decode_error])            *)
(* ------------------------------------------------------------------ *)

type cursor = { data : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.data then
    fail "truncated frame: need %d bytes at offset %d of %d" n c.pos
      (String.length c.data)

let get_byte c =
  need c 1;
  let x = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  x

let get_int c =
  need c 8;
  let x = Int64.to_int (String.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  x

let get_len c what =
  let n = get_int c in
  if n < 0 || n > max_list_len then fail "bad %s length %d" what n;
  n

let get_value c =
  let ts = get_int c in
  let wid = get_int c in
  let payload = get_int c in
  { Wire.tag = { Tstamp.ts; wid }; payload }

let get_list get c what =
  let n = get_len c what in
  List.init n (fun _ -> get c)

let get_req c =
  match get_byte c with
  | 0 -> Wire.Query (get_list get_value c "query vector")
  | 1 -> Wire.Update (get_value c)
  | b -> fail "unknown request tag %d" b

let get_rep c =
  match get_byte c with
  | 0 ->
    let current = get_value c in
    let vector =
      get_list
        (fun c ->
          let v = get_value c in
          let updated = get_list get_int c "updated set" in
          (v, updated))
        c "value vector"
    in
    Wire.Read_ack { current; vector }
  | 1 -> Wire.Write_ack { current = get_value c }
  | b -> fail "unknown reply tag %d" b

let get_key c =
  let n = get_int c in
  if n < 0 || n > max_key_len then fail "bad key length %d" n;
  need c n;
  let k = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  k

let get_frame c =
  match get_byte c with
  | 0 ->
    let rt = get_int c in
    let client = get_int c in
    let req = get_req c in
    Request { rt; client; req }
  | 1 ->
    let rt = get_int c in
    let client = get_int c in
    let server = get_int c in
    let rep = get_rep c in
    Reply { rt; client; server; rep }
  | 2 ->
    let key = get_key c in
    let rt = get_int c in
    let client = get_int c in
    let req = get_req c in
    Keyed_request { key; rt; client; req }
  | 3 ->
    let key = get_key c in
    let rt = get_int c in
    let client = get_int c in
    let server = get_int c in
    let rep = get_rep c in
    Keyed_reply { key; rt; client; server; rep }
  | b -> fail "unknown frame tag %d" b

let decode_body body =
  let c = { data = body; pos = 0 } in
  let frame = get_frame c in
  if c.pos <> String.length body then
    fail "trailing garbage: %d of %d bytes consumed" c.pos (String.length body);
  frame

let decode s =
  if String.length s < 4 then fail "short frame: no length prefix";
  let n = Int32.to_int (String.get_int32_be s 0) in
  if n < 0 || n > max_frame_len then fail "bad frame length %d" n;
  if String.length s <> 4 + n then
    fail "frame length mismatch: prefix says %d, got %d" n (String.length s - 4);
  decode_body (String.sub s 4 n)

(* ------------------------------------------------------------------ *)
(* Incremental reassembly over a byte stream                            *)
(* ------------------------------------------------------------------ *)

module Stream = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let feed t src n =
    if n > 0 then begin
      let needed = t.len + n in
      if needed > Bytes.length t.buf then begin
        let cap = ref (Bytes.length t.buf) in
        while !cap < needed do
          cap := !cap * 2
        done;
        let buf = Bytes.create !cap in
        Bytes.blit t.buf 0 buf 0 t.len;
        t.buf <- buf
      end;
      Bytes.blit src 0 t.buf t.len n;
      t.len <- t.len + n
    end

  let next t =
    if t.len < 4 then None
    else begin
      let n = Int32.to_int (Bytes.get_int32_be t.buf 0) in
      if n < 0 || n > max_frame_len then fail "bad frame length %d" n;
      if t.len < 4 + n then None
      else begin
        let body = Bytes.sub_string t.buf 4 n in
        let rest = t.len - 4 - n in
        Bytes.blit t.buf (4 + n) t.buf 0 rest;
        t.len <- rest;
        Some (decode_body body)
      end
    end
end
