(** Named WAN/geo scenario profiles, compiled for both backends.

    A profile describes "who is far from whom" once — as per-region-pair
    one-way delay and jitter matrices over a deterministic node → region
    placement — and compiles into

    - a {!Simulation.Latency.matrix} model for the simulated backend, and
    - a {!Faults.t} rule set ({!Faults.Latency} kind) for the live mux
      and sockets transports,

    so a protocol measured under [wan-3region] sees the same geography on
    every plane.  Node ids follow the shared Topology numbering (servers
    [0..s-1], then clients); placement is [node mod region_count]. *)

type profile

val name : profile -> string
val description : profile -> string

val region_count : profile -> int
val region_name : profile -> int -> string

val region_of : profile -> int -> int
(** [region_of p node] is the region a node lives in: [node mod
    region_count p].  Identical for the latency model and the fault
    rules.  Raises [Invalid_argument] on negative ids. *)

val base : profile -> src:int -> dst:int -> float
(** One-way base delay in seconds for a message from node [src] to node
    [dst] (before jitter). *)

val jitter_bound : profile -> src:int -> dst:int -> float
(** Uniform jitter bound added on top of {!base} for that direction. *)

val max_rtt : profile -> float
(** Worst-case round trip (both legs, including jitter) over all region
    pairs — use it to size [rt_timeout]. *)

val lan : profile
(** One region, ~0.6ms RTT: the control. *)

val wan_3region : profile
(** Three symmetric regions, ~1ms intra-region RTT, ~80ms cross-region. *)

val mixed_1ms_80ms : profile
(** Two regions: fast at home, one 80ms-RTT ocean between them. *)

val asym_updown : profile
(** Asymmetric edge/core links: 30ms up, 10ms down. *)

val profiles : profile list
(** All named profiles, [lan] first. *)

val find : string -> profile option
(** Case-insensitive lookup by name. *)

val names : unit -> string list

val latency_model : profile -> Simulation.Latency.t
(** Compile the profile for the simulated backend. *)

val rules : profile -> s:int -> clients:int list -> Faults.rule list
(** Compile the profile for the live transports: one
    {!Faults.Latency} rule per populated (client region, server region)
    pair and direction, carrying that pair's base/jitter.  [s] is the
    server count; [clients] the client node ids (Topology numbering). *)

val plan : ?seed:int -> ?extra:Faults.rule list -> profile -> s:int -> clients:int list -> Faults.t
(** [rules] wrapped into a fault plan; [extra] rules (e.g. a
    {!Faults.partition} for a region outage) are appended after the geo
    rules.  [seed] drives the deterministic jitter draws. *)

val region_nodes : profile -> s:int -> clients:int list -> int -> int list
(** All nodes (servers and clients) placed in the given region — the
    group list for region-outage partitions. *)

val describe : profile -> string
(** Human-readable delay/jitter matrix for [mwreg geo --list]. *)
