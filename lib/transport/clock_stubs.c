/* Monotonic time source for transport deadlines.
 *
 * Returns CLOCK_MONOTONIC seconds when the platform provides it, or a
 * negative sentinel so the OCaml side falls back to gettimeofday. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#else
#include <time.h>
#include <unistd.h>
#endif

CAMLprim value mwreg_clock_monotonic(value unit)
{
  (void)unit;
#if !defined(_WIN32) && defined(CLOCK_MONOTONIC)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
      return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
  }
#endif
  return caml_copy_double(-1.0);
}
