open Registers

type t = {
  id : int;
  listen_fd : Unix.file_descr;
  port : int;
  replica : Replica.t;
  replica_lock : Mutex.t;
  mutable conns : Unix.file_descr list;
  conns_lock : Mutex.t;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  mutable handlers : Thread.t list;
}

(* A peer closing its socket mid-write must surface as EPIPE on that
   write, not kill the whole process. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let port t = t.port

let replica t = t.replica

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let remove_conn t fd =
  Mutex.protect t.conns_lock (fun () ->
      t.conns <- List.filter (fun c -> c != fd) t.conns)

(* One thread per client connection: decode requests, run them through
   the replica state machine (serialized — the full-info model's server
   processes one message at a time), reply on the same connection. *)
let handle_conn t fd =
  let stream = Codec.Stream.create () in
  let buf = Bytes.create 65536 in
  (try
     let stop = ref false in
     while not !stop do
       let n = Unix.read fd buf 0 (Bytes.length buf) in
       if n = 0 then stop := true
       else begin
         Codec.Stream.feed stream buf n;
         let rec drain () =
           match Codec.Stream.next stream with
           | None -> ()
           | Some (Codec.Reply _) ->
             (* Only clients speak replies; a confused peer is cut off. *)
             stop := true
           | Some (Codec.Request { rt; client; req }) ->
             let rep =
               Mutex.protect t.replica_lock (fun () ->
                   Replica.handle t.replica ~client req)
             in
             write_all fd (Codec.encode (Codec.Reply { rt; server = t.id; rep }));
             drain ()
         in
         drain ()
       end
     done
   with _ -> ());
  remove_conn t fd;
  try Unix.close fd with _ -> ()

let accept_loop t =
  while not t.stopping do
    (* Select with a timeout so [stop] wins even with no inbound
       connections; an actual connect wakes us immediately. *)
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ when t.stopping -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.listen_fd with
      | exception _ -> ()
      | fd, _ ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
        Mutex.protect t.conns_lock (fun () -> t.conns <- fd :: t.conns);
        let th = Thread.create (handle_conn t) fd in
        t.handlers <- th :: t.handlers)
  done;
  try Unix.close t.listen_fd with _ -> ()

let start ?(host = "127.0.0.1") ?(port = 0) ?(id = 0) ~replica () =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let t =
    {
      id;
      listen_fd = fd;
      port;
      replica;
      replica_lock = Mutex.create ();
      conns = [];
      conns_lock = Mutex.create ();
      stopping = false;
      accept_thread = None;
      handlers = [];
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (* Handlers wake from [read] with EOF once their socket is shut
       down, then close their own fd and exit. *)
    let conns = Mutex.protect t.conns_lock (fun () -> t.conns) in
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    (match t.accept_thread with
    | Some th ->
      Thread.join th;
      t.accept_thread <- None
    | None -> ());
    List.iter Thread.join t.handlers;
    t.handlers <- []
  end
