open Registers

(* One live client connection.  Replies normally leave from the handler
   thread alone, but a fault plan's delayed deliveries are written by
   short-lived delayer threads — so every write takes [wlock], and
   [alive] keeps a delayer that outlives the connection from writing to
   a closed (possibly reused) descriptor. *)
type sconn = {
  sfd : Unix.file_descr;
  wlock : Mutex.t;
  mutable alive : bool;
}

type t = {
  id : int;
  listen_fd : Unix.file_descr;
  port : int;
  replica : Replica.t;
  replica_lock : Mutex.t;
  faults : Faults.t option;
  mutable conns : sconn list;
  conns_lock : Mutex.t;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  handlers : (int, Thread.t) Hashtbl.t; (* keyed by thread id *)
  mutable finished : Thread.t list; (* handlers ready to be reaped *)
  mutable delayers : Thread.t list; (* fault-plan delayed deliveries *)
}

(* A peer closing its socket mid-write must surface as EPIPE on that
   write, not kill the whole process. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let port t = t.port

let replica t = t.replica

let remove_conn t sc =
  Mutex.protect t.conns_lock (fun () ->
      t.conns <- List.filter (fun c -> c != sc) t.conns)

(* A delayed reply delivery: one short-lived thread sleeps then writes
   the frame under the connection's write lock.  If the connection died
   in the meantime ([alive] cleared before close) the frame is simply
   lost — which is also a legal behaviour of the link being modelled. *)
let schedule_delayed t sc frame after =
  let bytes = Bytes.of_string (Codec.encode frame) in
  let th =
    Thread.create
      (fun () ->
        Thread.delay after;
        Mutex.protect sc.wlock (fun () ->
            if sc.alive then
              try Netio.write_all sc.sfd bytes 0 (Bytes.length bytes)
              with Unix.Unix_error _ -> ()))
      ()
  in
  Mutex.protect t.conns_lock (fun () -> t.delayers <- th :: t.delayers)

(* One thread per client connection.  With the multiplexed client plane
   a connection carries the traffic of every client in that process, so
   the loop is built for batches: all requests decoded from one [read]
   are run through the replica under a single [replica_lock]
   acquisition, and their replies leave in a single [write] from a
   per-connection reused buffer — no per-frame allocation once warm. *)
let handle_conn t sc =
  let fd = sc.sfd in
  let stream = Codec.Stream.create () in
  let buf = Bytes.create 65536 in
  let reply_buf = Buffer.create 4096 in
  let frame_buf = Buffer.create 512 in
  let out = ref (Bytes.create 4096) in
  let frame_count = ref 0 in
  (try
     let stop = ref false in
     while not !stop do
       let n = Netio.read fd buf 0 (Bytes.length buf) in
       if n = 0 then stop := true
       else begin
         Codec.Stream.feed stream buf n;
         (* Phase 1: drain every complete frame out of the stream. *)
         let rec collect acc =
           match Codec.Stream.next stream with
           | None -> List.rev acc
           | Some (Codec.Reply _) ->
             (* Only servers speak replies; a confused peer is cut off. *)
             stop := true;
             List.rev acc
           | Some (Codec.Request { rt; client; req }) ->
             collect ((rt, client, req) :: acc)
         in
         let requests = collect [] in
         if requests <> [] then begin
           (* Phase 2: one lock acquisition for the whole batch — the
              replica still processes messages one at a time (the
              full-info model), but the lock traffic is per batch. *)
           let reps =
             Mutex.protect t.replica_lock (fun () ->
                 List.map
                   (fun (rt, client, req) ->
                     (rt, client, Replica.handle t.replica ~client req))
                   requests)
           in
           (* Phase 3: decide each reply frame's fate under the fault
              plan (every frame passes when there is none), then all
              immediate deliveries leave in one write. *)
           Buffer.clear reply_buf;
           let sever = ref false in
           List.iter
             (fun (rt, client, rep) ->
               let frame = Codec.Reply { rt; client; server = t.id; rep } in
               match t.faults with
               | None ->
                 Codec.encode_into frame_buf frame;
                 Buffer.add_buffer reply_buf frame_buf
               | Some plan ->
                 if not !sever then begin
                   incr frame_count;
                   let ds =
                     Faults.deliveries plan ~dir:Faults.From_server
                       ~server:t.id ~client ~rt ~salt:!frame_count
                   in
                   List.iter
                     (fun { Faults.after; truncated } ->
                       if truncated then begin
                         (* A torn frame: ship a prefix, then sever.  The
                            client's strict decoder rejects the stream
                            and reconnects. *)
                         Codec.encode_into frame_buf frame;
                         let prefix = max 1 (Buffer.length frame_buf / 2) in
                         Buffer.add_string reply_buf
                           (Buffer.sub frame_buf 0 prefix);
                         sever := true
                       end
                       else if after > 0.0 then
                         schedule_delayed t sc frame after
                       else begin
                         Codec.encode_into frame_buf frame;
                         Buffer.add_buffer reply_buf frame_buf
                       end)
                     ds
                 end)
             reps;
           let len = Buffer.length reply_buf in
           if len > 0 then begin
             if len > Bytes.length !out then
               out := Bytes.create (max len (2 * Bytes.length !out));
             Buffer.blit reply_buf 0 !out 0 len;
             Mutex.protect sc.wlock (fun () -> Netio.write_all fd !out 0 len)
           end;
           if !sever then stop := true
         end
       end
     done
   with Unix.Unix_error _ | Codec.Decode_error _ -> ());
  Mutex.protect sc.wlock (fun () -> sc.alive <- false);
  remove_conn t sc;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* Hand ourselves to the accept loop for joining: handler threads must
     not accumulate forever under connect/disconnect churn. *)
  Mutex.protect t.conns_lock (fun () ->
      t.finished <- Thread.self () :: t.finished)

(* Join handler threads that have announced completion and forget them.
   Runs in the accept loop (every timeout tick) and in [stop]. *)
let reap t =
  let done_ =
    Mutex.protect t.conns_lock (fun () ->
        let ds = t.finished in
        t.finished <- [];
        ds)
  in
  List.iter
    (fun th ->
      Hashtbl.remove t.handlers (Thread.id th);
      Thread.join th)
    done_

let accept_loop t =
  while not t.stopping do
    (* Select with a timeout so [stop] wins even with no inbound
       connections; an actual connect wakes us immediately.  EINTR just
       means a signal landed — re-check and select again. *)
    (match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ when t.stopping -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        let sc = { sfd = fd; wlock = Mutex.create (); alive = true } in
        Mutex.protect t.conns_lock (fun () -> t.conns <- sc :: t.conns);
        let th = Thread.create (handle_conn t) sc in
        Hashtbl.replace t.handlers (Thread.id th) th)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    reap t
  done;
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let start ?(host = "127.0.0.1") ?(port = 0) ?(id = 0) ?faults ~replica () =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let t =
    {
      id;
      listen_fd = fd;
      port;
      replica;
      replica_lock = Mutex.create ();
      faults;
      conns = [];
      conns_lock = Mutex.create ();
      stopping = false;
      accept_thread = None;
      handlers = Hashtbl.create 16;
      finished = [];
      delayers = [];
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let handler_count t =
  Hashtbl.length t.handlers - List.length t.finished

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (* Handlers wake from [read] with EOF once their socket is shut
       down, then close their own fd and exit. *)
    let conns = Mutex.protect t.conns_lock (fun () -> t.conns) in
    List.iter
      (fun sc ->
        try Unix.shutdown sc.sfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    (match t.accept_thread with
    | Some th ->
      Thread.join th;
      t.accept_thread <- None
    | None -> ());
    Hashtbl.iter (fun _ th -> Thread.join th) t.handlers;
    Hashtbl.reset t.handlers;
    let delayers =
      Mutex.protect t.conns_lock (fun () ->
          let ds = t.delayers in
          t.delayers <- [];
          t.finished <- [];
          ds)
    in
    List.iter Thread.join delayers
  end
