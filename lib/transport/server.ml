open Registers

(* A non-blocking reactor replaces the old thread-per-connection design:
   each shard runs one event loop over an epoll/poll {!Netio.Poller},
   owns a disjoint set of connections, and is the only thread that ever
   touches them — connection state needs no locks at all.  The replica
   stays shared behind [replica_lock] (the model's one-message-at-a-time
   server), so shards scale the *socket* work, not the state machine. *)

(* Per-connection outbound queue: a flat byte window [off, off+len) that
   replies are appended to and the flush path consumes from the front.
   Batched writes coalesce here — everything a wakeup produced leaves in
   one write — and when the peer stops reading, the queue simply grows
   while write interest keeps backpressure visible to the poller. *)
module Outq = struct
  type t = { mutable buf : Bytes.t; mutable off : int; mutable len : int }

  let create n = { buf = Bytes.create n; off = 0; len = 0 }

  let is_empty q = q.len = 0

  let ensure q extra =
    let need = q.len + extra in
    if q.off + need > Bytes.length q.buf then
      if need <= Bytes.length q.buf then begin
        (* Enough total room: slide the window back to the start. *)
        Bytes.blit q.buf q.off q.buf 0 q.len;
        q.off <- 0
      end
      else begin
        let cap = ref (max 4096 (2 * Bytes.length q.buf)) in
        while !cap < need do
          cap := 2 * !cap
        done;
        let nb = Bytes.create !cap in
        Bytes.blit q.buf q.off nb 0 q.len;
        q.buf <- nb;
        q.off <- 0
      end

  let add_buffer q b =
    let n = Buffer.length b in
    ensure q n;
    Buffer.blit b 0 q.buf (q.off + q.len) n;
    q.len <- q.len + n

  let add_string q s =
    let n = String.length s in
    ensure q n;
    Bytes.blit_string s 0 q.buf (q.off + q.len) n;
    q.len <- q.len + n

  let consume q n =
    q.off <- q.off + n;
    q.len <- q.len - n;
    if q.len = 0 then q.off <- 0
end

type conn = {
  cfd : Unix.file_descr;
  ckey : int; (* fd number: the shard's connection-table key *)
  stream : Codec.Stream.t;
  outq : Outq.t;
  mutable want_write : bool; (* write interest registered *)
  mutable sever : bool; (* close once the out-queue drains *)
  mutable frames : int; (* reply frames decided; salts the fault plan *)
}

(* A delayed reply delivery (fault plan): encoded bytes parked on the
   owning shard's timer list instead of a delayer thread's stack.  The
   shard's poll timeout shrinks to the nearest deadline, and a timer
   whose connection died meanwhile just drops the frame — also a legal
   behaviour of the link being modelled. *)
type timer = { due : float; tkey : int; payload : string }

type shard = {
  snum : int;
  poller : Netio.Poller.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  lock : Mutex.t; (* guards [inbox] only *)
  mutable inbox : Unix.file_descr list; (* conns handed over by shard 0 *)
  conns : (int, conn) Hashtbl.t; (* shard-thread private *)
  mutable timers : timer list; (* sorted by [due]; shard-thread private *)
  rbuf : Bytes.t;
  reply_buf : Buffer.t;
  frame_buf : Buffer.t;
}

type runner = T of Thread.t | D of unit Domain.t

type t = {
  id : int;
  listen_fd : Unix.file_descr;
  port : int;
  replica : Replica.t;
  keyspace : Keyspace.t; (* named registers, same lock as [replica] *)
  replica_lock : Mutex.t;
  faults : Faults.t option;
  shards : shard array;
  stopping : bool Atomic.t;
  live_conns : int Atomic.t;
  mutable rr : int; (* round-robin shard cursor; shard 0's thread only *)
  mutable runners : runner list;
}

(* A peer closing its socket mid-write must surface as EPIPE on that
   write, not kill the whole process. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

(* The idle tick: an upper bound on how long a shard sleeps when nothing
   is ready and no timer is due, and therefore on [stop]'s worst-case
   latency if a wakeup byte were ever lost. *)
let tick = 0.2

(* Backpressure ceiling for one connection's out-queue.  A peer that
   stops reading (or reads far slower than it asks) would otherwise grow
   its queue without bound — the quorum keeps completing on the other
   replicas, so nothing upstream ever slows down for it.  Severing the
   link is a behaviour the model already covers: the client sees a
   dropped connection and re-broadcasts after reconnecting. *)
let outq_limit = 4 * 1024 * 1024

let port t = t.port

let replica t = t.replica

let keyspace t = t.keyspace

let connection_count t = Atomic.get t.live_conns

let close_conn t sh c =
  if Hashtbl.mem sh.conns c.ckey then begin
    Hashtbl.remove sh.conns c.ckey;
    (* Unregister before close: the fd number is reusable the instant
       close returns, and the poller must never see it secondhand. *)
    Netio.Poller.remove sh.poller c.cfd;
    (try Unix.close c.cfd with Unix.Unix_error _ -> ());
    Atomic.decr t.live_conns
  end

(* Flush the out-queue: write until drained or the kernel pushes back.
   EAGAIN registers write interest — the poller re-invokes us when the
   peer drains its side — and a drained queue clears it, so a slow
   reader costs exactly one interest toggle, never a blocked thread. *)
let rec flush t sh c =
  if Outq.is_empty c.outq then begin
    if c.want_write then begin
      c.want_write <- false;
      Netio.Poller.set_write sh.poller c.cfd false
    end;
    if c.sever then close_conn t sh c
  end
  else
    match Netio.write_nb c.cfd c.outq.Outq.buf c.outq.Outq.off c.outq.Outq.len with
    | Some n ->
      Outq.consume c.outq n;
      flush t sh c
    | None ->
      if not c.want_write then begin
        c.want_write <- true;
        Netio.Poller.set_write sh.poller c.cfd true
      end
    | exception Unix.Unix_error _ -> close_conn t sh c

let add_timer sh tm =
  let rec ins = function
    | [] -> [ tm ]
    | hd :: _ as l when tm.due < hd.due -> tm :: l
    | hd :: tl -> hd :: ins tl
  in
  sh.timers <- ins sh.timers

(* Run one wakeup's worth of decoded requests through the replica under
   a single lock acquisition (the batch fast path for multiplexed client
   connections), decide each reply frame's fate under the fault plan,
   and coalesce every immediate delivery into one flush.  Keyed requests
   dispatch to the keyspace's per-key replica under the same lock — the
   model's one-message-at-a-time server, per register. *)
let process_requests t sh c requests =
  let reps =
    Mutex.protect t.replica_lock (fun () ->
        List.map
          (fun (rt, client, key, req) ->
            let rep =
              match key with
              | None -> Replica.handle t.replica ~client req
              | Some key -> Keyspace.handle t.keyspace ~key ~client req
            in
            (rt, client, key, rep))
          requests)
  in
  Buffer.clear sh.reply_buf;
  List.iter
    (fun (rt, client, key, rep) ->
      let frame =
        match key with
        | None -> Codec.Reply { rt; client; server = t.id; rep }
        | Some key -> Codec.Keyed_reply { key; rt; client; server = t.id; rep }
      in
      match t.faults with
      | None ->
        Codec.encode_into sh.frame_buf frame;
        Buffer.add_buffer sh.reply_buf sh.frame_buf
      | Some plan ->
        if not c.sever then begin
          c.frames <- c.frames + 1;
          let ds =
            Faults.deliveries plan ~dir:Faults.From_server ~server:t.id
              ~client ~rt ~salt:c.frames
          in
          List.iter
            (fun { Faults.after; truncated } ->
              if truncated then begin
                (* A torn frame: ship a prefix, then sever (once the
                   queue drains).  The client's strict decoder rejects
                   the stream and reconnects. *)
                Codec.encode_into sh.frame_buf frame;
                let prefix = max 1 (Buffer.length sh.frame_buf / 2) in
                Buffer.add_string sh.reply_buf
                  (Buffer.sub sh.frame_buf 0 prefix);
                c.sever <- true
              end
              else if after > 0.0 then
                add_timer sh
                  {
                    due = Clock.now () +. after;
                    tkey = c.ckey;
                    payload = Codec.encode frame;
                  }
              else begin
                Codec.encode_into sh.frame_buf frame;
                Buffer.add_buffer sh.reply_buf sh.frame_buf
              end)
            ds
        end)
    reps;
  if Buffer.length sh.reply_buf > 0 then Outq.add_buffer c.outq sh.reply_buf;
  if c.outq.Outq.len > outq_limit then close_conn t sh c else flush t sh c

let fire_timers t sh now =
  let rec go () =
    match sh.timers with
    | tm :: rest when tm.due <= now ->
      sh.timers <- rest;
      (match Hashtbl.find_opt sh.conns tm.tkey with
      | None -> () (* the connection died while the frame was in flight *)
      | Some c ->
        if not c.sever then begin
          Outq.add_string c.outq tm.payload;
          if c.outq.Outq.len > outq_limit then close_conn t sh c
          else flush t sh c
        end);
      go ()
    | _ -> ()
  in
  go ()

(* Readable event: drain the socket to EAGAIN through the incremental
   decoder, then process every complete frame as one batch.  Frames
   decoded before an error still get answers; the error still severs. *)
let handle_readable t sh c =
  let closed = ref false in
  (try
     let more = ref true in
     while !more do
       match Netio.read_nb c.cfd sh.rbuf 0 (Bytes.length sh.rbuf) with
       | None -> more := false
       | Some 0 ->
         more := false;
         closed := true
       | Some n ->
         Codec.Stream.feed c.stream sh.rbuf n;
         (* A short read means the socket buffer is (currently) empty:
            skip the confirming EAGAIN syscall. *)
         if n < Bytes.length sh.rbuf then more := false
     done
   with Unix.Unix_error _ -> closed := true);
  let requests = ref [] in
  (try
     let rec go () =
       match Codec.Stream.next c.stream with
       | None -> ()
       | Some (Codec.Reply _) | Some (Codec.Keyed_reply _) ->
         (* Only servers speak replies; a confused peer is cut off. *)
         closed := true
       | Some (Codec.Request { rt; client; req }) ->
         requests := (rt, client, None, req) :: !requests;
         go ()
       | Some (Codec.Keyed_request { key; rt; client; req }) ->
         requests := (rt, client, Some key, req) :: !requests;
         go ()
     in
     go ()
   with Codec.Decode_error _ -> closed := true);
  if !requests <> [] then process_requests t sh c (List.rev !requests);
  if !closed then close_conn t sh c

let register_conn sh fd =
  let c =
    {
      cfd = fd;
      ckey = Netio.fd_int fd;
      stream = Codec.Stream.create ();
      outq = Outq.create 4096;
      want_write = false;
      sever = false;
      frames = 0;
    }
  in
  Hashtbl.replace sh.conns c.ckey c;
  Netio.Poller.add sh.poller fd ~want_write:false

(* Accept runs in shard 0 and deals connections round-robin; a foreign
   shard gets the fd through its locked inbox plus a wakeup byte.  Any
   unexpected accept failure (e.g. EMFILE) just ends this round — the
   level-triggered poller re-reports the backlog next tick. *)
let do_accept t sh0 =
  let more = ref true in
  while !more do
    match Netio.accept_nb t.listen_fd with
    | None -> more := false
    | exception Unix.Unix_error _ -> more := false
    | Some fd ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      Netio.set_nonblock fd;
      let sh = t.shards.(t.rr mod Array.length t.shards) in
      t.rr <- t.rr + 1;
      Atomic.incr t.live_conns;
      if sh == sh0 then register_conn sh fd
      else begin
        Mutex.protect sh.lock (fun () -> sh.inbox <- fd :: sh.inbox);
        Netio.notify sh.wake_w
      end
  done

let drain_inbox t sh =
  let fds =
    Mutex.protect sh.lock (fun () ->
        let l = sh.inbox in
        sh.inbox <- [];
        List.rev l)
  in
  List.iter
    (fun fd ->
      if Atomic.get t.stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Atomic.decr t.live_conns
      end
      else register_conn sh fd)
    fds

let shard_loop t sh =
  let wake_key = Netio.fd_int sh.wake_r in
  let listen_key = if sh.snum = 0 then Netio.fd_int t.listen_fd else -1 in
  while not (Atomic.get t.stopping) do
    let timeout =
      match sh.timers with
      | [] -> tick
      | tm :: _ -> Float.max 0.0 (Float.min tick (tm.due -. Clock.now ()))
    in
    ignore
      (Netio.Poller.wait sh.poller ~timeout
         (fun fd ~readable ~writable ->
           let k = Netio.fd_int fd in
           if k = wake_key then begin
             if readable then Netio.drain_wake sh.wake_r
           end
           else if k = listen_key then begin
             if readable && not (Atomic.get t.stopping) then do_accept t sh
           end
           else
             match Hashtbl.find_opt sh.conns k with
             | None -> () (* closed earlier in this same dispatch round *)
             | Some c ->
               if writable then flush t sh c;
               (* The flush may have severed the connection. *)
               if readable && Hashtbl.mem sh.conns k then
                 handle_readable t sh c));
    drain_inbox t sh;
    fire_timers t sh (Clock.now ())
  done;
  (* Teardown on the owning thread: close every connection (clients see
     the crash as EOF/reset) and refuse late inbox handovers. *)
  let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) sh.conns [] in
  List.iter (fun c -> close_conn t sh c) remaining;
  drain_inbox t sh

let start ?(host = "127.0.0.1") ?(port = 0) ?(id = 0) ?(shards = 1) ?faults
    ?keyspace ~replica () =
  let keyspace =
    match keyspace with Some ks -> ks | None -> Keyspace.create ()
  in
  if shards < 1 then invalid_arg "Server.start: shards must be >= 1";
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (* A reactor accepts thousands of near-simultaneous connects (the
     high-C sweep opens them in a burst): give the backlog headroom. *)
  Unix.listen fd 1024;
  Netio.set_nonblock fd;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let mk_shard snum =
    let wake_r, wake_w = Unix.pipe () in
    Netio.set_nonblock wake_r;
    Netio.set_nonblock wake_w;
    let poller = Netio.Poller.create () in
    Netio.Poller.add poller wake_r ~want_write:false;
    {
      snum;
      poller;
      wake_r;
      wake_w;
      lock = Mutex.create ();
      inbox = [];
      conns = Hashtbl.create 64;
      timers = [];
      rbuf = Bytes.create 65536;
      reply_buf = Buffer.create 4096;
      frame_buf = Buffer.create 512;
    }
  in
  let shard_a = Array.init shards mk_shard in
  let t =
    {
      id;
      listen_fd = fd;
      port;
      replica;
      keyspace;
      replica_lock = Mutex.create ();
      faults;
      shards = shard_a;
      stopping = Atomic.make false;
      live_conns = Atomic.make 0;
      rr = 0;
      runners = [];
    }
  in
  Netio.Poller.add shard_a.(0).poller fd ~want_write:false;
  (* One shard rides a plain thread; more get a domain each, so shards
     actually run in parallel instead of time-slicing one runtime lock. *)
  t.runners <-
    (if shards = 1 then
       [ T (Thread.create (fun () -> shard_loop t shard_a.(0)) ()) ]
     else
       Array.to_list
         (Array.map (fun sh -> D (Domain.spawn (fun () -> shard_loop t sh)))
            shard_a));
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Array.iter (fun sh -> Netio.notify sh.wake_w) t.shards;
    List.iter (function T th -> Thread.join th | D d -> Domain.join d)
      t.runners;
    t.runners <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Array.iter
      (fun sh ->
        Netio.Poller.close sh.poller;
        (try Unix.close sh.wake_r with Unix.Unix_error _ -> ());
        (try Unix.close sh.wake_w with Unix.Unix_error _ -> ()))
      t.shards
  end
