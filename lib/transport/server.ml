open Registers

type t = {
  id : int;
  listen_fd : Unix.file_descr;
  port : int;
  replica : Replica.t;
  replica_lock : Mutex.t;
  mutable conns : Unix.file_descr list;
  conns_lock : Mutex.t;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  handlers : (int, Thread.t) Hashtbl.t; (* keyed by thread id *)
  mutable finished : Thread.t list; (* handlers ready to be reaped *)
}

(* A peer closing its socket mid-write must surface as EPIPE on that
   write, not kill the whole process. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let port t = t.port

let replica t = t.replica

let write_all fd b n =
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let remove_conn t fd =
  Mutex.protect t.conns_lock (fun () ->
      t.conns <- List.filter (fun c -> c != fd) t.conns)

(* One thread per client connection.  With the multiplexed client plane
   a connection carries the traffic of every client in that process, so
   the loop is built for batches: all requests decoded from one [read]
   are run through the replica under a single [replica_lock]
   acquisition, and their replies leave in a single [write] from a
   per-connection reused buffer — no per-frame allocation once warm. *)
let handle_conn t fd =
  let stream = Codec.Stream.create () in
  let buf = Bytes.create 65536 in
  let reply_buf = Buffer.create 4096 in
  let frame_buf = Buffer.create 512 in
  let out = ref (Bytes.create 4096) in
  (try
     let stop = ref false in
     while not !stop do
       let n = Unix.read fd buf 0 (Bytes.length buf) in
       if n = 0 then stop := true
       else begin
         Codec.Stream.feed stream buf n;
         (* Phase 1: drain every complete frame out of the stream. *)
         let rec collect acc =
           match Codec.Stream.next stream with
           | None -> List.rev acc
           | Some (Codec.Reply _) ->
             (* Only servers speak replies; a confused peer is cut off. *)
             stop := true;
             List.rev acc
           | Some (Codec.Request { rt; client; req }) ->
             collect ((rt, client, req) :: acc)
         in
         let requests = collect [] in
         if requests <> [] then begin
           (* Phase 2: one lock acquisition for the whole batch — the
              replica still processes messages one at a time (the
              full-info model), but the lock traffic is per batch. *)
           let reps =
             Mutex.protect t.replica_lock (fun () ->
                 List.map
                   (fun (rt, client, req) ->
                     (rt, client, Replica.handle t.replica ~client req))
                   requests)
           in
           (* Phase 3: all replies in one write. *)
           Buffer.clear reply_buf;
           List.iter
             (fun (rt, client, rep) ->
               Codec.encode_into frame_buf
                 (Codec.Reply { rt; client; server = t.id; rep });
               Buffer.add_buffer reply_buf frame_buf)
             reps;
           let len = Buffer.length reply_buf in
           if len > Bytes.length !out then
             out := Bytes.create (max len (2 * Bytes.length !out));
           Buffer.blit reply_buf 0 !out 0 len;
           write_all fd !out len
         end
       end
     done
   with _ -> ());
  remove_conn t fd;
  (try Unix.close fd with _ -> ());
  (* Hand ourselves to the accept loop for joining: handler threads must
     not accumulate forever under connect/disconnect churn. *)
  Mutex.protect t.conns_lock (fun () ->
      t.finished <- Thread.self () :: t.finished)

(* Join handler threads that have announced completion and forget them.
   Runs in the accept loop (every timeout tick) and in [stop]. *)
let reap t =
  let done_ =
    Mutex.protect t.conns_lock (fun () ->
        let ds = t.finished in
        t.finished <- [];
        ds)
  in
  List.iter
    (fun th ->
      Hashtbl.remove t.handlers (Thread.id th);
      Thread.join th)
    done_

let accept_loop t =
  while not t.stopping do
    (* Select with a timeout so [stop] wins even with no inbound
       connections; an actual connect wakes us immediately. *)
    (match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ when t.stopping -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.listen_fd with
      | exception _ -> ()
      | fd, _ ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
        Mutex.protect t.conns_lock (fun () -> t.conns <- fd :: t.conns);
        let th = Thread.create (handle_conn t) fd in
        Hashtbl.replace t.handlers (Thread.id th) th));
    reap t
  done;
  try Unix.close t.listen_fd with _ -> ()

let start ?(host = "127.0.0.1") ?(port = 0) ?(id = 0) ~replica () =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let t =
    {
      id;
      listen_fd = fd;
      port;
      replica;
      replica_lock = Mutex.create ();
      conns = [];
      conns_lock = Mutex.create ();
      stopping = false;
      accept_thread = None;
      handlers = Hashtbl.create 16;
      finished = [];
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let handler_count t =
  Hashtbl.length t.handlers - List.length t.finished

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (* Handlers wake from [read] with EOF once their socket is shut
       down, then close their own fd and exit. *)
    let conns = Mutex.protect t.conns_lock (fun () -> t.conns) in
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    (match t.accept_thread with
    | Some th ->
      Thread.join th;
      t.accept_thread <- None
    | None -> ());
    Hashtbl.iter (fun _ th -> Thread.join th) t.handlers;
    Hashtbl.reset t.handlers;
    Mutex.protect t.conns_lock (fun () -> t.finished <- [])
  end
