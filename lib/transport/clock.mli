(** The one time source for transport deadlines.

    Round-trip deadlines, reconnect backoff gates, the mux ticker and
    fault-plan windows all measure {e durations}, so they must not move
    when the wall clock steps (NTP slew, manual adjustment, suspend):
    a backwards step would stall every timeout, a forwards step would
    fire them all at once.  {!now} reads [CLOCK_MONOTONIC] where the
    platform has it and falls back to [Unix.gettimeofday] elsewhere.

    Values are only meaningful relative to other {!now} readings in the
    same process.  Wall-clock timestamps (e.g. {!Session} histories)
    keep using [Unix.gettimeofday] directly. *)

val monotonic : bool
(** Whether {!now} is backed by a monotonic source on this platform. *)

val now : unit -> float
(** Seconds from an arbitrary origin, non-decreasing when {!monotonic}. *)
