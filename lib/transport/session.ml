open Histories
open Registers

type spec = {
  writers : int;
  readers : int;
  writes_per_writer : int;
  reads_per_reader : int;
  write_think : float;
  read_think : float;
}

let default_spec =
  {
    writers = 2;
    readers = 2;
    writes_per_writer = 20;
    reads_per_reader = 40;
    write_think = 0.0;
    read_think = 0.0;
  }

type result = {
  history : History.t;
  duration : float;
  write_rounds : float;
  read_rounds : float;
  late : int;
  unavailable : int;
  killed : int list;
}

let mean_rounds eps ops =
  let rounds =
    Array.fold_left (fun acc ep -> acc + Endpoint.rounds_completed ep) 0 eps
  in
  if ops = 0 then 0.0 else float_of_int rounds /. float_of_int ops

let run ?(kill_at = []) ?rt_timeout ?max_rt_retries ~register ~cluster spec =
  (match Registry.max_writers register with
  | Some m when spec.writers > m ->
    invalid_arg
      (Printf.sprintf "Session.run: %s accepts at most %d writer(s)"
         (Registry.name register) m)
  | _ -> ());
  let algo = Registry.client_algo register in
  let cl =
    Cluster.clients ?rt_timeout ?max_rt_retries cluster ~writers:spec.writers
      ~readers:spec.readers
  in
  let recorder = Recorder.create () in
  let rec_lock = Mutex.create () in
  let unavailable = ref 0 in
  let una_lock = Mutex.create () in
  let t0 = Unix.gettimeofday () in
  let now () = Unix.gettimeofday () -. t0 in
  let writes_done = ref 0 in
  let reads_done = ref 0 in
  (* One OS thread per client, mirroring one plan per client in the
     simulator.  The recorder is shared, hence the lock; operations
     themselves run lock-free through the endpoints. *)
  let writer_body i () =
    let write = algo.Client_core.new_writer cl.Cluster.ctx ~writer:i in
    (try
       for _ = 1 to spec.writes_per_writer do
         let value, h =
           Mutex.protect rec_lock (fun () ->
               let value = Recorder.fresh_value recorder in
               ( value,
                 Recorder.begin_write recorder ~proc:(Op.Writer i) ~value
                   ~now:(now ()) ))
         in
         write ~payload:value ~k:(fun _tag ->
             Mutex.protect rec_lock (fun () ->
                 incr writes_done;
                 Recorder.finish_write recorder h ~now:(now ())));
         if spec.write_think > 0.0 then Thread.delay spec.write_think
       done
     with Endpoint.Unavailable _ ->
       Mutex.protect una_lock (fun () -> incr unavailable));
    Endpoint.close cl.Cluster.writer_eps.(i)
  in
  let reader_body j () =
    let read = algo.Client_core.new_reader cl.Cluster.ctx ~reader:j in
    (try
       for _ = 1 to spec.reads_per_reader do
         let h =
           Mutex.protect rec_lock (fun () ->
               Recorder.begin_read recorder ~proc:(Op.Reader j) ~now:(now ()))
         in
         read ~k:(fun value _tag ->
             Mutex.protect rec_lock (fun () ->
                 incr reads_done;
                 Recorder.finish_read recorder h ~now:(now ()) ~result:value));
         if spec.read_think > 0.0 then Thread.delay spec.read_think
       done
     with Endpoint.Unavailable _ ->
       Mutex.protect una_lock (fun () -> incr unavailable));
    Endpoint.close cl.Cluster.reader_eps.(j)
  in
  let killer =
    match kill_at with
    | [] -> None
    | plan ->
      Some
        (Thread.create
           (fun () ->
             List.iter
               (fun (at, idx) ->
                 let wait = at -. now () in
                 if wait > 0.0 then Thread.delay wait;
                 Cluster.kill cluster idx)
               (List.sort compare plan))
           ())
  in
  let threads =
    List.init spec.writers (fun i -> Thread.create (writer_body i) ())
    @ List.init spec.readers (fun j -> Thread.create (reader_body j) ())
  in
  List.iter Thread.join threads;
  (match killer with Some th -> Thread.join th | None -> ());
  let duration = now () in
  let late =
    Array.fold_left
      (fun acc ep -> acc + Endpoint.late_replies ep)
      0
      (Array.append cl.Cluster.writer_eps cl.Cluster.reader_eps)
  in
  {
    history = Recorder.snapshot recorder;
    duration;
    write_rounds = mean_rounds cl.Cluster.writer_eps !writes_done;
    read_rounds = mean_rounds cl.Cluster.reader_eps !reads_done;
    late;
    unavailable = !unavailable;
    killed =
      List.filter
        (fun i -> not (List.mem i (Cluster.running cluster)))
        (List.init (Cluster.s cluster) Fun.id);
  }
