open Histories
open Registers

type spec = {
  writers : int;
  readers : int;
  writes_per_writer : int;
  reads_per_reader : int;
  write_think : float;
  read_think : float;
}

let default_spec =
  {
    writers = 2;
    readers = 2;
    writes_per_writer = 20;
    reads_per_reader = 40;
    write_think = 0.0;
    read_think = 0.0;
  }

type result = {
  history : History.t;
  duration : float;
  write_rounds : float;
  read_rounds : float;
  late : int;
  retries : int;
  unavailable : int;
  killed : int list;
  online : Check_sink.report option;
}

(* One client's private operation log.  Clients record invocations and
   responses into their own log with no shared lock — the wall-clock
   reads and list pushes happen entirely in the owning thread — and the
   logs merge into one History.t only after every thread has joined. *)
type lop = {
  l_kind : Op.kind;
  l_inv : float;
  mutable l_resp : float option;
  mutable l_result : int option;
  mutable l_rounds : int; (* completed round trips consumed by this op *)
}

let merge_history logs =
  let ops =
    List.concat_map
      (fun (proc, lops) ->
        List.rev_map
          (fun l ->
            {
              Op.id = 0;
              proc;
              kind = l.l_kind;
              inv = l.l_inv;
              resp = l.l_resp;
              result = l.l_result;
            })
          lops)
      logs
  in
  (* Ids must be unique; assigning them along invocation order keeps the
     numbering readable (History.of_ops re-sorts by (inv, id) anyway). *)
  let ops =
    List.sort
      (fun (a : Op.t) b -> compare (a.Op.inv, a.Op.proc) (b.Op.inv, b.Op.proc))
      ops
  in
  History.of_ops (List.mapi (fun id (o : Op.t) -> { o with Op.id }) ops)

(* Mean round trips per *completed* operation.  Rounds spent inside an
   operation that later failed with [Unavailable] (e.g. the Query round
   of a two-round write whose Update round found no quorum) are excluded
   from both numerator and denominator — a partially-failed op must not
   skew the Table-1 rounds column. *)
let mean_rounds logs =
  let rounds = ref 0 and ops = ref 0 in
  List.iter
    (fun (_, lops) ->
      List.iter
        (fun l ->
          if l.l_resp <> None then begin
            rounds := !rounds + l.l_rounds;
            incr ops
          end)
        lops)
    logs;
  if !ops = 0 then 0.0 else float_of_int !rounds /. float_of_int !ops

(* The single live register checks under one key. *)
let live_key = "r"

let op_of proc l =
  {
    Op.id = 0;
    proc;
    kind = l.l_kind;
    inv = l.l_inv;
    resp = l.l_resp;
    result = l.l_result;
  }

let run ?(kill_at = []) ?(restart_at = []) ?faults ?transport ?rt_timeout
    ?max_rt_retries ?(live_check = false) ?on_violation ~register ~cluster
    spec =
  (match Registry.max_writers register with
  | Some m when spec.writers > m ->
    invalid_arg
      (Printf.sprintf "Session.run: %s accepts at most %d writer(s)"
         (Registry.name register) m)
  | _ -> ());
  let algo = Registry.client_algo register in
  let cl =
    Cluster.clients ?transport ?rt_timeout ?max_rt_retries ?faults cluster
      ~writers:spec.writers ~readers:spec.readers
  in
  (* Align the fault plan's rule windows with the session clock. *)
  Option.iter Faults.arm faults;
  let t0 = Unix.gettimeofday () in
  let now () = Unix.gettimeofday () -. t0 in
  let sink =
    if live_check then Some (Check_sink.create ?on_violation ~now ())
    else None
  in
  let port_for _ = Option.map Check_sink.port sink in
  let wports = Array.init spec.writers port_for in
  let rports = Array.init spec.readers port_for in
  (* Per-thread result slots — no cross-thread mutation, no locks. *)
  let writer_logs = Array.make spec.writers [] in
  let reader_logs = Array.make spec.readers [] in
  let writer_starved = Array.make spec.writers false in
  let reader_starved = Array.make spec.readers false in
  (* Distinct written values without a shared counter: writer [i] owns
     the contiguous block starting at [initial_value + 1 + i * block]. *)
  let value_base = History.initial_value + 1 in
  (* One OS thread per client, mirroring one plan per client in the
     simulator.  Operations run lock-free through the endpoints; each
     thread logs privately and the logs merge after the joins. *)
  let writer_body i () =
    let ep = cl.Cluster.writer_eps.(i) in
    let write = algo.Client_core.new_writer cl.Cluster.ctx ~writer:i in
    let port = wports.(i) in
    let invoke () =
      match port with Some p -> Check_sink.invoked p | None -> now ()
    in
    let publish l =
      match port with
      | Some p -> Check_sink.completed p ~key:live_key (op_of (Op.Writer i) l)
      | None -> ()
    in
    let log = ref [] in
    (try
       for n = 0 to spec.writes_per_writer - 1 do
         let value = value_base + (i * spec.writes_per_writer) + n in
         let r0 = Endpoint.rounds_completed ep in
         let l =
           {
             l_kind = Op.Write value;
             l_inv = invoke ();
             l_resp = None;
             l_result = None;
             l_rounds = 0;
           }
         in
         log := l :: !log;
         write ~payload:value ~k:(fun _tag ->
             l.l_resp <- Some (now ());
             l.l_rounds <- Endpoint.rounds_completed ep - r0);
         publish l;
         if spec.write_think > 0.0 then Thread.delay spec.write_think
       done
     with Endpoint.Unavailable _ ->
       writer_starved.(i) <- true;
       (* The aborted write stays visible to the checker as pending —
          it may have taken effect at a quorum minority. *)
       (match !log with
       | l :: _ when l.l_resp = None -> publish l
       | _ -> ()));
    writer_logs.(i) <- !log;
    Endpoint.close ep
  in
  let reader_body j () =
    let ep = cl.Cluster.reader_eps.(j) in
    let read = algo.Client_core.new_reader cl.Cluster.ctx ~reader:j in
    let port = rports.(j) in
    let invoke () =
      match port with Some p -> Check_sink.invoked p | None -> now ()
    in
    let publish l =
      match port with
      | Some p -> Check_sink.completed p ~key:live_key (op_of (Op.Reader j) l)
      | None -> ()
    in
    let log = ref [] in
    (try
       for _ = 1 to spec.reads_per_reader do
         let r0 = Endpoint.rounds_completed ep in
         let l =
           {
             l_kind = Op.Read;
             l_inv = invoke ();
             l_resp = None;
             l_result = None;
             l_rounds = 0;
           }
         in
         log := l :: !log;
         read ~k:(fun value _tag ->
             l.l_resp <- Some (now ());
             l.l_result <- Some value;
             l.l_rounds <- Endpoint.rounds_completed ep - r0);
         publish l;
         if spec.read_think > 0.0 then Thread.delay spec.read_think
       done
     with Endpoint.Unavailable _ ->
       reader_starved.(j) <- true;
       (match !log with
       | l :: _ when l.l_resp = None -> publish l
       | _ -> ()));
    reader_logs.(j) <- !log;
    Endpoint.close ep
  in
  (* One scheduler thread replays the merged crash/restart timeline in
     order — a kill and its restart stay correctly sequenced even when
     their times collide. *)
  let events =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (List.map (fun (at, idx) -> (at, `Kill idx)) kill_at
      @ List.map (fun (at, idx, mode) -> (at, `Restart (idx, mode)))
          restart_at)
  in
  let killer =
    match events with
    | [] -> None
    | events ->
      Some
        (Thread.create
           (fun () ->
             List.iter
               (fun (at, ev) ->
                 let wait = at -. now () in
                 if wait > 0.0 then Thread.delay wait;
                 match ev with
                 | `Kill idx -> Cluster.kill cluster idx
                 | `Restart (idx, mode) -> Cluster.restart ~mode cluster idx)
               events)
           ())
  in
  Option.iter Check_sink.start sink;
  let threads =
    List.init spec.writers (fun i -> Thread.create (writer_body i) ())
    @ List.init spec.readers (fun j -> Thread.create (reader_body j) ())
  in
  List.iter Thread.join threads;
  (match killer with Some th -> Thread.join th | None -> ());
  let duration = now () in
  let online = Option.map Check_sink.stop sink in
  let all_eps = Array.append cl.Cluster.writer_eps cl.Cluster.reader_eps in
  let late =
    Array.fold_left (fun acc ep -> acc + Endpoint.late_replies ep) 0 all_eps
  in
  let retries =
    Array.fold_left (fun acc ep -> acc + Endpoint.retries ep) 0 all_eps
  in
  Cluster.close_clients cl;
  let wlogs =
    List.init spec.writers (fun i -> (Op.Writer i, writer_logs.(i)))
  in
  let rlogs =
    List.init spec.readers (fun j -> (Op.Reader j, reader_logs.(j)))
  in
  let unavailable =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
      (Array.append writer_starved reader_starved)
  in
  {
    history = merge_history (wlogs @ rlogs);
    duration;
    write_rounds = mean_rounds wlogs;
    read_rounds = mean_rounds rlogs;
    late;
    retries;
    unavailable;
    killed =
      List.filter
        (fun i -> not (List.mem i (Cluster.running cluster)))
        (List.init (Cluster.s cluster) Fun.id);
    online;
  }
