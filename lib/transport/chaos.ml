open Histories
open Registers

let plan ?(seed = 0) ?(drop = 0.08) ?(delay = 0.03) ?(duplicate = 0.1) () =
  let rules = [] in
  let rules =
    if duplicate > 0.0 then Faults.rule ~prob:duplicate Faults.Duplicate :: rules
    else rules
  in
  let rules =
    if delay > 0.0 then Faults.rule ~prob:0.25 (Faults.Delay delay) :: rules
    else rules
  in
  let rules =
    if drop > 0.0 then Faults.rule ~prob:drop Faults.Drop :: rules else rules
  in
  Faults.create ~seed rules

type soak = {
  register : Protocol.Register_intf.t;
  transport : Cluster.transport;
  seed : int;
  drop : float;
  delay : float;
  duplicate : float;
  restarted : bool;
  result : Session.result;
  atomic : bool;
  expected_atomic : bool;
}

let soak ?(transport = `Mux) ?(seed = 0) ?(drop = 0.08) ?(delay = 0.03)
    ?(duplicate = 0.1) ?(s = 5) ?(tol = 1) ?(ops = 8) ?(restart = true)
    ?(server_shards = 1) ?live_check ?on_violation ~register () =
  let faults = plan ~seed ~drop ~delay ~duplicate () in
  let cluster = Cluster.start ~faults ~shards:server_shards ~s ~tol () in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      let writers =
        match Registry.max_writers register with Some m -> min m 2 | None -> 2
      in
      let spec =
        {
          Session.writers;
          readers = 2;
          writes_per_writer = ops;
          reads_per_reader = 2 * ops;
          write_think = 0.0;
          read_think = 0.0;
        }
      in
      let restarted = restart && tol >= 1 in
      let kill_at, restart_at =
        if restarted then ([ (0.05, s - 1) ], [ (0.45, s - 1, `Recover) ])
        else ([], [])
      in
      (* A lossy link costs retries, so the retry budget is the one knob
         that must be generous: the quorum contract starves only if a
         whole rt_timeout × budget window stays unlucky. *)
      let result =
        Session.run ~kill_at ~restart_at ~faults ~transport ~rt_timeout:0.3
          ~max_rt_retries:10 ?live_check ?on_violation ~register ~cluster spec
      in
      let expected_atomic =
        Quorums.Bounds.possible
          (Registry.design_point register)
          ~s ~t:tol ~w:writers ~r:spec.Session.readers
      in
      {
        register;
        transport;
        seed;
        drop;
        delay;
        duplicate;
        restarted;
        result;
        atomic = Checker.Atomicity.is_atomic result.Session.history;
        expected_atomic;
      })

type restart_outcome = {
  mode : Cluster.restart_mode;
  atomic : bool;
  witness : string option;
  read_value : int option;
  history : Histories.History.t;
}

let restart_scenario ?(transport = `Mux) ?(server_shards = 1) ~mode () =
  let s = 3 and tol = 1 in
  let register = Registry.abd_mwmr in
  let algo = Registry.client_algo register in
  (* Topology numbering: servers 0..2, writer 0 = node 3, reader 0 =
     node 4 (1 writer). *)
  let writer_node = s and reader_node = s + 1 in
  let faults =
    Faults.create ~seed:1
      [
        (* Confine the write to quorum {0,1} … *)
        Faults.cut ~dir:Faults.To_server ~clients:[ writer_node ]
          ~servers:[ 2 ] ();
        (* … and force the read onto quorum {0,2}. *)
        Faults.cut ~dir:Faults.To_server ~clients:[ reader_node ]
          ~servers:[ 1 ] ();
      ]
  in
  let cluster = Cluster.start ~faults ~shards:server_shards ~s ~tol () in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      let cl =
        Cluster.clients ~transport ~rt_timeout:0.25 cluster ~writers:1
          ~readers:1
      in
      Fun.protect
        ~finally:(fun () -> Cluster.close_clients cl)
        (fun () ->
          Faults.arm faults;
          (* Relative timestamps for the two-op history: monotonic, so a
             wall-clock step cannot reorder the invariant under test. *)
          let t0 = Clock.now () in
          let ts () = Clock.now () -. t0 in
          let write = algo.Client_core.new_writer cl.Cluster.ctx ~writer:0 in
          let read = algo.Client_core.new_reader cl.Cluster.ctx ~reader:0 in
          let payload = History.initial_value + 41 in
          let w_inv = ts () in
          let w_resp = ref None in
          write ~payload ~k:(fun _tag -> w_resp := Some (ts ()));
          (* The write is acknowledged and lives exactly on {0,1}.  Now
             the crash — and the restart whose fidelity is under test. *)
          Cluster.kill cluster 0;
          Cluster.restart ~mode cluster 0;
          let r_inv = ts () in
          let r_resp = ref None and r_result = ref None in
          read ~k:(fun value _tag ->
              r_result := Some value;
              r_resp := Some (ts ()));
          let history =
            History.of_ops
              [
                Op.write ~id:0 ~proc:(Op.Writer 0) ~value:payload ~inv:w_inv
                  ~resp:!w_resp;
                Op.read ~id:1 ~proc:(Op.Reader 0) ~inv:r_inv ~resp:!r_resp
                  ~result:!r_result;
              ]
          in
          match Checker.Atomicity.check history with
          | Ok () ->
            { mode; atomic = true; witness = None; read_value = !r_result;
              history }
          | Error w ->
            {
              mode;
              atomic = false;
              witness = Some (Checker.Witness.to_string w);
              read_value = !r_result;
              history;
            }))
