(** An in-process loopback cluster: [S] register server daemons on
    ephemeral 127.0.0.1 ports, for tests, benches and examples.

    Servers can be {!kill}ed mid-run to exercise real crash behaviour:
    as long as at most [tol] are down, client endpoints keep completing
    operations on the surviving [S − tol] quorum. *)

type t

val start : ?faults:Faults.t -> ?shards:int -> s:int -> tol:int -> unit -> t
(** Spawn [s] servers tolerating [tol] crashes (quorum [s − tol]).
    [faults] installs a fault plan on every server's reply leg and, by
    default, on every endpoint {!clients} builds (see {!Faults}).
    [shards] (default 1) is each server's reactor event-loop count
    ({!Server.start}); {!restart} reuses it, so a recovered server comes
    back with the topology it crashed with. *)

val connect : addrs:Unix.sockaddr array -> tol:int -> unit -> t
(** Attach to already-running daemons (e.g. [mwreg serve] processes)
    instead of spawning them.  {!kill} and {!replica} are unavailable on
    such a cluster ([Invalid_argument]); everything client-side works the
    same. *)

val local : t -> bool
(** [true] for {!start} clusters (in-process servers), [false] for
    {!connect} ones. *)

val s : t -> int
val tolerance : t -> int
val quorum : t -> int

val port : t -> int -> int
(** Bound port of server [i]. *)

val addrs : t -> Unix.sockaddr array
(** Dial addresses, indexed by server. *)

val replica : t -> int -> Registers.Replica.t
(** Server [i]'s state machine (inspection/tests). *)

val keyspace : t -> int -> Registers.Keyspace.t
(** Server [i]'s named-register table (inspection/tests).  Carried
    across [`Recover] restarts through {!Registers.Keyspace.save}/[load],
    exactly like the default replica. *)

val kill : t -> int -> unit
(** Crash server [i]: connections sever, its port stops answering.
    Idempotent. *)

type restart_mode = [ `Recover | `Fresh ]
(** How a {!kill}ed server comes back: [`Recover] carries its full
    pre-crash replica state across the restart (via {!Registers.Replica.save}
    / [load]), [`Fresh] rejoins with empty state — a violation of the
    crash-stop model whose effect {!Checker.Atomicity} must flag. *)

val restart : ?mode:restart_mode -> t -> int -> unit
(** Bring killed server [i] back on its original port (no-op if it is
    still running; [Invalid_argument] on a remote cluster).  Default
    mode [`Recover].  Client endpoints redial it transparently through
    their reconnect backoff. *)

val running : t -> int list
(** Indices of servers still alive. *)

val shutdown : t -> unit
(** Kill everything. *)

type transport = [ `Mux | `Sockets ]
(** Which data plane carries the clients' round trips:
    [`Mux] (default) — one shared connection per server for the whole
    client set, demuxed to per-client mailboxes ({!Mux});
    [`Sockets] — the baseline private path, [S] sockets per client
    polled via {!Netio.wait_readable} ({!Endpoint.create}). *)

type clients = {
  writer_eps : Endpoint.t array;
  reader_eps : Endpoint.t array;
  ctx : Registers.Client_core.ctx;
  mux : Mux.t option;
      (** The shared plane when [transport = `Mux]; shut down by
          {!close_clients}. *)
}
(** A set of live client endpoints plus the backend-agnostic context the
    {!Registers.Client_core} algorithms consume.  The endpoint arrays
    stay exposed for round-trip statistics. *)

val clients :
  ?transport:transport ->
  ?rt_timeout:float ->
  ?max_rt_retries:int ->
  ?faults:Faults.t ->
  t ->
  writers:int ->
  readers:int ->
  clients
(** Endpoints for [writers] writers and [readers] readers, numbered like
    {!Protocol.Topology} so live and simulated certificates agree.
    [faults] applies the plan's [To_server] rules to every request these
    endpoints send; it defaults to the plan the cluster was started
    with, so one plan covers both legs of a chaos run. *)

val close_clients : clients -> unit
(** Close every endpoint and, on the mux plane, shut the shared
    connections down. *)
