(** Deterministic, seeded fault plans for the live transport.

    The paper's model is crash-prone asynchrony: links may delay,
    reorder, duplicate or lose messages, and up to [t] of [S] servers
    may crash.  {!Cluster.kill} exercises only the crash half.  A fault
    plan makes the link half executable: a set of {e rules} describing
    which frames to drop, delay, duplicate or truncate on which
    client↔server links during which time windows, plus absolute
    connectivity faults (one-way link cuts, partitions, per-server
    reply blackouts).

    {2 Injection points}

    A plan is shared by a whole cluster and consulted at the frame
    level:

    - both client planes ({!Endpoint}, {!Mux}) consult the
      [To_server] direction before sending a request frame to each
      server;
    - the server ({!Server}) consults the [From_server] direction
      before sending each reply frame.  A delayed reply parks on the
      owning reactor shard's timer list (there are no delayer threads):
      the shard's poll timeout shrinks to the nearest deadline, and the
      frame is appended to the connection's out-queue when it fires —
      or silently dropped if the connection died first, which is also a
      legal behaviour of the link being modelled.

    So a rule with [dir = Some To_server] faults the request leg only,
    [Some From_server] the reply leg only, and [None] both — the
    one-way cuts of the asynchronous model.

    {2 Determinism}

    Every per-frame decision is a pure hash of
    [(seed, rule, direction, server, client, rt, salt)] — no hidden
    PRNG state, no ordering sensitivity.  The [salt] is the sender's
    retry attempt (clients) or per-connection frame counter (servers),
    so a frame dropped on one attempt gets a fresh draw on the next:
    lossy links starve nothing as long as the retry budget holds, which
    is exactly the regime the quorum round-trip contract is built for.
    Time windows measure seconds since the plan was {!arm}ed, on the
    monotonic {!Clock}. *)

type dir =
  | To_server  (** request frames, client → server *)
  | From_server  (** reply frames, server → client *)

type kind =
  | Drop  (** lose the frame *)
  | Delay of float
      (** deliver late: a deterministic fraction of the given maximum
          delay, in seconds.  When a frame is also duplicated, each
          scheduled copy draws its own independent magnitude. *)
  | Duplicate  (** deliver the frame twice *)
  | Truncate
      (** deliver only a prefix of the frame's bytes, then sever the
          link — the receiver's strict decoder rejects the stream and
          the connection is re-established *)
  | Latency of { base : float; jitter : float }
      (** a modelled link, not a fault: every matching frame takes
          [base] seconds plus a uniform jitter in [\[0, jitter)] — the
          distribution {!Simulation.Latency} geo models draw from.
          {!Geo} compiles its region-pair matrices into rule sets of
          this kind, one per (client region, server region, direction).
          [base], [jitter] must be [>= 0] and not both zero. *)

type rule

val rule :
  ?dir:dir ->
  ?servers:int list ->
  ?clients:int list ->
  ?from_:float ->
  ?until:float ->
  ?prob:float ->
  kind ->
  rule
(** A probabilistic frame rule.  [servers]/[clients] restrict the links
    it applies to ([[]], the default, means all; clients are named by
    their {!Protocol.Topology} node ids).  [from_]/[until] bound the
    active window in seconds since {!arm} (defaults: always active).
    [prob] (default [1.0]) is the per-frame firing probability. *)

val cut :
  ?dir:dir ->
  ?servers:int list ->
  ?clients:int list ->
  ?from_:float ->
  ?until:float ->
  unit ->
  rule
(** An absolute link cut: [rule ~prob:1.0 Drop].  With [dir] this is a
    one-way cut — e.g. [cut ~dir:To_server ~clients:[c] ~servers:[i] ()]
    loses every request [c] sends to server [i] while replies (of
    earlier requests) still flow. *)

val blackout : server:int -> from_:float -> until:float -> rule
(** Server [server] receives and processes requests but none of its
    replies reach any client during the window — the "mute server"
    failure distinct from a crash (its state keeps advancing). *)

val partition : ?from_:float -> ?until:float -> int list list -> rule
(** Frames between nodes in different groups are lost, both directions.
    Nodes are {!Protocol.Topology} ids (servers [0..S-1], clients as
    numbered by {!Cluster.clients}); nodes absent from every group are
    unaffected. *)

type t
(** A fault plan: a seed plus a rule list.  Immutable but for the arm
    clock; safe to share across every thread of a cluster. *)

val create : ?seed:int -> rule list -> t

val none : t
(** The empty plan: every frame passes. *)

val seed : t -> int

val has_delays : t -> bool
(** Whether any rule can schedule late deliveries ({!Delay} or
    {!Latency}).  The client planes consult this once at creation to run
    their drain tickers at sub-tick granularity — without it a staged
    1 ms geo deadline would quantise to the 50 ms timeout tick. *)

val arm : t -> unit
(** (Re)start the plan clock: rule windows are measured from here.
    {!Session.run} arms the plan at session start; plans used without a
    session arm themselves at first consultation. *)

type delivery = { after : float; truncated : bool }
(** One scheduled copy of a frame: deliver [after] seconds from now
    ([0.0] = immediately); when [truncated], deliver only a prefix and
    sever the link. *)

val deliveries :
  t -> dir:dir -> server:int -> client:int -> rt:int -> salt:int -> delivery list
(** The fate of one frame: [[]] means dropped, one element is normal or
    faulted delivery, two elements a duplicate.  Pure in everything but
    the window clock. *)

val summary : t -> string
(** One-line human description ("seed 7, 3 rules: 2 frame, 1 partition"),
    for logs and bench output. *)
