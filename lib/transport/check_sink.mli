(** Live-checking sink: a contention-free bridge from client threads
    to one {!Checker.Online} thread.

    Each client thread owns a {!port}.  At invocation it publishes the
    operation's invocation time through {!invoked}; at completion it
    pushes the finished operation with {!completed} (a lock-free
    CAS-push onto the port's private stack) and clears the marker.
    The checker thread periodically computes the GC watermark as the
    minimum over all in-flight markers (capped by the current time)
    {e before} exchange-draining the stacks, feeds the drained
    operations to a per-key {!Checker.Online.Keyed} instance, and
    advances it.  Clients never block on the checker and never share a
    cache line beyond the two atomics, so live checking does not move
    the measured client throughput.

    Lifecycle: {!create}, then one {!port} per client thread (before
    {!start}), {!start}, run the workload, join the clients, {!stop}. *)

open Histories

type t

type port

type report = {
  checked : int;  (** operations fed through the checker *)
  keys : int;  (** distinct keys checked *)
  peak_window : int;
      (** high-water mark of resident operations across all keys —
          the O(window) bound the soak benchmark records *)
  batches : int;  (** non-empty drain cycles *)
  busy : float;  (** seconds spent feeding/advancing/finalizing *)
  checker_ops_per_sec : float;  (** [checked /. busy] *)
  violations : (string * Checker.Witness.t) list;
      (** keys whose verdict turned during the run, in firing order *)
  verdicts : (string * (unit, Checker.Witness.t) result) list;
      (** final per-key verdicts, sorted by key *)
}

val create :
  ?on_violation:(string -> Checker.Witness.t -> unit) ->
  ?interval:float ->
  now:(unit -> float) ->
  unit ->
  t
(** [now] must be the same clock the client threads use to timestamp
    operations (monotonic across threads).  [interval] is the checker
    thread's sleep between drains (default 1ms: short enough that the
    window stays tight under continuous load).  [on_violation] fires
    from the checker thread the moment a key's verdict turns. *)

val port : t -> port
(** Register a client port.  Must be called before {!start}. *)

val invoked : port -> float
(** Publish the in-flight marker and return the invocation timestamp
    to record for the operation.  The marker is published first, so
    the watermark can never overtake an unpushed operation. *)

val completed : port -> key:string -> Op.t -> unit
(** Push the operation in its final state and clear the in-flight
    marker.  An operation abandoned mid-flight (e.g. the client
    aborted on [Unavailable]) is pushed with [resp = None]: a pending
    write still participates as a write that may take effect, a
    pending read is ignored.  The [id] field is overwritten with a
    port-unique id. *)

val start : t -> unit
(** Spawn the checker thread. *)

val stop : t -> report
(** Signal the checker thread, join it, drain any remaining
    completions, finalize every key and return the report.  Call only
    after all client threads have joined. *)

val atomic : report -> bool
(** No violations fired and every final verdict is [Ok ()]. *)
