/* Readiness-notification stubs for the reactor server and the sockets
 * client plane.
 *
 * Two backends share one event encoding.  An event (and, for poll, an
 * interest) is a single OCaml int:
 *
 *     (fd << 3) | bits     bits: 1 = readable, 2 = writable, 4 = error
 *
 * - epoll (Linux): mwreg_epoll_create returns -1 where epoll does not
 *   exist, and the OCaml side falls back to poll over its own interest
 *   registry.  Level-triggered, matching the reactor's drain-to-EAGAIN
 *   read loop.
 * - poll (portable): mwreg_poll takes an array of encoded interests and
 *   rewrites each entry's bits with the revents.  Unlike select(2) it
 *   has no FD_SETSIZE cliff, which matters from ~1024 descriptors up.
 *
 * Both waits release the OCaml runtime lock, so one shard blocking in
 * epoll_wait never stalls the other shards (or the main thread).  The
 * OCaml arrays are copied to C memory before the lock is released: the
 * GC may move or compact heap blocks while we are not holding it.
 *
 * EINTR is reported as "0 events ready"; the callers' loops re-check
 * their deadlines and wait again, mirroring Netio's EINTR policy.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define MWREG_HAVE_EPOLL 1
#endif

#define MWREG_RD 1
#define MWREG_WR 2
#define MWREG_ERR 4

static void mwreg_sys_fail(const char *who)
{
  char msg[160];
  snprintf(msg, sizeof msg, "%s: %s", who, strerror(errno));
  caml_failwith(msg);
}

CAMLprim value mwreg_epoll_create(value unit)
{
#ifdef MWREG_HAVE_EPOLL
  int ep = epoll_create1(0);
  (void)unit;
  return Val_int(ep); /* -1 on failure: caller falls back to poll */
#else
  (void)unit;
  return Val_int(-1);
#endif
}

CAMLprim value mwreg_epoll_ctl(value vep, value vop, value vfd, value vbits)
{
#ifdef MWREG_HAVE_EPOLL
  struct epoll_event ev;
  int bits = Int_val(vbits);
  int op = Int_val(vop) == 0   ? EPOLL_CTL_ADD
           : Int_val(vop) == 1 ? EPOLL_CTL_MOD
                               : EPOLL_CTL_DEL;
  memset(&ev, 0, sizeof ev);
  ev.events = 0;
  if (bits & MWREG_RD) ev.events |= EPOLLIN;
  if (bits & MWREG_WR) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(vfd);
  if (epoll_ctl(Int_val(vep), op, Int_val(vfd), &ev) == -1) {
    /* Registry drift is tolerated, not fatal: a re-add becomes a
       modify, a modify of a forgotten fd becomes an add, deleting an
       absent (or already-closed) fd is a no-op. */
    if (op == EPOLL_CTL_ADD && errno == EEXIST) {
      if (epoll_ctl(Int_val(vep), EPOLL_CTL_MOD, Int_val(vfd), &ev) == 0)
        return Val_unit;
    } else if (op == EPOLL_CTL_MOD && errno == ENOENT) {
      if (epoll_ctl(Int_val(vep), EPOLL_CTL_ADD, Int_val(vfd), &ev) == 0)
        return Val_unit;
    } else if (op == EPOLL_CTL_DEL && (errno == ENOENT || errno == EBADF)) {
      return Val_unit;
    }
    mwreg_sys_fail("epoll_ctl");
  }
  return Val_unit;
#else
  (void)vep;
  (void)vop;
  (void)vfd;
  (void)vbits;
  caml_failwith("epoll_ctl: not available on this platform");
#endif
}

CAMLprim value mwreg_epoll_wait(value vep, value vtimeout_ms, value varr)
{
#ifdef MWREG_HAVE_EPOLL
  CAMLparam3(vep, vtimeout_ms, varr);
  int cap = Wosize_val(varr);
  int n, i;
  struct epoll_event *evs;
  if (cap <= 0) CAMLreturn(Val_int(0));
  evs = malloc(sizeof(struct epoll_event) * cap);
  if (evs == NULL) caml_failwith("epoll_wait: out of memory");
  caml_release_runtime_system();
  n = epoll_wait(Int_val(vep), evs, cap, Int_val(vtimeout_ms));
  caml_acquire_runtime_system();
  if (n == -1) {
    int e = errno;
    free(evs);
    if (e == EINTR) CAMLreturn(Val_int(0));
    errno = e;
    mwreg_sys_fail("epoll_wait");
  }
  for (i = 0; i < n; i++) {
    int bits = 0;
    if (evs[i].events & (EPOLLIN | EPOLLRDHUP)) bits |= MWREG_RD;
    if (evs[i].events & EPOLLOUT) bits |= MWREG_WR;
    if (evs[i].events & (EPOLLERR | EPOLLHUP)) bits |= MWREG_ERR;
    Store_field(varr, i, Val_int((evs[i].data.fd << 3) | bits));
  }
  free(evs);
  CAMLreturn(Val_int(n));
#else
  (void)vep;
  (void)vtimeout_ms;
  (void)varr;
  caml_failwith("epoll_wait: not available on this platform");
#endif
}

CAMLprim value mwreg_poll(value varr, value vn, value vtimeout_ms)
{
  CAMLparam3(varr, vn, vtimeout_ms);
  int n = Int_val(vn);
  int ready, i;
  struct pollfd *pfds;
  if (n <= 0) CAMLreturn(Val_int(0));
  if (n > (int)Wosize_val(varr)) caml_invalid_argument("mwreg_poll: n");
  pfds = malloc(sizeof(struct pollfd) * n);
  if (pfds == NULL) caml_failwith("poll: out of memory");
  for (i = 0; i < n; i++) {
    long e = Long_val(Field(varr, i));
    pfds[i].fd = (int)(e >> 3);
    pfds[i].events = 0;
    if (e & MWREG_RD) pfds[i].events |= POLLIN;
    if (e & MWREG_WR) pfds[i].events |= POLLOUT;
    pfds[i].revents = 0;
  }
  caml_release_runtime_system();
  ready = poll(pfds, n, Int_val(vtimeout_ms));
  caml_acquire_runtime_system();
  if (ready == -1) {
    int e = errno;
    free(pfds);
    if (e == EINTR) CAMLreturn(Val_int(0));
    errno = e;
    mwreg_sys_fail("poll");
  }
  for (i = 0; i < n; i++) {
    int bits = 0;
    if (pfds[i].revents & POLLIN) bits |= MWREG_RD;
    if (pfds[i].revents & POLLOUT) bits |= MWREG_WR;
    /* POLLNVAL: the fd died between listing and polling (the old
       select path special-cased this as EBADF).  Flag it as an error
       so the owner's read path notices and drops the connection. */
    if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) bits |= MWREG_ERR;
    Store_field(varr, i, Val_int(((long)pfds[i].fd << 3) | bits));
  }
  free(pfds);
  CAMLreturn(Val_int(ready));
}
