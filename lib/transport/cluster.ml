open Registers

type t = {
  servers : Server.t option array; (* empty when attached to remote daemons *)
  replicas : Replica.t array;
  keyspaces : Keyspace.t array; (* named registers, one table per server *)
  sockaddrs : Unix.sockaddr array;
  s : int;
  tol : int;
  shards : int; (* reactor event loops per server; restarts reuse it *)
  faults : Faults.t option;
}

let start ?faults ?(shards = 1) ~s ~tol () =
  if s < 2 then invalid_arg "Cluster.start: need at least 2 servers";
  if tol < 0 || tol >= s then invalid_arg "Cluster.start: need 0 <= tol < s";
  let replicas = Array.init s (fun _ -> Replica.create ()) in
  let keyspaces = Array.init s (fun _ -> Keyspace.create ()) in
  let servers =
    Array.init s (fun i ->
        Some
          (Server.start ~id:i ~shards ?faults ~keyspace:keyspaces.(i)
             ~replica:replicas.(i) ()))
  in
  let sockaddrs =
    Array.map
      (function
        | Some sv ->
          Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port sv)
        | None -> assert false)
      servers
  in
  { servers; replicas; keyspaces; sockaddrs; s; tol; shards; faults }

let connect ~addrs ~tol () =
  let s = Array.length addrs in
  if s < 2 then invalid_arg "Cluster.connect: need at least 2 servers";
  if tol < 0 || tol >= s then invalid_arg "Cluster.connect: need 0 <= tol < s";
  {
    servers = [||];
    replicas = [||];
    keyspaces = [||];
    sockaddrs = addrs;
    s;
    tol;
    shards = 1;
    faults = None;
  }

let local t = Array.length t.servers > 0

let s t = t.s

let tolerance t = t.tol

let quorum t = t.s - t.tol

let port t i =
  match t.sockaddrs.(i) with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Cluster.port: not an inet address"

let addrs t = Array.copy t.sockaddrs

let replica t i =
  if not (local t) then invalid_arg "Cluster.replica: remote cluster";
  t.replicas.(i)

let keyspace t i =
  if not (local t) then invalid_arg "Cluster.keyspace: remote cluster";
  t.keyspaces.(i)

let kill t i =
  if not (local t) then invalid_arg "Cluster.kill: cannot kill remote servers";
  match t.servers.(i) with
  | None -> ()
  | Some sv ->
    t.servers.(i) <- None;
    Server.stop sv

type restart_mode = [ `Recover | `Fresh ]

(* Bring a killed server back on its original port.  [`Recover] rebuilds
   its replica through the {!Replica.save}/{!Replica.load} state API —
   the restart is then indistinguishable from a very slow server, which
   the crash-stop proofs do cover.  [`Fresh] restarts with empty state:
   a model violation (acknowledged writes forgotten) that the atomicity
   checker must catch downstream.  The listen socket sets SO_REUSEADDR,
   but lingering TIME_WAIT pairs can still race the rebind, so EADDRINUSE
   is retried briefly. *)
let restart ?(mode = `Recover) t i =
  if not (local t) then
    invalid_arg "Cluster.restart: cannot restart remote servers";
  match t.servers.(i) with
  | Some _ -> ()
  | None ->
    let replica, keyspace =
      match mode with
      | `Recover ->
        (* Both the default register and every named one travel through
           their save/load state APIs: the restart is indistinguishable
           from a very slow server for the whole keyspace, not just the
           single-register plane. *)
        ( Replica.load (Replica.save t.replicas.(i)),
          Keyspace.load (Keyspace.save t.keyspaces.(i)) )
      | `Fresh -> (Replica.create (), Keyspace.create ())
    in
    t.replicas.(i) <- replica;
    t.keyspaces.(i) <- keyspace;
    let port = port t i in
    let rec bind_retrying n =
      match
        Server.start ~port ~id:i ~shards:t.shards ?faults:t.faults ~keyspace
          ~replica ()
      with
      | sv -> sv
      | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) when n > 0 ->
        Thread.delay 0.05;
        bind_retrying (n - 1)
    in
    t.servers.(i) <- Some (bind_retrying 40)

let running t =
  if not (local t) then List.init t.s Fun.id
  else
    Array.to_list t.servers
    |> List.mapi (fun i sv -> (i, sv))
    |> List.filter_map (fun (i, sv) -> Option.map (fun _ -> i) sv)

let shutdown t =
  if local t then Array.iteri (fun i _ -> kill t i) t.servers

type transport = [ `Mux | `Sockets ]

type clients = {
  writer_eps : Endpoint.t array;
  reader_eps : Endpoint.t array;
  ctx : Client_core.ctx;
  mux : Mux.t option; (* the shared plane, when [`Mux] *)
}

(* Client node ids follow Protocol.Topology's numbering (servers
   0..S-1, writer i = S+i, reader j = S+W+j) so the updated sets the
   replicas record — and therefore the admissibility certificates — are
   identical across the simulated and live backends. *)
let clients ?(transport = `Mux) ?rt_timeout ?max_rt_retries ?faults t
    ~writers ~readers =
  let addrs = addrs t in
  (* Default to the plan the cluster's servers were started with, so
     the request and reply legs of one chaos run share one plan. *)
  let faults = match faults with Some _ as f -> f | None -> t.faults in
  let mux, ep =
    match transport with
    | `Sockets ->
      ( None,
        fun client ->
          Endpoint.create ?rt_timeout ?max_rt_retries ?faults ~client
            ~servers:addrs ~quorum:(quorum t) () )
    | `Mux ->
      let mux =
        Mux.create ?rt_timeout ?max_rt_retries ?faults ~servers:addrs
          ~quorum:(quorum t) ()
      in
      (Some mux, fun client -> Endpoint.of_mux (Mux.client mux ~client))
  in
  let writer_eps = Array.init writers (fun i -> ep (t.s + i)) in
  let reader_eps = Array.init readers (fun j -> ep (t.s + writers + j)) in
  {
    writer_eps;
    reader_eps;
    ctx =
      {
        Client_core.writer_ep = (fun i -> Endpoint.endpoint writer_eps.(i));
        reader_ep = (fun j -> Endpoint.endpoint reader_eps.(j));
        s = t.s;
        t = t.tol;
        r = readers;
      };
    mux;
  }

let close_clients c =
  Array.iter Endpoint.close c.writer_eps;
  Array.iter Endpoint.close c.reader_eps;
  Option.iter Mux.shutdown c.mux
