open Registers

type t = {
  servers : Server.t option array; (* empty when attached to remote daemons *)
  replicas : Replica.t array;
  sockaddrs : Unix.sockaddr array;
  s : int;
  tol : int;
}

let start ~s ~tol () =
  if s < 2 then invalid_arg "Cluster.start: need at least 2 servers";
  if tol < 0 || tol >= s then invalid_arg "Cluster.start: need 0 <= tol < s";
  let replicas = Array.init s (fun _ -> Replica.create ()) in
  let servers =
    Array.init s (fun i -> Some (Server.start ~id:i ~replica:replicas.(i) ()))
  in
  let sockaddrs =
    Array.map
      (function
        | Some sv ->
          Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port sv)
        | None -> assert false)
      servers
  in
  { servers; replicas; sockaddrs; s; tol }

let connect ~addrs ~tol () =
  let s = Array.length addrs in
  if s < 2 then invalid_arg "Cluster.connect: need at least 2 servers";
  if tol < 0 || tol >= s then invalid_arg "Cluster.connect: need 0 <= tol < s";
  { servers = [||]; replicas = [||]; sockaddrs = addrs; s; tol }

let local t = Array.length t.servers > 0

let s t = t.s

let tolerance t = t.tol

let quorum t = t.s - t.tol

let port t i =
  match t.sockaddrs.(i) with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Cluster.port: not an inet address"

let addrs t = Array.copy t.sockaddrs

let replica t i =
  if not (local t) then invalid_arg "Cluster.replica: remote cluster";
  t.replicas.(i)

let kill t i =
  if not (local t) then invalid_arg "Cluster.kill: cannot kill remote servers";
  match t.servers.(i) with
  | None -> ()
  | Some sv ->
    t.servers.(i) <- None;
    Server.stop sv

let running t =
  if not (local t) then List.init t.s Fun.id
  else
    Array.to_list t.servers
    |> List.mapi (fun i sv -> (i, sv))
    |> List.filter_map (fun (i, sv) -> Option.map (fun _ -> i) sv)

let shutdown t =
  if local t then Array.iteri (fun i _ -> kill t i) t.servers

type transport = [ `Mux | `Sockets ]

type clients = {
  writer_eps : Endpoint.t array;
  reader_eps : Endpoint.t array;
  ctx : Client_core.ctx;
  mux : Mux.t option; (* the shared plane, when [`Mux] *)
}

(* Client node ids follow Protocol.Topology's numbering (servers
   0..S-1, writer i = S+i, reader j = S+W+j) so the updated sets the
   replicas record — and therefore the admissibility certificates — are
   identical across the simulated and live backends. *)
let clients ?(transport = `Mux) ?rt_timeout ?max_rt_retries t ~writers
    ~readers =
  let addrs = addrs t in
  let mux, ep =
    match transport with
    | `Sockets ->
      ( None,
        fun client ->
          Endpoint.create ?rt_timeout ?max_rt_retries ~client ~servers:addrs
            ~quorum:(quorum t) () )
    | `Mux ->
      let mux =
        Mux.create ?rt_timeout ?max_rt_retries ~servers:addrs
          ~quorum:(quorum t) ()
      in
      (Some mux, fun client -> Endpoint.of_mux (Mux.client mux ~client))
  in
  let writer_eps = Array.init writers (fun i -> ep (t.s + i)) in
  let reader_eps = Array.init readers (fun j -> ep (t.s + writers + j)) in
  {
    writer_eps;
    reader_eps;
    ctx =
      {
        Client_core.writer_ep = (fun i -> Endpoint.endpoint writer_eps.(i));
        reader_ep = (fun j -> Endpoint.endpoint reader_eps.(j));
        s = t.s;
        t = t.tol;
        r = readers;
      };
    mux;
  }

let close_clients c =
  Array.iter Endpoint.close c.writer_eps;
  Array.iter Endpoint.close c.reader_eps;
  Option.iter Mux.shutdown c.mux
