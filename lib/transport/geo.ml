(* WAN/geo scenario profiles: one description of "who is far from
   whom", compiled into both backends.

   A profile is a pair of square per-region matrices — one-way base
   delay (RTT/2) and uniform jitter bound, rows = source region,
   columns = destination region — plus a deterministic node → region
   placement (node id mod region count).  Node ids are the shared
   Topology numbering (servers 0..S-1, then clients), identical on the
   simulator and the live planes, so the same profile means the same
   geography everywhere:

   - [latency_model] hands the matrices to {!Simulation.Latency.matrix}
     for the simulated backend;
   - [rules]/[plan] compile them into {!Faults.Latency} rule sets —
     one rule per (client region, server region, direction) — for the
     live transports, whose delay injection parks frames on per-link
     deadline queues instead of sleeping in senders. *)

type profile = {
  name : string;
  description : string;
  regions : string array;
  delay : float array array; (* one-way seconds, [src].(dst) *)
  jitter : float array array; (* uniform bound, same shape *)
}

let make ~name ~description ~regions ~delay ~jitter =
  let r = Array.length regions in
  if r = 0 then invalid_arg "Geo.make: no regions";
  let square m = Array.length m = r && Array.for_all (fun row -> Array.length row = r) m in
  if not (square delay && square jitter) then
    invalid_arg "Geo.make: delay/jitter must be RxR for R regions";
  Array.iteri
    (fun a row ->
      Array.iteri
        (fun b d ->
          if not (d >= 0.0 && jitter.(a).(b) >= 0.0) then
            invalid_arg "Geo.make: delays and jitters must be >= 0";
          if d +. jitter.(a).(b) <= 0.0 then
            invalid_arg "Geo.make: every region pair needs delay + jitter > 0")
        row)
    delay;
  { name; description; regions; delay; jitter }

let name p = p.name
let description p = p.description
let region_count p = Array.length p.regions
let region_name p k = p.regions.(k)

(* Deterministic round-robin placement over the shared node numbering.
   Both compilers below use exactly this function — that is the
   bit-identical-geography contract. *)
let region_of p node =
  if node < 0 then invalid_arg "Geo.region_of: negative node id";
  node mod Array.length p.regions

let base p ~src ~dst = p.delay.(region_of p src).(region_of p dst)
let jitter_bound p ~src ~dst = p.jitter.(region_of p src).(region_of p dst)

(* Worst-case round trip under the profile: the slowest (there, back)
   pair including jitter.  Callers size rt_timeout from this. *)
let max_rtt p =
  let r = Array.length p.regions in
  let worst = ref 0.0 in
  for a = 0 to r - 1 do
    for b = 0 to r - 1 do
      let rtt =
        p.delay.(a).(b) +. p.jitter.(a).(b) +. p.delay.(b).(a)
        +. p.jitter.(b).(a)
      in
      if rtt > !worst then worst := rtt
    done
  done;
  !worst

(* ------------------------------------------------------------------ *)
(* The named profiles                                                  *)
(* ------------------------------------------------------------------ *)

let sym2 ~intra ~cross ~jintra ~jcross =
  ( [| [| intra; cross |]; [| cross; intra |] |],
    [| [| jintra; jcross |]; [| jcross; jintra |] |] )

let lan =
  make ~name:"lan"
    ~description:"one rack: ~0.6ms RTT everywhere"
    ~regions:[| "local" |]
    ~delay:[| [| 0.0003 |] |]
    ~jitter:[| [| 0.0002 |] |]

let wan_3region =
  (* Three symmetric regions, ~1ms RTT inside a region, ~80ms RTT
     across any two — the classic continental triangle. *)
  let intra = 0.0005 and cross = 0.04 in
  let jintra = 0.0003 and jcross = 0.004 in
  let row a =
    Array.init 3 (fun b -> if a = b then intra else cross)
  and jrow a = Array.init 3 (fun b -> if a = b then jintra else jcross) in
  make ~name:"wan-3region"
    ~description:"3 regions, ~1ms intra / ~80ms cross RTT"
    ~regions:[| "us-east"; "eu-west"; "ap-south" |]
    ~delay:(Array.init 3 row)
    ~jitter:(Array.init 3 jrow)

let mixed_1ms_80ms =
  let delay, jitter =
    sym2 ~intra:0.0005 ~cross:0.04 ~jintra:0.0003 ~jcross:0.004
  in
  make ~name:"mixed-1ms-80ms"
    ~description:"2 regions: ~1ms RTT at home, ~80ms RTT across"
    ~regions:[| "near"; "far" |]
    ~delay ~jitter

let asym_updown =
  (* Edge-to-core links where the upstream leg is slower than the
     downstream one (30ms up, 10ms down): delay.(0).(1) <>
     delay.(1).(0), the case a single local/cross pair cannot say. *)
  make ~name:"asym-updown"
    ~description:"asymmetric edge<->core: 30ms up, 10ms down"
    ~regions:[| "edge"; "core" |]
    ~delay:[| [| 0.0003; 0.030 |]; [| 0.010; 0.0003 |] |]
    ~jitter:[| [| 0.0002; 0.003 |]; [| 0.001; 0.0002 |] |]

let profiles = [ lan; wan_3region; mixed_1ms_80ms; asym_updown ]

let find s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun p -> String.lowercase_ascii p.name = s) profiles

let names () = List.map (fun p -> p.name) profiles

(* ------------------------------------------------------------------ *)
(* Compilation: one profile, two backends                              *)
(* ------------------------------------------------------------------ *)

let latency_model p =
  Simulation.Latency.matrix ~name:p.name ~region_of:(region_of p)
    ~delay:p.delay ~jitter:p.jitter

(* The live-plane compilation: for every (client region a, server
   region b) with members on both sides, a [To_server] rule carrying
   delay.(a).(b) and a [From_server] rule carrying delay.(b).(a) —
   2·R² rules at most, each always firing (prob 1), each drawing its
   jitter deterministically per frame. *)
let rules p ~s ~clients =
  if s <= 0 then invalid_arg "Geo.rules: s must be > 0";
  let r = Array.length p.regions in
  let servers_in = Array.make r [] in
  for i = s - 1 downto 0 do
    servers_in.(region_of p i) <- i :: servers_in.(region_of p i)
  done;
  let clients_in = Array.make r [] in
  List.iter
    (fun c -> clients_in.(region_of p c) <- c :: clients_in.(region_of p c))
    (List.rev clients);
  let acc = ref [] in
  for a = r - 1 downto 0 do
    for b = r - 1 downto 0 do
      if clients_in.(a) <> [] && servers_in.(b) <> [] then begin
        acc :=
          Faults.rule ~dir:Faults.To_server ~servers:servers_in.(b)
            ~clients:clients_in.(a)
            (Faults.Latency
               { base = p.delay.(a).(b); jitter = p.jitter.(a).(b) })
          :: Faults.rule ~dir:Faults.From_server ~servers:servers_in.(b)
               ~clients:clients_in.(a)
               (Faults.Latency
                  { base = p.delay.(b).(a); jitter = p.jitter.(b).(a) })
          :: !acc
      end
    done
  done;
  !acc

let plan ?(seed = 0) ?(extra = []) p ~s ~clients =
  Faults.create ~seed (rules p ~s ~clients @ extra)

(* Every node (server or client) placed in region [k] — the raw
   material for region-outage partitions. *)
let region_nodes p ~s ~clients k =
  let servers = List.init s Fun.id in
  List.filter (fun n -> region_of p n = k) (servers @ clients)

let describe p =
  let b = Buffer.create 256 in
  Printf.bprintf b "%-16s %s\n" p.name p.description;
  let r = Array.length p.regions in
  Printf.bprintf b "  %-10s" "";
  Array.iter (fun n -> Printf.bprintf b " %12s" n) p.regions;
  Buffer.add_char b '\n';
  for a = 0 to r - 1 do
    Printf.bprintf b "  %-10s" p.regions.(a);
    for bcol = 0 to r - 1 do
      Printf.bprintf b " %5.1f+%-4.1fms"
        (1e3 *. p.delay.(a).(bcol))
        (1e3 *. p.jitter.(a).(bcol))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b
