(** A register server daemon: one {!Registers.Replica} behind a TCP
    listen socket.

    The daemon hosts exactly the replica state machine the simulator
    uses — [current] value plus the full-information value vector with
    [updated] sets — and answers Query/Update requests per the paper's
    server algorithm (Algorithm 2).  One handler thread per client
    connection; replica access is serialized, matching the model's
    one-message-at-a-time servers.  Requests decoded from one socket
    read are handled as a batch under a single lock acquisition and
    answered in a single write — the fast path for multiplexed client
    connections carrying many clients' traffic.  Handler threads of
    closed connections are reaped continuously, so a long-lived daemon
    does not leak a thread per connect/disconnect cycle.

    Servers never talk to each other (the model's communication
    restriction is structural here: nothing ever dials out). *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?id:int ->
  ?faults:Faults.t ->
  replica:Registers.Replica.t ->
  unit ->
  t
(** Bind [host:port] (default [127.0.0.1:0] — port 0 picks an ephemeral
    port, see {!port}) and serve until {!stop}.  [id] is the server's
    index, echoed in every reply so clients can attribute messages.
    [faults] subjects every reply frame to the plan's [From_server]
    rules: drops and blackouts lose it, delays deliver it late from a
    delayer thread, duplicates send it twice, truncation tears the
    frame mid-byte and severs the connection. *)

val port : t -> int
(** The actual bound port. *)

val replica : t -> Registers.Replica.t
(** The hosted state machine (inspection/tests). *)

val handler_count : t -> int
(** Live connection-handler threads (announced-finished ones excluded).
    Observability for tests: must return to 0 once every client has
    disconnected and the reaper has run. *)

val stop : t -> unit
(** Crash the server: stop accepting, sever every client connection,
    join all threads.  Clients observe EOF/ECONNREFUSED — exactly the
    crash failures the [t]-tolerant quorum logic must survive.
    Idempotent. *)
