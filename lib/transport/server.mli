(** A register server daemon: one {!Registers.Replica} behind a TCP
    listen socket, served by a non-blocking reactor.

    The daemon hosts exactly the replica state machine the simulator
    uses — [current] value plus the full-information value vector with
    [updated] sets — and answers Query/Update requests per the paper's
    server algorithm (Algorithm 2).  Instead of a thread per connection,
    an event loop (epoll where available, poll elsewhere) drives
    non-blocking sockets: each connection's bytes feed an incremental
    {!Codec.Stream}, every complete frame decoded by one wakeup is
    handled as a batch under a single replica-lock acquisition, and the
    batch's replies coalesce into one write from a per-connection
    out-queue.  A peer that stops reading costs a write-interest
    registration (backpressure), never a blocked thread — which is what
    lets one daemon hold 1000+ concurrent connections.

    With [shards > 1] the connections are dealt round-robin across that
    many event loops, one domain each; the replica itself stays behind
    one lock (the model's one-message-at-a-time server), so shards scale
    the socket work, not the state machine.

    Servers never talk to each other (the model's communication
    restriction is structural here: nothing ever dials out). *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?id:int ->
  ?shards:int ->
  ?faults:Faults.t ->
  ?keyspace:Registers.Keyspace.t ->
  replica:Registers.Replica.t ->
  unit ->
  t
(** Bind [host:port] (default [127.0.0.1:0] — port 0 picks an ephemeral
    port, see {!port}) and serve until {!stop}.  [id] is the server's
    index, echoed in every reply so clients can attribute messages.
    [shards] (default 1) is the number of reactor event loops.
    [faults] subjects every reply frame to the plan's [From_server]
    rules: drops and blackouts lose it, delays park it on the owning
    shard's timer list and deliver it late, duplicates send it twice,
    truncation tears the frame mid-byte and severs the connection.
    [keyspace] (default fresh and empty) answers keyed requests: a
    [Codec.Keyed_request] dispatches to the named per-key replica, under
    the same lock as [replica], and is answered with a [Keyed_reply]
    echoing the key.  Unkeyed traffic is untouched. *)

val port : t -> int
(** The actual bound port. *)

val replica : t -> Registers.Replica.t
(** The hosted state machine (inspection/tests). *)

val keyspace : t -> Registers.Keyspace.t
(** The hosted named-register table (inspection/tests/recovery). *)

val connection_count : t -> int
(** Live connections across all shards.  Observability for tests: must
    return to 0 once every client has disconnected — the reactor closes
    a connection the moment its socket reports EOF, with no reaper tick
    in between. *)

val stop : t -> unit
(** Crash the server: stop accepting, close every client connection,
    join the shard loops.  Clients observe EOF/ECONNREFUSED — exactly
    the crash failures the [t]-tolerant quorum logic must survive.
    Idempotent. *)
