(** A register server daemon: one {!Registers.Replica} behind a TCP
    listen socket.

    The daemon hosts exactly the replica state machine the simulator
    uses — [current] value plus the full-information value vector with
    [updated] sets — and answers Query/Update requests per the paper's
    server algorithm (Algorithm 2).  One handler thread per client
    connection; replica access is serialized, matching the model's
    one-message-at-a-time servers.

    Servers never talk to each other (the model's communication
    restriction is structural here: nothing ever dials out). *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?id:int ->
  replica:Registers.Replica.t ->
  unit ->
  t
(** Bind [host:port] (default [127.0.0.1:0] — port 0 picks an ephemeral
    port, see {!port}) and serve until {!stop}.  [id] is the server's
    index, echoed in every reply so clients can attribute messages. *)

val port : t -> int
(** The actual bound port. *)

val replica : t -> Registers.Replica.t
(** The hosted state machine (inspection/tests). *)

val stop : t -> unit
(** Crash the server: stop accepting, sever every client connection,
    join all threads.  Clients observe EOF/ECONNREFUSED — exactly the
    crash failures the [t]-tolerant quorum logic must survive.
    Idempotent. *)
