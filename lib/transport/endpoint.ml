open Registers

(* One exception for both data planes, so callers catch quorum loss the
   same way whichever path is active. *)
exception Unavailable = Mux.Unavailable

(* ------------------------------------------------------------------ *)
(* The private per-client-socket path                                  *)
(*                                                                     *)
(* Each client owns S sockets and polls them with [select] inside every *)
(* operation.  Kept as the baseline the multiplexed plane is measured   *)
(* against (bench `live` records both), and for talking to servers that *)
(* predate the client-echoing Reply frame.                              *)
(* ------------------------------------------------------------------ *)

type conn = {
  addr : Unix.sockaddr;
  mutable fd : Unix.file_descr option;
  mutable stream : Codec.Stream.t;
  mutable attempts : int; (* consecutive failed connects *)
  mutable next_attempt : float; (* wall-clock gate for the next connect *)
}

type sockets = {
  client : int;
  conns : conn array;
  quorum : int;
  rt_timeout : float;
  max_rt_retries : int;
  connect_retries : int;
  connect_backoff : float;
  faults : Faults.t option;
  mutable next_rt : int;
  mutable started : int;
  mutable completed : int;
  mutable late : int;
  mutable retried : int; (* re-broadcasts after a round-trip timeout *)
  read_buf : Bytes.t;
  enc : Buffer.t; (* reused encode buffer *)
  mutable out : Bytes.t; (* reused write staging *)
  (* Fault-plan deliveries scheduled for later: (due, payload copy,
     server index, truncated), sorted by deadline.  The op's poll loop
     drains due entries and shrinks its timeout to the nearest one; the
     sender never sleeps, so a delay on one link cannot push back the
     sends to the rest of the fan-out.  One client thread owns the
     endpoint, so no lock. *)
  mutable staged : (float * Bytes.t * int * bool) list;
}

type t =
  | Sockets of sockets
  | Shared of Mux.handle

(* All deadlines and backoff gates run on the monotonic clock: a wall
   time step must not fire or stall every timeout at once. *)
let now = Clock.now

(* A server crashing mid-write must surface as EPIPE on that write, not
   kill the client process. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let drop c =
  (match c.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  c.fd <- None;
  c.stream <- Codec.Stream.create ()

(* Bounded, exponentially backed-off reconnect.  Loopback connects to a
   dead port fail fast (ECONNREFUSED), so killed servers cost little. *)
let try_connect t c =
  match c.fd with
  | Some fd -> Some fd
  | None ->
    if c.attempts > t.connect_retries || now () < c.next_attempt then None
    else begin
      let fail () =
        c.attempts <- c.attempts + 1;
        c.next_attempt <-
          now () +. (t.connect_backoff *. float_of_int (1 lsl min c.attempts 6));
        None
      in
      (* [socket] itself can fail (EMFILE under fd pressure): that must
         land in the same backoff path as a refused connect, not escape
         and kill the client thread with a non-protocol exception. *)
      match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error _ -> fail ()
      | fd -> (
        match
          Unix.connect fd c.addr;
          Unix.setsockopt fd Unix.TCP_NODELAY true
        with
        | () ->
          c.fd <- Some fd;
          c.stream <- Codec.Stream.create ();
          c.attempts <- 0;
          Some fd
        | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          fail ())
    end

let create ?(rt_timeout = 1.0) ?(max_rt_retries = 3) ?(connect_retries = 8)
    ?(connect_backoff = 0.02) ?faults ~client ~servers ~quorum () =
  Lazy.force ignore_sigpipe;
  let n = Array.length servers in
  if quorum <= 0 || quorum > n then
    invalid_arg "Endpoint.create: quorum out of range";
  let t =
    {
      client;
      conns =
        Array.map
          (fun addr ->
            {
              addr;
              fd = None;
              stream = Codec.Stream.create ();
              attempts = 0;
              next_attempt = 0.0;
            })
          servers;
      quorum;
      rt_timeout;
      max_rt_retries;
      connect_retries;
      connect_backoff;
      faults;
      next_rt = 0;
      started = 0;
      completed = 0;
      late = 0;
      retried = 0;
      read_buf = Bytes.create 65536;
      enc = Buffer.create 256;
      out = Bytes.create 256;
      staged = [];
    }
  in
  (* Optimistic first dial; failures just leave the conn in backoff. *)
  Array.iter (fun c -> ignore (try_connect t c)) t.conns;
  Sockets t

let of_mux h = Shared h

(* [Netio.write_all] retries EINTR internally: only a real link failure
   reaches the handler and severs the connection. *)
let send_bytes c bytes len =
  match c.fd with
  | None -> false
  | Some fd -> (
    try
      Netio.write_all fd bytes 0 len;
      true
    with Unix.Unix_error _ ->
      drop c;
      false)

(* Send a torn frame — [prefix] bytes of it — then sever the link, so
   the server's strict decoder rejects the stream (fault injection). *)
let send_truncated c bytes len =
  (match c.fd with
  | None -> ()
  | Some fd -> (
    let prefix = max 1 (len / 2) in
    try Netio.write_all fd bytes 0 prefix with Unix.Unix_error _ -> ()));
  drop c

(* Park one scheduled delivery on the deadline queue (sorted insert;
   the queue holds a handful of frames). *)
let stage t ~due payload i truncated =
  let rec ins = function
    | [] -> [ (due, payload, i, truncated) ]
    | ((d, _, _, _) :: _) as l when due < d -> (due, payload, i, truncated) :: l
    | e :: rest -> e :: ins rest
  in
  t.staged <- ins t.staged

(* Deliver every staged frame whose deadline has passed.  Frames may
   outlive the round (or even the operation) that sent them — the
   asynchrony being modelled; the replies they draw count as late. *)
let drain_staged t =
  let t_now = now () in
  let rec split acc l =
    match l with
    | (d, payload, i, tr) :: rest when d <= t_now ->
      split ((payload, i, tr) :: acc) rest
    | [] | (_, _, _, _) :: _ ->
      t.staged <- l;
      List.rev acc
  in
  List.iter
    (fun (payload, i, truncated) ->
      let c = t.conns.(i) in
      if truncated then send_truncated c payload (Bytes.length payload)
      else ignore (send_bytes c payload (Bytes.length payload)))
    (split [] t.staged)

(* Nearest staged deadline, for the poll-timeout shrink. *)
let next_staged_due t =
  match t.staged with (d, _, _, _) :: _ -> Some d | [] -> None

(* The round-trip contract of the model (§2.1): send to all S servers,
   complete on the first S − t replies in arrival order, count whatever
   arrives afterwards as late.  One endpoint serves one client thread;
   operations are sequential per client, so a single in-flight rt
   suffices. *)
let sockets_exec ?key t req k =
  let rt = t.next_rt in
  t.next_rt <- rt + 1;
  t.started <- t.started + 1;
  let n = Array.length t.conns in
  let replied = Array.make n false in
  let sent = Array.make n false in
  let replies = ref [] in
  let nreplies = ref 0 in
  (* Encode once into the reused buffer; the same bytes go to every
     server. *)
  let frame =
    match key with
    | None -> Codec.Request { rt; client = t.client; req }
    | Some key -> Codec.Keyed_request { key; rt; client = t.client; req }
  in
  Codec.encode_into t.enc frame;
  let len = Buffer.length t.enc in
  if len > Bytes.length t.out then
    t.out <- Bytes.create (max len (2 * Bytes.length t.out));
  Buffer.blit t.enc 0 t.out 0 len;
  (* A reply counts only when both the round-trip id and the register
     key echo what this round sent; anything else is late traffic. *)
  let accept i rt' key' rep =
    if rt' = rt && key' = key && not replied.(i) then begin
      replied.(i) <- true;
      (* Label replies with the connection's server index — it is
         authoritative, unlike the peer-reported field. *)
      replies := (i, rep) :: !replies;
      incr nreplies
    end
    else t.late <- t.late + 1
  in
  let handle_frame i = function
    | Codec.Request _ | Codec.Keyed_request _ ->
      (* Servers never send requests; treat as a broken peer. *)
      drop t.conns.(i)
    | Codec.Reply { rt = rt'; client = _; server = _; rep } ->
      accept i rt' None rep
    | Codec.Keyed_reply { key = key'; rt = rt'; client = _; server = _; rep }
      ->
      accept i rt' (Some key') rep
  in
  let attempt = ref 0 in
  let broadcast () =
    Array.iteri
      (fun i c ->
        if (not replied.(i)) && not sent.(i) then
          match try_connect t c with
          | None -> ()
          | Some _ -> (
            match t.faults with
            | None -> sent.(i) <- send_bytes c t.out len
            | Some plan ->
              (* The attempt number salts the plan's per-frame draw: a
                 request dropped on this attempt gets a fresh decision
                 on the next re-broadcast, so lossy links slow rounds
                 down instead of wedging them. *)
              let ds =
                Faults.deliveries plan ~dir:Faults.To_server ~server:i
                  ~client:t.client ~rt ~salt:!attempt
              in
              if ds = [] then sent.(i) <- true (* lost on the wire *)
              else
                List.iter
                  (fun { Faults.after; truncated } ->
                    if after > 0.0 then begin
                      (* Park it and keep fanning out: a delay on this
                         link must not push back the send time to the
                         later servers of the round.  Copied because
                         [t.out] is reused by the next operation. *)
                      stage t ~due:(now () +. after) (Bytes.sub t.out 0 len) i
                        truncated;
                      sent.(i) <- true
                    end
                    else if truncated then begin
                      send_truncated c t.out len;
                      sent.(i) <- true
                    end
                    else sent.(i) <- send_bytes c t.out len)
                  ds))
      t.conns
  in
  let read_ready fds =
    Array.iteri
      (fun i c ->
        match c.fd with
        | Some fd when List.memq fd fds -> (
          match Netio.read fd t.read_buf 0 (Bytes.length t.read_buf) with
          | 0 -> drop c
          | nread -> (
            Codec.Stream.feed c.stream t.read_buf nread;
            try
              let rec drain () =
                match Codec.Stream.next c.stream with
                | Some f ->
                  handle_frame i f;
                  drain ()
                | None -> ()
              in
              drain ()
            with Codec.Decode_error _ -> drop c)
          | exception Unix.Unix_error _ -> drop c)
        | _ -> ())
      t.conns
  in
  broadcast ();
  let deadline = ref (now () +. t.rt_timeout) in
  let give_up = ref false in
  while !nreplies < t.quorum && not !give_up do
    let remaining = !deadline -. now () in
    if remaining <= 0.0 then begin
      (* Round-trip timed out: re-broadcast to the servers that have not
         replied (reconnecting if their link dropped), bounded. *)
      if !attempt >= t.max_rt_retries then give_up := true
      else begin
        incr attempt;
        t.retried <- t.retried + 1;
        Array.fill sent 0 n false;
        broadcast ();
        deadline := now () +. t.rt_timeout
      end
    end
    else begin
      (* Keep nudging reconnects whose backoff gate has opened, and
         fire any staged deliveries that have come due. *)
      broadcast ();
      drain_staged t;
      (* Wait no longer than the nearest staged deadline (0.5 ms
         floor), so parked frames go out on time instead of quantising
         to the 50 ms poll tick. *)
      let timeout =
        let cap = Float.min remaining 0.05 in
        match next_staged_due t with
        | Some d -> Float.max 0.0005 (Float.min cap (d -. now ()))
        | None -> cap
      in
      let live =
        Array.to_list t.conns
        |> List.filter_map (fun c -> c.fd)
      in
      if live = [] then Thread.delay (Float.min 0.01 timeout)
      else
        (* poll(2) via Netio, not [Unix.select]: descriptor numbers pass
           1024 routinely once hundreds of clients each hold S sockets,
           and select corrupts its fd_set beyond FD_SETSIZE.  EINTR
           returns [[]]; a connection that died between listing and
           polling is reported ready, and the read path drops it. *)
        match Netio.wait_readable live timeout with
        | [] -> ()
        | fds -> read_ready fds
    end
  done;
  if !nreplies >= t.quorum then begin
    t.completed <- t.completed + 1;
    k (List.rev !replies)
  end
  else
    raise
      (Unavailable
         (Printf.sprintf
            "client %d: %d/%d replies after %d attempts of %.3fs" t.client
            !nreplies t.quorum (!attempt + 1) t.rt_timeout))

(* ------------------------------------------------------------------ *)
(* The common face                                                     *)
(* ------------------------------------------------------------------ *)

let exec ?key t req k =
  match t with
  | Sockets s -> sockets_exec ?key s req k
  | Shared h -> Mux.exec ?key h req k

let endpoint t = { Client_core.exec = (fun req k -> exec t req k) }

(* The same endpoint viewed through one register of the keyspace: the
   protocol algorithms stay key-blind, the key rides every round trip. *)
let keyed_endpoint t ~key =
  { Client_core.exec = (fun req k -> exec ~key t req k) }

let rounds_started = function
  | Sockets s -> s.started
  | Shared h -> Mux.rounds_started h

let rounds_completed = function
  | Sockets s -> s.completed
  | Shared h -> Mux.rounds_completed h

let late_replies = function
  | Sockets s -> s.late
  | Shared h -> Mux.late_replies h

let retries = function
  | Sockets s -> s.retried
  | Shared h -> Mux.retries h

let close = function
  | Sockets s -> Array.iter drop s.conns
  | Shared h -> Mux.release h
