(** A live client endpoint: the simulator's {!Protocol.Round_trip}
    contract over real TCP sockets.

    [exec] broadcasts a request to all [S] servers and completes on the
    first [S − t] replies *in arrival order*; replies that arrive after
    completion are counted late, exactly like the simulated endpoint.
    Each round trip has a timeout; on expiry the request is re-broadcast
    to the servers still missing (reconnecting dropped links) a bounded
    number of times before {!Unavailable} is raised.  Connect failures
    back off exponentially and give up after a bounded number of
    consecutive attempts, so crashed servers cost a vanishing amount of
    effort — [t] real process kills are survivable as long as [S − t]
    servers keep answering.

    Two data planes satisfy this contract:

    - {!create} — the private path: this client owns [S] sockets and
      polls them with [select] inside each operation.  Simple, but
      [C × S] sockets and [C] poll loops at [C] clients.
    - {!of_mux} — the multiplexed path ({!Mux}): all clients in the
      process share one connection per server; replies are routed to
      per-client mailboxes by a demux thread per connection.  This is
      the production data plane.

    One endpoint belongs to one client thread; operations are issued
    sequentially (the CPS algorithms nest their rounds), so there is at
    most one round trip in flight per endpoint. *)

exception Unavailable of string
(** Raised by [exec] when no quorum answered within the retry budget.
    The same exception as {!Mux.Unavailable}, whichever plane raised
    it. *)

type t

val create :
  ?rt_timeout:float ->
  ?max_rt_retries:int ->
  ?connect_retries:int ->
  ?connect_backoff:float ->
  ?faults:Faults.t ->
  client:int ->
  servers:Unix.sockaddr array ->
  quorum:int ->
  unit ->
  t
(** [create ~client ~servers ~quorum ()] dials every server (tolerating
    failures) and returns a private-socket endpoint.  [client] is this
    client's node id as recorded in the servers' [updated] sets — use
    the same numbering as {!Protocol.Topology} (writer [i] ↦ [S + i],
    reader [j] ↦ [S + W + j]) so live and simulated certificates agree.
    [rt_timeout] (default 1s) bounds each round trip; [max_rt_retries]
    (default 3) bounds re-broadcasts; [connect_retries]/[connect_backoff]
    bound reconnect attempts per server.  [faults] subjects every
    outgoing request frame to the plan's [To_server] rules
    ({!Faults}). *)

val of_mux : Mux.handle -> t
(** An endpoint over a client handle of a shared {!Mux} plane. *)

val exec :
  ?key:string ->
  t ->
  Registers.Wire.req ->
  ((int * Registers.Wire.rep) list -> unit) ->
  unit
(** One round trip.  The continuation receives [(server_index, reply)]
    pairs in arrival order and runs in the calling thread.  With [key]
    the round trip addresses that named register of the servers'
    keyspaces; only replies echoing the same key count toward the
    quorum, on either plane.
    @raise Unavailable when fewer than [quorum] servers answered. *)

val endpoint : t -> Registers.Client_core.endpoint
(** The endpoint as the backend-agnostic capability consumed by the
    {!Registers.Client_core} algorithms. *)

val keyed_endpoint : t -> key:string -> Registers.Client_core.endpoint
(** The same capability pinned to one named register: every round trip
    it executes carries [key], so a key-blind protocol algorithm runs
    against that register unchanged. *)

val rounds_started : t -> int
val rounds_completed : t -> int

val late_replies : t -> int
(** Replies that arrived after their round trip had already completed —
    the live analogue of the simulator's late-message count. *)

val retries : t -> int
(** Re-broadcasts issued after a round-trip timeout — 0 on a clean run,
    and the visible cost of lossy links under a fault plan. *)

val close : t -> unit
(** Private path: drop every connection (the endpoint may be used again;
    it will redial).  Mux path: release this client's mailbox route —
    the shared connections stay up for other clients until the owning
    {!Mux.t} is {!Mux.shutdown}. *)
