open Histories

(* Contention-free bridge between client threads and one checker
   thread.  Each client owns a port: completions CAS-push onto the
   port's private stack, and a single in-flight marker publishes the
   invocation time of the operation currently executing.  The checker
   thread derives the GC watermark from the markers *before* draining
   the stacks, so the Online feed contract (ops fed after
   [advance ~watermark:w] invoke at or after [w]) holds by
   construction: a completion is pushed before its marker clears, so
   either the marker capped the watermark or the push is already
   visible to the drain that follows the marker read. *)

type entry = { e_key : string; e_op : Op.t }

type port = {
  queue : entry list Atomic.t;
  inflight : float Atomic.t; (* inv of the op in flight; infinity when idle *)
  base_id : int; (* ids handed out: base_id + n * id_stride *)
  mutable next : int;
  now : unit -> float;
}

(* Per-port id block, disjoint across ports without coordination. *)
let id_stride = 0x4000_0000

type report = {
  checked : int;
  keys : int;
  peak_window : int;
  batches : int;
  busy : float; (* seconds the checker thread spent feeding/advancing *)
  checker_ops_per_sec : float;
  violations : (string * Checker.Witness.t) list;
  verdicts : (string * (unit, Checker.Witness.t) result) list;
}

type t = {
  keyed : Checker.Online.Keyed.t;
  now_ : unit -> float;
  interval : float;
  mutable ports : port list;
  mutable nports : int;
  stop_flag : bool Atomic.t;
  mutable thread : Thread.t option;
  mutable batches : int;
  mutable busy : float;
}

let create ?on_violation ?(interval = 0.001) ~now () =
  {
    keyed = Checker.Online.Keyed.create ?on_violation ();
    now_ = now;
    interval;
    ports = [];
    nports = 0;
    stop_flag = Atomic.make false;
    thread = None;
    batches = 0;
    busy = 0.0;
  }

let port t =
  if t.thread <> None then
    invalid_arg "Check_sink.port: ports must be created before start";
  let p =
    {
      queue = Atomic.make [];
      inflight = Atomic.make infinity;
      base_id = t.nports * id_stride;
      next = 0;
      now = t.now_;
    }
  in
  t.nports <- t.nports + 1;
  t.ports <- p :: t.ports;
  p

(* Publish the marker, then timestamp the invocation: the returned
   time is never below the published marker, so the watermark can
   never overtake an operation that has not been pushed yet. *)
let invoked p =
  Atomic.set p.inflight (p.now ());
  p.now ()

let rec push p e =
  let old = Atomic.get p.queue in
  if not (Atomic.compare_and_set p.queue old (e :: old)) then push p e

let completed p ~key op =
  let id = p.base_id + p.next in
  p.next <- p.next + 1;
  push p { e_key = key; e_op = { op with Op.id } };
  Atomic.set p.inflight infinity

let drain_once t =
  let cap = t.now_ () in
  let wm =
    List.fold_left
      (fun acc p -> Float.min acc (Atomic.get p.inflight))
      cap t.ports
  in
  let any = ref false in
  List.iter
    (fun p ->
      match Atomic.exchange p.queue [] with
      | [] -> ()
      | batch ->
        any := true;
        (* The stack drains newest-first; reverse back to the port's
           program order. *)
        List.iter
          (fun e -> Checker.Online.Keyed.feed t.keyed ~key:e.e_key e.e_op)
          (List.rev batch))
    t.ports;
  Checker.Online.Keyed.advance t.keyed ~watermark:wm;
  if !any then begin
    t.batches <- t.batches + 1;
    t.busy <- t.busy +. (t.now_ () -. cap)
  end

let start t =
  if t.thread <> None then invalid_arg "Check_sink.start: already started";
  t.thread <-
    Some
      (Thread.create
         (fun () ->
           while not (Atomic.get t.stop_flag) do
             drain_once t;
             Thread.delay t.interval
           done)
         ())

let stop t =
  (match t.thread with
  | Some th ->
    Atomic.set t.stop_flag true;
    Thread.join th;
    t.thread <- None
  | None -> ());
  (* Final drain after every producer has joined: markers are all idle
     now, so this also settles the watermark at [now]. *)
  drain_once t;
  let t1 = t.now_ () in
  let verdicts = Checker.Online.Keyed.finalize t.keyed in
  t.busy <- t.busy +. (t.now_ () -. t1);
  let checked = Checker.Online.Keyed.ops_seen t.keyed in
  {
    checked;
    keys = Checker.Online.Keyed.keys t.keyed;
    peak_window = Checker.Online.Keyed.peak_resident t.keyed;
    batches = t.batches;
    busy = t.busy;
    checker_ops_per_sec =
      (if t.busy > 0.0 then float_of_int checked /. t.busy else 0.0);
    violations = Checker.Online.Keyed.violations t.keyed;
    verdicts;
  }

let atomic r = r.violations = [] && List.for_all (fun (_, v) -> v = Ok ()) r.verdicts
