(** A work-sharing domain pool for embarrassingly parallel sweeps.

    Every experiment in this reproduction — Table 1 verdicts, the
    schedule hunter, the exhaustive small-world sweep — is thousands of
    *independent* simulation runs, each with its own engine, RNG and
    history.  This pool fans such batches out over OCaml 5 domains using
    only the stdlib ([Domain], [Mutex]): no work stealing, just a shared
    cursor that idle workers pull the next task index from, so uneven
    task costs balance automatically.

    Determinism contract: results are assembled *by task index*, never
    by completion order, so [map pool f xs = List.map f xs] for any pure
    (or state-disjoint) [f] — parallel output is byte-identical to
    sequential output.  Tasks must not share mutable state with each
    other; sharing with the caller is safe only after the batch returns.

    Exceptions: if one or more tasks raise, the batch stops handing out
    new tasks and the exception from the smallest failing task index
    (among those that ran) is re-raised in the caller with its
    backtrace. *)

type t

val default_domains : unit -> int
(** The [MWREG_DOMAINS] environment variable if set to a positive
    integer, otherwise [Domain.recommended_domain_count ()]. *)

val create : ?domains:int -> unit -> t
(** A pool of up to [domains] workers (the calling domain counts as one;
    the rest are spawned per batch).  Defaults to {!default_domains};
    values below 1 are clamped to 1 and values above
    [Domain.recommended_domain_count ()] are clamped down to it —
    oversubscribing cores only adds GC coordination and context-switch
    cost, so a pool is never slower than the sequential loop.  With 1
    effective domain every batch runs sequentially in the caller.
    Batches of at most 2 tasks always run inline: a domain spawn costs
    more than it could save there. *)

val domains : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element, work-shared across the
    pool's domains, returning results in input order. *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** [map_reduce pool ~map ~reduce ~init xs] maps in parallel, then folds
    the results left-to-right in input order — deterministic even for
    non-commutative [reduce]. *)

val iter_seeds : t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [iter_seeds pool ~lo ~hi f] calls [f seed] for every seed in
    [lo..hi] inclusive, handing out contiguous chunks of [chunk] seeds
    at a time to amortise the cursor lock.  When [chunk] is omitted it
    is sized to roughly 4 chunks per worker, so big sweeps see almost no
    cursor traffic and tiny sweeps collapse into one inline chunk.
    [f]'s side effects must be disjoint per seed (e.g. each seed writes
    its own array slot). *)
