type t = { domains : int }

let default_domains () =
  match Sys.getenv_opt "MWREG_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Hardware ceiling: spawning more domains than the machine has cores
   never helps and usually hurts — the surplus domains only add GC
   coordination and context-switch traffic (on a 1-core container an
   oversubscribed "parallel" sweep measured 2× slower than sequential).
   Requested sizes mean *up to* this many workers. *)
let hw_cap () = max 1 (Domain.recommended_domain_count ())

let create ?domains () =
  let n = match domains with Some n -> n | None -> default_domains () in
  { domains = max 1 (min n (hw_cap ())) }

let domains t = t.domains

(* Run tasks 0..n-1 by pulling indices from a mutex-protected cursor.
   After any failure the cursor stops handing out work; the failure with
   the smallest task index among those executed wins, so the re-raised
   exception does not depend on domain scheduling. *)
let run_tasks pool n f =
  if n > 0 then begin
    let workers = min pool.domains n in
    (* Inline fallback: a domain spawn + join costs far more than a
       couple of typical tasks, so batches too small to amortise it run
       in the caller.  [workers <= 1] lands here too, keeping the
       degenerate pool identical to the old sequential loop. *)
    if workers <= 1 || n <= 2 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let m = Mutex.create () in
      let next = ref 0 in
      let failed = ref None in
      let take () =
        Mutex.lock m;
        let i = if !failed = None then !next else n in
        if i < n then next := i + 1;
        Mutex.unlock m;
        if i < n then Some i else None
      in
      let record i exn bt =
        Mutex.lock m;
        (match !failed with
        | Some (j, _, _) when j <= i -> ()
        | _ -> failed := Some (i, exn, bt));
        Mutex.unlock m
      in
      let rec worker () =
        match take () with
        | None -> ()
        | Some i ->
          (try f i with exn -> record i exn (Printexc.get_raw_backtrace ()));
          worker ()
      in
      let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join spawned;
      match !failed with
      | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None -> ()
    end
  end

let map pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let out = Array.make n None in
    (* Each slot is written by exactly one task and read only after the
       joins in [run_tasks], so the accesses are race-free. *)
    run_tasks pool n (fun i -> out.(i) <- Some (f input.(i)));
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) out)

let map_reduce pool ~map:fm ~reduce ~init xs =
  List.fold_left reduce init (map pool fm xs)

let iter_seeds pool ?chunk ~lo ~hi f =
  if hi >= lo then begin
    let count = hi - lo + 1 in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None ->
        (* Aim for ~4 chunks per worker: enough slack for the cursor to
           balance uneven costs, few enough that lock traffic stays
           negligible.  Tiny sweeps collapse into one inline chunk. *)
        max 1 (count / (4 * pool.domains))
    in
    let chunks = (count + chunk - 1) / chunk in
    run_tasks pool chunks (fun c ->
        let a = lo + (c * chunk) in
        let b = min hi (a + chunk - 1) in
        for seed = a to b do
          f seed
        done)
  end
