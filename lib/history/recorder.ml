type pending = {
  id : int;
  proc : Op.proc;
  kind : Op.kind;
  inv : float;
  mutable resp : float option;
  mutable result : int option;
}

type handle = pending

type t = {
  mutable next_id : int;
  mutable next_value : int;
  mutable entries : pending list; (* newest first *)
  mutable n_completed : int;
  on_complete : Op.t -> unit;
}

let create ?(on_complete = fun (_ : Op.t) -> ()) () =
  {
    next_id = 0;
    next_value = History.initial_value + 1;
    entries = [];
    n_completed = 0;
    on_complete;
  }

let begin_op t ~proc ~kind ~now =
  let p = { id = t.next_id; proc; kind; inv = now; resp = None; result = None } in
  t.next_id <- t.next_id + 1;
  t.entries <- p :: t.entries;
  p

let begin_write t ~proc ~value ~now = begin_op t ~proc ~kind:(Op.Write value) ~now

let begin_read t ~proc ~now = begin_op t ~proc ~kind:Op.Read ~now

let op_of (p : pending) : Op.t =
  { Op.id = p.id; proc = p.proc; kind = p.kind; inv = p.inv; resp = p.resp;
    result = p.result }

let finish_write t h ~now =
  assert (h.resp = None);
  h.resp <- Some now;
  t.n_completed <- t.n_completed + 1;
  t.on_complete (op_of h)

let finish_read t h ~now ~result =
  assert (h.resp = None);
  h.resp <- Some now;
  h.result <- Some result;
  t.n_completed <- t.n_completed + 1;
  t.on_complete (op_of h)

let fresh_value t =
  let v = t.next_value in
  t.next_value <- v + 1;
  v

let snapshot t = History.of_ops (List.rev_map op_of t.entries)

let completed t = t.n_completed

let handle_id (h : handle) = h.id
