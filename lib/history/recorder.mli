(** Incremental history construction.

    The protocol runtime wraps every client operation in a
    [begin_op] / [finish_*] pair; the recorder assigns ids, timestamps the
    events with the virtual clock supplied by the caller, and produces the
    final {!History.t}. *)

type t

type handle
(** An in-flight operation. *)

val handle_id : handle -> int
(** The operation id this handle will carry in the final history. *)

val create : ?on_complete:(Op.t -> unit) -> unit -> t
(** [on_complete] fires with the finished operation on every
    [finish_*], in completion order — the wiring point for streaming
    consumers such as {!Checker.Online} (the recorder itself stays
    checker-agnostic). *)

val begin_write : t -> proc:Op.proc -> value:int -> now:float -> handle
val begin_read : t -> proc:Op.proc -> now:float -> handle

val finish_write : t -> handle -> now:float -> unit
val finish_read : t -> handle -> now:float -> result:int -> unit

val fresh_value : t -> int
(** A globally unique value (> {!History.initial_value}) for the next
    write, so histories satisfy {!History.unique_writes}. *)

val snapshot : t -> History.t
(** The history so far; operations still in flight appear as pending. *)

val completed : t -> int
(** Number of completed operations. *)
