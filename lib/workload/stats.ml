open Histories

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let empty =
  { count = 0; mean = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0 }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))
  end

let of_latencies lats =
  match lats with
  | [] -> empty
  | _ ->
    let sorted = Array.of_list lats in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    {
      count = n;
      mean = sum /. float_of_int n;
      min = sorted.(0);
      max = sorted.(n - 1);
      p50 = percentile sorted 0.50;
      p95 = percentile sorted 0.95;
      p99 = percentile sorted 0.99;
    }

let latencies_of ~keep h =
  List.filter_map
    (fun (o : Op.t) ->
      match o.Op.resp with
      | Some f when keep o -> Some (f -. o.Op.inv)
      | _ -> None)
    (History.ops h)

let read_latencies h = latencies_of ~keep:Op.is_read h

let write_latencies h = latencies_of ~keep:Op.is_write h

let reads h = of_latencies (read_latencies h)

let writes h = of_latencies (write_latencies h)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f" s.count
    s.mean s.p50 s.p95 s.p99 s.max

module Hist = struct
  (* Log-scaled fixed bins: [per_decade] bins per decade over
     [lo, lo * 10^decades), plus an underflow and an overflow bin.
     Memory is a constant ~5KB however many samples stream through;
     count / sum / min / max are exact, and a percentile read off a
     bin's geometric midpoint is within a half bin-width of the true
     order statistic — 10^(1/128) - 1 < 1.9% relative error. *)
  let lo = 1e-7 (* 0.1us — far below any real socket round trip *)
  let per_decade = 64
  let decades = 10 (* up to 1000s *)
  let nbins = per_decade * decades
  let scale = float_of_int per_decade /. log 10.

  type t = {
    bins : int array; (* 0 = underflow; 1..nbins; nbins+1 = overflow *)
    mutable n : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () =
    {
      bins = Array.make (nbins + 2) 0;
      n = 0;
      sum = 0.0;
      mn = infinity;
      mx = neg_infinity;
    }

  let index x =
    if x < lo then 0
    else
      let i = 1 + int_of_float (scale *. log (x /. lo)) in
      if i > nbins + 1 then nbins + 1 else i

  let add t x =
    let i = index x in
    t.bins.(i) <- t.bins.(i) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x

  let count t = t.n

  let merge ~into src =
    Array.iteri (fun i c -> into.bins.(i) <- into.bins.(i) + c) src.bins;
    into.n <- into.n + src.n;
    into.sum <- into.sum +. src.sum;
    if src.mn < into.mn then into.mn <- src.mn;
    if src.mx > into.mx then into.mx <- src.mx

  (* The geometric midpoint of bin [i], clamped into the exact
     [mn, mx] envelope so degenerate histograms (one sample, all
     samples under [lo], ...) stay exact. *)
  let midpoint t i =
    let v =
      if i = 0 then lo
      else if i = nbins + 1 then t.mx
      else lo *. exp ((float_of_int (i - 1) +. 0.5) /. scale)
    in
    Float.min t.mx (Float.max t.mn v)

  let value_at_rank t rank =
    let acc = ref 0 and res = ref t.mx in
    (try
       for i = 0 to nbins + 1 do
         acc := !acc + t.bins.(i);
         if !acc >= rank then begin
           res := midpoint t i;
           raise Exit
         end
       done
     with Exit -> ());
    !res

  (* Same rank convention as {!percentile}: 1-based ceil(p * n). *)
  let pct t p =
    value_at_rank t
      (Stdlib.max 1
         (Stdlib.min t.n (int_of_float (ceil (p *. float_of_int t.n)))))

  let summary t =
    if t.n = 0 then empty
    else
      {
        count = t.n;
        mean = t.sum /. float_of_int t.n;
        min = t.mn;
        max = t.mx;
        p50 = pct t 0.50;
        p95 = pct t 0.95;
        p99 = pct t 0.99;
      }
end
