(** YCSB-shaped workload generation for the KV keyspace: which key an
    operation touches and whether it reads or writes.

    Key choice is either uniform over the keyspace or the YCSB zipfian
    generator (Gray et al.'s inverse method with the [eta] correction),
    where rank 0 is the hottest key — contention-dependent fast paths
    only differentiate under such skew, which is the point of carrying
    this generator at all.  Operation kinds follow the classic A–C
    mixes.  Every draw flows through the caller's {!Simulation.Rng.t}:
    same seed, same key and operation sequence. *)

type dist = Uniform | Zipfian of float  (** skew parameter θ ∈ (0, 1) *)

type mix =
  | A  (** update-heavy: 50% reads / 50% writes *)
  | B  (** read-heavy: 95% reads / 5% writes *)
  | C  (** read-only: 100% reads *)

val default_theta : float
(** The standard YCSB zipfian constant, 0.99. *)

val read_fraction : mix -> float

val mix_name : mix -> string
(** ["A"], ["B"], ["C"]. *)

val mix_of_string : string -> mix option

val dist_name : dist -> string
(** ["uniform"] or ["zipfian"]. *)

type t
(** An immutable key chooser (precomputed zipfian constants); safe to
    share across client threads, each drawing from its own generator. *)

val create : dist:dist -> keys:int -> t
(** [create ~dist ~keys] prepares a chooser over key ranks
    [0 .. keys-1].  O(keys) precompute for zipfian. *)

val keys : t -> int
val dist : t -> dist

val next_key : t -> Simulation.Rng.t -> int
(** The next operation's key rank.  Under [Zipfian _], rank 0 is
    hottest. *)

val next_op : mix -> Simulation.Rng.t -> [ `Read | `Write ]

val key_name : int -> string
(** YCSB-style record name for a rank, e.g. [user00000042] — fixed
    width, so names sort and hash independently of rank skew. *)
