open Simulation

(* YCSB-shaped workload generation: which key an operation touches and
   whether it reads or writes.  Key choice follows either a uniform draw
   or the YCSB zipfian generator (Gray et al.'s rejection-free inverse
   method with the [eta] correction): rank 0 is the hottest key, so the
   skewed head of the distribution is deterministic and testable.  All
   randomness flows through the caller's {!Rng.t} — same seed, same
   key/op sequence. *)

type dist = Uniform | Zipfian of float

type mix = A | B | C

let default_theta = 0.99

let read_fraction = function A -> 0.5 | B -> 0.95 | C -> 1.0

let mix_name = function A -> "A" | B -> "B" | C -> "C"

let mix_of_string s =
  match String.uppercase_ascii s with
  | "A" -> Some A
  | "B" -> Some B
  | "C" -> Some C
  | _ -> None

let dist_name = function Uniform -> "uniform" | Zipfian _ -> "zipfian"

type t = {
  keys : int;
  dist : dist;
  (* Zipfian precompute; zero for uniform. *)
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
}

let zeta n theta =
  let s = ref 0.0 in
  for i = 1 to n do
    s := !s +. (1.0 /. (float_of_int i ** theta))
  done;
  !s

let create ~dist ~keys =
  if keys < 1 then invalid_arg "Ycsb.create: keys must be >= 1";
  match dist with
  | Uniform -> { keys; dist; theta = 0.0; zetan = 0.0; alpha = 0.0; eta = 0.0 }
  | Zipfian theta ->
    if theta <= 0.0 || theta >= 1.0 then
      invalid_arg "Ycsb.create: zipfian theta must be in (0, 1)";
    if keys = 1 then
      { keys; dist; theta; zetan = 1.0; alpha = 0.0; eta = 0.0 }
    else begin
      let zetan = zeta keys theta in
      let alpha = 1.0 /. (1.0 -. theta) in
      let eta =
        (1.0 -. ((2.0 /. float_of_int keys) ** (1.0 -. theta)))
        /. (1.0 -. (zeta 2 theta /. zetan))
      in
      { keys; dist; theta; zetan; alpha; eta }
    end

let keys t = t.keys

let dist t = t.dist

let next_key t rng =
  match t.dist with
  | Uniform -> Rng.int rng ~bound:t.keys
  | Zipfian _ ->
    if t.keys = 1 then 0
    else begin
      let u = Rng.float rng ~bound:1.0 in
      let uz = u *. t.zetan in
      if uz < 1.0 then 0
      else if uz < 1.0 +. (0.5 ** t.theta) then 1
      else begin
        let rank =
          int_of_float
            (float_of_int t.keys
            *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha))
        in
        (* Floating-point edges can land exactly on [keys]; clamp. *)
        min (t.keys - 1) (max 0 rank)
      end
    end

let next_op mix rng =
  if Rng.float rng ~bound:1.0 < read_fraction mix then `Read else `Write

(* YCSB-style record names; fixed width keeps them sortable and the
   placement hash input uncorrelated with rank. *)
let key_name i = Printf.sprintf "user%08d" i
