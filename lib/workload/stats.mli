(** Latency statistics over histories.

    Operation latency is response time minus invocation time on the
    simulator's virtual clock; under a given latency model this directly
    reflects round-trip counts, which is the paper's cost measure
    ("the latency of read and write operations is mainly decided by the
    number of round-trips"). *)

open Histories

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val empty : summary

val of_latencies : float list -> summary

val read_latencies : History.t -> float list
(** Latencies of completed reads. *)

val write_latencies : History.t -> float list

val reads : History.t -> summary
val writes : History.t -> summary

val pp_summary : Format.formatter -> summary -> unit

(** Constant-memory latency histogram: 64 log-scaled bins per decade
    over [1e-7s, 1e3s) plus underflow/overflow, so a million-op soak
    holds ~5KB per series instead of a million-entry list.  Count,
    sum (hence mean), min and max are exact; percentiles are read off
    the covering bin's geometric midpoint, within 10^(1/128) - 1
    (< 1.9%) relative error of the true order statistic, using the
    same rank convention as {!of_latencies}. *)
module Hist : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int

  val merge : into:t -> t -> unit
  (** Fold [src] into [into] — how per-thread histograms aggregate
      after the client threads join. *)

  val summary : t -> summary
end
