(** Violation hunting.

    Possibility results are ∀-schedule statements (checked by sampling
    and by {!Exhaustive} sweeps); impossibility results are ∃-schedule
    statements — *some* execution breaks every implementation at that
    design point.  The hunter searches for that execution: it iterates
    schedule shapes (benign, random within-budget skips, crashes, the
    writer-inversion pattern, the certificate-starvation attack) across
    seeds until the checker produces a witness or the budget runs out.

    A [None] answer is evidence, not proof, of possibility; a [Some]
    answer is a replayable counterexample (shape + seed are enough to
    reproduce it deterministically). *)

open Protocol

type shape = Benign | Skips | Crash | Inversion | Starvation

val shape_to_string : shape -> string
val all_shapes : shape list

type found = {
  shape : shape;
  seed : int;
  runs_tried : int;
  witness : Checker.Witness.t;
  mwa_failure : string option;
}

val run_shape :
  register:Register_intf.t ->
  s:int ->
  t:int ->
  w:int ->
  r:int ->
  seed:int ->
  shape ->
  (Checker.Witness.t option * string option)
(** One run: the atomicity witness (if violated) and the first MWA
    property violated (if any). *)

val hunt :
  ?shapes:shape list ->
  ?seeds_per_shape:int ->
  ?pool:Parallel.Pool.t ->
  register:Register_intf.t ->
  s:int ->
  t:int ->
  w:int ->
  r:int ->
  unit ->
  (found option * int)
(** Search; returns the first find and the total runs executed.  With
    [pool] the shape × seed sweep fans out over domains; the reported
    find (shape, seed, [runs_tried]) is the one the sequential hunt
    would report.  A parallel hunt that finds a witness executes the
    whole budget instead of stopping early, so the run count returned on
    success equals [runs_tried] (as in the sequential case), not the
    work performed. *)

val pp_found : Format.formatter -> found -> unit
