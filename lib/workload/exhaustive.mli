(** Exhaustive small-world exploration.

    The property tests sample the schedule space; this module *sweeps* it
    for tiny configurations: one operation per client, operations issued
    sequentially in every possible client order, and for every round of
    every operation, every choice of a single server whose messages for
    that round are withheld (the paper's "skip", within the [t = 1]
    budget — plus the no-skip choice).  Under constant unit latency each
    round occupies a known time window, so the skip pattern is realized
    exactly by a time-windowed route filter.

    For an (S, W, R) world this is [(W+R)! · (S+1)^(2·(W+R))] runs, so it
    is meant for S = 3, W = 2, R ∈ {1, 2}; a [max_runs] cap makes larger
    worlds a prefix sweep (reported as such).  The value of the sweep is
    its verdict's universality: "atomic in *all* 41 472 small-world
    schedules" is a model-checking-grade statement, and a found violation
    comes with the exact order + skip pattern that triggers it. *)

open Protocol

type violation = {
  order : int list;        (** Client slots: op index → position. *)
  skips : (int * int) list; (** (round-slot, skipped server) pairs. *)
  witness : Checker.Witness.t;
}

type outcome = {
  runs : int;
  exhaustive : bool;       (** False when [max_runs] truncated the sweep. *)
  violations : int;
  first : violation option;
}

val explore :
  ?max_runs:int ->
  ?pool:Parallel.Pool.t ->
  register:Register_intf.t ->
  s:int ->
  w:int ->
  r:int ->
  unit ->
  outcome
(** Sweep with [t = 1].  Default [max_runs] 100_000.  With [pool], client
    orders sweep on separate domains (each run builds its own engine and
    history); the outcome — including run count, first violation and the
    [max_runs] truncation point — is identical to the sequential sweep. *)

val pp_outcome : Format.formatter -> outcome -> unit
