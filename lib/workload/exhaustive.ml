open Protocol

type violation = {
  order : int list;
  skips : (int * int) list;
  witness : Checker.Witness.t;
}

type outcome = {
  runs : int;
  exhaustive : bool;
  violations : int;
  first : violation option;
}

(* Remove the pivot by position, not by value: [List.filter (<> x)]
   deletes every duplicate of [x] at once (losing permutations) and
   rescans the whole list per pivot. *)
let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat
      (List.mapi
         (fun i x ->
           let rest = List.filteri (fun j _ -> j <> i) xs in
           List.map (fun p -> x :: p) (permutations rest))
         xs)

let slot_duration = 100.0

(* One run: ops placed at their slots, the skip pattern realized by a
   time-windowed filter.  digits.(rs) = 0 for no skip, or 1 + server. *)
let run_one ~register ~s ~w ~r ~order ~digits =
  let env =
    Env.make ~seed:1 ~latency:(Simulation.Latency.constant 1.0) ~s ~t:1 ~w ~r ()
  in
  let topology = env.Env.topology in
  let n = w + r in
  let slot_of = Array.make n 0 in
  List.iteri (fun slot op -> slot_of.(op) <- slot) order;
  let node_of op =
    if op < w then Topology.writer_node topology op
    else Topology.reader_node topology (op - w)
  in
  let start_of op = float_of_int slot_of.(op) *. slot_duration in
  let plans =
    List.init n (fun op ->
        if op < w then Runtime.write_plan ~writer:op ~start_at:(start_of op) 1
        else Runtime.read_plan ~reader:(op - w) ~start_at:(start_of op) 1)
  in
  (* node -> op index, so the route filter is an array load rather than a
     linear scan per message. *)
  let op_of_node = Array.make (Topology.node_count topology) (-1) in
  for op = 0 to n - 1 do
    op_of_node.(node_of op) <- op
  done;
  let route ~src ~dst ~now =
    if not (Topology.is_server topology dst) then Simulation.Network.Deliver
    else begin
      (* Which op and round does this message belong to? *)
      let op = op_of_node.(src) in
      if op < 0 then Simulation.Network.Deliver
      else begin
        let start = start_of op in
        let round = if now < start +. 1.5 then 0 else 1 in
        let digit = digits.((op * 2) + round) in
        if digit = 1 + dst then Simulation.Network.Hold
        else Simulation.Network.Deliver
      end
    end
  in
  let adversary ctl _engine = ctl.Control.set_route (Some route) in
  let out = Runtime.run ~register ~env ~plans ~adversary () in
  Checker.Atomicity.check out.Runtime.history

let int_pow base e =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  go 1 e

(* Sweep the first [budget] digit combinations (in mixed-radix counting
   order, all zeros first) of one client order. *)
let sweep_order ~register ~s ~w ~r ~order ~budget =
  let n = w + r in
  let digit_count = 2 * n in
  let base = s + 1 in
  let digits = Array.make digit_count 0 in
  let violations = ref 0 in
  let first = ref None in
  for _ = 1 to budget do
    (match run_one ~register ~s ~w ~r ~order ~digits with
    | Ok () -> ()
    | Error witness ->
      incr violations;
      if !first = None then
        first :=
          Some
            {
              order;
              skips =
                Array.to_list digits
                |> List.mapi (fun rs d -> (rs, d - 1))
                |> List.filter (fun (_, srv) -> srv >= 0);
              witness;
            });
    (* Mixed-radix increment (wraps to all zeros after the last combo). *)
    let rec inc i =
      if i < digit_count then
        if digits.(i) + 1 < base then digits.(i) <- digits.(i) + 1
        else begin
          digits.(i) <- 0;
          inc (i + 1)
        end
    in
    inc 0
  done;
  (!violations, !first)

let explore ?(max_runs = 100_000) ?pool ~register ~s ~w ~r () =
  let n = w + r in
  let combos = int_pow (s + 1) (2 * n) in
  let orders = permutations (List.init n (fun i -> i)) in
  (* Sequentially, order k would consume runs [k*combos, (k+1)*combos),
     truncated at [max_runs]; slicing each order's budget up front keeps
     the parallel sweep's outcome (runs, violations, first witness,
     truncation) identical to the sequential one. *)
  let budgeted =
    List.mapi
      (fun k order ->
        let start = k * combos in
        let budget =
          if start >= max_runs then 0 else min combos (max_runs - start)
        in
        (order, budget))
      orders
  in
  let pool =
    match pool with Some p -> p | None -> Parallel.Pool.create ~domains:1 ()
  in
  let per_order =
    Parallel.Pool.map pool
      (fun (order, budget) ->
        if budget = 0 then (0, None)
        else sweep_order ~register ~s ~w ~r ~order ~budget)
      budgeted
  in
  let runs = List.fold_left (fun acc (_, b) -> acc + b) 0 budgeted in
  let violations = List.fold_left (fun acc (v, _) -> acc + v) 0 per_order in
  let first =
    List.find_map (fun (_, f) -> f) per_order
  in
  {
    runs;
    exhaustive = List.length orders * combos <= max_runs;
    violations;
    first;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "%d runs%s, %d violations%s" o.runs
    (if o.exhaustive then " (exhaustive)" else " (truncated)")
    o.violations
    (match o.first with
    | None -> ""
    | Some v ->
      Format.asprintf "; first: order [%s], skips [%s], %s"
        (String.concat ";" (List.map string_of_int v.order))
        (String.concat ";"
           (List.map (fun (rs, srv) -> Printf.sprintf "r%d->s%d" rs srv) v.skips))
        (Checker.Witness.short v.witness))
