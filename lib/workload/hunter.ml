open Protocol

type shape = Benign | Skips | Crash | Inversion | Starvation

let shape_to_string = function
  | Benign -> "benign"
  | Skips -> "skips"
  | Crash -> "crash"
  | Inversion -> "inversion"
  | Starvation -> "starvation"

let all_shapes = [ Benign; Skips; Crash; Inversion; Starvation ]

type found = {
  shape : shape;
  seed : int;
  runs_tried : int;
  witness : Checker.Witness.t;
  mwa_failure : string option;
}

let mixed_plans ~w ~r ~ops =
  List.init w (fun i ->
      Runtime.write_plan ~writer:i
        ~start_at:(float_of_int (3 * i))
        ~think:(10.0 +. float_of_int (7 * i))
        ops)
  @ List.init r (fun i ->
        Runtime.read_plan ~reader:i
          ~start_at:(1.0 +. float_of_int i)
          ~think:(8.0 +. float_of_int (5 * i))
          (2 * ops))

let run_shape ~register ~s ~t ~w ~r ~seed shape =
  match shape with
  | Starvation ->
    let v = Threshold.attack ~register ~s ~t ~r in
    ( (match v.Threshold.witness with
      | None -> None
      | Some _ ->
        (* Re-derive the full witness for the report. *)
        let env =
          Env.make ~seed:1 ~latency:(Simulation.Latency.constant 1.0) ~s ~t
            ~w:2 ~r ()
        in
        let topology = env.Env.topology in
        let out =
          Runtime.run ~register ~env
            ~plans:(Adversary.threshold_plans ~topology)
            ~adversary:
              (Adversary.apply (Adversary.certificate_starvation ~topology ~t ()))
            ()
        in
        (match Checker.Atomicity.check out.Runtime.history with
        | Ok () -> None
        | Error wit -> Some wit)),
      v.Threshold.mwa_failure )
  | (Benign | Skips | Crash | Inversion) as shape ->
    let latency =
      match seed mod 3 with
      | 0 -> Simulation.Latency.constant 2.0
      | 1 -> Simulation.Latency.uniform ~lo:1.0 ~hi:10.0
      | _ -> Simulation.Latency.exponential ~mean:4.0
    in
    let env = Env.make ~seed ~latency ~s ~t ~w ~r () in
    let topology = env.Env.topology in
    let adversary =
      match shape with
      | Benign | Inversion | Starvation -> Adversary.none
      | Skips -> Adversary.random_skips ~seed ~topology ~t_budget:t ~window:30.0
      | Crash -> Adversary.crash_random ~seed ~t ~at:20.0 ~s
    in
    let plans =
      match shape with
      | Inversion ->
        [
          Runtime.write_plan ~writer:(w - 1) ~start_at:0.0 1;
          Runtime.write_plan ~writer:0 ~start_at:100.0 1;
          Runtime.read_plan ~reader:0 ~start_at:200.0 1;
        ]
      | Benign | Skips | Crash | Starvation -> mixed_plans ~w ~r ~ops:3
    in
    let out =
      Runtime.run ~register ~env ~plans ~adversary:(Adversary.apply adversary) ()
    in
    let witness =
      match Checker.Atomicity.check out.Runtime.history with
      | Ok () -> None
      | Error wit -> Some wit
    in
    let mwa =
      match
        Checker.Mw_properties.failures
          (Checker.Mw_properties.check out.Runtime.tagged)
      with
      | [] -> None
      | (name, _) :: _ -> Some name
    in
    (witness, mwa)

let hunt ?(shapes = all_shapes) ?(seeds_per_shape = 50) ?pool ~register ~s ~t
    ~w ~r () =
  match pool with
  | None ->
    (* Sequential hunt stops at the first witness. *)
    let runs = ref 0 in
    let result = ref None in
    (try
       List.iter
         (fun shape ->
           let seeds =
             if shape = Starvation || shape = Inversion then 1
             else seeds_per_shape
           in
           for seed = 1 to seeds do
             incr runs;
             match run_shape ~register ~s ~t ~w ~r ~seed shape with
             | Some witness, mwa_failure ->
               result :=
                 Some { shape; seed; runs_tried = !runs; witness; mwa_failure };
               raise Exit
             | None, _ -> ()
           done)
         shapes
     with Exit -> ());
    (!result, !runs)
  | Some pool ->
    (* Parallel hunt: every (shape, seed) run is independent, so fan the
       whole budget out and report the find with the smallest index in
       the sequential visit order — same witness, same [runs_tried], as
       if the sequential hunt had stopped there. *)
    let tasks =
      List.concat_map
        (fun shape ->
          let seeds =
            if shape = Starvation || shape = Inversion then 1
            else seeds_per_shape
          in
          List.init seeds (fun i -> (shape, i + 1)))
        shapes
    in
    let outcomes =
      Parallel.Pool.map pool
        (fun (shape, seed) -> run_shape ~register ~s ~t ~w ~r ~seed shape)
        tasks
    in
    let rec first idx tasks outcomes =
      match (tasks, outcomes) with
      | [], _ | _, [] -> (None, idx)
      | (shape, seed) :: _, (Some witness, mwa_failure) :: _ ->
        (Some { shape; seed; runs_tried = idx + 1; witness; mwa_failure }, idx + 1)
      | _ :: tasks, (None, _) :: outcomes -> first (idx + 1) tasks outcomes
    in
    first 0 tasks outcomes

let pp_found ppf f =
  Format.fprintf ppf
    "@[<v2>violation found (shape %s, seed %d, after %d runs%s):@,%a@]"
    (shape_to_string f.shape) f.seed f.runs_tried
    (match f.mwa_failure with None -> "" | Some m -> ", " ^ m)
    Checker.Witness.pp f.witness
