(* mwlint: the repo's AST-driven concurrency & I/O-discipline lint.

     mwlint [--baseline FILE] [--fail-stale] [--rules]
            [--format text|json] [--lock-map FILE] DIR_OR_FILE...

   Parses every .ml under the given roots (default: lib bin bench test
   examples) into a Parsetree, runs the rule engine (see
   lib/analysis/RULES.md), subtracts the checked-in baseline, and exits
   non-zero on any new finding.  With [--fail-stale], a baseline entry
   that no longer matches any finding is an error rather than a
   warning — CI uses it to force the suppression file to shrink as debt
   is paid off.  [--format json] prints one finding object per line
   (rule, severity, file, line, col, message) for annotation tooling;
   [--lock-map FILE] writes the inferred lock -> guarded-cells table
   ("-" for stdout).  Exit codes: 0 clean, 1 new findings (or stale
   entries under [--fail-stale]), 2 usage / parse / baseline errors. *)

let usage =
  "mwlint [--baseline FILE] [--fail-stale] [--rules] [--format text|json] \
   [--lock-map FILE] [DIR_OR_FILE...]"

let () =
  let baseline_path = ref "" in
  let fail_stale = ref false in
  let list_rules = ref false in
  let format = ref "text" in
  let lock_map_path = ref "" in
  let roots = ref [] in
  Arg.parse
    [
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE checked-in suppression file (RULE file:line:col justification)"
      );
      ( "--fail-stale",
        Arg.Set fail_stale,
        " treat stale baseline entries as errors (exit 1)" );
      ("--rules", Arg.Set list_rules, " list the rule catalog and exit");
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " output format: text (default) or json (one object per line)" );
      ( "--lock-map",
        Arg.Set_string lock_map_path,
        "FILE write the inferred lock -> guarded-cells map (- for stdout)"
      );
    ]
    (fun root -> roots := root :: !roots)
    usage;
  if !list_rules then begin
    List.iter
      (fun (name, sev, descr) ->
        Printf.printf "%-22s %-8s %s\n" name
          (Analysis.Finding.severity_to_string sev)
          descr)
      Analysis.Rules.all_rules;
    exit 0
  end;
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test"; "examples" ]
    | rs -> rs
  in
  let files = Analysis.Source.find_ml_files ~roots in
  if files = [] then begin
    Printf.eprintf "mwlint: no .ml files under: %s\n" (String.concat " " roots);
    exit 2
  end;
  let sources =
    List.map
      (fun path ->
        try Analysis.Source.parse_file path
        with Analysis.Source.Parse_error msg ->
          Printf.eprintf "mwlint: parse error:\n%s\n" msg;
          exit 2)
      files
  in
  let result = Analysis.Engine.run sources in
  let findings = result.Analysis.Engine.findings in
  (match !lock_map_path with
  | "" -> ()
  | "-" -> print_string result.Analysis.Engine.lock_map
  | path ->
    let oc = open_out path in
    output_string oc result.Analysis.Engine.lock_map;
    close_out oc);
  let entries =
    if !baseline_path = "" then []
    else
      match Analysis.Baseline.load !baseline_path with
      | Ok entries -> entries
      | Error msg ->
        Printf.eprintf "mwlint: bad baseline %s: %s\n" !baseline_path msg;
        exit 2
  in
  List.iter
    (fun e ->
      if e.Analysis.Baseline.col = None then
        Printf.eprintf
          "mwlint: note: baseline entry %s %s:%d uses the deprecated \
           column-less format — add the column (RULE file:line:col why); \
           support for the old format will be removed next release\n"
          e.Analysis.Baseline.rule e.Analysis.Baseline.file
          e.Analysis.Baseline.line)
    entries;
  let fresh, stale = Analysis.Baseline.apply ~entries findings in
  List.iter
    (fun e ->
      Printf.eprintf
        "mwlint: %s: stale baseline entry %s %s:%d (no such finding \
         anymore — delete it)\n"
        (if !fail_stale then "error" else "warning")
        e.Analysis.Baseline.rule e.Analysis.Baseline.file
        e.Analysis.Baseline.line)
    stale;
  (match !format with
  | "json" ->
    List.iter (fun f -> print_endline (Analysis.Finding.to_json f)) fresh
  | _ ->
    List.iter (fun f -> print_endline (Analysis.Finding.to_string f)) fresh);
  let suppressed = List.length findings - List.length fresh in
  if !format <> "json" then
    Printf.printf "mwlint: %d file(s), %d finding(s), %d suppressed\n"
      (List.length files) (List.length fresh) suppressed;
  if fresh <> [] || (!fail_stale && stale <> []) then exit 1
