(* mwreg — command-line front end for the multi-writer atomic register
   library.

     mwreg sim --protocol w2r1 -s 5 -t 1 -w 2 -r 2 --seed 7
     mwreg threshold -s 6 -t 1 --r-max 6
     mwreg impossibility --strategy majority-last -s 4
     mwreg sieve -s 8 --flip 1 --flip 5
     mwreg table1 *)

open Cmdliner
open Mwregister

(* ------------------------------------------------------------------ *)
(* Common arguments                                                     *)
(* ------------------------------------------------------------------ *)

let s_arg =
  Arg.(value & opt int 5 & info [ "s"; "servers" ] ~docv:"S" ~doc:"Number of servers.")

let t_arg =
  Arg.(value & opt int 1 & info [ "t"; "tolerance" ] ~docv:"T" ~doc:"Crash tolerance.")

let w_arg =
  Arg.(value & opt int 2 & info [ "w"; "writers" ] ~docv:"W" ~doc:"Number of writers.")

let r_arg =
  Arg.(value & opt int 2 & info [ "r"; "readers" ] ~docv:"R" ~doc:"Number of readers.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic RNG seed.")

let domains_arg =
  let doc =
    "Domains for parallel sweeps (results are identical at any count); 0 \
     means the MWREG_DOMAINS environment variable if set, else the \
     recommended domain count."
  in
  Arg.(value & opt int 0 & info [ "domains" ] ~docv:"N" ~doc)

let pool_of_domains n =
  if n >= 1 then Pool.create ~domains:n () else Pool.create ()

let protocol_arg =
  let doc =
    "Register protocol: substring match against the registry (w2r2/ls97, \
     w2r1/huang, swmr/abd, dglv, naive)."
  in
  Arg.(value & opt string "w2r1" & info [ "protocol"; "p" ] ~docv:"NAME" ~doc)

(* Name resolution (including the w2r2/w2r1/... aliases) lives entirely
   in the registry. *)
let find_protocol = Registry.find

(* ------------------------------------------------------------------ *)
(* sim                                                                  *)
(* ------------------------------------------------------------------ *)

let adversary_of_kind kind ~topology ~t ~seed =
  match kind with
  | "none" -> Ok Adversary.none
  | "skips" ->
    Ok (Adversary.random_skips ~seed ~topology ~t_budget:t ~window:30.0)
  | "crash" ->
    Ok (Adversary.crash_random ~seed ~t ~at:20.0 ~s:topology.Topology.servers)
  | other -> Error (Printf.sprintf "unknown adversary %S (none|skips|crash)" other)

let sim protocol s t w r seed ops adversary_kind =
  match find_protocol protocol with
  | None ->
    Printf.eprintf "unknown protocol %S\n" protocol;
    exit 1
  | Some register ->
    let topology = Topology.make ~servers:s ~writers:w ~readers:r in
    (match adversary_of_kind adversary_kind ~topology ~t ~seed with
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
    | Ok adversary ->
      let plans =
        List.init w (fun i ->
            Runtime.write_plan ~writer:i
              ~start_at:(float_of_int (3 * i))
              ~think:(10.0 +. float_of_int (7 * i))
              ops)
        @ List.init r (fun i ->
              Runtime.read_plan ~reader:i
                ~start_at:(1.0 +. float_of_int i)
                ~think:(8.0 +. float_of_int (5 * i))
                (2 * ops))
      in
      let v =
        run_and_check ~seed ~register ~s ~t ~w ~r
          ~adversary:(Adversary.apply adversary) plans
      in
      Format.printf "protocol    : %s@." (Registry.name register);
      Format.printf "config      : S=%d t=%d W=%d R=%d seed=%d@." s t w r seed;
      Format.printf "@[<v>%a@]@." History.pp v.outcome.Runtime.history;
      Format.printf "consistency : %a@." Consistency.pp_level v.consistency;
      (match v.atomicity_witness with
      | None -> ()
      | Some wit -> Format.printf "witness     : %a@." Witness.pp wit);
      Format.printf "MWA0-4      : %s@."
        (match v.mwa_failures with
        | [] -> "all hold"
        | fs -> String.concat ", " (List.map fst fs));
      Format.printf "wait-free   : %b@." v.wait_free;
      Format.printf "reads       : %a@." Stats.pp_summary
        (Stats.reads v.outcome.Runtime.history);
      Format.printf "writes      : %a@." Stats.pp_summary
        (Stats.writes v.outcome.Runtime.history);
      if v.consistency <> Consistency.Atomic then exit 2)

let sim_cmd =
  let ops =
    Arg.(value & opt int 3 & info [ "ops" ] ~docv:"N" ~doc:"Writes per writer.")
  in
  let adversary =
    Arg.(value & opt string "none"
         & info [ "adversary" ] ~docv:"KIND" ~doc:"none, skips or crash.")
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Run a register protocol on the simulator and check it.")
    Term.(const sim $ protocol_arg $ s_arg $ t_arg $ w_arg $ r_arg $ seed_arg
          $ ops $ adversary)

(* ------------------------------------------------------------------ *)
(* threshold                                                            *)
(* ------------------------------------------------------------------ *)

let threshold s t r_max =
  Printf.printf "fast-read threshold: R < S/t - 2 = %.2f (max safe R = %d)\n\n"
    ((float_of_int s /. float_of_int t) -. 2.0)
    (Bounds.fast_read_threshold ~s ~t);
  List.iter
    (fun v ->
      Format.printf "%a %s@." Threshold.pp_verdict v
        (if Threshold.boundary_matches v then "" else "  <-- MISMATCH"))
    (Threshold.sweep ~register:Registry.fastread_w2r1 ~s ~t ~r_max)

let threshold_cmd =
  let r_max =
    Arg.(value & opt int 6 & info [ "r-max" ] ~docv:"R" ~doc:"Largest reader count.")
  in
  Cmd.v
    (Cmd.info "threshold"
       ~doc:"Sweep reader counts across the fast-read possibility boundary (Fig. 9).")
    Term.(const threshold $ s_arg $ t_arg $ r_max)

(* ------------------------------------------------------------------ *)
(* impossibility                                                        *)
(* ------------------------------------------------------------------ *)

let impossibility strategy_name s seed explain =
  let open Impossible in
  let strategy =
    match strategy_name with
    | "seeded" -> Strategy.seeded seed
    | "wild" -> Strategy.seeded_wild seed
    | name -> (
      match
        List.find_opt (fun st -> st.Strategy.name = name) Strategy.natural
      with
      | Some st -> st
      | None ->
        Printf.eprintf "unknown strategy %S; available: %s, seeded, wild\n" name
          (String.concat ", "
             (List.map (fun st -> st.Strategy.name) Strategy.natural));
        exit 1)
  in
  if explain then print_string (Report.explain ~s strategy)
  else begin
    Printf.printf "strategy: %s, S=%d\n\n" strategy.Strategy.name s;
    let finding, stats = W1r2_theorem.run ~s strategy in
    Format.printf "%a@." W1r2_theorem.pp_finding finding;
    Printf.printf "\ncritical server i1: %s, links verified: %d (failed %d)\n"
      (match stats.W1r2_theorem.i1 with Some i -> string_of_int i | None -> "-")
      stats.W1r2_theorem.links_checked stats.W1r2_theorem.links_failed
  end;
  let finding, _ = W1r2_theorem.run ~s strategy in
  if not (W1r2_theorem.found_violation finding) then exit 2

let impossibility_cmd =
  let strategy =
    Arg.(value & opt string "majority-last"
         & info [ "strategy" ] ~docv:"NAME"
             ~doc:"A natural strategy name, or 'seeded'/'wild' (with --seed).")
  in
  Cmd.v
    (Cmd.info "impossibility"
       ~doc:"Run the Theorem 1 chain argument against a fast-write strategy.")
    Term.(const impossibility $ strategy
          $ Arg.(value & opt int 4 & info [ "s" ])
          $ seed_arg
          $ Arg.(value & flag & info [ "explain" ]
                 ~doc:"Narrate the whole three-phase walk."))

(* ------------------------------------------------------------------ *)
(* sieve                                                                *)
(* ------------------------------------------------------------------ *)

let sieve s flips =
  let open Impossible in
  match
    Sieve.run ~s ~effect:(Sieve.flip_servers flips) (Sieve.crucial_of_last_digits ())
  with
  | Sieve.Critical { sigma1; sigma2; i1; returns } ->
    Printf.printf "S1 (eliminated) = {%s}\nS2 (kept)       = {%s}\n"
      (String.concat ", " (List.map string_of_int sigma1))
      (String.concat ", " (List.map string_of_int sigma2));
    Printf.printf "returns along shortened chain: %s\n"
      (String.concat " "
         (Array.to_list (Array.map string_of_int returns)));
    Printf.printf "critical flip at position %d within S2\n" i1
  | Sieve.Too_few_unaffected { sigma2; _ } ->
    Printf.printf
      "only %d unaffected servers remain (< 3): no correct implementation can \
       behave like this\n"
      (List.length sigma2)
  | Sieve.Anchor_violation { expected; got; at } ->
    Printf.printf "anchor violation at %s: expected %d, got %d\n" at expected got

let sieve_cmd =
  let flips =
    Arg.(value & opt_all int [] & info [ "flip" ] ~docv:"SRV" ~doc:"Server whose crucial info the blind first round flips (repeatable).")
  in
  Cmd.v
    (Cmd.info "sieve" ~doc:"Run the sieve construction of §4.2 (Fig. 8).")
    Term.(const sieve $ Arg.(value & opt int 6 & info [ "s" ]) $ flips)

(* ------------------------------------------------------------------ *)
(* table1                                                               *)
(* ------------------------------------------------------------------ *)

let table1 s t w r =
  Printf.printf "Table 1 verdicts for S=%d t=%d W=%d R=%d:\n\n" s t w r;
  List.iter
    (fun p ->
      Printf.printf "  %-5s: %s\n"
        (Bounds.design_point_to_string p)
        (if Bounds.possible p ~s ~t ~w ~r then "possible" else "impossible"))
    Bounds.all_design_points

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Evaluate the paper's Table 1 predicates for a config.")
    Term.(const table1 $ s_arg $ t_arg $ w_arg $ r_arg)

(* ------------------------------------------------------------------ *)
(* record / check                                                       *)
(* ------------------------------------------------------------------ *)

let record protocol s t w r seed ops path =
  match find_protocol protocol with
  | None ->
    Printf.eprintf "unknown protocol %S\n" protocol;
    exit 1
  | Some register ->
    let spec =
      {
        Generator.default with
        Generator.writers = w;
        readers = r;
        writes_per_writer = ops;
        reads_per_reader = 2 * ops;
        seed;
      }
    in
    let env = Env.make ~seed ~s ~t ~w ~r () in
    let out = Runtime.run ~register ~env ~plans:(Generator.plans spec) () in
    Serial.to_file out.Runtime.history ~path;
    Printf.printf "recorded %d operations to %s\n"
      (History.length out.Runtime.history) path

let check_file path k =
  match Serial.of_file ~path with
  | Error msg ->
    Printf.eprintf "cannot parse %s: %s\n" path msg;
    exit 1
  | Ok h ->
    (match History.well_formed h with
    | Error msg ->
      Printf.printf "ill-formed: %s\n" msg;
      exit 2
    | Ok () -> ());
    Format.printf "operations   : %d@." (History.length h);
    Format.printf "consistency  : %a@." Consistency.pp_level (Consistency.classify h);
    (match Atomicity.check h with
    | Ok () -> (
      match Atomicity.linearization h with
      | Some order ->
        Format.printf "linearization:@.";
        List.iter (fun o -> Format.printf "  %a@." Op.pp o) order
      | None -> ())
    | Error wit -> Format.printf "witness      : %a@." Witness.pp wit);
    Format.printf "staleness    : max %d, stale fraction %.2f@."
      (Staleness.max_staleness h) (Staleness.stale_fraction h);
    Format.printf "%d-atomic for k = %d@."
      (Staleness.max_staleness h + 1)
      (Staleness.max_staleness h);
    if k >= 0 then
      Format.printf "bounded by k=%d: %b@." k (Staleness.bounded_by h ~k);
    if not (Atomicity.is_atomic h) then exit 2

let record_cmd =
  let ops = Arg.(value & opt int 3 & info [ "ops" ] ~docv:"N") in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Output history file.")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Run a workload and write the history to a file.")
    Term.(const record $ protocol_arg $ s_arg $ t_arg $ w_arg $ r_arg $ seed_arg
          $ ops $ path)

let check_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"History file to check.")
  in
  let k =
    Arg.(value & opt int (-1) & info [ "k" ] ~docv:"K"
         ~doc:"Also report whether staleness is bounded by K.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check a recorded history: atomicity (with linearization or \
             witness), consistency level, staleness.")
    Term.(const check_file $ path $ k)

(* ------------------------------------------------------------------ *)
(* exhaustive                                                           *)
(* ------------------------------------------------------------------ *)

let exhaustive protocol s w r max_runs domains =
  match find_protocol protocol with
  | None ->
    Printf.eprintf "unknown protocol %S\n" protocol;
    exit 1
  | Some register ->
    let pool = pool_of_domains domains in
    let o = Exhaustive.explore ~max_runs ~pool ~register ~s ~w ~r () in
    Format.printf "%s, S=%d t=1 W=%d R=%d: %a@." (Registry.name register) s w r
      Exhaustive.pp_outcome o;
    if o.Exhaustive.violations > 0 then exit 2

let exhaustive_cmd =
  let max_runs =
    Arg.(value & opt int 100_000 & info [ "max-runs" ] ~docv:"N")
  in
  Cmd.v
    (Cmd.info "exhaustive"
       ~doc:"Sweep every sequential small-world schedule (orders x per-round \
             skips) for a tiny configuration.")
    Term.(const exhaustive $ protocol_arg
          $ Arg.(value & opt int 3 & info [ "s"; "servers" ])
          $ Arg.(value & opt int 2 & info [ "w"; "writers" ])
          $ Arg.(value & opt int 1 & info [ "r"; "readers" ])
          $ max_runs $ domains_arg)

(* ------------------------------------------------------------------ *)
(* hunt                                                                 *)
(* ------------------------------------------------------------------ *)

let hunt protocol s t w r budget domains =
  match find_protocol protocol with
  | None ->
    Printf.eprintf "unknown protocol %S\n" protocol;
    exit 1
  | Some register ->
    Printf.printf "hunting for an atomicity violation of %s at S=%d t=%d W=%d R=%d...\n"
      (Registry.name register) s t w r;
    let pool = pool_of_domains domains in
    let found, runs =
      if Pool.domains pool > 1 then
        Hunter.hunt ~seeds_per_shape:budget ~pool ~register ~s ~t ~w ~r ()
      else Hunter.hunt ~seeds_per_shape:budget ~register ~s ~t ~w ~r ()
    in
    (match found with
    | Some f ->
      Format.printf "%a@." Hunter.pp_found f;
      exit 2
    | None ->
      Printf.printf
        "no violation in %d runs across %d schedule shapes (evidence of \
         possibility, not proof)\n"
        runs
        (List.length Hunter.all_shapes))

let hunt_cmd =
  let budget =
    Arg.(value & opt int 50 & info [ "budget" ] ~docv:"N"
         ~doc:"Seeds per schedule shape.")
  in
  Cmd.v
    (Cmd.info "hunt"
       ~doc:"Search adversarial schedules for an atomicity violation of a \
             protocol at a configuration.")
    Term.(const hunt $ protocol_arg $ s_arg $ t_arg $ w_arg $ r_arg $ budget
          $ domains_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                                *)
(* ------------------------------------------------------------------ *)

let serve host port id shards =
  if shards < 1 then begin
    Printf.eprintf "mwreg serve: --domains must be >= 1\n";
    exit 2
  end;
  let replica = Registers.Replica.create () in
  let server = Live.Server.start ~host ~port ~id ~shards ~replica () in
  Printf.printf "mwreg server %d listening on %s:%d (%d reactor shard%s)\n%!"
    id host (Live.Server.port server) shards
    (if shards = 1 then "" else "s");
  (* Serve until the process is killed — which is exactly how clients
     are meant to lose this server. *)
  while true do
    Thread.delay 3600.0
  done

let serve_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")
  in
  let port =
    Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT"
         ~doc:"Port to bind (0 picks an ephemeral port, printed on start).")
  in
  let id =
    Arg.(value & opt int 0 & info [ "id" ] ~docv:"I"
         ~doc:"This server's index in the cluster (0-based).")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Reactor event-loop shards: 1 runs the whole reactor on a \
                   single thread; N > 1 spawns one domain per shard, each \
                   owning a disjoint set of accepted connections.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run one register server daemon over TCP (kill the process to \
             crash it).")
    Term.(const serve $ host $ port $ id $ shards)

(* ------------------------------------------------------------------ *)
(* live                                                                 *)
(* ------------------------------------------------------------------ *)

let parse_hostport spec =
  match String.rindex_opt spec ':' with
  | None -> Error (Printf.sprintf "bad address %S (want HOST:PORT)" spec)
  | Some i -> (
    let host = String.sub spec 0 i in
    match
      ( (try Some (Unix.inet_addr_of_string host) with Failure _ -> None),
        int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
      )
    with
    | Some addr, Some port -> Ok (Unix.ADDR_INET (addr, port))
    | None, _ -> Error (Printf.sprintf "bad host in %S" spec)
    | _, None -> Error (Printf.sprintf "bad port in %S" spec))

let parse_kill spec =
  match String.index_opt spec '@' with
  | None -> Error (Printf.sprintf "bad kill spec %S (want IDX@SEC)" spec)
  | Some i -> (
    match
      ( int_of_string_opt (String.sub spec 0 i),
        float_of_string_opt
          (String.sub spec (i + 1) (String.length spec - i - 1)) )
    with
    | Some idx, Some at -> Ok (at, idx)
    | _ -> Error (Printf.sprintf "bad kill spec %S (want IDX@SEC)" spec))

let pp_ms ppf (st : Stats.summary) =
  Format.fprintf ppf
    "n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f (ms)" st.Stats.count
    (1e3 *. st.Stats.mean) (1e3 *. st.Stats.p50) (1e3 *. st.Stats.p95)
    (1e3 *. st.Stats.p99) (1e3 *. st.Stats.max)

(* --check live|batch|off, shared by live / kv / chaos. *)
let parse_check_mode = function
  | "batch" -> Ok `Batch
  | "live" -> Ok `Live
  | "off" -> Ok `Off
  | other ->
    Error (Printf.sprintf "unknown check mode %S (live|batch|off)" other)

let check_mode_arg =
  Arg.(value & opt string "batch"
       & info [ "check" ] ~docv:"MODE"
           ~doc:"Atomicity checking: $(b,batch) checks the recorded \
                 history after the run (the default), $(b,live) streams \
                 every completed operation through the online checker \
                 while the run is in flight — O(window) memory, \
                 violations reported the moment a verdict turns — and \
                 $(b,off) disables checking.")

(* --geo PROFILE, shared by live / kv. *)
let geo_arg =
  Arg.(value & opt (some string) None
       & info [ "geo" ] ~docv:"PROFILE"
           ~doc:"Shape every client<->server link with the named WAN/geo \
                 profile (see $(b,mwreg geo --list)): per-region-pair base \
                 delay plus jitter on both legs, compiled from the same \
                 matrices as the simulator's latency model for that \
                 profile.  The round-trip timeout is raised to cover the \
                 profile's worst RTT when needed.")

(* Mid-run hook: a verdict turning is worth a line the moment it
   happens, not minutes later when the run drains. *)
let announce_violation key w =
  Format.printf "live check  : key %s VIOLATED mid-run: %a@." key Witness.pp w

(* Prints the streaming checker's report; returns whether every key
   stayed atomic. *)
let report_online (r : Live.Check_sink.report) =
  Format.printf
    "live check  : %d op(s) over %d key(s); peak window %d resident op(s)@."
    r.Live.Check_sink.checked r.Live.Check_sink.keys
    r.Live.Check_sink.peak_window;
  Format.printf
    "              %.0f ops/s through the checker (%.3fs busy, %d batches)@."
    r.Live.Check_sink.checker_ops_per_sec r.Live.Check_sink.busy
    r.Live.Check_sink.batches;
  List.iter
    (fun (key, w) ->
      Format.printf "  key %-12s VIOLATED %a@." key Witness.pp w)
    r.Live.Check_sink.violations;
  Live.Check_sink.atomic r

(* One protocol against one (fresh or attached) cluster.  Returns true
   when the recorded history is atomic. *)
let live_one ?faults ?max_rt_retries ~register ~cluster ~spec ~kill_at
    ~transport ~rt_timeout ~check () =
  let res =
    Live.Session.run ?faults ?max_rt_retries ~kill_at ~transport ~rt_timeout
      ~live_check:(check = `Live) ~on_violation:announce_violation ~register
      ~cluster spec
  in
  let h = res.Live.Session.history in
  let ops = History.length h in
  Format.printf "protocol    : %s@." (Registry.name register);
  Format.printf "cluster     : %s S=%d t=%d (quorum %d), %s transport@."
    (if Live.Cluster.local cluster then "loopback" else "remote")
    (Live.Cluster.s cluster)
    (Live.Cluster.tolerance cluster)
    (Live.Cluster.quorum cluster)
    (match transport with `Mux -> "mux" | `Sockets -> "per-client-socket");
  Format.printf "ops         : %d in %.3fs (%.0f ops/s)@." ops
    res.Live.Session.duration
    (float_of_int ops /. res.Live.Session.duration);
  Format.printf "round trips : write %.2f/op, read %.2f/op, late replies %d@."
    res.Live.Session.write_rounds res.Live.Session.read_rounds
    res.Live.Session.late;
  Format.printf "writes      : %a@." pp_ms (Stats.writes h);
  Format.printf "reads       : %a@." pp_ms (Stats.reads h);
  if res.Live.Session.killed <> [] then
    Format.printf "killed      : %s@."
      (String.concat ", " (List.map string_of_int res.Live.Session.killed));
  if res.Live.Session.unavailable > 0 then
    Format.printf "starved     : %d client(s) gave up without a quorum@."
      res.Live.Session.unavailable;
  let ok =
    match (check, res.Live.Session.online) with
    | `Off, _ ->
      Format.printf "atomicity   : not checked (--check off)@.";
      true
    | `Live, Some r ->
      let ok = report_online r in
      Format.printf "atomicity   : %s (streaming verdict)@."
        (if ok then "OK" else "VIOLATED");
      ok
    | `Live, None -> true (* unreachable: live_check was requested *)
    | `Batch, _ -> (
      match Atomicity.check h with
      | Ok () ->
        Format.printf "atomicity   : OK@.";
        true
      | Error wit ->
        Format.printf "atomicity   : VIOLATED %a@." Witness.pp wit;
        false)
  in
  Format.printf "@.";
  ok

let live protocol all s tol w r ops connect kills think transport rt_timeout
    server_domains geo check =
  let check =
    match parse_check_mode check with
    | Ok c -> c
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  in
  let geo_profile =
    match geo with
    | None -> None
    | Some name -> (
      match Live.Geo.find name with
      | Some p -> Some p
      | None ->
        Printf.eprintf "unknown geo profile %S (profiles: %s)\n" name
          (String.concat ", " (Live.Geo.names ()));
        exit 1)
  in
  if Option.is_some geo_profile && connect <> [] then begin
    Printf.eprintf
      "--geo shapes the servers' reply legs too, so it needs a loopback \
       cluster (drop --connect)\n";
    exit 1
  end;
  if server_domains < 1 then begin
    Printf.eprintf "--server-domains must be >= 1\n";
    exit 1
  end;
  if server_domains > 1 && connect <> [] then begin
    Printf.eprintf
      "--server-domains shards loopback servers; an attached cluster \
       (--connect) picked its own shard count at startup\n";
    exit 1
  end;
  let transport =
    match transport with
    | "mux" -> Ok `Mux
    | "sockets" -> Ok `Sockets
    | other -> Error (Printf.sprintf "unknown transport %S (mux|sockets)" other)
  in
  let registers =
    if all then Ok Registry.all
    else
      match find_protocol protocol with
      | Some register -> Ok [ register ]
      | None -> Error (Printf.sprintf "unknown protocol %S" protocol)
  in
  let addrs =
    List.fold_right
      (fun spec acc ->
        Result.bind acc (fun l ->
            Result.map (fun a -> a :: l) (parse_hostport spec)))
      connect (Ok [])
  in
  let kill_at =
    List.fold_right
      (fun spec acc ->
        Result.bind acc (fun l ->
            Result.map (fun k -> k :: l) (parse_kill spec)))
      kills (Ok [])
  in
  match (registers, addrs, kill_at, transport) with
  | Error msg, _, _, _ | _, Error msg, _, _ | _, _, Error msg, _
  | _, _, _, Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1
  | Ok _, Ok (_ :: _), Ok (_ :: _), _ ->
    Printf.eprintf "--kill needs a loopback cluster (drop --connect)\n";
    exit 1
  | Ok (_ :: _ :: _), Ok (_ :: _), _, _ ->
    Printf.eprintf
      "--all needs a fresh cluster per protocol: drop --connect\n";
    exit 1
  | Ok registers, Ok addrs, Ok kill_at, Ok transport ->
    let run_one register =
      let w =
        match Registry.max_writers register with
        | Some m -> min m w
        | None -> w
      in
      (* Geo profiles compile against the session's node numbering
         (servers 0..s-1, then the w+r clients), so the plan is built
         after the writer clamp. *)
      let faults =
        Option.map
          (fun p ->
            Live.Geo.plan p ~s ~clients:(List.init (w + r) (fun i -> s + i)))
          geo_profile
      in
      let rt_timeout =
        match geo_profile with
        | Some p -> Float.max rt_timeout (8.0 *. Live.Geo.max_rtt p)
        | None -> rt_timeout
      in
      (* A fresh cluster per protocol: replica state must not leak
         between runs (a stale value surfacing in a read would be an
         artifact, not a violation). *)
      let cluster =
        match addrs with
        | [] -> Live.Cluster.start ?faults ~shards:server_domains ~s ~tol ()
        | addrs -> Live.Cluster.connect ~addrs:(Array.of_list addrs) ~tol ()
      in
      Fun.protect
        ~finally:(fun () -> Live.Cluster.shutdown cluster)
        (fun () ->
          let spec =
            {
              Live.Session.writers = w;
              readers = r;
              writes_per_writer = ops;
              reads_per_reader = 2 * ops;
              write_think = think;
              read_think = think;
            }
          in
          live_one ?faults ~register ~cluster ~spec ~kill_at ~transport
            ~rt_timeout ~check ())
    in
    let ok = List.for_all run_one registers in
    if not ok then exit 2

let live_cmd =
  let all =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Run every registered protocol (smoke mode; single-writer \
                   protocols are clamped to W=1).")
  in
  let ops =
    Arg.(value & opt int 20 & info [ "ops" ] ~docv:"N"
         ~doc:"Writes per writer (each reader does 2N reads).")
  in
  let connect =
    Arg.(value & opt_all string []
         & info [ "connect" ] ~docv:"HOST:PORT"
             ~doc:"Use an already-running server (repeat once per server) \
                   instead of spawning a loopback cluster.")
  in
  let kills =
    Arg.(value & opt_all string []
         & info [ "kill" ] ~docv:"IDX@SEC"
             ~doc:"Kill server IDX after SEC seconds (repeatable; loopback \
                   only).")
  in
  let think =
    Arg.(value & opt float 0.0 & info [ "think" ] ~docv:"SEC"
         ~doc:"Think time between a client's operations.")
  in
  let transport =
    Arg.(value & opt string "mux"
         & info [ "transport" ] ~docv:"PLANE"
             ~doc:"Client data plane: $(b,mux) shares one connection per \
                   server across all clients (demultiplexed replies), \
                   $(b,sockets) gives every client its own socket per \
                   server (the baseline select loop).")
  in
  let rt_timeout =
    Arg.(value & opt float 1.0 & info [ "rt-timeout" ] ~docv:"SEC"
         ~doc:"Per-round-trip timeout before re-broadcasting.")
  in
  let server_domains =
    Arg.(value & opt int 1
         & info [ "server-domains" ] ~docv:"N"
             ~doc:"Reactor shards per loopback server: 1 runs each server's \
                   event loop on one thread, N > 1 spawns one domain per \
                   shard (incompatible with --connect).")
  in
  Cmd.v
    (Cmd.info "live"
       ~doc:"Run a register protocol over real TCP sockets and check the \
             recorded history for atomicity.")
    Term.(const live $ protocol_arg $ all $ s_arg $ t_arg $ w_arg $ r_arg
          $ ops $ connect $ kills $ think $ transport $ rt_timeout
          $ server_domains $ geo_arg $ check_mode_arg)

(* ------------------------------------------------------------------ *)
(* kv                                                                   *)
(* ------------------------------------------------------------------ *)

let kv protocol groups s tol clients keys ops dist theta mix transport seed
    sample think rt_timeout geo check =
  let check =
    match parse_check_mode check with
    | Ok c -> c
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  in
  let geo_profile =
    match geo with
    | None -> None
    | Some name -> (
      match Live.Geo.find name with
      | Some p -> Some p
      | None ->
        Printf.eprintf "unknown geo profile %S (profiles: %s)\n" name
          (String.concat ", " (Live.Geo.names ()));
        exit 1)
  in
  let register =
    match find_protocol protocol with
    | Some r -> Ok r
    | None -> Error (Printf.sprintf "unknown protocol %S" protocol)
  in
  let dist =
    match dist with
    | "zipfian" -> Ok (Ycsb.Zipfian theta)
    | "uniform" -> Ok Ycsb.Uniform
    | other -> Error (Printf.sprintf "unknown dist %S (zipfian|uniform)" other)
  in
  let mix =
    match Ycsb.mix_of_string mix with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "unknown mix %S (A|B|C)" mix)
  in
  let transport =
    match transport with
    | "mux" -> Ok `Mux
    | "sockets" -> Ok `Sockets
    | other -> Error (Printf.sprintf "unknown transport %S (mux|sockets)" other)
  in
  match (register, dist, mix, transport) with
  | Error msg, _, _, _ | _, Error msg, _, _ | _, _, Error msg, _
  | _, _, _, Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1
  | Ok register, Ok dist, Ok mix, Ok transport ->
    (* KV client [i] is node [s + i] in every shard group, so one geo
       plan covers all the per-group planes. *)
    let faults =
      Option.map
        (fun p ->
          Live.Geo.plan p ~s ~clients:(List.init clients (fun i -> s + i)))
        geo_profile
    in
    let rt_timeout =
      match geo_profile with
      | Some p -> Float.max rt_timeout (8.0 *. Live.Geo.max_rtt p)
      | None -> rt_timeout
    in
    let cluster = Kv.Cluster.start ?faults ~groups ~s ~tol () in
    Fun.protect
      ~finally:(fun () -> Kv.Cluster.shutdown cluster)
      (fun () ->
        let res =
          Kv.Session.run ?faults ~transport ~rt_timeout ~register
            ~live_check:(check = `Live) ~on_violation:announce_violation
            ~cluster
            {
              Kv.Session.clients;
              ops_per_client = ops;
              keys;
              dist;
              mix;
              seed;
              sample_keys = sample;
              think;
            }
        in
        Printf.printf
          "%s over %d shard group(s) (S=%d t=%d per group), %d clients, \
           %d keys, %s/%s\n"
          (Registry.name register) groups s tol clients keys
          (Ycsb.dist_name dist) (Ycsb.mix_name mix);
        Printf.printf
          "  %d ops in %.3fs  (%.0f ops/s, %d distinct keys touched)\n"
          res.Kv.Session.ops res.Kv.Session.duration
          res.Kv.Session.throughput res.Kv.Session.keys_touched;
        let ms name (st : Stats.summary) =
          Printf.printf "  %-6s p50 %.2fms  p95 %.2fms  p99 %.2fms\n" name
            (1e3 *. st.Stats.p50) (1e3 *. st.Stats.p95) (1e3 *. st.Stats.p99)
        in
        ms "all" res.Kv.Session.all_lat;
        ms "read" res.Kv.Session.read_lat;
        ms "write" res.Kv.Session.write_lat;
        Printf.printf "  per-group ops: [%s]\n"
          (String.concat "; "
             (Array.to_list
                (Array.map string_of_int res.Kv.Session.group_ops)));
        if res.Kv.Session.starved > 0 || res.Kv.Session.dropped > 0 then
          Printf.printf "  starved clients %d, dropped replies %d\n"
            res.Kv.Session.starved res.Kv.Session.dropped;
        let all_atomic =
          match (check, res.Kv.Session.online) with
          | `Off, _ ->
            Printf.printf "  atomicity: not checked (--check off)\n";
            true
          | `Live, Some r ->
            flush stdout;
            report_online r
          | `Live, None -> true (* unreachable: live_check was requested *)
          | `Batch, _ ->
            Printf.printf "  sampled-key verdicts:\n";
            List.for_all
              (fun v ->
                Printf.printf "    %-14s %4d ops  %s\n" v.Kv.Session.vkey
                  v.Kv.Session.vops
                  (if v.Kv.Session.atomic then "atomic" else "NOT ATOMIC");
                v.Kv.Session.atomic)
              res.Kv.Session.verdicts
        in
        if not all_atomic then exit 2)

let kv_cmd =
  (* Default to the unconditionally-atomic multi-writer ABD: the KV
     driver reports r = clients, and a default fast-read protocol would
     silently sit outside its R < S/t - 2 regime at any realistic client
     count. *)
  let protocol =
    Arg.(value & opt string "w2r2"
         & info [ "protocol"; "p" ] ~docv:"NAME"
             ~doc:"Register protocol run per key (registry substring \
                   match, as in $(b,sim)).")
  in
  let groups =
    Arg.(value & opt int 2 & info [ "groups"; "g" ] ~docv:"G"
         ~doc:"Shard groups (each its own S-server quorum system).")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "clients"; "c" ] ~docv:"C"
         ~doc:"Closed-loop client threads (each both writes and reads).")
  in
  let keys =
    Arg.(value & opt int 1000 & info [ "keys"; "k" ] ~docv:"K"
         ~doc:"Keyspace size.")
  in
  let ops =
    Arg.(value & opt int 50 & info [ "ops" ] ~docv:"N"
         ~doc:"Operations per client.")
  in
  let dist =
    Arg.(value & opt string "zipfian" & info [ "dist" ] ~docv:"DIST"
         ~doc:"Key popularity: $(b,zipfian) (rank 0 hottest) or \
               $(b,uniform).")
  in
  let theta =
    Arg.(value & opt float Ycsb.default_theta
         & info [ "theta" ] ~docv:"THETA"
             ~doc:"Zipfian skew parameter (0 < THETA < 1).")
  in
  let mix =
    Arg.(value & opt string "A" & info [ "mix" ] ~docv:"MIX"
         ~doc:"YCSB operation mix: $(b,A) 50/50, $(b,B) 95% reads, \
               $(b,C) read-only.")
  in
  let transport =
    Arg.(value & opt string "mux" & info [ "transport" ] ~docv:"PLANE"
         ~doc:"Client data plane per shard group: $(b,mux) or \
               $(b,sockets).")
  in
  let sample =
    Arg.(value & opt int 4 & info [ "sample" ] ~docv:"N"
         ~doc:"Hottest key ranks whose histories are recorded and \
               atomicity-checked.")
  in
  let think =
    Arg.(value & opt float 0.0 & info [ "think" ] ~docv:"SEC"
         ~doc:"Think time between a client's operations.")
  in
  let rt_timeout =
    Arg.(value & opt float 1.0 & info [ "rt-timeout" ] ~docv:"SEC"
         ~doc:"Per-round-trip timeout before re-broadcasting.")
  in
  Cmd.v
    (Cmd.info "kv"
       ~doc:"Drive a YCSB-shaped workload against a sharded multi-register \
             keyspace and atomicity-check the sampled keys.")
    Term.(const kv $ protocol $ groups $ s_arg $ t_arg $ clients $ keys
          $ ops $ dist $ theta $ mix $ transport $ seed_arg $ sample $ think
          $ rt_timeout $ geo_arg $ check_mode_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                                *)
(* ------------------------------------------------------------------ *)

let chaos protocol scenario transport seed drop delay duplicate ops s tol
    server_domains check =
  if server_domains < 1 then begin
    Printf.eprintf "--server-domains must be >= 1\n";
    exit 1
  end;
  let check =
    match parse_check_mode check with
    | Ok c -> c
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  in
  let transport =
    match transport with
    | "mux" -> Ok `Mux
    | "sockets" -> Ok `Sockets
    | other -> Error (Printf.sprintf "unknown transport %S (mux|sockets)" other)
  in
  match (scenario, transport) with
  | _, Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1
  | "soak", Ok transport -> (
    match find_protocol protocol with
    | None ->
      Printf.eprintf "unknown protocol %S\n" protocol;
      exit 1
    | Some register ->
      let sk =
        Live.Chaos.soak ~transport ~seed ~drop ~delay ~duplicate ~s ~tol ~ops
          ~server_shards:server_domains ~live_check:(check = `Live)
          ~on_violation:announce_violation ~register ()
      in
      let res = sk.Live.Chaos.result in
      Format.printf "protocol    : %s@." (Registry.name register);
      Format.printf
        "faults      : drop %.2f, delay <= %.3fs, duplicate %.2f (seed %d)@."
        drop delay duplicate seed;
      Format.printf "restart     : %s@."
        (if sk.Live.Chaos.restarted then
           "one server killed mid-run, restarted with recovered state"
         else "none");
      Format.printf "ops         : %d in %.3fs; retries %d, late %d@."
        (History.length res.Live.Session.history)
        res.Live.Session.duration res.Live.Session.retries
        res.Live.Session.late;
      Format.printf "round trips : write %.2f/op, read %.2f/op@."
        res.Live.Session.write_rounds res.Live.Session.read_rounds;
      if res.Live.Session.unavailable > 0 then
        Format.printf "starved     : %d client(s) gave up without a quorum@."
          res.Live.Session.unavailable;
      let atomic =
        match (check, res.Live.Session.online) with
        | `Off, _ ->
          Format.printf "atomicity   : not checked (--check off)@.";
          true
        | `Live, Some r ->
          let ok = report_online r in
          Format.printf "atomicity   : %s (streaming verdict)@."
            (if ok then "OK" else "VIOLATED");
          ok
        | `Live, None -> true (* unreachable: live_check was requested *)
        | `Batch, _ ->
          Format.printf "atomicity   : %s@."
            (if sk.Live.Chaos.atomic then "OK" else "VIOLATED");
          sk.Live.Chaos.atomic
      in
      Format.printf "theory      : %s@."
        (if sk.Live.Chaos.expected_atomic then
           "possible regime — chaos must not break it"
         else "impossible regime — no guarantee");
      if sk.Live.Chaos.expected_atomic && not atomic then exit 2)
  | (("recover" | "fresh") as m), Ok transport ->
    let mode = if m = "recover" then `Recover else `Fresh in
    let o =
      Live.Chaos.restart_scenario ~transport
        ~server_shards:server_domains ~mode ()
    in
    Format.printf
      "scenario    : acknowledged write on quorum {0,1}; server 0 killed, \
       restarted %s; read from quorum {0,2}@."
      (match mode with
      | `Recover -> "with its recovered snapshot"
      | `Fresh -> "with fresh (empty) state");
    Format.printf "read        : %s@."
      (match o.Live.Chaos.read_value with
      | Some v -> string_of_int v
      | None -> "(no response)");
    (match o.Live.Chaos.witness with
    | Some w -> Format.printf "witness     : %s@." w
    | None -> ());
    Format.printf "atomicity   : %s@."
      (if o.Live.Chaos.atomic then "OK" else "VIOLATED");
    let as_expected =
      match mode with
      | `Recover -> o.Live.Chaos.atomic
      | `Fresh -> (not o.Live.Chaos.atomic) && o.Live.Chaos.witness <> None
    in
    Format.printf "verdict     : %s@."
      (if as_expected then "as the crash-stop model predicts"
       else "UNEXPECTED");
    if not as_expected then exit 2
  | other, Ok _ ->
    Printf.eprintf "unknown scenario %S (soak|recover|fresh)\n" other;
    exit 1

let chaos_cmd =
  let scenario =
    Arg.(value & opt string "soak"
         & info [ "scenario" ] ~docv:"NAME"
             ~doc:"$(b,soak): seeded drop/delay/duplicate storm plus a \
                   kill-and-recover restart under a full workload. \
                   $(b,recover) / $(b,fresh): the deterministic \
                   restart-fidelity script — recover must stay atomic, \
                   fresh must yield a checker witness.")
  in
  let transport =
    Arg.(value & opt string "mux"
         & info [ "transport" ] ~docv:"PLANE"
             ~doc:"Client data plane under fault injection: $(b,mux) or \
                   $(b,sockets).")
  in
  let drop =
    Arg.(value & opt float 0.08 & info [ "drop" ] ~docv:"P"
         ~doc:"Per-frame drop probability (0 disables).")
  in
  let delay =
    Arg.(value & opt float 0.03 & info [ "delay" ] ~docv:"SEC"
         ~doc:"Max per-frame delay; each frame is delayed with probability \
               0.25 (0 disables).")
  in
  let duplicate =
    Arg.(value & opt float 0.1 & info [ "duplicate" ] ~docv:"P"
         ~doc:"Per-frame duplication probability (0 disables).")
  in
  let ops =
    Arg.(value & opt int 8 & info [ "ops" ] ~docv:"N"
         ~doc:"Writes per writer in the soak (each reader does 2N reads).")
  in
  let server_domains =
    Arg.(value & opt int 1
         & info [ "server-domains" ] ~docv:"N"
             ~doc:"Reactor shards per server: N > 1 puts the fault timers \
                   and the kill/restart path under a sharded reactor.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Inject a deterministic seeded fault plan (drops, delays, \
             duplicates, truncations, server restarts) into a live cluster \
             and check the recorded history for atomicity.")
    Term.(const chaos $ protocol_arg $ scenario $ transport $ seed_arg $ drop
          $ delay $ duplicate $ ops $ s_arg $ t_arg $ server_domains
          $ check_mode_arg)

(* ------------------------------------------------------------------ *)
(* geo                                                                  *)
(* ------------------------------------------------------------------ *)

let geo_run list_profiles protocol profile s tol w r ops transport outage
    check =
  if list_profiles then begin
    List.iter
      (fun p -> print_string (Live.Geo.describe p); print_newline ())
      Live.Geo.profiles;
    exit 0
  end;
  let check =
    match parse_check_mode check with
    | Ok c -> c
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  in
  let profile =
    match Live.Geo.find profile with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown geo profile %S (profiles: %s)\n" profile
        (String.concat ", " (Live.Geo.names ()));
      exit 1
  in
  let transport =
    match transport with
    | "mux" -> `Mux
    | "sockets" -> `Sockets
    | other ->
      Printf.eprintf "unknown transport %S (mux|sockets)\n" other;
      exit 1
  in
  match find_protocol protocol with
  | None ->
    Printf.eprintf "unknown protocol %S\n" protocol;
    exit 1
  | Some register ->
    let w =
      match Registry.max_writers register with
      | Some m -> min m w
      | None -> w
    in
    let clients = List.init (w + r) (fun i -> s + i) in
    (* Under an outage the timeout must stay short so cut-off clients
       retry their way across the window instead of stalling on one
       round trip; without one it only needs to cover the worst RTT. *)
    let rt_timeout, max_rt_retries =
      if outage then (Float.max 0.3 (4.0 *. Live.Geo.max_rtt profile), 10)
      else (Float.max 1.0 (8.0 *. Live.Geo.max_rtt profile), 3)
    in
    let extra =
      if not outage then []
      else begin
        let out_region = Live.Geo.region_count profile - 1 in
        let cut = Live.Geo.region_nodes profile ~s ~clients out_region in
        let rest =
          List.filter (fun n -> not (List.mem n cut)) (List.init s Fun.id)
          @ List.filter (fun n -> not (List.mem n cut)) clients
        in
        Format.printf "outage      : region %s (nodes %s) cut 0.05s..0.30s@."
          (Live.Geo.region_name profile out_region)
          (String.concat "," (List.map string_of_int cut));
        [ Live.Faults.partition ~from_:0.05 ~until:0.30 [ cut; rest ] ]
      end
    in
    let faults = Live.Geo.plan ~extra profile ~s ~clients in
    print_string (Live.Geo.describe profile);
    Format.printf "@.";
    let cluster = Live.Cluster.start ~faults ~s ~tol () in
    let ok =
      Fun.protect
        ~finally:(fun () -> Live.Cluster.shutdown cluster)
        (fun () ->
          let spec =
            {
              Live.Session.writers = w;
              readers = r;
              writes_per_writer = ops;
              reads_per_reader = 2 * ops;
              write_think = 0.0;
              read_think = 0.0;
            }
          in
          live_one ~faults ~max_rt_retries ~register ~cluster ~spec
            ~kill_at:[] ~transport ~rt_timeout ~check ())
    in
    if not ok then exit 2

let geo_cmd =
  let list_profiles =
    Arg.(value & flag
         & info [ "list" ]
             ~doc:"Print every named profile's region/delay/jitter matrices \
                   and exit.")
  in
  let profile =
    Arg.(value & opt string "wan-3region"
         & info [ "profile" ] ~docv:"PROFILE"
             ~doc:"Named WAN/geo profile to run under (see $(b,--list)).")
  in
  let ops =
    Arg.(value & opt int 20 & info [ "ops" ] ~docv:"N"
         ~doc:"Writes per writer (each reader does 2N reads).")
  in
  let transport =
    Arg.(value & opt string "mux"
         & info [ "transport" ] ~docv:"PLANE"
             ~doc:"Client data plane: $(b,mux) or $(b,sockets).")
  in
  let outage =
    Arg.(value & flag
         & info [ "outage" ]
             ~doc:"Compose the profile with a partition that cuts the last \
                   region off from 0.05s to 0.30s into the run: its clients \
                   must ride the window out on retries while the majority \
                   side keeps committing, and the history must stay atomic.")
  in
  Cmd.v
    (Cmd.info "geo"
       ~doc:"Run a register protocol over a live cluster whose links are \
             shaped by a named WAN/geo profile — the same per-region-pair \
             delay/jitter matrices the simulator's latency model uses — \
             optionally composing a region outage on top.")
    Term.(const geo_run $ list_profiles $ protocol_arg $ profile $ s_arg
          $ t_arg $ w_arg $ r_arg $ ops $ transport $ outage $ check_mode_arg)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "mwreg" ~version
      ~doc:"Fast implementations of distributed multi-writer atomic registers."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ sim_cmd; threshold_cmd; impossibility_cmd; sieve_cmd; table1_cmd;
            record_cmd; check_cmd; exhaustive_cmd; hunt_cmd; serve_cmd;
            live_cmd; kv_cmd; geo_cmd; chaos_cmd ]))
