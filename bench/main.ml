(* The benchmark harness: regenerates every table and figure of the
   paper (see DESIGN.md §4 for the experiment index) and finishes with
   Bechamel micro-benchmarks of the library's hot paths.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- t1 f9     -- selected experiments
     dune exec bench/main.exe -- micro     -- only the micro-benchmarks

   Absolute numbers are simulator-relative; the reproduction targets are
   the *shapes*: which design points admit atomic implementations, the
   1-vs-2 round-trip latency gap, and the R < S/t − 2 crossover. *)

open Protocol
open Workload

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

(* Flush per row: a sweep row can take minutes at the contended client
   counts, and a buffered table is useless for watching progress (or
   attributing a hang) from outside. *)
let row fmt = Printf.printf (fmt ^^ "%!")

(* The domain pool shared by the fan-out experiments, set from
   --domains / MWREG_DOMAINS in [main].  Every task builds its own
   engine, RNG and history and results merge in task order, so the
   tables are byte-identical at any domain count. *)
let pool = ref (Parallel.Pool.create ~domains:1 ())

(* ------------------------------------------------------------------ *)
(* Shared workload machinery                                            *)
(* ------------------------------------------------------------------ *)

let mixed_plans ~w ~r ~ops =
  List.init w (fun i ->
      Runtime.write_plan ~writer:i
        ~start_at:(float_of_int (3 * i))
        ~think:(10.0 +. float_of_int (7 * i))
        ops)
  @ List.init r (fun i ->
        Runtime.read_plan ~reader:i
          ~start_at:(1.0 +. float_of_int i)
          ~think:(8.0 +. float_of_int (5 * i))
          (2 * ops))

(* One run under a random schedule (latency + optional random skips +
   optional crash), returning (atomic, wait_free). *)
let run_once ~register ~s ~t ~w ~r ~seed ~shape =
  let latency =
    match seed mod 3 with
    | 0 -> Simulation.Latency.constant 2.0
    | 1 -> Simulation.Latency.uniform ~lo:1.0 ~hi:10.0
    | _ -> Simulation.Latency.exponential ~mean:4.0
  in
  let env = Env.make ~seed ~latency ~s ~t ~w ~r () in
  let topology = env.Env.topology in
  let adversary =
    match shape with
    | `Benign -> Adversary.none
    | `Skips -> Adversary.random_skips ~seed ~topology ~t_budget:t ~window:30.0
    | `Crash -> Adversary.crash_random ~seed ~t ~at:20.0 ~s
    | `Inversion ->
      (* deterministic writer-order inversion exercised via plans below *)
      Adversary.none
  in
  let plans =
    match shape with
    | `Inversion ->
      [
        Runtime.write_plan ~writer:(w - 1) ~start_at:0.0 1;
        Runtime.write_plan ~writer:0 ~start_at:100.0 1;
        Runtime.read_plan ~reader:0 ~start_at:200.0 1;
      ]
    | _ -> mixed_plans ~w ~r ~ops:3
  in
  let out =
    Runtime.run ~register ~env ~plans ~adversary:(Adversary.apply adversary) ()
  in
  let atomic = Checker.Atomicity.is_atomic out.Runtime.history in
  let wait_free =
    List.for_all Histories.Op.is_complete (Histories.History.ops out.Runtime.history)
  in
  (atomic, wait_free)

(* ------------------------------------------------------------------ *)
(* T1: Table 1 — the design-space matrix                                *)
(* ------------------------------------------------------------------ *)

let t1_configs = [ (5, 1, 2, 2); (7, 3, 2, 2); (6, 1, 3, 3); (9, 2, 2, 2) ]

(* One Table-1 cell: (runs, broken) over shapes × seeds plus the
   certificate-starvation attack.  The shape × seed runs are independent
   and fan out over [pool]; counts merge in task order. *)
let t1_cell pool ~register ~s ~t ~w ~r =
  let module R = (val register : Register_intf.S) in
  let shapes = [ `Benign; `Skips; `Crash; `Inversion ] in
  let tasks =
    List.concat_map
      (fun shape -> List.init 50 (fun i -> (shape, i + 1)))
      shapes
  in
  let verdicts =
    Parallel.Pool.map pool
      (fun (shape, seed) -> fst (run_once ~register ~s ~t ~w ~r ~seed ~shape))
      tasks
  in
  let runs = ref 0 and broken = ref 0 in
  List.iter
    (fun atomic ->
      incr runs;
      if not atomic then incr broken)
    verdicts;
  (* The certificate-starvation attack, where applicable. *)
  (match R.design_point with
  | Quorums.Bounds.W2R1 | Quorums.Bounds.W1R1 | Quorums.Bounds.W2R2 ->
    incr runs;
    let v = Threshold.attack ~register ~s ~t ~r in
    if not v.Threshold.atomic then incr broken
  | Quorums.Bounds.W1R2 -> ());
  (!runs, !broken)

(* The full T1 measurement sweep without the printing, for wall-clock
   comparisons; returns total (runs, broken). *)
let t1_sweep pool =
  List.fold_left
    (fun (runs, broken) register ->
      List.fold_left
        (fun (runs, broken) (s, t, w, r) ->
          let cell_runs, cell_broken = t1_cell pool ~register ~s ~t ~w ~r in
          (runs + cell_runs, broken + cell_broken))
        (runs, broken) t1_configs)
    (0, 0) Registers.Registry.multi_writer

let table1 () =
  section "T1. Table 1: fast implementations of multi-writer atomic registers";
  Printf.printf
    "Each cell: checker verdicts over randomized + adversarial schedules.\n\
     'atomic' = no violation found in any run; 'VIOLATED(n)' = n runs broken.\n\
     Theoretical column from the paper's Table 1 predicates.\n\n";
  row "%-28s %-16s %-12s %-12s %s\n" "protocol" "config (S,t,W,R)" "theory"
    "measured" "runs";
  row "%s\n" (String.make 86 '-');
  List.iter
    (fun register ->
      let module R = (val register : Register_intf.S) in
      List.iter
        (fun (s, t, w, r) ->
          let predicted = Quorums.Bounds.possible R.design_point ~s ~t ~w ~r in
          let runs, broken = t1_cell !pool ~register ~s ~t ~w ~r in
          let measured =
            if broken = 0 then "atomic"
            else Printf.sprintf "VIOLATED(%d)" broken
          in
          row "%-28s S=%d t=%d W=%d R=%d  %-12s %-12s %d\n" R.name s t w r
            (if predicted then "possible" else "impossible")
            measured runs)
        t1_configs;
      row "%s\n" (String.make 86 '-'))
    Registers.Registry.multi_writer;
  Printf.printf
    "Reading: possible rows stay atomic under every schedule; impossible rows\n\
     are broken by at least one adversarial schedule (the theory says no\n\
     schedule-proof implementation exists; a violation witness confirms it).\n"

(* ------------------------------------------------------------------ *)
(* F2: the latency/consistency lattice                                  *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "F2. Fig. 2: the latency/consistency lattice of the algorithm schema";
  Printf.printf
    "S=5 t=1 W=2 R=2, constant 2.0 latency (so 1 RTT = 4.0 simulated ms).\n\
     Consistency graded on the atomic > regular > safe ladder, worst case\n\
     over benign + adversarial schedules.\n\n";
  row "%-28s %-8s %-12s %-12s %-14s %s\n" "protocol" "rounds" "write-lat"
    "read-lat" "consistency" "(design point)";
  row "%s\n" (String.make 88 '-');
  List.iter
    (fun register ->
      let module R = (val register : Register_intf.S) in
      let env =
        Env.make ~seed:1 ~latency:(Simulation.Latency.constant 2.0) ~s:5 ~t:1
          ~w:2 ~r:2 ()
      in
      let out =
        Runtime.run ~register ~env ~plans:(mixed_plans ~w:2 ~r:2 ~ops:4) ()
      in
      let writes = Stats.writes out.Runtime.history in
      let reads = Stats.reads out.Runtime.history in
      (* Worst-case consistency over schedule shapes, fanned out per
         (shape, seed); min over the lattice is order-independent. *)
      let tasks =
        List.concat_map
          (fun shape -> List.init 40 (fun i -> (shape, i + 1)))
          [ `Benign; `Skips ]
      in
      let levels =
        Parallel.Pool.map !pool
          (fun (shape, seed) ->
            let latency = Simulation.Latency.uniform ~lo:1.0 ~hi:10.0 in
            let env = Env.make ~seed ~latency ~s:5 ~t:1 ~w:2 ~r:2 () in
            let topology = env.Env.topology in
            let adversary =
              match shape with
              | `Skips ->
                Adversary.random_skips ~seed ~topology ~t_budget:1 ~window:30.0
              | `Benign -> Adversary.none
            in
            let plans =
              if seed mod 4 = 0 then
                [
                  Runtime.write_plan ~writer:1 ~start_at:0.0 1;
                  Runtime.write_plan ~writer:0 ~start_at:100.0 1;
                  Runtime.read_plan ~reader:0 ~start_at:200.0 1;
                ]
              else mixed_plans ~w:2 ~r:2 ~ops:3
            in
            let out =
              Runtime.run ~register ~env ~plans
                ~adversary:(Adversary.apply adversary) ()
            in
            Checker.Consistency.classify out.Runtime.history)
          tasks
      in
      let worst =
        List.fold_left
          (fun worst level ->
            if Checker.Consistency.compare_level level worst < 0 then level
            else worst)
          Checker.Consistency.Atomic levels
      in
      row "%-28s W%dR%d     %-12.1f %-12.1f %-14s %s\n" R.name
        (Quorums.Bounds.write_rounds R.design_point)
        (Quorums.Bounds.read_rounds R.design_point)
        writes.Stats.mean reads.Stats.mean
        (Checker.Consistency.level_to_string worst)
        (Quorums.Bounds.design_point_to_string R.design_point))
    Registers.Registry.multi_writer;
  Printf.printf
    "\nShape check: one-round operations cost half the latency of two-round\n\
     ones, and only the paper-legal design points keep 'atomic' in the worst\n\
     case — the Fig. 2 trade-off, measured.\n"

(* ------------------------------------------------------------------ *)
(* F3: the three-phase chain argument                                   *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "F3. Fig. 3: Theorem 1 driver over the strategy space (chains α, β, Z)";
  let strategies =
    Impossibility.Strategy.natural
    @ List.init 200 (fun i -> Impossibility.Strategy.seeded (31 * i))
    @ List.init 100 (fun i -> Impossibility.Strategy.seeded_wild (97 * i))
  in
  let sizes = [ 3; 4; 5; 6; 8 ] in
  let total = ref 0 in
  let anchors = ref 0 in
  let disagreements = ref 0 in
  let unresolved = ref 0 in
  let link_checks = ref 0 in
  let link_failures = ref 0 in
  let i1_hist = Hashtbl.create 16 in
  List.iter
    (fun strat ->
      List.iter
        (fun s ->
          incr total;
          let finding, stats = Impossibility.W1r2_theorem.run ~s strat in
          link_checks := !link_checks + stats.Impossibility.W1r2_theorem.links_checked;
          link_failures := !link_failures + stats.Impossibility.W1r2_theorem.links_failed;
          (match stats.Impossibility.W1r2_theorem.i1 with
          | Some i1 ->
            Hashtbl.replace i1_hist i1 (1 + Option.value ~default:0 (Hashtbl.find_opt i1_hist i1))
          | None -> ());
          match finding with
          | Impossibility.W1r2_theorem.Anchor_violation _ -> incr anchors
          | Impossibility.W1r2_theorem.Read_disagreement _ -> incr disagreements
          | Impossibility.W1r2_theorem.Unresolved _ -> incr unresolved)
        sizes)
    strategies;
  row "strategies x sizes tried:      %d\n" !total;
  row "convicted via sequential anchor: %d\n" !anchors;
  row "convicted via read disagreement: %d\n" !disagreements;
  row "unresolved (must be 0):          %d\n" !unresolved;
  row "view-equality links verified:    %d (failures: %d)\n" !link_checks !link_failures;
  row "critical-server distribution (i1 -> count): ";
  List.iter
    (fun (i1, n) -> Printf.printf "%d->%d " i1 n)
    (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) i1_hist []));
  print_newline ();
  Printf.printf
    "Shape check: 100%% of candidate fast-write strategies are convicted with\n\
     a concrete violating execution — Theorem 1, executable.\n"

(* ------------------------------------------------------------------ *)
(* F45/F67: the horizontal and diagonal links                           *)
(* ------------------------------------------------------------------ *)

let fig4567 () =
  section "F4-F7. Figs. 4-7: horizontal & diagonal link verification";
  let checked = ref 0 and failed = ref 0 and special = ref 0 in
  for s = 3 to 10 do
    for i1 = 1 to s do
      let chain =
        Impossibility.Chain_beta.build ~s ~stem_swapped:(i1 - 1) ~critical:(i1 - 1)
      in
      for k = 0 to s - 1 do
        let step = Impossibility.Zigzag.build_step ~chain ~k in
        if step.Impossibility.Zigzag.temp_k = None then incr special;
        let report = Impossibility.Zigzag.verify_step ~chain step in
        incr checked;
        if not (Impossibility.Zigzag.link_ok report) then incr failed
      done
    done
  done;
  row "link instances verified: %d  (k = i1-1 special cases: %d)\n" !checked !special;
  row "failures: %d\n" !failed;
  Printf.printf
    "Each instance checks the five equalities of Figs. 4-7: R1(beta_k ~ temp_k),\n\
     R2(temp_k ~ gamma_k), R2(beta_k+1 ~ temp'_k), R1(temp'_k ~ gamma'_k),\n\
     gamma'_k = gamma_k.  All hold structurally, for every S, i1 and k.\n"

(* ------------------------------------------------------------------ *)
(* F8: the sieve                                                        *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  section "F8. Fig. 8: sieve-based elimination of affected servers";
  let strategies = [ Impossibility.Sieve.crucial_of_last_digits (); Impossibility.Sieve.crucial_majority ] in
  row "%-28s %-6s %-10s %-10s %-10s %s\n" "crucial strategy" "S" "flip%" "avg |S1|"
    "avg |S2|" "outcome";
  row "%s\n" (String.make 80 '-');
  List.iter
    (fun strat ->
      List.iter
        (fun (s, pct) ->
          let trials = 200 in
          let s1_sum = ref 0 and s2_sum = ref 0 in
          let critical = ref 0 and too_few = ref 0 and anchor = ref 0 in
          for seed = 1 to trials do
            let effect = Impossibility.Sieve.seeded_effect ~seed ~flip_probability_pct:pct in
            match Impossibility.Sieve.run ~s ~effect strat with
            | Impossibility.Sieve.Critical { sigma1; sigma2; _ } ->
              incr critical;
              s1_sum := !s1_sum + List.length sigma1;
              s2_sum := !s2_sum + List.length sigma2
            | Impossibility.Sieve.Too_few_unaffected { sigma1; sigma2 } ->
              incr too_few;
              s1_sum := !s1_sum + List.length sigma1;
              s2_sum := !s2_sum + List.length sigma2
            | Impossibility.Sieve.Anchor_violation _ -> incr anchor
          done;
          row "%-28s %-6d %-10d %-10.1f %-10.1f crit=%d too-few=%d anchor=%d\n"
            strat.Impossibility.Sieve.cname s pct
            (float_of_int !s1_sum /. float_of_int trials)
            (float_of_int !s2_sum /. float_of_int trials)
            !critical !too_few !anchor)
        [ (5, 20); (8, 20); (8, 50); (12, 30) ])
    strategies;
  Printf.printf
    "\nShape check: whenever at least 3 servers survive the sieve, the chain\n\
     argument still finds its critical server inside Σ2 — §4.2's claim.\n"

(* ------------------------------------------------------------------ *)
(* F9: the fast-read threshold                                          *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  section "F9. Fig. 9: fast-read possibility threshold R < S/t - 2";
  row "%-10s %-6s %-22s %-14s %-14s %s\n" "S,t" "R" "theory" "W2R1 (Alg 1&2)"
    "LS97 (W2R2)" "match";
  row "%s\n" (String.make 78 '-');
  let all_match = ref true in
  List.iter
    (fun (s, t) ->
      List.iter
        (fun v ->
          let slow =
            Threshold.attack ~register:Registers.Registry.abd_mwmr ~s ~t
              ~r:v.Threshold.r
          in
          let ok = Threshold.boundary_matches v && slow.Threshold.atomic in
          if not ok then all_match := false;
          row "S=%-2d t=%-2d R=%-4d %-22s %-14s %-14s %s\n" s t v.Threshold.r
            (if v.Threshold.predicted_possible then "fast read possible"
             else "impossible")
            (if v.Threshold.atomic then "atomic"
             else
               Printf.sprintf "VIOLATED(%s)"
                 (Option.value ~default:"?" v.Threshold.mwa_failure))
            (if slow.Threshold.atomic then "atomic" else "VIOLATED")
            (if ok then "yes" else "NO"))
        (Threshold.sweep ~register:Registers.Registry.fastread_w2r1 ~s ~t ~r_max:7))
    [ (6, 1); (9, 1); (8, 2); (9, 2); (12, 3) ];
  row "\nboundary reproduced at every configuration: %b\n" !all_match;
  (* §5.1: the bound does not depend on the write's round count. *)
  Printf.printf "\nWkR1 control (three-round writes, same fast read), S=6 t=1:\n";
  List.iter
    (fun v ->
      row "  %s\n" (Format.asprintf "%a" Threshold.pp_verdict v))
    (Threshold.sweep ~register:Registers.Registry.slow_write_w3r1 ~s:6 ~t:1
       ~r_max:6);
  Printf.printf
    "Shape check: Algorithm 1&2 is atomic exactly below R = S/t - 2 and the\n\
     certificate-starvation adversary produces the MWA4 new/old inversion at\n\
     and above it; the two-round read (LS97) is immune at every R; slowing\n\
     writes to three rounds moves the boundary not at all (s5.1).\n"

(* ------------------------------------------------------------------ *)
(* A1: Algorithm 1 & 2 — the Appendix-A properties                      *)
(* ------------------------------------------------------------------ *)

let alg12 () =
  section "A1. Algorithm 1 & 2: MWA0-MWA4 over randomized safe-regime runs";
  let runs = ref 0 in
  let failures = Hashtbl.create 8 in
  List.iter
    (fun (s, t, w, r) ->
      List.iter
        (fun shape ->
          for seed = 1 to 80 do
            incr runs;
            let latency =
              if seed mod 2 = 0 then Simulation.Latency.uniform ~lo:1.0 ~hi:10.0
              else Simulation.Latency.exponential ~mean:4.0
            in
            let env = Env.make ~seed ~latency ~s ~t ~w ~r () in
            let topology = env.Env.topology in
            let adversary =
              match shape with
              | `Benign -> Adversary.none
              | `Skips ->
                Adversary.random_skips ~seed ~topology ~t_budget:t ~window:30.0
              | `Crash -> Adversary.crash_random ~seed ~t ~at:20.0 ~s
            in
            let out =
              Runtime.run ~register:Registers.Registry.fastread_w2r1 ~env
                ~plans:(mixed_plans ~w ~r ~ops:3)
                ~adversary:(Adversary.apply adversary) ()
            in
            List.iter
              (fun (name, _) ->
                Hashtbl.replace failures name
                  (1 + Option.value ~default:0 (Hashtbl.find_opt failures name)))
              (Checker.Mw_properties.failures
                 (Checker.Mw_properties.check out.Runtime.tagged))
          done)
        [ `Benign; `Skips; `Crash ])
    [ (5, 1, 2, 2); (6, 1, 3, 3); (9, 2, 2, 2); (7, 1, 2, 4) ];
  row "runs: %d\n" !runs;
  List.iter
    (fun p ->
      row "%s violations: %d\n" p
        (Option.value ~default:0 (Hashtbl.find_opt failures p)))
    [ "MWA0"; "MWA1"; "MWA2"; "MWA3"; "MWA4" ];
  Printf.printf
    "Shape check: zero violations of any Appendix-A property in the proven\n\
     regime R < S/t - 2, under crashes and within-budget skips.\n"

(* ------------------------------------------------------------------ *)
(* P1: the motivation — one round-trip is what you save                 *)
(* ------------------------------------------------------------------ *)

let latency_exp () =
  section "P1. Motivation: user-perceived latency, fast vs slow reads (geo model)";
  Printf.printf
    "Geo-replication: 5 servers in 3 regions, clients co-located with region 0;\n\
     local hop ~5ms, cross-region ~40ms (uniform jitter 10ms).\n\n";
  let latency =
    Simulation.Latency.geo
      ~region_of:(fun n -> n mod 3)
      ~local:5.0 ~cross:40.0 ~jitter:10.0
  in
  row "%-28s %-10s %-10s %-10s %-10s %-11s %-10s\n" "protocol" "read-mean"
    "read-p50" "read-p95" "read-p99" "write-mean" "write-p99";
  row "%s\n" (String.make 92 '-');
  List.iter
    (fun register ->
      let module R = (val register : Register_intf.S) in
      let reads_acc = ref [] and writes_acc = ref [] in
      for seed = 1 to 30 do
        let env = Env.make ~seed ~latency ~s:5 ~t:1 ~w:2 ~r:2 () in
        let out =
          Runtime.run ~register ~env ~plans:(mixed_plans ~w:2 ~r:2 ~ops:4) ()
        in
        reads_acc := Stats.read_latencies out.Runtime.history @ !reads_acc;
        writes_acc := Stats.write_latencies out.Runtime.history @ !writes_acc
      done;
      let reads = Stats.of_latencies !reads_acc in
      let writes = Stats.of_latencies !writes_acc in
      row "%-28s %-10.1f %-10.1f %-10.1f %-10.1f %-11.1f %-10.1f\n" R.name
        reads.Stats.mean reads.Stats.p50 reads.Stats.p95 reads.Stats.p99
        writes.Stats.mean writes.Stats.p99)
    [
      Registers.Registry.abd_mwmr;
      Registers.Registry.fastread_w2r1;
      Registers.Registry.naive_w1r1;
    ];
  Printf.printf
    "\nShape check: the W2R1 fast read roughly halves read latency versus the\n\
     W2R2 baseline (one round-trip instead of two) while keeping atomicity;\n\
     the naive fast protocol is as fast but loses consistency (see F2/T1).\n"

(* ------------------------------------------------------------------ *)
(* FW: quantifying inconsistency (the paper's s7 future work)           *)
(* ------------------------------------------------------------------ *)

let future_work () =
  section "FW. Future work (s7): how much inconsistency do fast writes buy?";
  Printf.printf
    "Staleness of the naive fast-write register's reads as write contention\n\
     grows (S=5, t=1, R=2).  Writers take sequential turns in a shuffled\n\
     order each era, the worst case for local-clock timestamps; staleness k\n\
     means the read missed k completed writes.\n\n";
  row "%-10s %-14s %-14s %-16s %s\n" "writers" "stale frac" "max staleness"
    "mean staleness" "histogram (k->count)";
  row "%s\n" (String.make 78 '-');
  let eras = 3 in
  let turn = 60.0 in
  List.iter
    (fun w ->
      let fractions = ref [] in
      let max_st = ref 0 in
      let hist = Hashtbl.create 8 in
      let stale_sum = ref 0 and read_count = ref 0 in
      for seed = 1 to 60 do
        (* Per-era shuffled writer order. *)
        let rng = Simulation.Rng.create ~seed in
        let times = Array.make w [] in
        for era = 0 to eras - 1 do
          let order = Array.init w (fun i -> i) in
          Simulation.Rng.shuffle rng order;
          Array.iteri
            (fun pos writer ->
              let at = (float_of_int ((era * w) + pos)) *. turn in
              times.(writer) <- at :: times.(writer))
            order
        done;
        let writer_plan i =
          let starts = List.rev times.(i) in
          match starts with
          | [] -> assert false
          | first :: rest ->
            let steps =
              Runtime.Write
              :: List.concat
                   (List.mapi
                      (fun idx at ->
                        let prev = List.nth starts idx in
                        [ Runtime.Think (at -. prev -. 30.0); Runtime.Write ])
                      rest)
            in
            { Runtime.proc = Histories.Op.Writer i; start_at = first; steps }
        in
        let total = float_of_int (eras * w) *. turn in
        let reader_plan i =
          Runtime.read_plan ~reader:i ~start_at:(5.0 +. float_of_int i)
            ~think:(turn /. 3.0)
            (int_of_float (total /. (turn /. 2.0)))
        in
        let env =
          Env.make ~seed ~latency:(Simulation.Latency.uniform ~lo:1.0 ~hi:8.0)
            ~s:5 ~t:1 ~w ~r:2 ()
        in
        let out =
          Runtime.run ~register:Registers.Registry.naive_w1r2 ~env
            ~plans:(List.init w writer_plan @ List.init 2 reader_plan)
            ()
        in
        let h = out.Runtime.history in
        fractions := Checker.Staleness.stale_fraction h :: !fractions;
        max_st := max !max_st (Checker.Staleness.max_staleness h);
        List.iter
          (fun (k, n) ->
            stale_sum := !stale_sum + (k * n);
            read_count := !read_count + n;
            Hashtbl.replace hist k (n + Option.value ~default:0 (Hashtbl.find_opt hist k)))
          (Checker.Staleness.histogram h)
      done;
      let mean_frac =
        List.fold_left ( +. ) 0.0 !fractions /. float_of_int (List.length !fractions)
      in
      row "%-10d %-14.3f %-14d %-16.3f %s\n" w mean_frac !max_st
        (float_of_int !stale_sum /. float_of_int (max 1 !read_count))
        (String.concat " "
           (List.map
              (fun (k, n) -> Printf.sprintf "%d->%d" k n)
              (List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) hist [])))))
    [ 1; 2; 3; 4 ];
  Printf.printf
    "\nShape check: with one writer the fast write is ABD'95 and staleness is\n\
     zero; every additional writer adds inversion opportunities and the\n\
     stale fraction grows — the inconsistency cost of the latency the W1R2\n\
     impossibility says you cannot have for free.\n"

(* ------------------------------------------------------------------ *)
(* SF: the semifast ablation                                            *)
(* ------------------------------------------------------------------ *)

let semifast () =
  section "SF. Beyond the threshold: the adaptive (semifast-style) register";
  Printf.printf
    "Same certificate-starvation adversary as F9.  The strict fast read\n\
     (Algorithm 1&2) breaks past R = S/t - 2; the adaptive register stays\n\
     atomic by taking a repair round when no margin-safe certificate exists.\n\n";
  row "%-10s %-6s %-18s %-14s %s\n" "S,t" "R" "W2R1 (strict)" "adaptive" "read latency (adaptive, mean RTTs)";
  row "%s\n" (String.make 86 '-');
  List.iter
    (fun (s, t) ->
      List.iter
        (fun r ->
          let strict =
            Threshold.attack ~register:Registers.Registry.fastread_w2r1 ~s ~t ~r
          in
          let adapt =
            Threshold.attack ~register:Registers.Registry.adaptive ~s ~t ~r
          in
          (* Fast-read fraction in a benign contended run. *)
          let env =
            Env.make ~seed:7 ~latency:(Simulation.Latency.constant 2.0) ~s ~t
              ~w:2 ~r ()
          in
          let out =
            Runtime.run ~register:Registers.Registry.adaptive ~env
              ~plans:(mixed_plans ~w:2 ~r ~ops:3) ()
          in
          let reads = Stats.reads out.Runtime.history in
          row "S=%-2d t=%-2d R=%-4d %-18s %-14s %.2f\n" s t r
            (if strict.Threshold.atomic then "atomic" else "VIOLATED")
            (if adapt.Threshold.atomic then "atomic" else "VIOLATED")
            (reads.Stats.mean /. 4.0))
        [ 2; 4; 6 ])
    [ (6, 1); (8, 2) ];
  Printf.printf
    "\nShape check: the adaptive register is atomic at every R (including\n\
     where strict fast reads are impossible), and its reads average close to\n\
     one round-trip when certificates are available.\n"

(* ------------------------------------------------------------------ *)
(* WK: W1Rk for k >= 3                                                  *)
(* ------------------------------------------------------------------ *)

let w1rk () =
  section "WK. W1Rk impossibility for k >= 3 (round collapsing, s2.2/s3)";
  let total = ref 0 and convicted = ref 0 in
  List.iter
    (fun k ->
      List.iter
        (fun s ->
          List.iter
            (fun strat ->
              incr total;
              let finding, _ = Impossibility.K_round.run ~s strat in
              if Impossibility.W1r2_theorem.found_violation finding then
                incr convicted)
            ([ Impossibility.K_round.majority_of_last_round ~k;
               Impossibility.K_round.round_vote ~k ]
            @ List.init 30 (fun i -> Impossibility.K_round.seeded ~k (13 * i))))
        [ 3; 4; 5 ])
    [ 2; 3; 4; 5 ];
  row "k-round strategies tried: %d (k in 2..5, S in 3..5)\n" !total;
  row "convicted:                %d\n" !convicted;
  Printf.printf
    "Shape check: collapsing rounds 2..k into one round carries Theorem 1 to\n\
     every W1Rk design point, exactly as the paper remarks.\n"

(* ------------------------------------------------------------------ *)
(* EX: exhaustive small worlds                                          *)
(* ------------------------------------------------------------------ *)

let exhaustive () =
  section "EX. Exhaustive small-world sweep (orders x per-round skips, t=1)";
  row "%-28s %-14s %s\n" "protocol" "world" "outcome";
  row "%s\n" (String.make 78 '-');
  List.iter
    (fun (register, s, w, r) ->
      let o = Workload.Exhaustive.explore ~register ~s ~w ~r () in
      row "%-28s S=%d W=%d R=%d    %s\n"
        (Registers.Registry.name register)
        s w r
        (Format.asprintf "%a" Workload.Exhaustive.pp_outcome o))
    [
      (Registers.Registry.abd_mwmr, 3, 2, 1);
      (Registers.Registry.fastread_w2r1, 4, 2, 1);
      (Registers.Registry.adaptive, 3, 2, 1);
      (Registers.Registry.naive_w1r2, 3, 2, 1);
      (Registers.Registry.naive_w1r1, 3, 2, 1);
    ];
  Printf.printf
    "\nShape check: within the sequential one-op-per-client family the correct\n\
     protocols are atomic in every schedule; the naive fast writes break in\n\
     exactly the writer-inverted ones, with a minimal counterexample.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

(* Machine-readable results so later PRs have a perf trajectory to
   compare against: bechamel estimates plus the T1 sweep wall-clock
   (from [micro]) and the live-TCP throughput/latency table (from
   [live]).  Each experiment deposits its section here; the file is
   written once, after all requested experiments ran, so `-- micro live`
   produces one combined document. *)
let bench_results_path = "BENCH_results.json"

type micro_section = {
  estimates : (string * float) list;
  seq_s : float;
  par_s : float;
  speedup : float; (* median of paired per-round ratios, not seq_s/par_s *)
  domains : int;
  runs : int;
  broken : int;
}

(* Writes and reads per client in the live experiments; --live-ops N
   scales it down so CI smoke runs finish in seconds. *)
let live_ops = ref 20

type scaling_row = {
  sc_name : string;
  sc_path : string; (* "mux" or "sockets" *)
  sc_clients : int; (* total clients = sc_w + sc_r *)
  sc_regime : string; (* "steady" (amortised) or "short" (setup-bound) *)
  sc_w : int;
  sc_r : int;
  sc_ops : int;
  sc_duration : float;
  sc_write_p50_ms : float;
  sc_read_p50_ms : float;
}

let scaling_rows : scaling_row list ref = ref []

type live_row = {
  l_name : string;
  l_point : string;
  l_s : int;
  l_t : int;
  l_w : int;
  l_r : int;
  l_ops : int;
  l_duration : float;
  l_write_rounds : float;
  l_read_rounds : float;
  l_writes : Stats.summary;
  l_reads : Stats.summary;
  l_atomic : bool;
}

type chaos_soak_row = {
  ch_name : string;
  ch_transport : string; (* "mux" or "sockets" *)
  ch_seed : int;
  ch_drop : float;
  ch_delay : float;
  ch_duplicate : float;
  ch_restarted : bool;
  ch_ops : int;
  ch_duration : float;
  ch_write_rounds : float;
  ch_read_rounds : float;
  ch_retries : int;
  ch_late : int;
  ch_unavailable : int;
  ch_atomic : bool;
  ch_expected : bool; (* Bounds.possible at the soak's (s,t,w,r) *)
}

type chaos_restart_row = {
  cr_mode : string; (* "recover" or "fresh" *)
  cr_transport : string;
  cr_atomic : bool;
  cr_witness : string option;
  cr_read_value : int option;
}

(* Base seed for the chaos soak; each row derives its own seed from it
   so the whole sweep replays from one number (--chaos-seed N). *)
let chaos_seed = ref 0

let chaos_soak_rows : chaos_soak_row list ref = ref []
let chaos_restart_rows : chaos_restart_row list ref = ref []

type kv_row = {
  kv_plane : string; (* "mux" or "sockets" *)
  kv_regime : string; (* "closed" (saturated) or "scaleout" (think time) *)
  kv_think : float;
  kv_groups : int;
  kv_clients : int;
  kv_keys : int;
  kv_dist : string; (* "zipfian" or "uniform" *)
  kv_mix : string; (* "A" | "B" | "C" *)
  kv_ops : int;
  kv_duration : float;
  kv_all : Stats.summary;
  kv_read : Stats.summary;
  kv_write : Stats.summary;
  kv_sampled : int;
  kv_atomic : bool; (* every sampled key's verdict *)
  kv_starved : int;
  kv_late : int;
  kv_retries : int;
  kv_dropped : int;
  kv_group_ops : int array;
  kv_keys_touched : int;
}

let kv_rows : kv_row list ref = ref []

(* Completed operations the soak experiment pushes through the
   streaming checker; --soak-ops N scales it down for CI smoke. *)
let soak_ops = ref 1_000_000

type soak_row = {
  sk_plane : string; (* "kv" or "session" *)
  sk_label : string;
  sk_ops : int; (* completed client operations *)
  sk_duration : float;
  sk_throughput : float; (* ops/s with the live checker attached *)
  sk_throughput_nocheck : float; (* same workload, checking off *)
  sk_checked : int; (* operations fed through the checker *)
  sk_keys : int;
  sk_peak_window : int; (* checker's peak resident operations *)
  sk_checker_ops_per_sec : float;
  sk_batches : int;
  sk_violations : int;
  sk_atomic : bool;
  sk_expected_atomic : bool;
}

let soak_rows : soak_row list ref = ref []

type geo_row = {
  g_profile : string;
  g_transport : string; (* "mux" or "sockets" *)
  g_name : string;
  g_point : string;
  g_s : int;
  g_t : int;
  g_w : int;
  g_r : int;
  g_ops : int;
  g_duration : float;
  g_write_rounds : float;
  g_read_rounds : float;
  g_writes : Stats.summary;
  g_reads : Stats.summary;
  g_atomic : bool;
}

type geo_outage_row = {
  go_profile : string;
  go_transport : string;
  go_name : string;
  go_region : string; (* the region partitioned away *)
  go_window_s : float;
  go_ops : int;
  go_duration : float;
  go_retries : int;
  go_unavailable : int;
  go_atomic : bool;
  go_check : string; (* "live": the streaming checker's verdict *)
}

let geo_rows : geo_row list ref = ref []
let geo_outage_rows : geo_outage_row list ref = ref []

let micro_section : micro_section option ref = ref None

let live_rows : live_row list ref = ref []

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* BENCH_results.json grows section by section: a run that exercises
   only some experiments (say [-- geo]) must not clobber the committed
   sections of the others.  The document is this generator's own output
   — every top-level key sits at two-space indentation, one line per
   key start — so a line scanner is enough to split an existing file
   into (key, raw text) chunks that re-emit verbatim when this run did
   not regenerate them. *)
let read_existing_sections path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let toplevel_key line =
      if String.length line > 3 && String.sub line 0 3 = "  \"" then
        Option.map
          (fun j -> String.sub line 3 (j - 3))
          (String.index_from_opt line 3 '"')
      else None
    in
    let strip_comma text =
      let n = String.length text in
      if n > 0 && text.[n - 1] = ',' then String.sub text 0 (n - 1) else text
    in
    let flush key acc sections =
      match key with
      | None -> sections
      | Some k -> (k, strip_comma (String.concat "\n" (List.rev acc))) :: sections
    in
    let rec go key acc sections = function
      | [] -> List.rev (flush key acc sections)
      | line :: rest -> (
        (* Bare braces at column 0 only occur as the document's opener
           and closer; nested ones are indented. *)
        if line = "{" || line = "}" then go key acc sections rest
        else
          match toplevel_key line with
          | Some k -> go (Some k) [ line ] (flush key acc sections) rest
          | None ->
            if key = None then go None [] sections rest
            else go key (line :: acc) sections rest)
    in
    go None [] [] (List.rev !lines)
  end

(* Keys whose values are a single header line, regenerated on every
   write rather than preserved. *)
let header_keys = [ "generated_by"; "recommended_domain_count" ]

let section_order =
  [
    "wall_clock"; "micro_ns_per_run"; "live"; "live_scaling"; "kv_scaling";
    "geo"; "soak"; "chaos";
  ]

let write_bench_results () =
  let fresh = ref [] in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.bprintf buf fmt in
  let take key =
    if Buffer.length buf > 0 then begin
      fresh := (key, Buffer.contents buf) :: !fresh;
      Buffer.clear buf
    end
  in
  begin
    (match !micro_section with
    | None -> ()
    | Some m ->
      out "  \"wall_clock\": [\n";
      out "    {\n";
      out "      \"experiment\": \"t1-measurement-sweep\",\n";
      out "      \"runs\": %d,\n" m.runs;
      out "      \"violations\": %d,\n" m.broken;
      out "      \"sequential_s\": %.6f,\n" m.seq_s;
      out "      \"parallel_s\": %.6f,\n" m.par_s;
      out "      \"domains\": %d,\n" m.domains;
      (* Two decimals: the contenders alternate on a settled heap and
         the ratio is the median of paired rounds, so differences below
         the last reported digit are timer noise, not parallelism (on a
         clamped single-domain pool the honest value is exactly 1.0). *)
      out "      \"speedup\": %.2f\n" m.speedup;
      out "    }\n";
      out "  ]";
      take "wall_clock";
      out "  \"micro_ns_per_run\": {\n";
      let n = List.length m.estimates in
      List.iteri
        (fun i (name, estimate) ->
          out "    \"%s\": %.2f%s\n" (json_escape name) estimate
            (if i = n - 1 then "" else ","))
        m.estimates;
      out "  }";
      take "micro_ns_per_run");
    (match List.rev !live_rows with
    | [] -> ()
    | rows ->
      let ms_obj (st : Stats.summary) =
        Printf.sprintf
          "{ \"mean\": %.4f, \"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f }"
          (1e3 *. st.Stats.mean) (1e3 *. st.Stats.p50) (1e3 *. st.Stats.p95)
          (1e3 *. st.Stats.p99)
      in
      out "  \"live\": [\n";
      let n = List.length rows in
      List.iteri
        (fun i r ->
          out "    {\n";
          out "      \"protocol\": \"%s\",\n" (json_escape r.l_name);
          out "      \"design_point\": \"%s\",\n" (json_escape r.l_point);
          out "      \"s\": %d, \"t\": %d, \"writers\": %d, \"readers\": %d,\n"
            r.l_s r.l_t r.l_w r.l_r;
          out "      \"ops\": %d,\n" r.l_ops;
          out "      \"duration_s\": %.6f,\n" r.l_duration;
          out "      \"throughput_ops_per_s\": %.1f,\n"
            (float_of_int r.l_ops /. r.l_duration);
          out "      \"write_rounds_per_op\": %.2f,\n" r.l_write_rounds;
          out "      \"read_rounds_per_op\": %.2f,\n" r.l_read_rounds;
          out "      \"write_ms\": %s,\n" (ms_obj r.l_writes);
          out "      \"read_ms\": %s,\n" (ms_obj r.l_reads);
          out "      \"atomic\": %b\n" r.l_atomic;
          out "    }%s\n" (if i = n - 1 then "" else ","))
        rows;
      out "  ]";
      take "live");
    (match List.rev !scaling_rows with
    | [] -> ()
    | rows ->
      out "  \"live_scaling\": [\n";
      let n = List.length rows in
      List.iteri
        (fun i r ->
          out "    {\n";
          out "      \"protocol\": \"%s\",\n" (json_escape r.sc_name);
          out "      \"path\": \"%s\",\n" r.sc_path;
          out "      \"server\": \"reactor\",\n";
          out "      \"clients\": %d,\n" r.sc_clients;
          out "      \"regime\": \"%s\",\n" r.sc_regime;
          out "      \"writers\": %d, \"readers\": %d,\n" r.sc_w r.sc_r;
          out "      \"ops\": %d,\n" r.sc_ops;
          out "      \"duration_s\": %.6f,\n" r.sc_duration;
          out "      \"throughput_ops_per_s\": %.1f,\n"
            (float_of_int r.sc_ops /. r.sc_duration);
          out "      \"write_p50_ms\": %.4f,\n" r.sc_write_p50_ms;
          out "      \"read_p50_ms\": %.4f\n" r.sc_read_p50_ms;
          out "    }%s\n" (if i = n - 1 then "" else ","))
        rows;
      out "  ]";
      take "live_scaling");
    (match List.rev !kv_rows with
    | [] -> ()
    | rows ->
      let ms_obj (st : Stats.summary) =
        Printf.sprintf
          "{ \"mean\": %.4f, \"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f }"
          (1e3 *. st.Stats.mean) (1e3 *. st.Stats.p50) (1e3 *. st.Stats.p95)
          (1e3 *. st.Stats.p99)
      in
      out "  \"kv_scaling\": [\n";
      let n = List.length rows in
      List.iteri
        (fun i r ->
          out "    {\n";
          out "      \"plane\": \"%s\",\n" r.kv_plane;
          out "      \"regime\": \"%s\",\n" r.kv_regime;
          out "      \"think_s\": %.3f,\n" r.kv_think;
          out "      \"groups\": %d,\n" r.kv_groups;
          out "      \"clients\": %d,\n" r.kv_clients;
          out "      \"keys\": %d,\n" r.kv_keys;
          out "      \"dist\": \"%s\",\n" r.kv_dist;
          out "      \"mix\": \"%s\",\n" r.kv_mix;
          out "      \"ops\": %d,\n" r.kv_ops;
          out "      \"duration_s\": %.6f,\n" r.kv_duration;
          out "      \"throughput_ops_per_s\": %.1f,\n"
            (float_of_int r.kv_ops /. r.kv_duration);
          out "      \"latency_ms\": %s,\n" (ms_obj r.kv_all);
          out "      \"read_ms\": %s,\n" (ms_obj r.kv_read);
          out "      \"write_ms\": %s,\n" (ms_obj r.kv_write);
          out "      \"sampled_keys\": %d,\n" r.kv_sampled;
          out "      \"atomic\": %b,\n" r.kv_atomic;
          out "      \"starved\": %d,\n" r.kv_starved;
          out "      \"late\": %d,\n" r.kv_late;
          out "      \"retries\": %d,\n" r.kv_retries;
          out "      \"dropped_replies\": %d,\n" r.kv_dropped;
          out "      \"keys_touched\": %d,\n" r.kv_keys_touched;
          out "      \"group_ops\": [%s]\n"
            (String.concat ", "
               (Array.to_list (Array.map string_of_int r.kv_group_ops)));
          out "    }%s\n" (if i = n - 1 then "" else ","))
        rows;
      out "  ]";
      take "kv_scaling");
    (match (List.rev !geo_rows, List.rev !geo_outage_rows) with
    | [], [] -> ()
    | rows, outage ->
      let ms_obj (st : Stats.summary) =
        Printf.sprintf
          "{ \"mean\": %.4f, \"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f }"
          (1e3 *. st.Stats.mean) (1e3 *. st.Stats.p50) (1e3 *. st.Stats.p95)
          (1e3 *. st.Stats.p99)
      in
      out "  \"geo\": {\n";
      out "    \"rows\": [\n";
      let n = List.length rows in
      List.iteri
        (fun i r ->
          out "      {\n";
          out "        \"profile\": \"%s\",\n" (json_escape r.g_profile);
          out "        \"protocol\": \"%s\",\n" (json_escape r.g_name);
          out "        \"design_point\": \"%s\",\n" (json_escape r.g_point);
          out "        \"transport\": \"%s\",\n" r.g_transport;
          out "        \"s\": %d, \"t\": %d, \"writers\": %d, \"readers\": %d,\n"
            r.g_s r.g_t r.g_w r.g_r;
          out "        \"ops\": %d,\n" r.g_ops;
          out "        \"duration_s\": %.6f,\n" r.g_duration;
          out "        \"throughput_ops_per_s\": %.1f,\n"
            (float_of_int r.g_ops /. r.g_duration);
          out "        \"write_rounds_per_op\": %.2f,\n" r.g_write_rounds;
          out "        \"read_rounds_per_op\": %.2f,\n" r.g_read_rounds;
          out "        \"write_ms\": %s,\n" (ms_obj r.g_writes);
          out "        \"read_ms\": %s,\n" (ms_obj r.g_reads);
          out "        \"atomic\": %b\n" r.g_atomic;
          out "      }%s\n" (if i = n - 1 then "" else ","))
        rows;
      out "    ],\n";
      out "    \"outage\": [\n";
      let n = List.length outage in
      List.iteri
        (fun i r ->
          out "      {\n";
          out "        \"profile\": \"%s\",\n" (json_escape r.go_profile);
          out "        \"protocol\": \"%s\",\n" (json_escape r.go_name);
          out "        \"transport\": \"%s\",\n" r.go_transport;
          out "        \"region\": \"%s\",\n" (json_escape r.go_region);
          out "        \"window_s\": %.3f,\n" r.go_window_s;
          out "        \"ops\": %d,\n" r.go_ops;
          out "        \"duration_s\": %.6f,\n" r.go_duration;
          out "        \"retries\": %d,\n" r.go_retries;
          out "        \"unavailable\": %d,\n" r.go_unavailable;
          out "        \"check\": \"%s\",\n" r.go_check;
          out "        \"atomic\": %b\n" r.go_atomic;
          out "      }%s\n" (if i = n - 1 then "" else ","))
        outage;
      out "    ]\n";
      out "  }";
      take "geo");
    (match List.rev !soak_rows with
    | [] -> ()
    | rows ->
      out "  \"soak\": [\n";
      let n = List.length rows in
      List.iteri
        (fun i r ->
          out "    {\n";
          out "      \"plane\": \"%s\",\n" r.sk_plane;
          out "      \"label\": \"%s\",\n" (json_escape r.sk_label);
          out "      \"ops\": %d,\n" r.sk_ops;
          out "      \"duration_s\": %.6f,\n" r.sk_duration;
          out "      \"throughput_ops_per_s\": %.1f,\n" r.sk_throughput;
          out "      \"throughput_nocheck_ops_per_s\": %.1f,\n"
            r.sk_throughput_nocheck;
          out "      \"checked\": %d,\n" r.sk_checked;
          out "      \"keys\": %d,\n" r.sk_keys;
          out "      \"peak_window\": %d,\n" r.sk_peak_window;
          out "      \"checker_ops_per_s\": %.1f,\n" r.sk_checker_ops_per_sec;
          out "      \"batches\": %d,\n" r.sk_batches;
          out "      \"violations\": %d,\n" r.sk_violations;
          out "      \"atomic\": %b,\n" r.sk_atomic;
          out "      \"expected_atomic\": %b\n" r.sk_expected_atomic;
          out "    }%s\n" (if i = n - 1 then "" else ","))
        rows;
      out "  ]";
      take "soak");
    (match (List.rev !chaos_soak_rows, List.rev !chaos_restart_rows) with
    | [], [] -> ()
    | soak, restart ->
      out "  \"chaos\": {\n";
      out "    \"base_seed\": %d,\n" !chaos_seed;
      out "    \"soak\": [\n";
      let n = List.length soak in
      List.iteri
        (fun i r ->
          out "      {\n";
          out "        \"protocol\": \"%s\",\n" (json_escape r.ch_name);
          out "        \"transport\": \"%s\",\n" r.ch_transport;
          out "        \"seed\": %d,\n" r.ch_seed;
          out "        \"drop\": %.3f, \"delay_s\": %.3f, \"duplicate\": %.3f,\n"
            r.ch_drop r.ch_delay r.ch_duplicate;
          out "        \"restarted\": %b,\n" r.ch_restarted;
          out "        \"ops\": %d,\n" r.ch_ops;
          out "        \"duration_s\": %.6f,\n" r.ch_duration;
          out "        \"write_rounds_per_op\": %.2f,\n" r.ch_write_rounds;
          out "        \"read_rounds_per_op\": %.2f,\n" r.ch_read_rounds;
          out "        \"retries\": %d,\n" r.ch_retries;
          out "        \"late\": %d,\n" r.ch_late;
          out "        \"unavailable\": %d,\n" r.ch_unavailable;
          out "        \"atomic\": %b,\n" r.ch_atomic;
          out "        \"expected_atomic\": %b\n" r.ch_expected;
          out "      }%s\n" (if i = n - 1 then "" else ","))
        soak;
      out "    ],\n";
      out "    \"restart\": [\n";
      let n = List.length restart in
      List.iteri
        (fun i r ->
          out "      {\n";
          out "        \"mode\": \"%s\",\n" r.cr_mode;
          out "        \"transport\": \"%s\",\n" r.cr_transport;
          out "        \"atomic\": %b,\n" r.cr_atomic;
          (match r.cr_read_value with
          | Some v -> out "        \"read_value\": %d,\n" v
          | None -> out "        \"read_value\": null,\n");
          (match r.cr_witness with
          | Some w -> out "        \"witness\": \"%s\"\n" (json_escape w)
          | None -> out "        \"witness\": null\n");
          out "      }%s\n" (if i = n - 1 then "" else ","))
        restart;
      out "    ]\n";
      out "  }";
      take "chaos")
  end;
  let fresh = List.rev !fresh in
  if fresh <> [] then begin
    let preserved =
      List.filter
        (fun (k, _) ->
          (not (List.mem_assoc k fresh)) && not (List.mem k header_keys))
        (read_existing_sections bench_results_path)
    in
    let rank k =
      let rec idx i = function
        | [] -> i
        | x :: tl -> if x = k then i else idx (i + 1) tl
      in
      idx 0 section_order
    in
    let merged =
      List.stable_sort
        (fun (a, _) (b, _) -> compare (rank a) (rank b))
        (fresh @ preserved)
    in
    let oc = open_out bench_results_path in
    Printf.fprintf oc "{\n";
    Printf.fprintf oc
      "  \"generated_by\": \"dune exec bench/main.exe -- micro live kv chaos \
       geo\",\n";
    Printf.fprintf oc "  \"recommended_domain_count\": %d"
      (Domain.recommended_domain_count ());
    List.iter (fun (_, text) -> Printf.fprintf oc ",\n%s" text) merged;
    Printf.fprintf oc "\n}\n";
    close_out oc;
    Printf.printf "\nwrote %s (sections: %s)\n" bench_results_path
      (String.concat ", " (List.map fst merged))
  end

(* ------------------------------------------------------------------ *)
(* LV: the live TCP benchmark                                           *)
(* ------------------------------------------------------------------ *)

let live_exp () =
  (* When this runs after the micro phase, bechamel's garbage is still
     on the major heap; collect it up front so the first live rows don't
     pay another phase's GC debt. *)
  Gc.compact ();
  section "LV. Live TCP: the same algorithm bodies over real loopback sockets";
  Printf.printf
    "Each row: a fresh S=5 t=1 loopback cluster (real server daemons, real\n\
     TCP round trips), W writers x 20 writes and R readers x 40 reads, the\n\
     recorded wall-clock history checked for atomicity.  Rounds/op must\n\
     match Table 1 -- the paper's cost measure, now measured on sockets.\n\n";
  row "%-28s %-8s %-9s %-9s %-24s %-24s %s\n" "protocol" "ops/s" "write-rt"
    "read-rt" "write ms (p50/p95/p99)" "read ms (p50/p95/p99)" "atomic";
  row "%s\n" (String.make 112 '-');
  let s = 5 and t = 1 in
  let ops = !live_ops in
  List.iter
    (fun (register, w, r) ->
      let cluster = Transport.Cluster.start ~s ~tol:t () in
      Fun.protect
        ~finally:(fun () -> Transport.Cluster.shutdown cluster)
        (fun () ->
          let res =
            Transport.Session.run ~register ~cluster
              {
                Transport.Session.writers = w;
                readers = r;
                writes_per_writer = ops;
                reads_per_reader = 2 * ops;
                write_think = 0.0;
                read_think = 0.0;
              }
          in
          let h = res.Transport.Session.history in
          let n_ops = Histories.History.length h in
          let writes = Stats.writes h and reads = Stats.reads h in
          let atomic = Checker.Atomicity.is_atomic h in
          let name = Registers.Registry.name register in
          row "%-28s %-8.0f %-9.2f %-9.2f %-24s %-24s %b\n" name
            (float_of_int n_ops /. res.Transport.Session.duration)
            res.Transport.Session.write_rounds res.Transport.Session.read_rounds
            (Printf.sprintf "%.2f/%.2f/%.2f" (1e3 *. writes.Stats.p50)
               (1e3 *. writes.Stats.p95) (1e3 *. writes.Stats.p99))
            (Printf.sprintf "%.2f/%.2f/%.2f" (1e3 *. reads.Stats.p50)
               (1e3 *. reads.Stats.p95) (1e3 *. reads.Stats.p99))
            atomic;
          live_rows :=
            {
              l_name = name;
              l_point =
                Quorums.Bounds.design_point_to_string
                  (Registers.Registry.design_point register);
              l_s = s;
              l_t = t;
              l_w = w;
              l_r = r;
              l_ops = n_ops;
              l_duration = res.Transport.Session.duration;
              l_write_rounds = res.Transport.Session.write_rounds;
              l_read_rounds = res.Transport.Session.read_rounds;
              l_writes = writes;
              l_reads = reads;
              l_atomic = atomic;
            }
            :: !live_rows))
    [
      (Registers.Registry.abd_swmr, 1, 2);
      (Registers.Registry.abd_mwmr, 2, 2);
      (Registers.Registry.fastread_w2r1, 2, 2);
      (Registers.Registry.adaptive, 2, 2);
    ];
  Printf.printf
    "\nShape check: the simulator's round-trip economics survive contact with\n\
     real sockets -- W2R1 reads cost one round trip (half of W2R2's two) and\n\
     every history stays atomic.\n";
  (* ---------------------------------------------------------------- *)
  (* The client-scaling sweep: shared-mux plane vs per-client sockets,
     both against the reactor server.  Per (protocol, path, client
     count): a fresh S=5 t=1 cluster, C/2 writers and C/2 readers
     hammering it with no think time (C counts total clients).  The
     baseline path owns [C/2 x S] sockets per role and polls over them
     per op; the mux path shares S connections across all C clients.
     Atomicity is already certified by the table above and the test
     suite, so these rows measure raw throughput only.                  *)
  section "LV-S. Client scaling: shared mux plane vs per-client sockets";
  Printf.printf
    "S=5 t=1, C total clients (half writers, half readers), no think time.\n\
     Steady rows run the full per-client op budget (scaled down past\n\
     C=64 to keep total work bounded); short rows run 2 writes per\n\
     writer so connection setup stays inside the measured window.\n\n";
  row "%-28s %-9s %-6s %-7s %-6s %-10s %-10s %s\n" "protocol" "path" "C"
    "regime" "ops" "ops/s" "write-p50" "read-p50";
  row "%s\n" (String.make 92 '-');
  (* Per-client op budget for the steady regime: high client counts
     multiply the total op count, so the budget shrinks as C grows —
     the row still measures sustained concurrency (every client holds
     its connections for many round trips), just without turning the
     C=1024 row into minutes of wall clock. *)
  let steady_ops c =
    if c <= 64 then ops
    else if c <= 256 then max 2 (ops / 2)
    else max 2 (ops / 4)
  in
  (* Steady rows at every count the thread-per-connection server could
     and could not reach (its accept loop spawned a thread per conn and
     fell over near FD_SETSIZE; the reactor's poll/epoll waits do not),
     plus short-lived-client rows at the contended counts: short
     sessions keep the [C x S] dials inside the measured window —
     exactly the setup cost the shared plane deletes — where long
     sessions amortise it away. *)
  (* Heaviest rows go last: the C=1024 teardown churn — thousands of
     TIME_WAIT conns, a thousand client threads unwinding — would
     otherwise bleed into whichever row starts next. *)
  let points =
    List.map (fun c -> (c, steady_ops c, "steady")) [ 2; 4; 8; 16; 32; 64 ]
    @ (if ops > 2 then
         [ (64, 2, "short"); (256, 2, "short"); (1024, 2, "short") ]
       else [])
    @ [ (256, steady_ops 256, "steady"); (1024, steady_ops 1024, "steady") ]
  in
  List.iter
    (fun register ->
      List.iter
        (fun (path, transport) ->
          List.iter
            (fun (c, row_ops, regime) ->
              (* Each row starts from a settled machine: collect the
                 previous row's garbage and give its cluster teardown
                 (thread unwinding, socket close handshakes) a moment to
                 drain — the rows compare transports, so none may
                 inherit its predecessor's debris. *)
              Gc.compact ();
              Unix.sleepf 0.25;
              let cluster = Transport.Cluster.start ~s ~tol:t () in
              Fun.protect
                ~finally:(fun () -> Transport.Cluster.shutdown cluster)
                (fun () ->
                  (* Past ~128 clients on a small box, a round trip can
                     sit behind hundreds of queued peers; a generous
                     per-round-trip timeout keeps scheduling delay from
                     registering as loss and triggering retries. *)
                  let rt_timeout = if c >= 128 then Some 5.0 else None in
                  let res =
                    Transport.Session.run ?rt_timeout ~transport ~register
                      ~cluster
                      {
                        Transport.Session.writers = c / 2;
                        readers = c / 2;
                        writes_per_writer = row_ops;
                        reads_per_reader = 2 * row_ops;
                        write_think = 0.0;
                        read_think = 0.0;
                      }
                  in
                  let h = res.Transport.Session.history in
                  let n_ops = Histories.History.length h in
                  let writes = Stats.writes h and reads = Stats.reads h in
                  let name = Registers.Registry.name register in
                  row "%-28s %-9s %-6d %-7s %-6d %-10.0f %-10.2f %.2f\n" name
                    path c regime n_ops
                    (float_of_int n_ops /. res.Transport.Session.duration)
                    (1e3 *. writes.Stats.p50) (1e3 *. reads.Stats.p50);
                  scaling_rows :=
                    {
                      sc_name = name;
                      sc_path = path;
                      sc_clients = c;
                      sc_regime = regime;
                      sc_w = c / 2;
                      sc_r = c / 2;
                      sc_ops = n_ops;
                      sc_duration = res.Transport.Session.duration;
                      sc_write_p50_ms = 1e3 *. writes.Stats.p50;
                      sc_read_p50_ms = 1e3 *. reads.Stats.p50;
                    }
                    :: !scaling_rows))
            points)
        [ ("sockets", `Sockets); ("mux", `Mux) ])
    Registers.Registry.multi_writer;
  Printf.printf
    "\nShape check: the thread-per-connection server peaked near C=32 and\n\
     could not cross FD_SETSIZE at all; the reactor sustains C=1024 on both\n\
     planes, and the shared mux plane keeps its per-op constant-descriptor\n\
     advantage at every count.\n"

(* ------------------------------------------------------------------ *)
(* CH: the chaos soak                                                    *)
(* ------------------------------------------------------------------ *)

let chaos_exp () =
  Gc.compact ();
  section "CH. Chaos soak: seeded fault schedules over the live transport";
  Printf.printf
    "Each row: a fresh S=5 t=1 cluster whose every link drops, delays and\n\
     duplicates frames under a deterministic seeded plan, with one server\n\
     killed mid-run and restarted from its recovered snapshot.  Inside the\n\
     possible regimes the verdict must stay atomic: lossy links may only\n\
     show up as round-trip retries, never as a consistency violation.\n\n";
  row "%-28s %-9s %-6s %-5s %-8s %-9s %-9s %-8s %s\n" "protocol" "path" "seed"
    "ops" "retries" "write-rt" "read-rt" "atomic" "expected";
  row "%s\n" (String.make 96 '-');
  let ops = max 2 (!live_ops / 2) in
  let base = !chaos_seed in
  let i = ref 0 in
  List.iter
    (fun register ->
      List.iter
        (fun (path, transport) ->
          (* Same hygiene as the scaling sweep: no row inherits its
             predecessor's teardown debris. *)
          Gc.compact ();
          Unix.sleepf 0.15;
          let seed = base + !i in
          incr i;
          let sk = Transport.Chaos.soak ~transport ~seed ~ops ~register () in
          let res = sk.Transport.Chaos.result in
          let n_ops = Histories.History.length res.Transport.Session.history in
          let name = Registers.Registry.name register in
          row "%-28s %-9s %-6d %-5d %-8d %-9.2f %-9.2f %-8b %b\n" name path
            seed n_ops res.Transport.Session.retries
            res.Transport.Session.write_rounds res.Transport.Session.read_rounds
            sk.Transport.Chaos.atomic sk.Transport.Chaos.expected_atomic;
          chaos_soak_rows :=
            {
              ch_name = name;
              ch_transport = path;
              ch_seed = seed;
              ch_drop = sk.Transport.Chaos.drop;
              ch_delay = sk.Transport.Chaos.delay;
              ch_duplicate = sk.Transport.Chaos.duplicate;
              ch_restarted = sk.Transport.Chaos.restarted;
              ch_ops = n_ops;
              ch_duration = res.Transport.Session.duration;
              ch_write_rounds = res.Transport.Session.write_rounds;
              ch_read_rounds = res.Transport.Session.read_rounds;
              ch_retries = res.Transport.Session.retries;
              ch_late = res.Transport.Session.late;
              ch_unavailable = res.Transport.Session.unavailable;
              ch_atomic = sk.Transport.Chaos.atomic;
              ch_expected = sk.Transport.Chaos.expected_atomic;
            }
            :: !chaos_soak_rows)
        [ ("mux", `Mux); ("sockets", `Sockets) ])
    Registers.Registry.multi_writer;
  (* The deterministic restart-fidelity script: both halves of the
     crash-stop argument, on both data planes. *)
  Printf.printf
    "\nRestart fidelity (S=3 t=1, write confined to {0,1}, read to {0,2},\n\
     server 0 killed and restarted between them):\n\n";
  row "%-10s %-9s %-8s %s\n" "mode" "path" "atomic" "read";
  row "%s\n" (String.make 48 '-');
  List.iter
    (fun (path, transport) ->
      List.iter
        (fun (mode_name, mode) ->
          let o = Transport.Chaos.restart_scenario ~transport ~mode () in
          row "%-10s %-9s %-8b %s\n" mode_name path o.Transport.Chaos.atomic
            (match o.Transport.Chaos.read_value with
            | Some v -> string_of_int v
            | None -> "-");
          chaos_restart_rows :=
            {
              cr_mode = mode_name;
              cr_transport = path;
              cr_atomic = o.Transport.Chaos.atomic;
              cr_witness = o.Transport.Chaos.witness;
              cr_read_value = o.Transport.Chaos.read_value;
            }
            :: !chaos_restart_rows)
        [ ("recover", `Recover); ("fresh", `Fresh) ])
    [ ("mux", `Mux); ("sockets", `Sockets) ];
  Printf.printf
    "\nShape check: recover-restarts behave as slow servers (atomic, as the\n\
     paper's crash-stop model promises); a fresh restart forgets an\n\
     acknowledged write and the checker catches it with a witness.\n"

(* ------------------------------------------------------------------ *)
(* KV: the sharded keyspace under a YCSB-shaped load                    *)
(* ------------------------------------------------------------------ *)

let kv_exp () =
  section "KV. Sharded keyspace: YCSB-shaped load over consistent-hash groups";
  Printf.printf
    "Each row: G independent S=3 t=1 shard groups behind the placement\n\
     ring, C closed-loop clients mixing reads and writes (YCSB mix A\n\
     unless noted) over K keys, zipfian (theta=%.2f) or uniform.  Every\n\
     operation runs the multi-writer ABD body per key; the checker\n\
     passes per-key atomicity verdicts on the sampled hottest ranks.\n\n"
    Ycsb.default_theta;
  let s = 3 and tol = 1 in
  let ops = !live_ops in
  row "%-9s %-9s %-3s %-5s %-7s %-8s %-4s %-6s %-9s %-7s %-7s %-7s %-7s %s\n"
    "plane" "regime" "G" "C" "K" "dist" "mix" "ops" "ops/s" "p50" "p95" "p99"
    "atomic" "dropped";
  row "%s\n" (String.make 104 '-');
  let run_row ?(regime = "closed") ?(think = 0.0) idx (plane, transport)
      groups clients keys dist mix =
    (* Same per-row hygiene as LV-S: rows compare shard counts, so no
       row may inherit its predecessor's teardown debris. *)
    Gc.compact ();
    Unix.sleepf 0.25;
    let cluster = Kv.Kv_cluster.start ~groups ~s ~tol () in
    Fun.protect
      ~finally:(fun () -> Kv.Kv_cluster.shutdown cluster)
      (fun () ->
        let rt_timeout = if clients >= 128 then Some 5.0 else None in
        let res =
          Kv.Kv_session.run ~transport ?rt_timeout ~cluster
            {
              Kv.Kv_session.clients;
              ops_per_client = ops;
              keys;
              dist;
              mix;
              seed = 1000 + (17 * idx);
              sample_keys = 4;
              think;
            }
        in
        let atomic =
          List.for_all
            (fun v -> v.Kv.Kv_session.atomic)
            res.Kv.Kv_session.verdicts
        in
        let all = res.Kv.Kv_session.all_lat in
        row "%-9s %-9s %-3d %-5d %-7d %-8s %-4s %-6d %-9.0f %-7.2f %-7.2f %-7.2f %-7b %d\n"
          plane regime groups clients keys (Ycsb.dist_name dist)
          (Ycsb.mix_name mix)
          res.Kv.Kv_session.ops
          res.Kv.Kv_session.throughput (1e3 *. all.Stats.p50)
          (1e3 *. all.Stats.p95) (1e3 *. all.Stats.p99) atomic
          res.Kv.Kv_session.dropped;
        kv_rows :=
          {
            kv_plane = plane;
            kv_regime = regime;
            kv_think = think;
            kv_groups = groups;
            kv_clients = clients;
            kv_keys = keys;
            kv_dist = Ycsb.dist_name dist;
            kv_mix = Ycsb.mix_name mix;
            kv_ops = res.Kv.Kv_session.ops;
            kv_duration = res.Kv.Kv_session.duration;
            kv_all = all;
            kv_read = res.Kv.Kv_session.read_lat;
            kv_write = res.Kv.Kv_session.write_lat;
            kv_sampled = List.length res.Kv.Kv_session.verdicts;
            kv_atomic = atomic;
            kv_starved = res.Kv.Kv_session.starved;
            kv_late = res.Kv.Kv_session.late;
            kv_retries = res.Kv.Kv_session.retries;
            kv_dropped = res.Kv.Kv_session.dropped;
            kv_group_ops = res.Kv.Kv_session.group_ops;
            kv_keys_touched = res.Kv.Kv_session.keys_touched;
          }
          :: !kv_rows)
  in
  let idx = ref 0 in
  let zipf = Ycsb.Zipfian Ycsb.default_theta in
  (* The acceptance grid: plane x G x C x K x dist, all at mix A.  The
     light client count runs first on each plane so a regression at
     C=256 is attributable (its rows land after the C=64 baseline). *)
  List.iter
    (fun plane ->
      List.iter
        (fun groups ->
          List.iter
            (fun clients ->
              List.iter
                (fun keys ->
                  List.iter
                    (fun dist ->
                      incr idx;
                      run_row !idx plane groups clients keys dist Ycsb.A)
                    [ zipf; Ycsb.Uniform ])
                [ 1_000; 100_000 ])
            [ 64; 256 ])
        [ 1; 2; 4 ])
    [ ("mux", `Mux); ("sockets", `Sockets) ];
  (* Mix B (95% read) and C (read-only) at one mid-size point: the read
     fraction moves the latency profile, not the verdicts. *)
  List.iter
    (fun mix ->
      incr idx;
      run_row !idx ("mux", `Mux) 2 64 1_000 zipf mix)
    [ Ycsb.B; Ycsb.C ];
  (* The scale-out regime: hold the per-shard offered load constant and
     grow the client population with the group count (the standard YCSB
     cluster-scaling shape).  The closed-loop grid above saturates the
     host CPU, so its rows measure per-op cost, not capacity; with a
     think time the offered load sits below one group's capacity, and
     the aggregate throughput a deployment absorbs grows with its shard
     count — this is where the 4-group rows must beat the 1-group
     baseline. *)
  let scale_think = 0.04 and per_group_clients = 64 in
  List.iter
    (fun plane ->
      List.iter
        (fun groups ->
          incr idx;
          run_row ~regime:"scaleout" ~think:scale_think !idx plane groups
            (per_group_clients * groups) 1_000 zipf Ycsb.A)
        [ 1; 2; 4 ])
    [ ("mux", `Mux); ("sockets", `Sockets) ];
  Printf.printf
    "\nShape check: group_ops spread tracks the ring (uniform keys land\n\
     ~evenly; zipfian heads pin their shard), every sampled key is atomic\n\
     on both planes, and in the scale-out regime (constant per-shard\n\
     offered load) the 4-group aggregate out-runs the 1-group baseline --\n\
     per-key quorums compose, so capacity scales with shard count.\n"

(* ------------------------------------------------------------------ *)
(* SK: the streaming checker at soak scale                              *)
(* ------------------------------------------------------------------ *)

let soak_exp () =
  Gc.compact ();
  section "SK. Soak: streaming atomicity checker at million-op scale";
  Printf.printf
    "Each row runs the same workload twice -- checking off, then the\n\
     streaming checker attached (--check live) -- so the throughput\n\
     columns measure the checker's contention cost directly.  The\n\
     checker's memory is its peak window (resident operations), not the\n\
     history length: the batch checker would hold every one of the ops\n\
     below.  KV row: mix A zipfian over the sharded keyspace, every key\n\
     checked.  Session row: the chaos storm (drop/delay/duplicate plus\n\
     a kill and recover-restart) with the checker riding along.\n\n";
  row "%-9s %-22s %-9s %-10s %-10s %-7s %-8s %-10s %-7s %s\n" "plane"
    "label" "ops" "ops/s" "nocheck" "keys" "window" "check/s" "atomic"
    "violations";
  row "%s\n" (String.make 108 '-');
  let emit ~plane ~label ~ops ~duration ~nocheck_tput ~expected
      (r : Transport.Check_sink.report) =
    let tput = if duration > 0.0 then float_of_int ops /. duration else 0.0 in
    let atomic = Transport.Check_sink.atomic r in
    row "%-9s %-22s %-9d %-10.0f %-10.0f %-7d %-8d %-10.0f %-7b %d\n" plane
      label ops tput nocheck_tput r.Transport.Check_sink.keys
      r.Transport.Check_sink.peak_window
      r.Transport.Check_sink.checker_ops_per_sec atomic
      (List.length r.Transport.Check_sink.violations);
    soak_rows :=
      {
        sk_plane = plane;
        sk_label = label;
        sk_ops = ops;
        sk_duration = duration;
        sk_throughput = tput;
        sk_throughput_nocheck = nocheck_tput;
        sk_checked = r.Transport.Check_sink.checked;
        sk_keys = r.Transport.Check_sink.keys;
        sk_peak_window = r.Transport.Check_sink.peak_window;
        sk_checker_ops_per_sec = r.Transport.Check_sink.checker_ops_per_sec;
        sk_batches = r.Transport.Check_sink.batches;
        sk_violations = List.length r.Transport.Check_sink.violations;
        sk_atomic = atomic;
        sk_expected_atomic = expected;
      }
      :: !soak_rows
  in
  (* KV: the million-op row.  sample_keys = 0 -- the batch path would
     hold (and then quadratically check) the hottest key's ~7% of the
     stream; the streaming checker covers every key in O(window). *)
  let clients = 8 in
  let kv_spec =
    {
      Kv.Kv_session.clients;
      ops_per_client = max 1 (!soak_ops / clients);
      keys = 1_000;
      dist = Ycsb.Zipfian Ycsb.default_theta;
      mix = Ycsb.A;
      seed = 4242;
      sample_keys = 0;
      think = 0.0;
    }
  in
  let run_kv ~live_check =
    Gc.compact ();
    Unix.sleepf 0.25;
    let cluster = Kv.Kv_cluster.start ~groups:2 ~s:3 ~tol:1 () in
    Fun.protect
      ~finally:(fun () -> Kv.Kv_cluster.shutdown cluster)
      (fun () -> Kv.Kv_session.run ~live_check ~cluster kv_spec)
  in
  let base = run_kv ~live_check:false in
  let live = run_kv ~live_check:true in
  (match live.Kv.Kv_session.online with
  | Some r ->
    emit ~plane:"kv" ~label:"mixA-zipfian-allkeys" ~ops:live.Kv.Kv_session.ops
      ~duration:live.Kv.Kv_session.duration
      ~nocheck_tput:base.Kv.Kv_session.throughput ~expected:true r
  | None -> ());
  (* Session: the chaos storm.  Fault delays bound this plane to tens
     of ops/s, so the row rides at soak_ops/10000 writes per writer
     (6x that in total ops, ~100s per run at the full budget) -- the
     checker must hold its window bound through drops, retries, and
     the kill/recover-restart.  The million-op volume claim belongs to
     the KV row above. *)
  let chaos_ops = max 8 (!soak_ops / 10_000) in
  let run_chaos ~live_check =
    Gc.compact ();
    Unix.sleepf 0.25;
    Transport.Chaos.soak ~seed:!chaos_seed ~ops:chaos_ops ~live_check
      ~register:Registers.Registry.abd_mwmr ()
  in
  let base = run_chaos ~live_check:false in
  let live = run_chaos ~live_check:true in
  (match live.Transport.Chaos.result.Transport.Session.online with
  | Some r ->
    let ops =
      Histories.History.length
        live.Transport.Chaos.result.Transport.Session.history
    in
    let base_ops =
      Histories.History.length
        base.Transport.Chaos.result.Transport.Session.history
    in
    let base_d = base.Transport.Chaos.result.Transport.Session.duration in
    emit ~plane:"session" ~label:"chaos-storm" ~ops
      ~duration:live.Transport.Chaos.result.Transport.Session.duration
      ~nocheck_tput:
        (if base_d > 0.0 then float_of_int base_ops /. base_d else 0.0)
      ~expected:live.Transport.Chaos.expected_atomic r
  | None -> ());
  Printf.printf
    "\nShape check: the window column stays orders of magnitude below the\n\
     ops column (O(active keys + in-flight), not O(history)) and the\n\
     checked count covers the whole stream.  The feed is contention-free\n\
     (clients never block on the checker), so the live/nocheck gap is the\n\
     checker's CPU share: near zero with a spare core, bounded by the\n\
     checker's busy fraction plus scheduling churn on a single core.\n"

(* ------------------------------------------------------------------ *)
(* GEO: WAN/geo profiles over the live transports                       *)
(* ------------------------------------------------------------------ *)

(* The acceptance grid runs three named profiles; asym-updown stays a
   CLI/test citizen (its point is the direction-dependent matrix, not
   another throughput column). *)
let geo_bench_profiles =
  [ Transport.Geo.lan; Transport.Geo.wan_3region; Transport.Geo.mixed_1ms_80ms ]

let geo_exp () =
  Gc.compact ();
  section "GEO. WAN/geo profiles: one geography, both transports";
  Printf.printf
    "Each row: a fresh S=5 t=1 loopback cluster whose every client<->server\n\
     link is shaped by the named profile -- per-region-pair base delay plus\n\
     jitter, compiled from the same matrices the simulator's latency model\n\
     draws from (node region = id mod regions).  Delayed frames park on\n\
     per-link deadline queues, never in a sleeping sender, so one far\n\
     region cannot stall another link's traffic.  Rounds/op is the paper's\n\
     cost measure: under WAN delays every saved round is ~one RTT off the\n\
     latency column.\n\n";
  row "%-28s %-15s %-9s %-5s %-8s %-9s %-8s %-10s %-10s %s\n" "protocol"
    "profile" "path" "ops" "ops/s" "write-rt" "read-rt" "write-p50" "read-p50"
    "atomic";
  row "%s\n" (String.make 118 '-');
  let s = 5 and t = 1 in
  let ops = max 2 (!live_ops / 4) in
  List.iter
    (fun profile ->
      List.iter
        (fun register ->
          List.iter
            (fun (path, transport) ->
              (* Same hygiene as LV-S: no row inherits its predecessor's
                 teardown debris. *)
              Gc.compact ();
              Unix.sleepf 0.15;
              let w =
                match Registers.Registry.max_writers register with
                | Some m -> min m 2
                | None -> 2
              in
              let r = 2 in
              let clients = List.init (w + r) (fun i -> s + i) in
              let faults = Transport.Geo.plan profile ~s ~clients in
              (* Far enough above the worst profile round trip that a
                 slow-but-healthy link never reads as loss. *)
              let rt_timeout =
                Float.max 1.0 (8.0 *. Transport.Geo.max_rtt profile)
              in
              let cluster = Transport.Cluster.start ~faults ~s ~tol:t () in
              Fun.protect
                ~finally:(fun () -> Transport.Cluster.shutdown cluster)
                (fun () ->
                  let res =
                    Transport.Session.run ~faults ~transport ~rt_timeout
                      ~register ~cluster
                      {
                        Transport.Session.writers = w;
                        readers = r;
                        writes_per_writer = ops;
                        reads_per_reader = 2 * ops;
                        write_think = 0.0;
                        read_think = 0.0;
                      }
                  in
                  let h = res.Transport.Session.history in
                  let n_ops = Histories.History.length h in
                  let writes = Stats.writes h and reads = Stats.reads h in
                  let atomic = Checker.Atomicity.is_atomic h in
                  let name = Registers.Registry.name register in
                  let pname = Transport.Geo.name profile in
                  row "%-28s %-15s %-9s %-5d %-8.0f %-9.2f %-8.2f %-10.2f %-10.2f %b\n"
                    name pname path n_ops
                    (float_of_int n_ops /. res.Transport.Session.duration)
                    res.Transport.Session.write_rounds
                    res.Transport.Session.read_rounds
                    (1e3 *. writes.Stats.p50) (1e3 *. reads.Stats.p50) atomic;
                  geo_rows :=
                    {
                      g_profile = pname;
                      g_transport = path;
                      g_name = name;
                      g_point =
                        Quorums.Bounds.design_point_to_string
                          (Registers.Registry.design_point register);
                      g_s = s;
                      g_t = t;
                      g_w = w;
                      g_r = r;
                      g_ops = n_ops;
                      g_duration = res.Transport.Session.duration;
                      g_write_rounds = res.Transport.Session.write_rounds;
                      g_read_rounds = res.Transport.Session.read_rounds;
                      g_writes = writes;
                      g_reads = reads;
                      g_atomic = atomic;
                    }
                    :: !geo_rows))
            [ ("mux", `Mux); ("sockets", `Sockets) ])
        Registers.Registry.all)
    geo_bench_profiles;
  (* The region-outage scenario: wan-3region with its smallest region
     (one server, two clients) partitioned away for a window mid-run,
     on top of the geo delays.  Quorum is 4 of 5; the cut region's
     clients see zero reachable quorum during the window and must ride
     it out on round-trip retries, while the majority side keeps
     exactly a quorum — atomicity must hold throughout, and the
     streaming checker delivers the verdict live. *)
  let profile = Transport.Geo.wan_3region in
  let w = 2 and r = 2 in
  let clients = List.init (w + r) (fun i -> s + i) in
  let out_region = 2 in
  let cut = Transport.Geo.region_nodes profile ~s ~clients out_region in
  let rest =
    List.filter
      (fun n -> not (List.mem n cut))
      (List.init s Fun.id @ clients)
  in
  let window_from = 0.05 and window_until = 0.30 in
  Printf.printf
    "\nRegion outage: %s region %s (nodes %s) partitioned away %.2fs-%.2fs\n\
     into the run, on top of the profile's delays; streaming checker on.\n\n"
    (Transport.Geo.name profile)
    (Transport.Geo.region_name profile out_region)
    (String.concat "," (List.map string_of_int cut))
    window_from window_until;
  row "%-28s %-9s %-5s %-9s %-9s %-7s %s\n" "protocol" "path" "ops" "retries"
    "starved" "check" "atomic";
  row "%s\n" (String.make 76 '-');
  List.iter
    (fun (path, transport) ->
      Gc.compact ();
      Unix.sleepf 0.15;
      let faults =
        Transport.Geo.plan profile ~s ~clients
          ~extra:
            [
              Transport.Faults.partition ~from_:window_from ~until:window_until
                [ cut; rest ];
            ]
      in
      let register = Registers.Registry.abd_mwmr in
      let cluster = Transport.Cluster.start ~faults ~s ~tol:t () in
      Fun.protect
        ~finally:(fun () -> Transport.Cluster.shutdown cluster)
        (fun () ->
          let res =
            Transport.Session.run ~faults ~transport ~rt_timeout:0.3
              ~max_rt_retries:10 ~live_check:true ~register ~cluster
              {
                Transport.Session.writers = w;
                readers = r;
                writes_per_writer = ops;
                reads_per_reader = 2 * ops;
                write_think = 0.0;
                read_think = 0.0;
              }
          in
          let h = res.Transport.Session.history in
          let n_ops = Histories.History.length h in
          let live_ok =
            match res.Transport.Session.online with
            | Some rep -> Transport.Check_sink.atomic rep
            | None -> false
          in
          let atomic = live_ok && Checker.Atomicity.is_atomic h in
          let name = Registers.Registry.name register in
          row "%-28s %-9s %-5d %-9d %-9d %-7s %b\n" name path n_ops
            res.Transport.Session.retries res.Transport.Session.unavailable
            "live" atomic;
          geo_outage_rows :=
            {
              go_profile = Transport.Geo.name profile;
              go_transport = path;
              go_name = name;
              go_region = Transport.Geo.region_name profile out_region;
              go_window_s = window_until -. window_from;
              go_ops = n_ops;
              go_duration = res.Transport.Session.duration;
              go_retries = res.Transport.Session.retries;
              go_unavailable = res.Transport.Session.unavailable;
              go_atomic = atomic;
              go_check = "live";
            }
            :: !geo_outage_rows))
    [ ("mux", `Mux); ("sockets", `Sockets) ];
  Printf.printf
    "\nShape check: rounds/op are profile-invariant (the paper's cost\n\
     measure counts rounds, not milliseconds) while p50 latency scales\n\
     with the profile's RTT -- so every round a fast protocol saves is\n\
     worth ~80ms under wan-3region vs ~1ms under lan.  The region outage\n\
     costs the cut region's clients retries, never atomicity.\n"

(* ------------------------------------------------------------------ *)

let micro () =
  section "B*. Bechamel micro-benchmarks (one Test.make per table/figure path)";
  let open Bechamel in
  (* T1 path: one full protocol run + checker verdict. *)
  let bench_run =
    Test.make ~name:"t1-protocol-run-and-check"
      (Staged.stage (fun () ->
           let env =
             Env.make ~seed:1 ~latency:(Simulation.Latency.constant 2.0) ~s:5
               ~t:1 ~w:2 ~r:2 ()
           in
           let out =
             Runtime.run ~register:Registers.Registry.fastread_w2r1 ~env
               ~plans:(mixed_plans ~w:2 ~r:2 ~ops:2)
               ()
           in
           ignore (Checker.Atomicity.is_atomic out.Runtime.history)))
  in
  (* F2 path: the polynomial checker on a mid-size history. *)
  let checker_history =
    let env =
      Env.make ~seed:3 ~latency:(Simulation.Latency.uniform ~lo:1.0 ~hi:8.0)
        ~s:5 ~t:1 ~w:2 ~r:2 ()
    in
    let out =
      Runtime.run ~register:Registers.Registry.abd_mwmr ~env
        ~plans:(mixed_plans ~w:2 ~r:2 ~ops:6)
        ()
    in
    out.Runtime.history
  in
  let bench_checker =
    Test.make ~name:"f2-atomicity-checker"
      (Staged.stage (fun () -> ignore (Checker.Atomicity.is_atomic checker_history)))
  in
  let bench_interval =
    Test.make ~name:"f2-interval-checker"
      (Staged.stage (fun () -> ignore (Checker.Interval.is_atomic checker_history)))
  in
  let bench_oracle =
    let small =
      Histories.History.restrict checker_history ~f:(fun o -> o.Histories.Op.id < 14)
    in
    Test.make ~name:"f2-wing-gong-oracle"
      (Staged.stage (fun () -> ignore (Checker.Linearizability.check small)))
  in
  (* F3 path: a full theorem-driver walk. *)
  let bench_theorem =
    Test.make ~name:"f3-w1r2-theorem-walk"
      (Staged.stage (fun () ->
           ignore
             (Impossibility.W1r2_theorem.run ~s:5
                Impossibility.Strategy.majority_last)))
  in
  (* F4-7 path: one zigzag step build + verify. *)
  let chain = Impossibility.Chain_beta.build ~s:8 ~stem_swapped:3 ~critical:3 in
  let bench_zigzag =
    Test.make ~name:"f47-zigzag-step-verify"
      (Staged.stage (fun () ->
           let step = Impossibility.Zigzag.build_step ~chain ~k:5 in
           ignore (Impossibility.Zigzag.verify_step ~chain step)))
  in
  (* F8 path: one sieve run. *)
  let bench_sieve =
    Test.make ~name:"f8-sieve-run"
      (Staged.stage (fun () ->
           ignore
             (Impossibility.Sieve.run ~s:10
                ~effect:(Impossibility.Sieve.seeded_effect ~seed:5 ~flip_probability_pct:30)
                (Impossibility.Sieve.crucial_of_last_digits ()))))
  in
  (* F9 path: the admissible predicate. *)
  let replies =
    List.init 5 (fun srv ->
        ( srv,
          Registers.Wire.Read_ack
            {
              current = { Registers.Wire.tag = { Registers.Tstamp.ts = 3; wid = 1 }; payload = 7 };
              vector =
                List.init 4 (fun ts ->
                    ( { Registers.Wire.tag = { Registers.Tstamp.ts; wid = ts mod 2 }; payload = ts },
                      List.init 3 (fun c -> 10 + ((srv + c) mod 4)) ));
            } ))
  in
  let v = { Registers.Wire.tag = { Registers.Tstamp.ts = 2; wid = 0 }; payload = 2 } in
  let bench_admissible =
    Test.make ~name:"f9-admissible-predicate"
      (Staged.stage (fun () ->
           ignore
             (Registers.Client_core.admissible ~s:6 ~t:1 ~value:v ~replies
                ~degree:2)))
  in
  (* P1 path: raw simulator event throughput. *)
  let bench_engine =
    Test.make ~name:"p1-engine-10k-events"
      (Staged.stage (fun () ->
           let e = Simulation.Engine.create ~seed:1 () in
           for i = 1 to 10_000 do
             Simulation.Engine.schedule_at e
               ~time:(float_of_int (i land 1023))
               (fun () -> ())
           done;
           Simulation.Engine.run e))
  in
  let tests =
    [
      bench_run;
      bench_checker;
      bench_interval;
      bench_oracle;
      bench_theorem;
      bench_zigzag;
      bench_sieve;
      bench_admissible;
      bench_engine;
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  row "%-32s %14s\n" "benchmark" "time/run";
  row "%s\n" (String.make 48 '-');
  let estimates = ref [] in
  List.iter
    (fun test ->
      List.iter
        (fun (name, result) ->
          let ols_result = Analyze.one ols instance result in
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> e
            | _ -> nan
          in
          let pretty =
            if estimate > 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
            else if estimate > 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
            else if estimate > 1e3 then Printf.sprintf "%.2f us" (estimate /. 1e3)
            else Printf.sprintf "%.0f ns" estimate
          in
          estimates := (name, estimate) :: !estimates;
          row "%-32s %14s\n" name pretty)
        (Hashtbl.fold
           (fun name result acc -> (name, result) :: acc)
           (Benchmark.all cfg [ instance ] test)
           []))
    tests;
  (* Wall-clock of the full T1 measurement sweep, sequential vs the
     configured pool.  One untimed warmup sweep first (so neither
     contender pays the one-off heap growth) and [Gc.compact] before
     each timed run.  The contenders run in matched pairs over six
     rounds, alternating which goes first within the round, and the
     reported speedup is the *median of the per-round ratios*: pairing
     cancels slow environmental drift (anything perturbing one round
     hits both contenders), alternation cancels within-round ordering
     bias, and the median sheds a wholly-perturbed round.  Back-to-back
     min-of-N blocks measured GC and scheduler history instead — and on
     a single-core host, where the pool clamps to one domain and both
     contenders execute the same inline path, they turned the honest
     ratio of 1.0 into a coin flip. *)
  let timed p runs broken =
    Gc.compact ();
    let t0 = Transport.Clock.now () in
    let r, b = t1_sweep p in
    let dt = Transport.Clock.now () -. t0 in
    runs := r;
    broken := b;
    dt
  in
  ignore (t1_sweep !pool);
  let seq_pool = Parallel.Pool.create ~domains:1 () in
  let rounds = 6 in
  let seq_ts = Array.make rounds 0.0 and par_ts = Array.make rounds 0.0 in
  let seq_runs = ref 0 and seq_broken = ref 0 in
  let par_runs = ref 0 and par_broken = ref 0 in
  for i = 0 to rounds - 1 do
    if i land 1 = 0 then begin
      seq_ts.(i) <- timed seq_pool seq_runs seq_broken;
      par_ts.(i) <- timed !pool par_runs par_broken
    end
    else begin
      par_ts.(i) <- timed !pool par_runs par_broken;
      seq_ts.(i) <- timed seq_pool seq_runs seq_broken
    end
  done;
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    let n = Array.length s in
    if n land 1 = 1 then s.(n / 2) else 0.5 *. (s.((n / 2) - 1) +. s.(n / 2))
  in
  let seq_s = median seq_ts and par_s = median par_ts in
  let speedup =
    median (Array.init rounds (fun i -> seq_ts.(i) /. par_ts.(i)))
  in
  let seq_runs, seq_broken = (!seq_runs, !seq_broken) in
  let par_runs, par_broken = (!par_runs, !par_broken) in
  let domains = Parallel.Pool.domains !pool in
  row "\n%-32s %14s\n" "t1 sweep wall-clock" "seconds";
  row "%s\n" (String.make 48 '-');
  row "%-32s %14.3f\n" "sequential (1 domain)" seq_s;
  row "%-32s %14.3f\n" (Printf.sprintf "parallel (%d domains)" domains) par_s;
  row "%-32s %13.2fx\n" "speedup" speedup;
  if (seq_runs, seq_broken) <> (par_runs, par_broken) then
    row "WARNING: parallel verdicts diverge from sequential (%d,%d vs %d,%d)\n"
      seq_runs seq_broken par_runs par_broken;
  micro_section :=
    Some
      {
        estimates = List.rev !estimates;
        seq_s;
        par_s;
        speedup;
        domains;
        runs = seq_runs;
        broken = seq_broken;
      }

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("t1", table1);
    ("f2", fig2);
    ("f3", fig3);
    ("f4567", fig4567);
    ("f8", fig8);
    ("f9", fig9);
    ("alg12", alg12);
    ("p1", latency_exp);
    ("fw", future_work);
    ("sf", semifast);
    ("wk", w1rk);
    ("ex", exhaustive);
    ("live", live_exp);
    ("kv", kv_exp);
    ("chaos", chaos_exp);
    ("geo", geo_exp);
    ("sk", soak_exp);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let domains, requested =
    let rec go domains acc = function
      | [] -> (domains, List.rev acc)
      | "--domains" :: n :: rest -> go (int_of_string_opt n) acc rest
      | arg :: rest when String.length arg > 10 && String.sub arg 0 10 = "--domains=" ->
        go (int_of_string_opt (String.sub arg 10 (String.length arg - 10))) acc rest
      | "--live-ops" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> live_ops := k
        | _ -> ());
        go domains acc rest
      | arg :: rest when String.length arg > 11 && String.sub arg 0 11 = "--live-ops=" ->
        (match int_of_string_opt (String.sub arg 11 (String.length arg - 11)) with
        | Some k when k >= 1 -> live_ops := k
        | _ -> ());
        go domains acc rest
      | "--soak-ops" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> soak_ops := k
        | _ -> ());
        go domains acc rest
      | arg :: rest
        when String.length arg > 11 && String.sub arg 0 11 = "--soak-ops=" ->
        (match
           int_of_string_opt (String.sub arg 11 (String.length arg - 11))
         with
        | Some k when k >= 1 -> soak_ops := k
        | _ -> ());
        go domains acc rest
      | "--chaos-seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k -> chaos_seed := k
        | None -> ());
        go domains acc rest
      | arg :: rest
        when String.length arg > 13 && String.sub arg 0 13 = "--chaos-seed=" ->
        (match
           int_of_string_opt (String.sub arg 13 (String.length arg - 13))
         with
        | Some k -> chaos_seed := k
        | None -> ());
        go domains acc rest
      | arg :: rest -> go domains (arg :: acc) rest
    in
    go None [] args
  in
  let domains =
    match domains with Some n -> max 1 n | None -> Parallel.Pool.default_domains ()
  in
  pool := Parallel.Pool.create ~domains ();
  (* stderr, so the experiment tables stay byte-identical across domain
     counts. *)
  Printf.eprintf "[domains %d]\n%!" domains;
  let requested =
    match requested with [] -> List.map fst experiments | args -> args
  in
  Printf.printf
    "mwregister benchmark harness — reproducing Huang, Huang & Wei (PODC 2020)\n";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.printf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst experiments)))
    requested;
  write_bench_results ()
