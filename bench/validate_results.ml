(* Schema validation for BENCH_results.json.

     dune exec bench/validate_results.exe [-- [--require-knee] path]

   The bench harness hand-rolls its JSON writer, so CI runs this after
   every smoke bench: parse the document with a strict minimal JSON
   reader (no dependencies), then assert the section shapes — required
   keys present with the right types, counters non-negative, durations
   positive.  The live_scaling section also carries semantics: every
   (protocol, path) swept must include a steady row at >= 1024 total
   clients (the reactor server's headline capability), and under
   [--require-knee] — used against the committed full-budget document,
   not the tiny-op CI smoke regeneration — the best steady throughput
   at >= 256 clients must beat the thread-per-connection server's
   recorded C=16 peak, per (protocol, path).  Exit status 0 on a
   conforming file, 1 with a diagnostic otherwise. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "bad literal (wanted %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_char buf '?' (* non-ASCII: placeholder *)
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes after document";
  v

(* ------------------------------------------------------------------ *)
(* Schema checks                                                        *)
(* ------------------------------------------------------------------ *)

let errors = ref []

let err path msg = errors := Printf.sprintf "%s: %s" path msg :: !errors

let field obj path key =
  match obj with
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ ->
    err path "expected an object";
    None

let want_string obj path key =
  match field obj path key with
  | Some (Str s) ->
    if s = "" then err (path ^ "." ^ key) "empty string";
    Some s
  | Some (Null | Bool _ | Num _ | List _ | Obj _) ->
    err (path ^ "." ^ key) "expected a string";
    None
  | None ->
    err path (Printf.sprintf "missing key %S" key);
    None

let want_number obj path key =
  match field obj path key with
  | Some (Num f) -> Some f
  | Some (Null | Bool _ | Str _ | List _ | Obj _) ->
    err (path ^ "." ^ key) "expected a number";
    None
  | None ->
    err path (Printf.sprintf "missing key %S" key);
    None

let want_bool obj path key =
  match field obj path key with
  | Some (Bool _) -> ()
  | Some (Null | Num _ | Str _ | List _ | Obj _) ->
    err (path ^ "." ^ key) "expected a bool"
  | None -> err path (Printf.sprintf "missing key %S" key)

let positive obj path key =
  match want_number obj path key with
  | Some f when f > 0.0 -> ()
  | Some _ -> err (path ^ "." ^ key) "must be > 0"
  | None -> ()

let non_negative obj path key =
  match want_number obj path key with
  | Some f when f >= 0.0 -> ()
  | Some _ -> err (path ^ "." ^ key) "must be >= 0"
  | None -> ()

let check_ms_obj obj path key =
  match field obj path key with
  | Some (Obj _ as ms) ->
    List.iter (fun k -> non_negative ms (path ^ "." ^ key) k)
      [ "mean"; "p50"; "p95"; "p99" ]
  | Some (Null | Bool _ | Num _ | Str _ | List _) ->
    err (path ^ "." ^ key) "expected an object"
  | None -> err path (Printf.sprintf "missing key %S" key)

let check_wall_clock path = function
  | List entries ->
    if entries = [] then err path "empty";
    List.iteri
      (fun i e ->
        let p = Printf.sprintf "%s[%d]" path i in
        ignore (want_string e p "experiment");
        non_negative e p "runs";
        non_negative e p "violations";
        positive e p "sequential_s";
        positive e p "parallel_s";
        positive e p "domains";
        positive e p "speedup")
      entries
  | Null | Bool _ | Num _ | Str _ | Obj _ -> err path "expected an array"

let check_micro path = function
  | Obj fields ->
    if fields = [] then err path "empty";
    List.iter
      (fun (k, v) ->
        match v with
        | Num f when f > 0.0 -> ()
        | Num _ -> err (path ^ "." ^ k) "must be > 0"
        | Null | Bool _ | Str _ | List _ | Obj _ ->
          err (path ^ "." ^ k) "expected a number")
      fields
  | Null | Bool _ | Num _ | Str _ | List _ -> err path "expected an object"

let check_live path = function
  | List entries ->
    if entries = [] then err path "empty";
    List.iteri
      (fun i e ->
        let p = Printf.sprintf "%s[%d]" path i in
        ignore (want_string e p "protocol");
        ignore (want_string e p "design_point");
        positive e p "s";
        non_negative e p "t";
        non_negative e p "writers";
        positive e p "readers";
        positive e p "ops";
        positive e p "duration_s";
        positive e p "throughput_ops_per_s";
        positive e p "write_rounds_per_op";
        positive e p "read_rounds_per_op";
        check_ms_obj e p "write_ms";
        check_ms_obj e p "read_ms";
        want_bool e p "atomic")
      entries
  | Null | Bool _ | Num _ | Str _ | Obj _ -> err path "expected an array"

(* The thread-per-connection server's sustained throughput at its
   contended peak (C=16 in old units: 16 writers + 16 readers = 32
   client threads), per (protocol, client path), measured on this
   repo's pre-reactor tree at the default op budget.  These are the
   knee floors for [--require-knee]: the reactor must hold at C >= 256
   steady clients at least the throughput the old server managed at 32
   — i.e. the scaling knee moved out by an order of magnitude, it did
   not just shift shape. *)
let threaded_c16_floor =
  [
    ("LS97 ABD-MW", "sockets", 89.6);
    ("LS97 ABD-MW", "mux", 315.6);
    ("naive fast-write", "sockets", 597.7);
    ("naive fast-write", "mux", 620.3);
    ("Huang et al. W2R1", "sockets", 158.6);
    ("Huang et al. W2R1", "mux", 284.5);
    ("naive fast-write/fast-read", "sockets", 535.3);
    ("naive fast-write/fast-read", "mux", 709.8);
  ]

let check_scaling ~require_knee path = function
  | List entries ->
    if entries = [] then err path "empty";
    (* (protocol, path, regime, clients, ops/s) per well-formed row,
       for the cross-row checks below. *)
    let rows = ref [] in
    List.iteri
      (fun i e ->
        let p = Printf.sprintf "%s[%d]" path i in
        let protocol = want_string e p "protocol" in
        let path_s =
          match want_string e p "path" with
          | Some ("mux" | "sockets") as ok -> ok
          | Some other ->
            err (p ^ ".path") (Printf.sprintf "unknown path %S" other);
            None
          | None -> None
        in
        (match want_string e p "server" with
        | Some "reactor" | None -> ()
        | Some other ->
          err (p ^ ".server") (Printf.sprintf "unknown server %S" other));
        let regime =
          match want_string e p "regime" with
          | Some ("steady" | "short") as ok -> ok
          | Some other ->
            err (p ^ ".regime") (Printf.sprintf "unknown regime %S" other);
            None
          | None -> None
        in
        let clients = want_number e p "clients" in
        (match clients with
        | Some c when c <= 0.0 -> err (p ^ ".clients") "must be > 0"
        | Some _ | None -> ());
        let w = want_number e p "writers" in
        let r = want_number e p "readers" in
        (match[@warning "-4"] (clients, w, r) with
        | Some c, Some w, Some r when c <> w +. r ->
          err (p ^ ".clients") "must equal writers + readers"
        | _ -> ());
        (match w with
        | Some w when w <= 0.0 -> err (p ^ ".writers") "must be > 0"
        | Some _ | None -> ());
        (match r with
        | Some r when r <= 0.0 -> err (p ^ ".readers") "must be > 0"
        | Some _ | None -> ());
        positive e p "ops";
        positive e p "duration_s";
        let tput = want_number e p "throughput_ops_per_s" in
        (match tput with
        | Some t when t <= 0.0 -> err (p ^ ".throughput_ops_per_s") "must be > 0"
        | Some _ | None -> ());
        non_negative e p "write_p50_ms";
        non_negative e p "read_p50_ms";
        match[@warning "-4"] (protocol, path_s, regime, clients, tput) with
        | Some pr, Some pa, Some re, Some c, Some t ->
          rows := (pr, pa, re, c, t) :: !rows
        | _ -> ())
      entries;
    let rows = !rows in
    let groups =
      List.sort_uniq compare (List.map (fun (pr, pa, _, _, _) -> (pr, pa)) rows)
    in
    (* Every (protocol, path) swept must carry the high-concurrency
       evidence: a steady row at C >= 1024 is what "the reactor
       sustains a thousand concurrent clients" means in this
       document. *)
    List.iter
      (fun (pr, pa) ->
        let has_1024 =
          List.exists
            (fun (pr', pa', re, c, _) ->
              pr' = pr && pa' = pa && re = "steady" && c >= 1024.0)
            rows
        in
        if not has_1024 then
          err path
            (Printf.sprintf
               "%s/%s: no steady row with clients >= 1024 (reactor must \
                sustain C=1024 on both planes)"
               pr pa))
      groups;
    if require_knee then
      List.iter
        (fun (pr, pa, floor) ->
          if List.mem (pr, pa) groups then
            let best =
              List.fold_left
                (fun acc (pr', pa', re, c, t) ->
                  if pr' = pr && pa' = pa && re = "steady" && c >= 256.0 then
                    Float.max acc t
                  else acc)
                0.0 rows
            in
            if best < floor then
              err path
                (Printf.sprintf
                   "%s/%s: best steady throughput at clients >= 256 is %.1f \
                    ops/s, below the thread-per-connection C=16 peak of %.1f \
                    — the scaling knee did not move"
                   pr pa best floor))
        threaded_c16_floor
  | Null | Bool _ | Num _ | Str _ | Obj _ -> err path "expected an array"

let want_bool_value obj path key =
  match field obj path key with
  | Some (Bool b) -> Some b
  | Some (Null | Num _ | Str _ | List _ | Obj _) ->
    err (path ^ "." ^ key) "expected a bool";
    None
  | None ->
    err path (Printf.sprintf "missing key %S" key);
    None

(* The kv_scaling section: the sharded keyspace sweep.  Shape always;
   verdict semantics always (a non-atomic sampled key means the per-key
   protocol broke under the KV plumbing — never acceptable); axis
   completeness and the scale-out knee only under [--require-knee],
   since the CI smoke regenerates a reduced sweep. *)

let kv_grid_groups = [ 1.0; 2.0; 4.0 ]
let kv_grid_clients = [ 64.0; 256.0 ]
let kv_grid_keys = [ 1_000.0; 100_000.0 ]
let kv_grid_dists = [ "zipfian"; "uniform" ]

let check_kv_scaling ~require_knee path = function
  | List entries ->
    if entries = [] then err path "empty";
    (* (plane, regime, groups, clients, keys, dist, mix, ops/s) per
       well-formed row, for the cross-row checks below. *)
    let rows = ref [] in
    List.iteri
      (fun i e ->
        let p = Printf.sprintf "%s[%d]" path i in
        let plane =
          match want_string e p "plane" with
          | Some ("mux" | "sockets") as ok -> ok
          | Some other ->
            err (p ^ ".plane") (Printf.sprintf "unknown plane %S" other);
            None
          | None -> None
        in
        let regime =
          match want_string e p "regime" with
          | Some ("closed" | "scaleout") as ok -> ok
          | Some other ->
            err (p ^ ".regime") (Printf.sprintf "unknown regime %S" other);
            None
          | None -> None
        in
        non_negative e p "think_s";
        let groups = want_number e p "groups" in
        (match groups with
        | Some g when g < 1.0 -> err (p ^ ".groups") "must be >= 1"
        | Some _ | None -> ());
        let clients = want_number e p "clients" in
        (match clients with
        | Some c when c < 1.0 -> err (p ^ ".clients") "must be >= 1"
        | Some _ | None -> ());
        let keys = want_number e p "keys" in
        (match keys with
        | Some k when k < 1.0 -> err (p ^ ".keys") "must be >= 1"
        | Some _ | None -> ());
        let dist =
          match want_string e p "dist" with
          | Some ("zipfian" | "uniform") as ok -> ok
          | Some other ->
            err (p ^ ".dist") (Printf.sprintf "unknown dist %S" other);
            None
          | None -> None
        in
        let mix =
          match want_string e p "mix" with
          | Some ("A" | "B" | "C") as ok -> ok
          | Some other ->
            err (p ^ ".mix") (Printf.sprintf "unknown mix %S" other);
            None
          | None -> None
        in
        let ops = want_number e p "ops" in
        (match ops with
        | Some o when o <= 0.0 -> err (p ^ ".ops") "must be > 0"
        | Some _ | None -> ());
        positive e p "duration_s";
        let tput = want_number e p "throughput_ops_per_s" in
        (match tput with
        | Some t when t <= 0.0 ->
          err (p ^ ".throughput_ops_per_s") "must be > 0"
        | Some _ | None -> ());
        check_ms_obj e p "latency_ms";
        check_ms_obj e p "read_ms";
        check_ms_obj e p "write_ms";
        (match want_number e p "sampled_keys" with
        | Some k when k < 1.0 -> err (p ^ ".sampled_keys") "must be >= 1"
        | Some _ | None -> ());
        (match want_bool_value e p "atomic" with
        | Some false ->
          err p "a sampled key failed the atomicity checker: the per-key \
                 protocol broke under the KV plumbing"
        | Some true | None -> ());
        non_negative e p "starved";
        non_negative e p "late";
        non_negative e p "retries";
        non_negative e p "dropped_replies";
        positive e p "keys_touched";
        (match field e p "group_ops" with
        | Some (List per_group) ->
          List.iteri
            (fun g v ->
              match v with
              | Num n when n >= 0.0 -> ()
              | Num _ -> err (Printf.sprintf "%s.group_ops[%d]" p g) "must be >= 0"
              | Null | Bool _ | Str _ | List _ | Obj _ ->
                err (Printf.sprintf "%s.group_ops[%d]" p g) "expected a number")
            per_group;
          (match groups with
          | Some g when List.length per_group <> int_of_float g ->
            err (p ^ ".group_ops") "must have one entry per shard group"
          | Some _ | None -> ());
          let attempted =
            List.fold_left
              (fun acc v -> match[@warning "-4"] v with Num n -> acc +. n | _ -> acc)
              0.0 per_group
          in
          (match ops with
          | Some o when attempted < o ->
            err (p ^ ".group_ops")
              "attempted operations across groups below completed ops"
          | Some _ | None -> ())
        | Some (Null | Bool _ | Num _ | Str _ | Obj _) ->
          err (p ^ ".group_ops") "expected an array"
        | None -> err p "missing key \"group_ops\"");
        match[@warning "-4"]
          (plane, regime, groups, clients, keys, dist, mix, tput)
        with
        | Some pl, Some re, Some g, Some c, Some k, Some d, Some m, Some t ->
          rows := (pl, re, g, c, k, d, m, t) :: !rows
        | _ -> ())
      entries;
    let rows = !rows in
    if require_knee then begin
      (* Axis completeness: the committed full-budget document must
         carry the whole closed-loop mix-A grid on both planes. *)
      List.iter
        (fun pl ->
          List.iter
            (fun g ->
              List.iter
                (fun c ->
                  List.iter
                    (fun k ->
                      List.iter
                        (fun d ->
                          let present =
                            List.exists
                              (fun (pl', re, g', c', k', d', m, _) ->
                                pl' = pl && re = "closed" && g' = g && c' = c
                                && k' = k && d' = d && m = "A")
                              rows
                          in
                          if not present then
                            err path
                              (Printf.sprintf
                                 "missing closed mix-A row: plane=%s groups=%.0f \
                                  clients=%.0f keys=%.0f dist=%s"
                                 pl g c k d))
                        kv_grid_dists)
                    kv_grid_keys)
                kv_grid_clients)
            kv_grid_groups)
        [ "mux"; "sockets" ];
      (* The knee itself: in the scale-out regime (constant per-shard
         offered load) the 4-group aggregate must beat the 1-group
         baseline on every plane — capacity composes across shards. *)
      List.iter
        (fun pl ->
          let best g =
            List.fold_left
              (fun acc (pl', re, g', _, _, _, _, t) ->
                if pl' = pl && re = "scaleout" && g' = g then Float.max acc t
                else acc)
              0.0 rows
          in
          let t1 = best 1.0 and t4 = best 4.0 in
          if t1 = 0.0 || t4 = 0.0 then
            err path
              (Printf.sprintf
                 "%s: scale-out rows at 1 and 4 groups are required" pl)
          else if t4 <= t1 then
            err path
              (Printf.sprintf
                 "%s: 4-group scale-out throughput %.1f ops/s does not exceed \
                  the 1-group baseline %.1f — shard capacity did not compose"
                 pl t4 t1))
        [ "mux"; "sockets" ]
    end
  | Null | Bool _ | Num _ | Str _ | Obj _ -> err path "expected an array"

(* The soak section: the streaming checker riding the million-op
   workloads.  Shape and verdict semantics always (a violation in a
   regime where the theory promises atomicity means either the
   protocol or the online checker broke); volume and window-bound
   semantics only under [--require-knee], because the CI smoke
   regenerates the rows at a reduced op budget.  The window bound is
   the tentpole claim: peak resident operations must stay at least an
   order of magnitude below the stream length, or the checker is
   quietly holding history. *)

let check_soak ~require_knee path = function
  | List entries ->
    if entries = [] then err path "empty";
    (* (plane, ops, checked, peak_window) per well-formed row. *)
    let rows = ref [] in
    List.iteri
      (fun i e ->
        let p = Printf.sprintf "%s[%d]" path i in
        let plane =
          match want_string e p "plane" with
          | Some ("kv" | "session") as ok -> ok
          | Some other ->
            err (p ^ ".plane") (Printf.sprintf "unknown plane %S" other);
            None
          | None -> None
        in
        ignore (want_string e p "label");
        let ops = want_number e p "ops" in
        (match ops with
        | Some o when o <= 0.0 -> err (p ^ ".ops") "must be > 0"
        | Some _ | None -> ());
        positive e p "duration_s";
        positive e p "throughput_ops_per_s";
        positive e p "throughput_nocheck_ops_per_s";
        let checked = want_number e p "checked" in
        (match checked with
        | Some c when c <= 0.0 -> err (p ^ ".checked") "must be > 0"
        | Some _ | None -> ());
        (match want_number e p "keys" with
        | Some k when k < 1.0 -> err (p ^ ".keys") "must be >= 1"
        | Some _ | None -> ());
        let window = want_number e p "peak_window" in
        (match window with
        | Some w when w < 1.0 ->
          err (p ^ ".peak_window")
            "must be >= 1 (the checker always holds the in-flight window)"
        | Some _ | None -> ());
        positive e p "checker_ops_per_s";
        positive e p "batches";
        let violations = want_number e p "violations" in
        (match violations with
        | Some v when v < 0.0 -> err (p ^ ".violations") "must be >= 0"
        | Some _ | None -> ());
        (match
           ( want_bool_value e p "atomic",
             want_bool_value e p "expected_atomic",
             violations )
         with
        | Some false, Some true, _ ->
          err p
            "live checker reported a violation in a regime where the \
             theory promises atomicity"
        | Some true, _, Some v when v > 0.0 ->
          err p "atomic=true is inconsistent with violations > 0"
        | (Some _ | None), (Some _ | None), (Some _ | None) -> ());
        match[@warning "-4"] (plane, ops, checked, window) with
        | Some pl, Some o, Some c, Some w -> rows := (pl, o, c, w) :: !rows
        | _ -> ())
      entries;
    let rows = !rows in
    (* Both recording planes must ride: the sink wires into the
       session runner and the KV driver alike. *)
    List.iter
      (fun pl ->
        if not (List.exists (fun (pl', _, _, _) -> pl' = pl) rows) then
          err path (Printf.sprintf "missing soak row for plane %S" pl))
      [ "kv"; "session" ];
    (* The stream must be fully covered: the checker sees at least
       every completed operation (aborted clients may add a pending
       one on top). *)
    List.iteri
      (fun i (_, o, c, _) ->
        if c < o then
          err
            (Printf.sprintf "%s[%d]" path i)
            "checked below completed ops: the live checker missed part \
             of the stream")
      (List.rev rows);
    if require_knee then begin
      let headline =
        List.exists
          (fun (_, o, c, w) -> o >= 1_000_000.0 && c >= o && w <= o /. 10.0)
          rows
      in
      if not headline then
        err path
          "no row with ops >= 1e6, full stream coverage, and peak_window \
           <= ops/10 — the million-op live-checked soak is the headline \
           claim of this section"
    end
  | Null | Bool _ | Num _ | Str _ | Obj _ -> err path "expected an array"

(* The chaos section carries semantics, not just shape: the soak's
   verdicts must match the theory (atomic wherever the design point is
   possible) and the restart-fidelity script must show both halves of
   the crash-stop argument — recover atomic, fresh caught with a
   witness. *)

let check_chaos path = function
  | Obj _ as chaos ->
    non_negative chaos path "base_seed";
    (match field chaos path "soak" with
    | Some (List entries) ->
      if entries = [] then err (path ^ ".soak") "empty";
      List.iteri
        (fun i e ->
          let p = Printf.sprintf "%s.soak[%d]" path i in
          ignore (want_string e p "protocol");
          (match want_string e p "transport" with
          | Some ("mux" | "sockets") | None -> ()
          | Some other ->
            err (p ^ ".transport") (Printf.sprintf "unknown transport %S" other));
          non_negative e p "seed";
          non_negative e p "drop";
          non_negative e p "delay_s";
          non_negative e p "duplicate";
          want_bool e p "restarted";
          positive e p "ops";
          positive e p "duration_s";
          positive e p "write_rounds_per_op";
          positive e p "read_rounds_per_op";
          non_negative e p "retries";
          non_negative e p "late";
          non_negative e p "unavailable";
          match
            (want_bool_value e p "atomic", want_bool_value e p "expected_atomic")
          with
          | Some false, Some true ->
            err p "non-atomic in a possible regime: chaos broke the protocol"
          | (Some _ | None), (Some _ | None) -> ())
        entries
    | Some (Null | Bool _ | Num _ | Str _ | Obj _) ->
      err (path ^ ".soak") "expected an array"
    | None -> err path "missing key \"soak\"");
    (match field chaos path "restart" with
    | Some (List entries) ->
      if entries = [] then err (path ^ ".restart") "empty";
      List.iteri
        (fun i e ->
          let p = Printf.sprintf "%s.restart[%d]" path i in
          (match want_string e p "transport" with
          | Some ("mux" | "sockets") | None -> ()
          | Some other ->
            err (p ^ ".transport") (Printf.sprintf "unknown transport %S" other));
          let mode = want_string e p "mode" in
          let atomic = want_bool_value e p "atomic" in
          let witness = field e p "witness" in
          match mode with
          | Some "recover" ->
            if atomic = Some false then
              err p "restart-with-recovery must preserve atomicity"
          | Some "fresh" ->
            if atomic = Some true then
              err p "fresh restart must lose the write and fail the checker";
            (match witness with
            | Some (Str w) when w <> "" -> ()
            | Some Null | None ->
              err (p ^ ".witness") "fresh restart must record a checker witness"
            | Some (Bool _ | Num _ | Str _ | List _ | Obj _) ->
              err (p ^ ".witness") "expected a non-empty string")
          | Some other -> err (p ^ ".mode") (Printf.sprintf "unknown mode %S" other)
          | None -> ())
        entries
    | Some (Null | Bool _ | Num _ | Str _ | Obj _) ->
      err (path ^ ".restart") "expected an array"
    | None -> err path "missing key \"restart\"")
  | Null | Bool _ | Num _ | Str _ | List _ -> err path "expected an object"

(* The geo section is the WAN/geo acceptance grid: every registry
   protocol on both transports under at least three named profiles —
   all in possible regimes, so every verdict must be atomic — plus the
   region-outage scenario (a partition composed on top of the
   wan-3region delays) whose verdict must come from the streaming
   checker and also be atomic. *)

let check_geo path = function
  | Obj _ as geo ->
    (match field geo path "rows" with
    | Some (List entries) ->
      if entries = [] then err (path ^ ".rows") "empty";
      let profiles = ref [] and protocols = ref [] and pairs = ref [] in
      let remember r v = if not (List.mem v !r) then r := v :: !r in
      List.iteri
        (fun i e ->
          let p = Printf.sprintf "%s.rows[%d]" path i in
          let profile = want_string e p "profile" in
          let protocol = want_string e p "protocol" in
          ignore (want_string e p "design_point");
          let transport =
            match want_string e p "transport" with
            | Some ("mux" | "sockets") as t -> t
            | Some other ->
              err (p ^ ".transport")
                (Printf.sprintf "unknown transport %S" other);
              None
            | None -> None
          in
          positive e p "s";
          non_negative e p "t";
          positive e p "writers";
          positive e p "readers";
          positive e p "ops";
          positive e p "duration_s";
          positive e p "throughput_ops_per_s";
          positive e p "write_rounds_per_op";
          positive e p "read_rounds_per_op";
          check_ms_obj e p "write_ms";
          check_ms_obj e p "read_ms";
          (match want_bool_value e p "atomic" with
          | Some true | None -> ()
          | Some false ->
            err p "non-atomic under a geo profile: delays broke the protocol");
          Option.iter (remember profiles) profile;
          Option.iter (remember protocols) protocol;
          (match (protocol, transport) with
          | Some proto, Some tr -> remember pairs (proto, tr)
          | (Some _ | None), (Some _ | None) -> ()))
        entries;
      if List.length !profiles < 3 then
        err (path ^ ".rows")
          (Printf.sprintf
             "only %d named profile(s); the grid needs at least 3"
             (List.length !profiles));
      if List.length !protocols < 8 then
        err (path ^ ".rows")
          (Printf.sprintf
             "only %d protocol(s); the grid covers the whole registry (8)"
             (List.length !protocols));
      List.iter
        (fun proto ->
          List.iter
            (fun tr ->
              if not (List.mem (proto, tr) !pairs) then
                err (path ^ ".rows")
                  (Printf.sprintf "protocol %S missing on the %s transport"
                     proto tr))
            [ "mux"; "sockets" ])
        !protocols
    | Some (Null | Bool _ | Num _ | Str _ | Obj _) ->
      err (path ^ ".rows") "expected an array"
    | None -> err path "missing key \"rows\"");
    (match field geo path "outage" with
    | Some (List entries) ->
      if entries = [] then err (path ^ ".outage") "empty";
      List.iteri
        (fun i e ->
          let p = Printf.sprintf "%s.outage[%d]" path i in
          ignore (want_string e p "profile");
          ignore (want_string e p "protocol");
          (match want_string e p "transport" with
          | Some ("mux" | "sockets") | None -> ()
          | Some other ->
            err (p ^ ".transport") (Printf.sprintf "unknown transport %S" other));
          ignore (want_string e p "region");
          positive e p "window_s";
          positive e p "ops";
          positive e p "duration_s";
          non_negative e p "retries";
          non_negative e p "unavailable";
          (match want_string e p "check" with
          | Some "live" | None -> ()
          | Some other ->
            err (p ^ ".check")
              (Printf.sprintf
                 "verdict must come from the streaming checker (\"live\"), \
                  got %S"
                 other));
          match want_bool_value e p "atomic" with
          | Some true | None -> ()
          | Some false ->
            err p "a region outage may cost retries, never atomicity")
        entries
    | Some (Null | Bool _ | Num _ | Str _ | Obj _) ->
      err (path ^ ".outage") "expected an array"
    | None -> err path "missing key \"outage\"")
  | Null | Bool _ | Num _ | Str _ | List _ -> err path "expected an object"

let () =
  let require_knee = ref false in
  let path = ref "BENCH_results.json" in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--require-knee" -> require_knee := true
        | _ -> path := arg)
    Sys.argv;
  let path = !path in
  let contents =
    try
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    with Sys_error msg ->
      Printf.eprintf "cannot read %s: %s\n" path msg;
      exit 1
  in
  let doc =
    try parse contents
    with Parse_error msg ->
      Printf.eprintf "%s: JSON parse error %s\n" path msg;
      exit 1
  in
  ignore (want_string doc "$" "generated_by");
  positive doc "$" "recommended_domain_count";
  let optional = ref 0 in
  let section key checker =
    match field doc "$" key with
    | Some v ->
      incr optional;
      checker ("$." ^ key) v
    | None -> ()
  in
  section "wall_clock" check_wall_clock;
  section "micro_ns_per_run" check_micro;
  section "live" check_live;
  section "live_scaling" (check_scaling ~require_knee:!require_knee);
  section "kv_scaling" (check_kv_scaling ~require_knee:!require_knee);
  section "geo" check_geo;
  section "soak" (check_soak ~require_knee:!require_knee);
  section "chaos" check_chaos;
  if !optional = 0 then
    err "$"
      "no result section present (wall_clock / micro_ns_per_run / live / \
       live_scaling / kv_scaling / geo / soak / chaos)";
  (* The committed full-budget document must carry the geo grid; a
     partial regeneration that dropped it is a regression, not a
     smaller doc. *)
  (match (!require_knee, field doc "$" "geo") with
  | true, None ->
    err "$" "missing geo section (required with --require-knee)"
  | (true | false), (Some _ | None) -> ());
  match List.rev !errors with
  | [] ->
    Printf.printf "%s: schema OK (%d section(s))\n" path !optional;
    exit 0
  | es ->
    List.iter (fun e -> Printf.eprintf "%s: %s\n" path e) es;
    exit 1
