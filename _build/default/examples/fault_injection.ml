(* Fault injection: crash t servers mid-run, hold messages, and watch
   wait-freedom and atomicity survive — or not, when the budget is
   exceeded.

     dune exec examples/fault_injection.exe *)

open Mwregister

let plans =
  [
    Runtime.write_plan ~writer:0 ~think:15.0 5;
    Runtime.write_plan ~writer:1 ~start_at:3.0 ~think:20.0 5;
    Runtime.read_plan ~reader:0 ~start_at:1.0 ~think:12.0 8;
    Runtime.read_plan ~reader:1 ~start_at:2.0 ~think:14.0 8;
  ]

let describe name verdict =
  let ops = History.ops verdict.outcome.Runtime.history in
  let completed = List.length (List.filter Op.is_complete ops) in
  Printf.printf "%-34s ops %2d/%2d completed, consistency: %s\n" name completed
    (List.length ops)
    (Consistency.level_to_string verdict.consistency)

let () =
  print_endline "== fault injection on the W2R1 register (S=7, t=2) ==";
  print_endline "";

  (* 1. Crashes within the budget: nothing visible happens. *)
  let crash2 =
    Adversary.apply (Adversary.crash_at [ (25.0, 1); (60.0, 4) ])
  in
  describe "crash 2 of 7 (within t=2)"
    (run_and_check ~seed:5 ~register:Registry.fastread_w2r1 ~s:7 ~t:2 ~w:2 ~r:2
       ~adversary:crash2 plans);

  (* 2. Random skips within the budget: still atomic, still wait-free. *)
  let topology = Topology.make ~servers:7 ~writers:2 ~readers:2 in
  let skips =
    Adversary.apply
      (Adversary.random_skips ~seed:5 ~topology ~t_budget:2 ~window:25.0)
  in
  describe "random per-epoch skips (<= t)"
    (run_and_check ~seed:5 ~register:Registry.fastread_w2r1 ~s:7 ~t:2 ~w:2 ~r:2
       ~adversary:skips plans);

  (* 3. Exceed the budget: crash t+1 servers.  Quorums of size S-t can no
     longer form; operations block (the history shows pending ops).  This
     is not a bug — it is the t < S/2 row of Table 1. *)
  let crash3 =
    Adversary.apply (Adversary.crash_at [ (25.0, 1); (26.0, 4); (27.0, 6) ])
  in
  describe "crash 3 of 7 (budget exceeded)"
    (run_and_check ~seed:5 ~register:Registry.fastread_w2r1 ~s:7 ~t:2 ~w:2 ~r:2
       ~adversary:crash3 plans);

  print_endline "";
  print_endline
    "Within the declared budget the register is wait-free and atomic; one";
  print_endline
    "crash beyond it and operations stall forever — exactly the t-threshold";
  print_endline "the quorum arithmetic (lib/quorum) predicts."
