(* Quickstart: emulate one multi-writer atomic register, run a small
   workload, and check the resulting history against Definition 2.1.

     dune exec examples/quickstart.exe *)

open Mwregister

let () =
  print_endline "== mwregister quickstart ==";
  print_endline "";
  print_endline
    "Cluster: 5 servers (1 may crash), 2 writers, 2 readers, running the";
  print_endline
    "paper's W2R1 register: two-round writes, one-round (fast) reads.";
  print_endline "";

  (* Each client runs a sequential script; values are auto-generated and
     globally unique so the checker can map reads to writes. *)
  let plans =
    [
      Runtime.write_plan ~writer:0 ~think:20.0 3;
      Runtime.write_plan ~writer:1 ~start_at:5.0 ~think:25.0 3;
      Runtime.read_plan ~reader:0 ~start_at:2.0 ~think:15.0 5;
      Runtime.read_plan ~reader:1 ~start_at:4.0 ~think:18.0 5;
    ]
  in
  let verdict =
    run_and_check ~seed:7 ~register:Registry.fastread_w2r1 ~s:5 ~t:1 ~w:2 ~r:2
      plans
  in

  print_endline "History (invocation order):";
  Format.printf "%a@." History.pp verdict.outcome.Runtime.history;

  Format.printf "consistency level : %a@." Consistency.pp_level
    verdict.consistency;
  Format.printf "wait-free         : %b@." verdict.wait_free;
  Format.printf "MWA0-MWA4         : %s@."
    (if verdict.mwa_failures = [] then "all hold" else "violated!");
  let reads = Stats.reads verdict.outcome.Runtime.history in
  let writes = Stats.writes verdict.outcome.Runtime.history in
  Format.printf "read latency      : %a@." Stats.pp_summary reads;
  Format.printf "write latency     : %a@." Stats.pp_summary writes;
  print_endline "";
  print_endline
    "Note the asymmetry: reads take one round-trip, writes two — the W2R1";
  print_endline
    "design point, which the paper proves is the only fast/atomic option";
  print_endline "for multiple writers (and only while R < S/t - 2)."
