(* Geo-replication scenario: the paper's motivating trade-off, measured.

   A Cassandra-style deployment: five replicas across three regions,
   clients co-located with one region.  We compare every design point on
   read/write latency and on the consistency the checker actually
   grades, including under an adversarial schedule.

     dune exec examples/geo_replication.exe *)

open Mwregister

let latency =
  Latency.geo ~region_of:(fun n -> n mod 3) ~local:5.0 ~cross:40.0 ~jitter:10.0

let plans =
  [
    Runtime.write_plan ~writer:0 ~think:50.0 4;
    Runtime.write_plan ~writer:1 ~start_at:10.0 ~think:60.0 4;
    Runtime.read_plan ~reader:0 ~start_at:5.0 ~think:40.0 8;
    Runtime.read_plan ~reader:1 ~start_at:15.0 ~think:45.0 8;
  ]

(* The schedule that breaks naive fast writes: the higher-id writer goes
   first, sequentially. *)
let inversion_plans =
  [
    Runtime.write_plan ~writer:1 ~start_at:0.0 1;
    Runtime.write_plan ~writer:0 ~start_at:300.0 1;
    Runtime.read_plan ~reader:0 ~start_at:600.0 1;
  ]

let () =
  print_endline "== geo-replicated register: latency vs consistency ==";
  Printf.printf "%-28s %-7s %-11s %-11s %-12s %s\n" "protocol" "rounds"
    "read p50" "write p50" "benign" "adversarial";
  print_endline (String.make 88 '-');
  List.iter
    (fun register ->
      let module R = (val register : Register_intf.S) in
      let v =
        run_and_check ~seed:11 ~latency ~register ~s:5 ~t:1 ~w:2 ~r:2 plans
      in
      let adv =
        run_and_check ~seed:12 ~latency ~register ~s:5 ~t:1 ~w:2 ~r:2
          inversion_plans
      in
      let reads = Stats.reads v.outcome.Runtime.history in
      let writes = Stats.writes v.outcome.Runtime.history in
      Printf.printf "%-28s W%dR%d    %-11.1f %-11.1f %-12s %s\n" R.name
        (Bounds.write_rounds R.design_point)
        (Bounds.read_rounds R.design_point)
        reads.Stats.p50 writes.Stats.p50
        (Consistency.level_to_string v.consistency)
        (Consistency.level_to_string adv.consistency))
    Registry.multi_writer;
  print_endline "";
  print_endline
    "The Cassandra dilemma from the paper's introduction, quantified: a fast";
  print_endline
    "(one round-trip) write buys ~half the write latency but surrenders";
  print_endline
    "atomicity the moment two writers interleave badly — and Theorem 1 says";
  print_endline
    "no cleverness can fix it.  The fast READ of the W2R1 register is the";
  print_endline "only latency win that keeps the contract."
