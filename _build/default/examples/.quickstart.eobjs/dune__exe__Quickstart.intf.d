examples/quickstart.mli:
