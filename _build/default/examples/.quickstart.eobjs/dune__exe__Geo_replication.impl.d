examples/geo_replication.ml: Bounds Consistency Latency List Mwregister Printf Register_intf Registry Runtime Stats String
