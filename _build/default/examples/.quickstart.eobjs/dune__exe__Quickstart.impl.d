examples/quickstart.ml: Consistency Format History Mwregister Registry Runtime Stats
