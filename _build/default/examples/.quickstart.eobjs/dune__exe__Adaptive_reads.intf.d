examples/adaptive_reads.mli:
