examples/adaptive_reads.ml: Latency List Mwregister Option Printf Registry Runtime Stats String Threshold
