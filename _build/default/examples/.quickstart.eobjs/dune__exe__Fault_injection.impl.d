examples/fault_injection.ml: Adversary Consistency History List Mwregister Op Printf Registry Runtime Topology
