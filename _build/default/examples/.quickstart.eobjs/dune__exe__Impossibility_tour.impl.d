examples/impossibility_tour.ml: Array Chain_alpha Format List Mwregister Printf Registry Sieve Strategy String Threshold W1r2_theorem
