(* Beyond the threshold: what the impossibility theorem actually costs.

   At R >= S/t - 2 no strictly-fast read can be atomic (§5, Fig. 9).  The
   adaptive register accepts that and goes slow exactly when a
   margin-safe certificate is missing.  This example runs it side by side
   with the strict fast read, across the boundary, under both the benign
   and the adversarial schedule.

     dune exec examples/adaptive_reads.exe *)

open Mwregister

let () =
  print_endline "== strict fast reads vs adaptive reads across the threshold ==";
  print_endline "";
  print_endline "S=6, t=1: the boundary is R < 4.";
  print_endline "";
  Printf.printf "%-4s %-22s %-22s %-20s\n" "R" "strict W2R1 (attack)"
    "adaptive (attack)" "adaptive read RTTs";
  print_endline (String.make 72 '-');
  List.iter
    (fun r ->
      let strict =
        Threshold.attack ~register:Registry.fastread_w2r1 ~s:6 ~t:1 ~r
      in
      let adaptive = Threshold.attack ~register:Registry.adaptive ~s:6 ~t:1 ~r in
      (* Measure the read-latency cost on a benign contended run. *)
      let v =
        run_and_check ~seed:5
          ~latency:(Latency.constant 2.0)
          ~register:Registry.adaptive ~s:6 ~t:1 ~w:2 ~r
          ([
             Runtime.write_plan ~writer:0 ~think:12.0 3;
             Runtime.write_plan ~writer:1 ~start_at:3.0 ~think:15.0 3;
           ]
          @ List.init r (fun i ->
                Runtime.read_plan ~reader:i
                  ~start_at:(1.0 +. float_of_int i)
                  ~think:10.0 6))
      in
      let reads = Stats.reads v.outcome.Runtime.history in
      Printf.printf "%-4d %-22s %-22s %.2f\n" r
        (if strict.Threshold.atomic then "atomic"
         else
           Printf.sprintf "VIOLATED (%s)"
             (Option.value ~default:"?" strict.Threshold.mwa_failure))
        (if adaptive.Threshold.atomic then "atomic" else "VIOLATED")
        (reads.Stats.mean /. 4.0))
    [ 2; 3; 4; 5; 6 ];
  print_endline "";
  print_endline
    "The theorem is not a dead end; it is a price list.  Strictly-fast reads";
  print_endline
    "stop existing at the threshold, and the adaptive register shows the";
  print_endline
    "minimal payment: an occasional second (repair) round-trip, only when a";
  print_endline "certificate with more-than-t margin cannot be produced."
