(** The interface every register protocol implements.

    A protocol is a way of emulating one shared read/write register over
    the client–server substrate: it builds a *cluster* (its servers, its
    clients, its private network) inside an {!Env.t}, and exposes the two
    operations of §2.1.  Operations are continuation-passing because the
    simulator is event-driven; the runtime (not the protocol) records
    invocation/response events into the history.

    Operations also report the [(ts, wid)] tag of the value they wrote or
    returned, when the protocol has one — this feeds the MWA0–MWA4
    property checker.  Protocols without internal timestamps (the naive
    candidates) may report [None]. *)

module type S = sig
  val name : string
  (** Human-readable, e.g. ["LS97 (W2R2)"]. *)

  val design_point : Quorums.Bounds.design_point
  (** Where the protocol sits in the Fig. 2 lattice: how many round-trips
      its writes and reads take. *)

  type cluster

  val create : Env.t -> cluster
  (** Spin up servers and client endpoints.  The cluster enforces the
      model's communication restrictions (no server↔server traffic). *)

  val control : cluster -> Control.t
  (** Adversarial handle over the cluster's network. *)

  val write :
    cluster ->
    writer:int ->
    value:int ->
    k:(Checker.Mw_properties.tag option -> unit) ->
    unit
  (** Start [write(value)] at writer [writer] (0-based).  [k] fires when
      the write completes, with the timestamp the protocol assigned. *)

  val read :
    cluster ->
    reader:int ->
    k:(int -> Checker.Mw_properties.tag option -> unit) ->
    unit
  (** Start [read()] at reader [reader]; [k value tag] fires on completion. *)
end

type t = (module S)
