(** The client side of one round-trip of communication (§2.2).

    In each round-trip the client sends its request to *all* servers and
    waits for replies from any [S − t] of them (a crash-tolerant quorum);
    the continuation fires exactly once, with the quorum's replies in
    arrival order.  Replies arriving after the quorum are counted but not
    re-delivered — the round-trip is over.  This is exactly the
    communication pattern every protocol in the paper (and in ABD/LS97/
    DGLV) is built from, so all register implementations share this one
    primitive. *)

open Simulation

type ('req, 'rep) t

val create :
  net:(('req, 'rep) Message.t) Network.t ->
  node:int ->
  servers:int array ->
  quorum:int ->
  ('req, 'rep) t
(** Registers the delivery handler for [node] on [net].  [quorum] replies
    complete a round-trip; it must satisfy [0 < quorum <= Array.length servers]. *)

val exec : ('req, 'rep) t -> 'req -> ((int * 'rep) list -> unit) -> unit
(** [exec t req k] starts a round-trip: broadcasts [req] and calls
    [k replies] when the quorum is reached, where [replies] are
    [(server, reply)] pairs in arrival order. *)

val exec_skipping :
  ('req, 'rep) t -> skip:int list -> 'req -> ((int * 'rep) list -> unit) -> unit
(** Like {!exec} but does not send to servers in [skip] — the paper's
    "the round-trip skips server s" construction, from the client side.
    The quorum requirement is unchanged, so skipping more than
    [S − quorum] servers makes the round-trip block forever. *)

val rounds_started : ('req, 'rep) t -> int
val rounds_completed : ('req, 'rep) t -> int
val late_replies : ('req, 'rep) t -> int
