open Simulation

type decision = Network.action

type t = {
  crash_server : int -> unit;
  crashed_servers : unit -> int;
  set_route : (src:int -> dst:int -> now:float -> decision) option -> unit;
  release_held : unit -> unit;
  held : unit -> int;
  net_stats : unit -> Network.stats;
}

let of_network net ~topology =
  {
    crash_server =
      (fun i -> Network.crash net (Topology.server_node topology i));
    crashed_servers = (fun () -> Network.crashed_count net);
    set_route =
      (fun filter ->
        match filter with
        | None -> Network.set_filter net None
        | Some f ->
          Network.set_filter net
            (Some
               (fun env ->
                 f ~src:env.Network.src ~dst:env.Network.dst
                   ~now:env.Network.sent_at)));
    release_held = (fun () -> Network.release_held net);
    held = (fun () -> Network.held_count net);
    net_stats = (fun () -> Network.stats net);
  }
