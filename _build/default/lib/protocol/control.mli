(** Untyped adversarial handle over a protocol's private network.

    Each register protocol owns a network instantiated at its own message
    type; the adversary (fault plans, schedule shapers, the runtime) must
    nevertheless manipulate any protocol uniformly.  [Control.t] exposes
    the message-type-independent capabilities — crash a server, steer
    messages by (src, dst, time), release held messages — as closures
    built by the protocol at cluster-creation time. *)

open Simulation

type decision = Network.action

type t = {
  crash_server : int -> unit;
      (** Crash the i-th server (index, not node id). *)
  crashed_servers : unit -> int;
  set_route : (src:int -> dst:int -> now:float -> decision) option -> unit;
      (** Install a filter deciding each message's fate at send time from
          its endpoints and the current virtual time. *)
  release_held : unit -> unit;
      (** Deliver all held ("skipped") messages — the paper's "delayed
          until the rest of the execution has finished". *)
  held : unit -> int;
  net_stats : unit -> Network.stats;
}

val of_network : 'msg Network.t -> topology:Topology.t -> t
(** The standard handle every protocol exposes: crash-by-server-index,
    route filtering, held-message release and stats, all delegated to the
    protocol's own typed network. *)
