type t = { servers : int; writers : int; readers : int }

let make ~servers ~writers ~readers =
  if servers < 2 then invalid_arg "Topology.make: need at least 2 servers";
  if writers < 1 then invalid_arg "Topology.make: need at least 1 writer";
  if readers < 1 then invalid_arg "Topology.make: need at least 1 reader";
  { servers; writers; readers }

let node_count t = t.servers + t.writers + t.readers

let server_node t i =
  if i < 0 || i >= t.servers then invalid_arg "Topology.server_node";
  i

let writer_node t i =
  if i < 0 || i >= t.writers then invalid_arg "Topology.writer_node";
  t.servers + i

let reader_node t i =
  if i < 0 || i >= t.readers then invalid_arg "Topology.reader_node";
  t.servers + t.writers + i

let server_nodes t = Array.init t.servers (fun i -> i)

let is_server t node = node >= 0 && node < t.servers

let is_client t node = node >= t.servers && node < node_count t

let proc_of_node t node =
  if is_server t node then None
  else if node < t.servers + t.writers then Some (Histories.Op.Writer (node - t.servers))
  else if node < node_count t then
    Some (Histories.Op.Reader (node - t.servers - t.writers))
  else None

let server_index t node = if is_server t node then Some node else None

let forbidden t ~src ~dst =
  (is_server t src && is_server t dst) || (is_client t src && is_client t dst)

let pp ppf t =
  Format.fprintf ppf "S=%d W=%d R=%d" t.servers t.writers t.readers
