lib/protocol/round_trip.mli: Message Network Simulation
