lib/protocol/topology.ml: Array Format Histories
