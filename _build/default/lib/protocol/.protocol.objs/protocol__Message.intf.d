lib/protocol/message.mli: Format
