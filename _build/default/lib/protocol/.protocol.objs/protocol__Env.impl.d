lib/protocol/env.ml: Engine Latency Simulation Topology Trace
