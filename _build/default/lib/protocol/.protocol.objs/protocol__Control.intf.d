lib/protocol/control.mli: Network Simulation Topology
