lib/protocol/runtime.mli: Checker Control Engine Env Histories History Network Op Register_intf Simulation Trace
