lib/protocol/message.ml: Format
