lib/protocol/topology.mli: Format Histories
