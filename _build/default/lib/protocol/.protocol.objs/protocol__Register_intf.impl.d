lib/protocol/register_intf.ml: Checker Control Env Quorums
