lib/protocol/server.ml: Message Network Printf Simulation
