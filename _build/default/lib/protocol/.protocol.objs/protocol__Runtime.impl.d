lib/protocol/runtime.ml: Checker Control Engine Env Hashtbl Histories History List Network Op Recorder Register_intf Simulation Trace
