lib/protocol/env.mli: Engine Latency Simulation Topology Trace
