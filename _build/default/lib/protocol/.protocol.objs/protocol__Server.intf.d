lib/protocol/server.mli: Message Network Simulation
