lib/protocol/round_trip.ml: Array Hashtbl List Message Network Printf Simulation
