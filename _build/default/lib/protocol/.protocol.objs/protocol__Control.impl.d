lib/protocol/control.ml: Network Simulation Topology
