(** Server skeleton.

    A server in the paper's model is purely reactive: upon a query it
    replies with the requested information, upon an update it stores the
    client's data and replies (possibly just an ACK).  [attach] installs
    such a handler at a network node; the handler's closure owns the
    server's local replica state. *)

open Simulation

val attach :
  net:(('req, 'rep) Message.t) Network.t ->
  node:int ->
  handler:(client:int -> 'req -> 'rep) ->
  unit
(** Every incoming request is answered with [handler ~client payload],
    echoed back with the request's round-trip id.  Receiving a reply at a
    server raises (servers only ever receive requests). *)
