open Histories
open Simulation

type step = Write | Read | Think of float

type plan = { proc : Op.proc; start_at : float; steps : step list }

type outcome = {
  history : History.t;
  tagged : Checker.Mw_properties.tagged list;
  net_stats : Network.stats;
  sim_time : float;
  events : int;
  trace : Trace.t option;
}

let run ~register ~env ~plans ?adversary ?(deadline = 1e7) () =
  let module R = (val register : Register_intf.S) in
  let engine = env.Env.engine in
  let cluster = R.create env in
  let ctl = R.control cluster in
  (match adversary with None -> () | Some a -> a ctl engine);
  let recorder = Recorder.create () in
  let tags : (int, Checker.Mw_properties.tag) Hashtbl.t = Hashtbl.create 64 in
  let run_plan plan =
    let rec next steps =
      match steps with
      | [] -> ()
      | Think d :: rest -> Engine.schedule engine ~delay:d (fun () -> next rest)
      | Write :: rest ->
        let writer =
          match plan.proc with
          | Op.Writer i -> i
          | Op.Reader _ -> invalid_arg "Runtime: a reader plan contains a write"
        in
        let value = Recorder.fresh_value recorder in
        let h =
          Recorder.begin_write recorder ~proc:plan.proc ~value
            ~now:(Engine.now engine)
        in
        R.write cluster ~writer ~value ~k:(fun tag ->
            Recorder.finish_write recorder h ~now:(Engine.now engine);
            (match tag with
            | None -> ()
            | Some tag ->
              (* The recorder hands out ids in order; recover this op's id
                 from the snapshot later via the tag table keyed by value. *)
              Hashtbl.replace tags value tag);
            next rest)
      | Read :: rest ->
        let reader =
          match plan.proc with
          | Op.Reader i -> i
          | Op.Writer _ -> invalid_arg "Runtime: a writer plan contains a read"
        in
        let h =
          Recorder.begin_read recorder ~proc:plan.proc ~now:(Engine.now engine)
        in
        R.read cluster ~reader ~k:(fun value tag ->
            Recorder.finish_read recorder h ~now:(Engine.now engine)
              ~result:value;
            (match tag with
            | None -> ()
            | Some tag -> Hashtbl.replace tags (-(Recorder.handle_id h) - 1) tag);
            next rest)
    in
    Engine.schedule_at engine ~time:plan.start_at (fun () -> next plan.steps)
  in
  List.iter run_plan plans;
  Engine.run ~until:deadline engine;
  (* Skipped messages arrive after the execution proper has finished. *)
  ctl.Control.release_held ();
  Engine.run ~until:(deadline *. 2.0) engine;
  let history = Recorder.snapshot recorder in
  let tag_of (o : Op.t) =
    match o.Op.kind with
    | Op.Write v -> Hashtbl.find_opt tags v
    | Op.Read -> Hashtbl.find_opt tags (-o.Op.id - 1)
  in
  let tagged =
    List.map
      (fun o -> { Checker.Mw_properties.op = o; tag = tag_of o })
      (History.ops history)
  in
  {
    history;
    tagged;
    net_stats = ctl.Control.net_stats ();
    sim_time = Engine.now engine;
    events = Engine.processed engine;
    trace = env.Env.trace;
  }

let repeat n step ~think =
  let rec go n acc =
    if n <= 0 then List.rev acc
    else
      let acc = if think > 0.0 && acc <> [] then step :: Think think :: acc else step :: acc in
      go (n - 1) acc
  in
  go n []

let write_plan ~writer ?(start_at = 0.0) ?(think = 0.0) n =
  { proc = Op.Writer writer; start_at; steps = repeat n Write ~think }

let read_plan ~reader ?(start_at = 0.0) ?(think = 0.0) n =
  { proc = Op.Reader reader; start_at; steps = repeat n Read ~think }
