open Simulation

type t = {
  engine : Engine.t;
  topology : Topology.t;
  tolerance : int;
  latency : Latency.t;
  trace : Trace.t option;
}

let make ?(seed = 42) ?(latency = Latency.uniform ~lo:1.0 ~hi:10.0)
    ?(tracing = false) ~s ~t ~w ~r () =
  if t < 0 || t >= s then invalid_arg "Env.make: need 0 <= t < s";
  {
    engine = Engine.create ~seed ();
    topology = Topology.make ~servers:s ~writers:w ~readers:r;
    tolerance = t;
    latency;
    trace = (if tracing then Some (Trace.create ()) else None);
  }

let quorum_size t = t.topology.Topology.servers - t.tolerance

let s t = t.topology.Topology.servers
let t_ t = t.tolerance
let w t = t.topology.Topology.writers
let r t = t.topology.Topology.readers
