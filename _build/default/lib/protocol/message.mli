(** Request/reply framing for client–server round-trips.

    Every protocol message is either a client's request — a query or an
    update in the vocabulary of §2.2 — or a server's reply, both tagged
    with a per-client round-trip sequence number so a client can match
    replies to the round-trip that solicited them. *)

type ('req, 'rep) t =
  | Request of { rt : int; client : int; payload : 'req }
  | Reply of { rt : int; server : int; payload : 'rep }

val pp :
  req:(Format.formatter -> 'req -> unit) ->
  rep:(Format.formatter -> 'rep -> unit) ->
  Format.formatter ->
  ('req, 'rep) t ->
  unit
