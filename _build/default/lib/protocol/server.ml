open Simulation

let attach ~net ~node ~handler =
  Network.register net ~node (fun env ->
      match env.Network.payload with
      | Message.Reply _ ->
        invalid_arg (Printf.sprintf "Server: node %d received a reply" node)
      | Message.Request { rt; client; payload } ->
        let rep = handler ~client payload in
        Network.send net ~src:node ~dst:client
          (Message.Reply { rt; server = node; payload = rep }))
