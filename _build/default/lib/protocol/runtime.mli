(** Binding a register protocol to the simulator and a workload.

    The runtime creates a cluster, drives each client through a
    sequential *plan* of operations (well-formedness by construction:
    one client never overlaps its own operations), records the history,
    runs the engine to quiescence, then releases any adversarially held
    messages and lets the execution settle — the paper's convention that
    skipped messages arrive "after the rest of the execution has
    finished". *)

open Histories
open Simulation

type step =
  | Write          (** Write a fresh, globally unique value. *)
  | Read
  | Think of float (** Local delay before the next step. *)

type plan = { proc : Op.proc; start_at : float; steps : step list }
(** One client's script.  [proc] selects the client: [Writer i] drives
    the i-th writer, [Reader j] the j-th reader. *)

type outcome = {
  history : History.t;
  tagged : Checker.Mw_properties.tagged list;
      (** The same operations annotated with their (ts,wid) tags, for the
          MWA checker; ops without tags are included with [tag = None]. *)
  net_stats : Network.stats;
  sim_time : float;
  events : int;
  trace : Trace.t option;
}

val run :
  register:Register_intf.t ->
  env:Env.t ->
  plans:plan list ->
  ?adversary:(Control.t -> Engine.t -> unit) ->
  ?deadline:float ->
  unit ->
  outcome
(** Execute the plans.  [adversary] runs once after cluster creation and
    may install route filters or schedule crashes.  [deadline] caps
    virtual time (default 1e7) as a safety net against blocked clients;
    operations still in flight then appear pending in the history. *)

val write_plan : writer:int -> ?start_at:float -> ?think:float -> int -> plan
(** [write_plan ~writer n] — n writes separated by [think] (default 0). *)

val read_plan : reader:int -> ?start_at:float -> ?think:float -> int -> plan
