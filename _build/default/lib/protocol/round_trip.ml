open Simulation

type ('req, 'rep) pending = {
  mutable replies : (int * 'rep) list; (* newest first *)
  mutable fired : bool;
  need : int;
  k : (int * 'rep) list -> unit;
}

type ('req, 'rep) t = {
  net : ('req, 'rep) Message.t Network.t;
  node : int;
  servers : int array;
  quorum : int;
  mutable next_rt : int;
  pending : (int, ('req, 'rep) pending) Hashtbl.t;
  mutable started : int;
  mutable completed : int;
  mutable late : int;
}

let on_delivery t (env : ('req, 'rep) Message.t Network.envelope) =
  match env.Network.payload with
  | Message.Request _ ->
    invalid_arg (Printf.sprintf "Round_trip: client node %d received a request" t.node)
  | Message.Reply { rt; server; payload } -> (
    match Hashtbl.find_opt t.pending rt with
    | None -> t.late <- t.late + 1
    | Some p ->
      if p.fired then t.late <- t.late + 1
      else begin
        p.replies <- (server, payload) :: p.replies;
        if List.length p.replies >= p.need then begin
          p.fired <- true;
          t.completed <- t.completed + 1;
          Hashtbl.remove t.pending rt;
          p.k (List.rev p.replies)
        end
      end)

let create ~net ~node ~servers ~quorum =
  if quorum <= 0 || quorum > Array.length servers then
    invalid_arg "Round_trip.create: quorum out of range";
  let t =
    {
      net;
      node;
      servers;
      quorum;
      next_rt = 0;
      pending = Hashtbl.create 8;
      started = 0;
      completed = 0;
      late = 0;
    }
  in
  Network.register net ~node (on_delivery t);
  t

let exec_skipping t ~skip payload k =
  let rt = t.next_rt in
  t.next_rt <- rt + 1;
  t.started <- t.started + 1;
  Hashtbl.replace t.pending rt { replies = []; fired = false; need = t.quorum; k };
  Array.iter
    (fun s ->
      if not (List.mem s skip) then
        Network.send t.net ~src:t.node ~dst:s
          (Message.Request { rt; client = t.node; payload }))
    t.servers

let exec t payload k = exec_skipping t ~skip:[] payload k

let rounds_started t = t.started
let rounds_completed t = t.completed
let late_replies t = t.late
