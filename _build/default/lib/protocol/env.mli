(** Configuration of one simulated deployment. *)

open Simulation

type t = {
  engine : Engine.t;
  topology : Topology.t;
  tolerance : int;          (** t — crash faults to survive. *)
  latency : Latency.t;
  trace : Trace.t option;
}

val make :
  ?seed:int ->
  ?latency:Latency.t ->
  ?tracing:bool ->
  s:int ->
  t:int ->
  w:int ->
  r:int ->
  unit ->
  t
(** Fresh engine + topology.  Defaults: seed 42, latency
    [uniform ~lo:1.0 ~hi:10.0], no tracing.  Validates [0 ≤ t < s]. *)

val quorum_size : t -> int
(** [S − t], the reply count every round-trip waits for. *)

val s : t -> int
val t_ : t -> int
val w : t -> int
val r : t -> int
