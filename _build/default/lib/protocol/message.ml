type ('req, 'rep) t =
  | Request of { rt : int; client : int; payload : 'req }
  | Reply of { rt : int; server : int; payload : 'rep }

let pp ~req ~rep ppf = function
  | Request r -> Format.fprintf ppf "req[rt=%d c=%d %a]" r.rt r.client req r.payload
  | Reply r -> Format.fprintf ppf "rep[rt=%d s=%d %a]" r.rt r.server rep r.payload
