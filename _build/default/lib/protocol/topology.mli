(** Node layout of the paper's system model (Fig. 1).

    Three disjoint process sets — servers Σsv, writers Σwr, readers Σrd —
    mapped onto the integer node ids the {!Simulation.Network} uses:
    servers occupy [0 … S−1], writers [S … S+W−1], readers
    [S+W … S+W+R−1].  Clients talk to servers; servers never talk to each
    other (enforced via {!forbidden}). *)

type t = { servers : int; writers : int; readers : int }

val make : servers:int -> writers:int -> readers:int -> t
(** Validates [servers ≥ 2], [writers ≥ 1], [readers ≥ 1]. *)

val node_count : t -> int

val server_node : t -> int -> int
val writer_node : t -> int -> int
val reader_node : t -> int -> int

val server_nodes : t -> int array
(** All server node ids, in index order. *)

val is_server : t -> int -> bool
val is_client : t -> int -> bool

val proc_of_node : t -> int -> Histories.Op.proc option
(** The client process living at a node, [None] for servers. *)

val server_index : t -> int -> int option
(** Inverse of [server_node]. *)

val forbidden : t -> src:int -> dst:int -> bool
(** True for server→server and client→client messages, which the model
    does not allow. *)

val pp : Format.formatter -> t -> unit
