(** Interval (zone) formulation of the atomicity check — O(n log n).

    The saturation checker ({!Atomicity}) materialises the obligation
    graph; this checker exploits its structure instead.  Group operations
    into *clusters* — a write together with the reads that return its
    value — and summarise each cluster [u] by

    - [a(u)]: the earliest response among its operations, and
    - [b(u)]: the latest invocation among its operations.

    An obligation edge [u → v] exists iff some operation of [u] precedes
    (in real time) some operation of [v], i.e. iff [a(u) < b(v)].  For
    threshold relations of this shape every cycle contains a 2-cycle
    (order a cycle's clusters by [a]; chasing the inequalities around the
    cycle yields [a < a], absurd, unless two of them already conflict
    pairwise), so the graph is acyclic iff

    {v no pair u ≠ v has  a(u) < b(v)  and  a(v) < b(u). v}

    Pairs are checked by a single sweep over clusters sorted by [a] with
    a prefix maximum of [b] — O(n log n) against the saturation
    checker's O(n²) edge construction.  The two are equivalent by the
    argument above, and the property suite cross-validates them (and the
    brute-force oracle) on thousands of random histories. *)

open Histories

val check : History.t -> (unit, Witness.t) result
(** Same contract as {!Atomicity.check}: pending reads ignored, pending
    writes may take effect, [Invalid_argument] on ill-formed or
    non-unique-value histories.  Conflicting cluster pairs are reported
    as an {!Witness.Ordering_cycle} over their writes. *)

val is_atomic : History.t -> bool
