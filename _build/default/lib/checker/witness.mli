(** Violation witnesses.

    When a checker rejects a history it produces a witness explaining
    *why*, in terms of the paper's Definition 2.1: a read that returns a
    value that was never written, a read from the future, or a cycle of
    ordering obligations that no sequential permutation π can satisfy. *)

open Histories

type reason =
  | Unwritten_value of { read : Op.t; value : int }
      (** The read returned a value no write (and not the initial value)
          ever stored. *)
  | Future_read of { read : Op.t; write : Op.t }
      (** The read responded before the write of its value was invoked —
          violates the real-time requirement. *)
  | Stale_read of { read : Op.t; write : Op.t; newer : Op.t }
      (** [newer] was written entirely between [write] and [read], so the
          read's value is not that of the latest preceding write. *)
  | Ordering_cycle of Op.t list
      (** A cycle of operations whose ordering obligations (real-time +
          read-from) cannot be embedded in any sequential permutation. *)
  | Property of { name : string; detail : string; culprits : Op.t list }
      (** A named property (e.g. MWA4) failed. *)

type t = { reason : reason; history_size : int }

val make : reason -> history_size:int -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val short : t -> string
(** One-line classification, e.g. ["stale-read"]. *)
