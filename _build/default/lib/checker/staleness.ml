open Histories

type per_read = {
  read : Op.t;
  from_write : Op.t option;
  staleness : int;
}

let analyze h =
  if not (History.unique_writes h) then
    invalid_arg "Staleness.analyze: written values are not unique";
  let h = History.strip_pending_reads h in
  let writes = Atomicity.initial_write :: History.writes h in
  let find_write v = List.find_opt (fun w -> Op.written_value w = Some v) writes in
  List.map
    (fun (r : Op.t) ->
      match r.Op.result with
      | None -> { read = r; from_write = None; staleness = max_int }
      | Some v -> (
        match find_write v with
        | None -> { read = r; from_write = None; staleness = max_int }
        | Some w ->
          (* Writes that finished entirely between w and the read: each
             one the read "missed". *)
          let missed =
            List.filter
              (fun w' ->
                w'.Op.id <> w.Op.id && Op.precedes w w' && Op.precedes w' r)
              writes
          in
          { read = r; from_write = Some w; staleness = List.length missed }))
    (History.reads h)

let max_staleness h =
  List.fold_left (fun acc p -> max acc p.staleness) 0 (analyze h)

let histogram h =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun p ->
      Hashtbl.replace tbl p.staleness
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl p.staleness)))
    (analyze h);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let stale_fraction h =
  let reads = analyze h in
  match reads with
  | [] -> 0.0
  | _ ->
    let stale = List.length (List.filter (fun p -> p.staleness >= 1) reads) in
    float_of_int stale /. float_of_int (List.length reads)

let bounded_by h ~k = max_staleness h <= k
