open Histories

type tag = { ts : int; wid : int }

let initial_tag = { ts = 0; wid = -1 }

let compare_tag a b =
  let c = compare a.ts b.ts in
  if c <> 0 then c else compare a.wid b.wid

let pp_tag ppf t = Format.fprintf ppf "(%d,w%d)" t.ts t.wid

type tagged = { op : Op.t; tag : tag option }

type report = {
  mwa0 : Witness.t option;
  mwa1 : Witness.t option;
  mwa2 : Witness.t option;
  mwa3 : Witness.t option;
  mwa4 : Witness.t option;
}

let all_ok r =
  r.mwa0 = None && r.mwa1 = None && r.mwa2 = None && r.mwa3 = None && r.mwa4 = None

let failures r =
  List.filter_map
    (fun (name, w) -> match w with None -> None | Some w -> Some (name, w))
    [ ("MWA0", r.mwa0); ("MWA1", r.mwa1); ("MWA2", r.mwa2); ("MWA3", r.mwa3);
      ("MWA4", r.mwa4) ]

let tag_exn t =
  match t.tag with
  | Some tag -> tag
  | None ->
    invalid_arg
      (Format.asprintf "Mw_properties: operation %a lacks a (ts,wid) tag" Op.pp
         t.op)

let property ~name ~detail culprits size =
  Some
    (Witness.make
       (Witness.Property { name; detail; culprits = List.map (fun t -> t.op) culprits })
       ~history_size:size)

let check tagged =
  let size = List.length tagged in
  (* A pending write never carries a tag (its protocol never chose one)
     and imposes no obligation: it precedes nothing, and no completed
     read can name it.  Drop pending writes up front. *)
  let writes =
    List.filter (fun t -> Op.is_write t.op && Op.is_complete t.op) tagged
  in
  let pending_writes_exist =
    List.exists (fun t -> Op.is_write t.op && not (Op.is_complete t.op)) tagged
  in
  let reads =
    List.filter (fun t -> Op.is_read t.op && Op.is_complete t.op) tagged
  in
  List.iter (fun t -> ignore (tag_exn t : tag)) (writes @ reads);
  (* MWA0: wr ≺ wr' implies tag wr < tag wr'. *)
  let mwa0 =
    List.fold_left
      (fun acc w1 ->
        match acc with
        | Some _ -> acc
        | None ->
          List.fold_left
            (fun acc w2 ->
              match acc with
              | Some _ -> acc
              | None ->
                if
                  Op.precedes w1.op w2.op
                  && compare_tag (tag_exn w1) (tag_exn w2) >= 0
                then
                  property ~name:"MWA0"
                    ~detail:
                      (Format.asprintf
                         "write %a precedes write %a but tags are %a ≥ %a"
                         Op.pp w1.op Op.pp w2.op pp_tag (tag_exn w1) pp_tag
                         (tag_exn w2))
                    [ w1; w2 ] size
                else None)
            None writes)
      None writes
  in
  (* MWA1: reads return non-negative timestamps (with a wid). *)
  let mwa1 =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some _ -> acc
        | None ->
          let t = tag_exn r in
          if t.ts < 0 then
            property ~name:"MWA1"
              ~detail:(Format.asprintf "read returned negative timestamp %a" pp_tag t)
              [ r ] size
          else None)
      None reads
  in
  (* MWA2: read rd follows write wr(k,i) implies tag rd ≥ (k,i). *)
  let mwa2 =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some _ -> acc
        | None ->
          List.fold_left
            (fun acc w ->
              match acc with
              | Some _ -> acc
              | None ->
                if
                  Op.precedes w.op r.op
                  && compare_tag (tag_exn r) (tag_exn w) < 0
                then
                  property ~name:"MWA2"
                    ~detail:
                      (Format.asprintf
                         "read %a follows write %a but returned %a < %a" Op.pp
                         r.op Op.pp w.op pp_tag (tag_exn r) pp_tag (tag_exn w))
                    [ w; r ] size
                else None)
            None writes)
      None reads
  in
  (* MWA3: a read returning (k,wi) must not precede wr(k,i). *)
  let mwa3 =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some _ -> acc
        | None ->
          let t = tag_exn r in
          if compare_tag t initial_tag = 0 then None
          else begin
            match
              List.find_opt (fun w -> compare_tag (tag_exn w) t = 0) writes
            with
            | None ->
              (* A pending write's tag is unknown; the read may have
                 legitimately observed it, so stay inconclusive. *)
              if pending_writes_exist then None
              else
                property ~name:"MWA3"
                  ~detail:
                    (Format.asprintf
                       "read returned %a but no write carries that tag" pp_tag t)
                  [ r ] size
            | Some w ->
              if Op.precedes r.op w.op then
                property ~name:"MWA3"
                  ~detail:
                    (Format.asprintf "read %a precedes the write %a of its value"
                       Op.pp r.op Op.pp w.op)
                  [ r; w ] size
              else None
          end)
      None reads
  in
  (* MWA4: rd2 follows rd1 implies tag rd2 ≥ tag rd1. *)
  let mwa4 =
    List.fold_left
      (fun acc r1 ->
        match acc with
        | Some _ -> acc
        | None ->
          List.fold_left
            (fun acc r2 ->
              match acc with
              | Some _ -> acc
              | None ->
                if
                  Op.precedes r1.op r2.op
                  && compare_tag (tag_exn r2) (tag_exn r1) < 0
                then
                  property ~name:"MWA4"
                    ~detail:
                      (Format.asprintf
                         "read %a follows read %a but returned %a < %a (new/old inversion)"
                         Op.pp r2.op Op.pp r1.op pp_tag (tag_exn r2) pp_tag
                         (tag_exn r1))
                    [ r1; r2 ] size
                else None)
            None reads)
      None reads
  in
  { mwa0; mwa1; mwa2; mwa3; mwa4 }

let check_ok tagged =
  let r = check tagged in
  match failures r with [] -> Ok () | (_, w) :: _ -> Error w
