(** Weaker consistency levels, for the latency/consistency lattice (Fig. 2).

    The paper's Fig. 2 orders the four design points by "stronger
    consistency / lower latency".  To make the weak side of that lattice
    measurable we grade each history on the classical ladder
    safe ⊂ regular ⊂ atomic (multi-writer generalisations): a fast
    protocol that loses atomicity usually still lands on a lower rung,
    and the `fig2` benchmark reports which one. *)

open Histories

type level =
  | Atomic        (** Definition 2.1 holds. *)
  | Regular       (** Every read returns the value of a write that is
                      concurrent with it or not superseded before it. *)
  | Safe          (** Reads with no concurrent write behave like regular
                      reads; concurrent reads return any written value. *)
  | Inconsistent  (** Not even safe. *)

val pp_level : Format.formatter -> level -> unit
val level_to_string : level -> string

val compare_level : level -> level -> int
(** Orders [Inconsistent < Safe < Regular < Atomic]. *)

val check_regular : History.t -> (unit, Witness.t) result
(** Multi-writer regularity: each completed read [r] must return the
    value of some write [w] (or the initial value) such that [w] does not
    begin after [r] ends, and no other write lies entirely between [w]
    and [r].  Per-read condition; no global ordering required. *)

val check_safe : History.t -> (unit, Witness.t) result
(** Reads with at least one concurrent write need only return *some*
    written-or-initial value; reads without concurrent writes must
    satisfy the regular condition. *)

val classify : History.t -> level
(** Highest rung of the ladder the history reaches. *)
