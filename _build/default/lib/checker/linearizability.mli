(** Brute-force linearizability oracle (Wing–Gong search).

    A generic checker that searches directly for the sequential
    permutation π of Definition 2.1 against the sequential register
    specification.  Exponential in the worst case, so it is restricted to
    small histories (≤ {!max_ops} operations) and used as the *oracle*
    that cross-validates the polynomial {!Atomicity} checker in property
    tests, and to produce concrete linearization orders for examples. *)

open Histories

val max_ops : int
(** Upper bound on history size (bitset representation). *)

val linearize : History.t -> Op.t list option
(** [linearize h] is a witnessing sequential order of [h]'s operations if
    one exists.  Pending reads are ignored; pending writes may be
    linearized or dropped (a crashed writer's write may or may not have
    taken effect).  Raises [Invalid_argument] if [h] has more than
    {!max_ops} operations or is ill-formed. *)

val check : History.t -> bool
(** [check h] = [linearize h <> None]. *)
