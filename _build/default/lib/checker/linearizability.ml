open Histories

let max_ops = 62

let linearize h =
  (match History.well_formed h with
  | Ok () -> ()
  | Error msg ->
    invalid_arg ("Linearizability.linearize: ill-formed history: " ^ msg));
  let h = History.strip_pending_reads h in
  let ops = Array.of_list (History.ops h) in
  let n = Array.length ops in
  if n > max_ops then
    invalid_arg
      (Printf.sprintf "Linearizability.linearize: %d ops exceeds max %d" n max_ops);
  (* preds.(i) = bitmask of operations that must be linearized before i
     can be (real-time predecessors). *)
  let preds = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Op.precedes ops.(j) ops.(i) then
        preds.(i) <- preds.(i) lor (1 lsl j)
    done
  done;
  let visited = Hashtbl.create 4096 in
  (* done_mask: ops already linearized. state: current register value.
     Returns the reversed linearization suffix on success. *)
  let rec search done_mask state =
    if Hashtbl.mem visited (done_mask, state) then None
    else begin
      (* Success when every remaining op is a pending write (which we may
         declare to have never taken effect). *)
      let remaining_all_pending = ref true in
      for i = 0 to n - 1 do
        if done_mask land (1 lsl i) = 0 then
          if Op.is_complete ops.(i) || Op.is_read ops.(i) then
            remaining_all_pending := false
      done;
      if !remaining_all_pending then Some []
      else begin
        let result = ref None in
        let i = ref 0 in
        while !result = None && !i < n do
          let idx = !i in
          incr i;
          if done_mask land (1 lsl idx) = 0 && preds.(idx) land lnot done_mask = 0
          then begin
            let o = ops.(idx) in
            let next =
              match o.Op.kind with
              | Op.Write v -> Some v
              | Op.Read -> (
                match o.Op.result with
                | Some r when r = state -> Some state
                | _ -> None)
            in
            match next with
            | None -> ()
            | Some state' -> (
              match search (done_mask lor (1 lsl idx)) state' with
              | Some tail -> result := Some (o :: tail)
              | None -> ())
          end
        done;
        if !result = None then Hashtbl.replace visited (done_mask, state) ();
        !result
      end
    end
  in
  search 0 History.initial_value

let check h = linearize h <> None
