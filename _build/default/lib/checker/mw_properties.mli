(** The multi-writer atomicity properties MWA0–MWA4 of Appendix A.

    The paper proves Algorithm 1 & 2 correct by establishing five
    properties over the values [(ts, wid)] that operations carry.  This
    module checks those properties directly on *tagged* histories — runs
    of a protocol in which every write is annotated with the timestamp it
    chose and every completed read with the timestamp of the value it
    returned.  Together the properties imply atomicity (the partial order
    ≺π of Appendix A.1), so this checker is both an independent test of
    the implementation and an executable rendition of the paper's proof
    obligations. *)

open Histories

type tag = { ts : int; wid : int }
(** A value identifier: version number and writer id, ordered
    lexicographically ([(ts₁,w₁) < (ts₂,w₂)] iff [ts₁ < ts₂] or equal
    [ts] and [w₁ < w₂]). *)

val initial_tag : tag
(** [(0, ⊥)] — the tag of the initial value (wid = −1). *)

val compare_tag : tag -> tag -> int
val pp_tag : Format.formatter -> tag -> unit

type tagged = { op : Op.t; tag : tag option }
(** [tag] is [Some] for writes and completed reads, [None] for pending
    reads (which carry no obligation). *)

type report = {
  mwa0 : Witness.t option;  (** Non-concurrent writes get increasing tags. *)
  mwa1 : Witness.t option;  (** Reads return non-negative timestamps. *)
  mwa2 : Witness.t option;  (** A read following a write returns ≥ its tag. *)
  mwa3 : Witness.t option;  (** A read never returns a tag whose write it precedes. *)
  mwa4 : Witness.t option;  (** Non-concurrent reads get non-decreasing tags. *)
}

val all_ok : report -> bool
val failures : report -> (string * Witness.t) list

val check : tagged list -> report
(** Evaluate all five properties.  Raises [Invalid_argument] if a write
    or completed read lacks a tag. *)

val check_ok : tagged list -> (unit, Witness.t) result
(** First failing property, if any. *)
