open Histories

type cluster = {
  write : Op.t;
  mutable a : float; (* earliest response in the cluster *)
  mutable b : float; (* latest invocation in the cluster *)
}

let resp_of (o : Op.t) = match o.Op.resp with None -> infinity | Some f -> f

let check h =
  (match History.well_formed h with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Interval.check: ill-formed history: " ^ msg));
  if not (History.unique_writes h) then
    invalid_arg "Interval.check: written values are not unique";
  let h = History.strip_pending_reads h in
  let history_size = History.length h in
  let clusters = Hashtbl.create 32 in
  let add_cluster (w : Op.t) =
    match Op.written_value w with
    | None -> ()
    | Some v ->
      Hashtbl.replace clusters v { write = w; a = resp_of w; b = w.Op.inv }
  in
  add_cluster Atomicity.initial_write;
  List.iter add_cluster (History.writes h);
  (* Fold reads into their clusters; local conditions on the way. *)
  let exception Bad of Witness.t in
  try
    List.iter
      (fun (r : Op.t) ->
        match r.Op.result with
        | None -> ()
        | Some v -> (
          match Hashtbl.find_opt clusters v with
          | None ->
            raise
              (Bad
                 (Witness.make
                    (Witness.Unwritten_value { read = r; value = v })
                    ~history_size))
          | Some c ->
            if Op.precedes r c.write then
              raise
                (Bad
                   (Witness.make
                      (Witness.Future_read { read = r; write = c.write })
                      ~history_size));
            c.a <- min c.a (resp_of r);
            c.b <- max c.b r.Op.inv))
      (History.reads h);
    (* Sweep: clusters sorted by [a]; for each, a conflicting earlier
       cluster exists iff among those with a(u) < b(v) some b(u) > a(v).
       Earlier clusters are exactly a prefix of the sorted order, so a
       prefix maximum of b answers the query. *)
    let cs =
      Hashtbl.fold (fun _ c acc -> c :: acc) clusters []
      |> List.sort (fun c1 c2 -> compare (c1.a, c1.write.Op.id) (c2.a, c2.write.Op.id))
      |> Array.of_list
    in
    let n = Array.length cs in
    let prefix_max_b = Array.make (n + 1) neg_infinity in
    let prefix_argmax = Array.make (n + 1) (-1) in
    for i = 0 to n - 1 do
      if cs.(i).b > prefix_max_b.(i) then begin
        prefix_max_b.(i + 1) <- cs.(i).b;
        prefix_argmax.(i + 1) <- i
      end
      else begin
        prefix_max_b.(i + 1) <- prefix_max_b.(i);
        prefix_argmax.(i + 1) <- prefix_argmax.(i)
      end
    done;
    for v = 0 to n - 1 do
      (* Prefix of clusters u (u < v in sort order, so a(u) <= a(v)) with
         strictly a(u) < b(v): binary search the first index with
         a >= b(v); everything before it qualifies.  Among those, u
         conflicts with v iff b(u) > a(v). *)
      let lo = ref 0 and hi = ref v in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cs.(mid).a < cs.(v).b then lo := mid + 1 else hi := mid
      done;
      let prefix_len = !lo in
      if prefix_len > 0 && prefix_max_b.(prefix_len) > cs.(v).a then begin
        let u = prefix_argmax.(prefix_len) in
        if u <> v then
          raise
            (Bad
               (Witness.make
                  (Witness.Ordering_cycle [ cs.(u).write; cs.(v).write ])
                  ~history_size))
      end
    done;
    Ok ()
  with Bad w -> Error w

let is_atomic h = match check h with Ok () -> true | Error _ -> false
