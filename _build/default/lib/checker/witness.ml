open Histories

type reason =
  | Unwritten_value of { read : Op.t; value : int }
  | Future_read of { read : Op.t; write : Op.t }
  | Stale_read of { read : Op.t; write : Op.t; newer : Op.t }
  | Ordering_cycle of Op.t list
  | Property of { name : string; detail : string; culprits : Op.t list }

type t = { reason : reason; history_size : int }

let make reason ~history_size = { reason; history_size }

let short t =
  match t.reason with
  | Unwritten_value _ -> "unwritten-value"
  | Future_read _ -> "future-read"
  | Stale_read _ -> "stale-read"
  | Ordering_cycle _ -> "ordering-cycle"
  | Property { name; _ } -> name

let pp ppf t =
  match t.reason with
  | Unwritten_value { read; value } ->
    Format.fprintf ppf "@[<v2>read returned value %d that was never written:@,%a@]"
      value Op.pp read
  | Future_read { read; write } ->
    Format.fprintf ppf
      "@[<v2>read returned a value written by an operation invoked after the read responded:@,%a@,%a@]"
      Op.pp read Op.pp write
  | Stale_read { read; write; newer } ->
    Format.fprintf ppf
      "@[<v2>stale read: a newer write lies entirely between the read's write and the read:@,read:  %a@,from:  %a@,newer: %a@]"
      Op.pp read Op.pp write Op.pp newer
  | Ordering_cycle ops ->
    Format.fprintf ppf
      "@[<v2>no sequential permutation satisfies the ordering obligations; cycle:@,%a@]"
      (Format.pp_print_list Op.pp) ops
  | Property { name; detail; culprits } ->
    Format.fprintf ppf "@[<v2>property %s violated: %s@,%a@]" name detail
      (Format.pp_print_list Op.pp) culprits

let to_string t = Format.asprintf "%a" pp t
