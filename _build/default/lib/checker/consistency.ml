open Histories

type level = Atomic | Regular | Safe | Inconsistent

let level_to_string = function
  | Atomic -> "atomic"
  | Regular -> "regular"
  | Safe -> "safe"
  | Inconsistent -> "inconsistent"

let pp_level ppf l = Format.pp_print_string ppf (level_to_string l)

let rank = function Inconsistent -> 0 | Safe -> 1 | Regular -> 2 | Atomic -> 3

let compare_level a b = compare (rank a) (rank b)

let initial_write = Atomicity.initial_write

let find_write writes v =
  if v = History.initial_value then Some initial_write
  else List.find_opt (fun w -> Op.written_value w = Some v) writes

let check_with ~read_ok h =
  let h = History.strip_pending_reads h in
  let size = History.length h in
  let writes = History.writes h in
  let exception Bad of Witness.t in
  try
    List.iter
      (fun (r : Op.t) ->
        match r.Op.result with
        | None -> ()
        | Some v -> (
          match find_write writes v with
          | None ->
            raise
              (Bad
                 (Witness.make (Witness.Unwritten_value { read = r; value = v })
                    ~history_size:size))
          | Some w -> (
            match read_ok writes r w with
            | Ok () -> ()
            | Error reason -> raise (Bad (Witness.make reason ~history_size:size)))))
      (History.reads h);
    Ok ()
  with Bad w -> Error w

let regular_read_ok writes r w =
  if Op.precedes r w then Error (Witness.Future_read { read = r; write = w })
  else
    match
      List.find_opt
        (fun w' -> w'.Op.id <> w.Op.id && Op.precedes w w' && Op.precedes w' r)
        (initial_write :: writes)
    with
    | Some newer -> Error (Witness.Stale_read { read = r; write = w; newer })
    | None -> Ok ()

let check_regular h = check_with ~read_ok:regular_read_ok h

let safe_read_ok writes r w =
  let has_concurrent_write =
    List.exists (fun w' -> Op.is_write w' && Op.concurrent r w') writes
  in
  if has_concurrent_write then
    (* Any written-or-initial value already being checked by find_write;
       additionally forbid reads from the future. *)
    if Op.precedes r w then Error (Witness.Future_read { read = r; write = w })
    else Ok ()
  else regular_read_ok writes r w

let check_safe h = check_with ~read_ok:safe_read_ok h

let classify h =
  if Atomicity.is_atomic h then Atomic
  else
    match check_regular h with
    | Ok () -> Regular
    | Error _ -> ( match check_safe h with Ok () -> Safe | Error _ -> Inconsistent)
