(** Polynomial-time atomicity checker for register histories with unique
    written values.

    Atomicity (Definition 2.1) asks for a sequential permutation π of the
    operations that respects real-time order and in which every read
    returns the latest preceding write.  For histories whose writes store
    pairwise-distinct values (our workloads guarantee this) the check is
    polynomial: every read names the unique write it reads from, and
    atomicity reduces to the acyclicity of an ordering-obligation graph
    over the writes (Gibbons & Korach 1997; the same characterization
    underlies Lamport's new/old-inversion conditions).

    Ordering obligations, for reads-from mapping ρ and real-time order ≺:
    - E1: w ≺ w'                      ⇒ w before w'
    - E2: ρ(r) = w, w' ≺ r, w' ≠ w    ⇒ w' before w
    - E3: r₁ ≺ r₂, ρ(r₁) ≠ ρ(r₂)      ⇒ ρ(r₁) before ρ(r₂)
    - E4: ρ(r) = w, r ≺ w'            ⇒ w before w'

    together with the local conditions "no read from the future" and "no
    write entirely between ρ(r) and r".  The history is atomic iff the
    local conditions hold and the obligation graph is acyclic.  The
    brute-force {!Linearizability} oracle cross-validates this checker in
    the property-test suite. *)

open Histories

val initial_write : Op.t
(** The virtual write of {!History.initial_value} that precedes every
    real operation (the paper's [wr₀,⊥]).  Shared by the other checkers. *)

val check : History.t -> (unit, Witness.t) result
(** Verdict for a history.  Pending reads are ignored (they impose no
    obligation); pending writes participate as writes that may take
    effect.  Raises [Invalid_argument] if the history is not well-formed
    or written values are not unique. *)

val is_atomic : History.t -> bool

val linearization : History.t -> Op.t list option
(** A constructive witness: when the history is atomic, a sequential
    permutation π satisfying Definition 2.1 (real-time order respected,
    every read returns the latest preceding write; the virtual initial
    write is omitted from the output).  Built by topologically sorting
    the obligation graph and placing each read directly after its write;
    the result is re-validated against the register specification before
    being returned, so a [Some] answer is self-certifying.  [None] when
    the history is not atomic. *)

val obligation_edges : History.t -> (Op.t * Op.t) list
(** The saturated obligation graph (for inspection, examples, and the
    checker micro-benchmarks).  Virtual initial write omitted. *)
