(** Quantifying inconsistency — the paper's §7 future work, implemented.

    "We will fix fast implementations in the first place, and then
    quantify how much data inconsistency will be introduced when strictly
    guaranteeing atomicity is impossible."

    The metric is *version staleness*, the standard measure of the
    k-atomicity / Δ-atomicity line of work (the paper's refs [25, 28]): a
    completed read that returns the value of write [w] has staleness [k]
    if exactly [k] other writes finished entirely between [w]'s response
    and the read's invocation.  An atomic read has staleness 0; a
    2-atomic ("almost strong") register bounds staleness by 1; the naive
    fast-write register's staleness grows with write contention — which
    is precisely the trade the `fw` benchmark quantifies. *)

open Histories

type per_read = {
  read : Op.t;
  from_write : Op.t option;  (** [None] when the value was never written. *)
  staleness : int;
}

val analyze : History.t -> per_read list
(** Staleness of every completed read.  Pending reads are skipped; a read
    of an unwritten value gets [from_write = None] and [staleness =
    max_int].  Requires unique written values. *)

val max_staleness : History.t -> int
(** 0 for atomic-by-reads histories, [max_int] if some read returned an
    unwritten value. *)

val histogram : History.t -> (int * int) list
(** [(staleness, reads-with-it)], ascending. *)

val stale_fraction : History.t -> float
(** Fraction of completed reads with staleness ≥ 1 — the "violation
    rate" of refs [25, 28].  0.0 when there are no completed reads. *)

val bounded_by : History.t -> k:int -> bool
(** Every read returns one of the last [k+1] values ([staleness ≤ k]) —
    the per-read face of k-atomicity.  [bounded_by h ~k:0] is implied by
    atomicity; the converse fails in the presence of new/old inversions,
    which this metric deliberately does not count (use
    {!Atomicity.check} for the full story). *)
