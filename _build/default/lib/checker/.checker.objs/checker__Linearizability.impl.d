lib/checker/linearizability.ml: Array Hashtbl Histories History Op Printf
