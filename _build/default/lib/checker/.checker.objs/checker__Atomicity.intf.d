lib/checker/atomicity.mli: Histories History Op Witness
