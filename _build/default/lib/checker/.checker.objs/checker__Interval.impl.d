lib/checker/interval.ml: Array Atomicity Hashtbl Histories History List Op Witness
