lib/checker/staleness.ml: Atomicity Hashtbl Histories History List Op Option
