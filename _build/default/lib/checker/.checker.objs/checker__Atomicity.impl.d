lib/checker/atomicity.ml: Array Hashtbl Histories History List Op Witness
