lib/checker/interval.mli: Histories History Witness
