lib/checker/mw_properties.mli: Format Histories Op Witness
