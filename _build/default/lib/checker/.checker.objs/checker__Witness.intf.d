lib/checker/witness.mli: Format Histories Op
