lib/checker/consistency.ml: Atomicity Format Histories History List Op Witness
