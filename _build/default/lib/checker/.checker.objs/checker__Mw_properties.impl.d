lib/checker/mw_properties.ml: Format Histories List Op Witness
