lib/checker/staleness.mli: Histories History Op
