lib/checker/witness.ml: Format Histories Op
