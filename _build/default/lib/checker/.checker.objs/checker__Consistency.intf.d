lib/checker/consistency.mli: Format Histories History Witness
