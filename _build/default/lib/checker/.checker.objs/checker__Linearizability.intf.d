lib/checker/linearizability.mli: Histories History Op
