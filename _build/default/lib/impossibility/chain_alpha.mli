(** Phase 1: chain α and the critical server (§3.2).

    Chain α = (α₀, …, α_S): in α_i the first i servers receive W₂ before
    W₁ ("21") and the rest receive W₁ before W₂ ("12"); both rounds of R₁
    follow on every server.  α₀'s reader view is exactly that of the
    sequential execution W₁ ≺ W₂ ≺ R₁ (it must return 2) and α_S's that
    of W₂ ≺ W₁ ≺ R₁ (it must return 1), so the strategy's return flips
    somewhere along the chain; the server whose swap flips it is the
    *critical server* s_{i₁}. *)

type outcome =
  | Anchor_violation of {
      exec : Exec_model.t;
      expected : int;
      got : int;
      description : string;
    }
      (** The strategy already misbehaves on a sequential execution. *)
  | Critical of { i1 : int; returns : int array }
      (** [i1 ∈ [1, S]]: returns flip 2→1 between α_{i1−1} and α_{i1}
          (0-based critical server index is [i1 − 1]).  [returns.(i)] is
          the strategy's return in α_i. *)

val writes_for : swapped:int -> int -> Token.t list
(** The write arrival order at a server: "21" on servers below [swapped],
    "12" elsewhere.  Shared by the later chain constructions. *)

val exec : s:int -> swapped:int -> Exec_model.t
(** α_swapped: servers [0 … swapped−1] see "21", the rest "12". *)

val run : s:int -> Strategy.t -> outcome
(** Requires [s ≥ 3]. *)
