type finding =
  | Anchor_violation of {
      exec : Exec_model.t;
      expected : int;
      got : int;
      description : string;
    }
  | Read_disagreement of {
      exec : Exec_model.t;
      stage : string;
      r1 : int;
      r2 : int;
    }
  | Unresolved of { detail : string }

type stats = {
  s : int;
  i1 : int option;
  chosen_stem : int option;
  links_checked : int;
  links_failed : int;
  executions_scanned : int;
}

let found_violation = function
  | Anchor_violation _ | Read_disagreement _ -> true
  | Unresolved _ -> false

let pp_finding ppf = function
  | Anchor_violation { exec; expected; got; description } ->
    Format.fprintf ppf
      "@[<v2>anchor violation (expected %d, got %d): %s@,%a@]" expected got
      description Exec_model.pp exec
  | Read_disagreement { exec; stage; r1; r2 } ->
    Format.fprintf ppf
      "@[<v2>read disagreement at %s: R1 returns %d, R2 returns %d, but both \
       writes precede both reads@,%a@]"
      stage r1 r2 Exec_model.pp exec
  | Unresolved { detail } -> Format.fprintf ppf "unresolved: %s" detail

let eval strategy exec ~reader =
  Strategy.decide strategy (Exec_model.view exec ~reader)

(* Scan chain Z of one chain for an execution whose two reads disagree;
   count link verification alongside. *)
let scan_chain strategy chain =
  let s = Array.length chain.Chain_beta.execs - 1 in
  let links_checked = ref 0 in
  let links_failed = ref 0 in
  for k = 0 to s - 1 do
    let step = Zigzag.build_step ~chain ~k in
    let report = Zigzag.verify_step ~chain step in
    links_checked := !links_checked + 5;
    if not (Zigzag.link_ok report) then incr links_failed
  done;
  let disagreement =
    List.find_map
      (fun (stage, exec) ->
        let r1 = eval strategy exec ~reader:1 in
        let r2 = eval strategy exec ~reader:2 in
        if r1 <> r2 then Some (Read_disagreement { exec; stage; r1; r2 })
        else None)
      (Zigzag.all_executions ~chain)
  in
  (disagreement, !links_checked, !links_failed)

let rec run ~s strategy =
  match Chain_alpha.run ~s strategy with
  | Chain_alpha.Anchor_violation { exec; expected; got; description } ->
    ( Anchor_violation { exec; expected; got; description },
      {
        s;
        i1 = None;
        chosen_stem = None;
        links_checked = 0;
        links_failed = 0;
        executions_scanned = 1;
      } )
  | Chain_alpha.Critical { i1; returns = _ } ->
    let critical = i1 - 1 in
    let chain' = Chain_beta.build ~s ~stem_swapped:(i1 - 1) ~critical in
    let chain'' = Chain_beta.build ~s ~stem_swapped:i1 ~critical in
    (* §3.3 indistinguishability, verified rather than assumed. *)
    if not (Chain_beta.r2_views_agree chain' chain'') then
      ( Unresolved
          { detail = "construction bug: R2 views differ across beta'/beta''" },
        {
          s;
          i1 = Some i1;
          chosen_stem = None;
          links_checked = 0;
          links_failed = 0;
          executions_scanned = 0;
        } )
    else begin
      let x = eval strategy (Chain_beta.exec chain' s) ~reader:2 in
      let head' = eval strategy (Chain_beta.exec chain' 0) ~reader:1 in
      let head'' = eval strategy (Chain_beta.exec chain'' 0) ~reader:1 in
      let chosen =
        if head' <> x then Some chain'
        else if head'' <> x then Some chain''
        else None
      in
      match chosen with
      | Some chain ->
        let disagreement, lc, lf = scan_chain strategy chain in
        let stats =
          {
            s;
            i1 = Some i1;
            chosen_stem = Some chain.Chain_beta.stem_swapped;
            links_checked = lc;
            links_failed = lf;
            executions_scanned = List.length (Zigzag.all_executions ~chain);
          }
        in
        (match disagreement with
        | Some f -> (f, stats)
        | None ->
          (* Impossible for a pure strategy: the endpoints differ but all
             links hold.  Report honestly if it ever happens. *)
          ( Unresolved
              {
                detail =
                  "no disagreement found along Z although endpoints differ";
              },
            stats ))
      | None ->
        (* Both heads already equal x: the strategy's return drifted when
           R2's tokens appeared — the situation §4 handles with the
           sieve.  Fall back to a complete sweep of the proof's execution
           family: every candidate critical server, both adjacent stems,
           the sequential anchors of every chain, and every execution of
           every zigzag. *)
        sweep_all ~s ~i1 strategy
    end

and sweep_all ~s ~i1 strategy =
  let links_checked = ref 0 in
  let links_failed = ref 0 in
  let scanned = ref 0 in
  let finding = ref None in
  let consider f = if !finding = None then finding := f in
  let candidates = List.init s (fun c -> c) in
  List.iter
    (fun critical ->
      if !finding = None then begin
        (* Sequential anchors: with all-"12" stems both reads must return
           2; with all-"21" stems both must return 1 — realizable
           executions regardless of which server R2 skips. *)
        let anchor stem expected =
          let chain = Chain_beta.build ~s ~stem_swapped:stem ~critical in
          let exec = Chain_beta.exec chain 0 in
          List.iter
            (fun reader ->
              let got = eval strategy exec ~reader in
              if got <> expected then
                consider
                  (Some
                     (Anchor_violation
                        {
                          exec;
                          expected;
                          got;
                          description =
                            Printf.sprintf
                              "with R2 appended (skipping s_%d), the \
                               sequential execution still forces both reads \
                               to return %d"
                              critical expected;
                        })))
            [ 1; 2 ]
        in
        anchor 0 2;
        anchor s 1;
        List.iter
          (fun stem ->
            if !finding = None && stem >= 0 && stem <= s then begin
              let chain = Chain_beta.build ~s ~stem_swapped:stem ~critical in
              let d, lc, lf = scan_chain strategy chain in
              links_checked := !links_checked + lc;
              links_failed := !links_failed + lf;
              scanned := !scanned + List.length (Zigzag.all_executions ~chain);
              consider d
            end)
          [ critical; critical + 1 ]
      end)
    candidates;
  let stats =
    {
      s;
      i1 = Some i1;
      chosen_stem = None;
      links_checked = !links_checked;
      links_failed = !links_failed;
      executions_scanned = !scanned;
    }
  in
  match !finding with
  | Some f -> (f, stats)
  | None ->
    ( Unresolved
        {
          detail =
            "full sweep over every critical-server candidate found neither an \
             anchor violation nor a read disagreement";
        },
      stats )
