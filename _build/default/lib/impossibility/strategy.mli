(** Candidate read strategies for fast-write (W1R2) implementations.

    In the full-info model a W1R2 implementation is characterised by what
    its two-round read returns as a function of its {!Exec_model.view} —
    writes are one blind update round, servers are append-only logs, so
    the read's decision function is the only degree of freedom left.
    Theorem 1 says *no* decision function yields atomicity; the
    {!W1r2_theorem} driver demonstrates it per strategy by constructing a
    violating execution.

    A strategy must return 1 or 2 (the digits written by W₁ and W₂; in
    every execution the proof uses, both writes finished before the reads
    began, so returning the initial value is never legal). *)

type t = { name : string; decide : Exec_model.view -> int }

val decide : t -> Exec_model.view -> int
(** Evaluate, checking the result is 1 or 2. *)

(** {1 Natural strategies} *)

val last_unanimous_else : int -> t
(** If every server visible in round 2 shows the same last-written digit,
    return it; otherwise return the given default.  With default 2 this
    is the paper's "cannot differentiate Rel1 from Rel2 ⇒ return 2". *)

val majority_last : t
(** The digit that is last on a majority of round-2 servers (ties → 2). *)

val weighted_last : t
(** Like {!majority_last} but counting both rounds' prefixes. *)

val first_server_rules : t
(** The last digit on the lowest-numbered server the read reached. *)

val round1_majority : t
(** Decide from round-1 prefixes only (ignores the second round). *)

val latest_arrival : t
(** Return the digit whose write token appears *last* across all round-2
    prefixes (by position from the end), majority-style. *)

val reader_aware : t
(** Uses coordination information: when the other reader's first round is
    visible on a majority of servers, lean on the freshest digit seen
    anywhere; otherwise behave like {!majority_last}.  Exercises the
    parts of the view that only read tokens populate. *)

val pessimistic_quorum : t
(** Return 1 only when *every* visible prefix (both rounds) ends in 1;
    otherwise 2 — the most write-2-biased strategy that still honours the
    sequential anchors. *)

val natural : t list
(** The library above. *)

(** {1 Randomised strategies} *)

val seeded : int -> t
(** A deterministic pseudo-random strategy: returns the forced digit on
    unanimous views (so the sequential anchors hold and the chain
    machinery is actually exercised) and a view-hash-dependent digit
    otherwise. *)

val seeded_wild : int -> t
(** Fully arbitrary: hash of the whole view decides.  Usually dies on a
    sequential anchor — exercising the driver's other exit. *)
