(** W1Rk impossibility for k ≥ 2, by round collapsing (§2.2 / §3).

    The paper notes that "the impossibility proofs of W1Rk … are
    principally [the] same …: we can combine the round-trips 2, 3, …, k
    as if they were one single round-trip.  The chain argument still
    applies."  This module makes the combination executable.

    A k-round read strategy decides from a k-round view: for each of its
    k rounds and each server the round reached, the prefix of tokens that
    arrived first.  We run the chain machinery on executions where rounds
    2…k of each read always travel *back-to-back* — every surgery of
    §3 moves the whole block — so the 2-round view determines the k-round
    view: wherever a read's (collapsed) round 2 appears, its block of
    rounds 2…k appears contiguously, and likewise for the other reader.
    {!collapse} performs exactly this expansion, turning a k-round
    strategy into the induced 2-round strategy; Theorem 1's driver then
    convicts it. *)

type k_view = {
  reader : int;
  rounds : Exec_model.view_entry list array;
      (** [rounds.(j)] is round j+1's per-server entries. *)
}

type k_strategy = { name : string; k : int; decide : k_view -> int }

val collapse : k_strategy -> Strategy.t
(** The induced 2-round strategy: expand each 2-round view to the
    k-round view of the back-to-back execution and apply the k-round
    decision.  Raises [Invalid_argument] if [k < 2]. *)

val run : s:int -> k_strategy -> W1r2_theorem.finding * W1r2_theorem.stats
(** Theorem 1 for W1Rk: convict the k-round strategy via its collapse.
    The violating execution returned is the collapsed (2-round) one; its
    k-round counterpart is obtained by the same block expansion. *)

(** {1 Example k-round strategies} *)

val majority_of_last_round : k:int -> k_strategy
(** Decide by majority of last-written digits seen in round k. *)

val round_vote : k:int -> k_strategy
(** Each round votes (majority of its prefixes' last digits); the
    majority of rounds decides — a strategy that genuinely uses every
    round. *)

val seeded : k:int -> int -> k_strategy
(** Deterministic pseudo-random k-round strategy, anchored on unanimous
    views like {!Strategy.seeded}. *)
