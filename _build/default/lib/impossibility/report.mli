(** Human-readable rendering of a Theorem 1 run.

    Replays {!W1r2_theorem.run} and narrates it: the α-chain returns and
    the critical server, the pinned R₂ return, the chosen chain, each
    zigzag step's link verdicts, and the final violating execution with
    its per-server arrival diagram — a textual Fig. 3.  Used by the
    `impossibility_tour` example and the `mwreg impossibility --explain`
    flag. *)

val explain : s:int -> Strategy.t -> string
(** The full narrative.  Ends with the finding (violation witness or, in
    principle, the unresolved escape hatch). *)

val pp : s:int -> Strategy.t -> Format.formatter -> unit
