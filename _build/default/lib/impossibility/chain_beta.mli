(** Phase 2: chains β′, β″ and the chosen chain β (§3.3).

    Starting from the two executions around the critical server — α_{i₁−1}
    (reader returns 2) and α_{i₁} (returns 1) — append the second reader
    R₂ with round order R₁⁽¹⁾, R₂⁽¹⁾, R₁⁽²⁾, R₂⁽²⁾ on every server, and
    form a chain by swapping R₁⁽²⁾/R₂⁽²⁾ one server at a time.  In the
    modified executions R₂ (both rounds) skips the critical server, which
    makes the two chains' executions indistinguishable *to R₂* (they
    differ only in the critical server's write order), pinning R₂'s
    return to a common value x in both tails — and in fact throughout. *)

type t = {
  stem_swapped : int;
      (** Write configuration: servers [0 … stem_swapped−1] see "21". *)
  critical : int;  (** 0-based index of the critical server R₂ skips. *)
  execs : Exec_model.t array;  (** β₀ … β_S (R₂ already skipping). *)
}

val build : s:int -> stem_swapped:int -> critical:int -> t
(** Chain of length S+1; execution j has R₁⁽²⁾/R₂⁽²⁾ swapped on servers
    [0 … j−1]. *)

val exec : t -> int -> Exec_model.t

val r2_views_agree : t -> t -> bool
(** The §3.3 indistinguishability: for chains built from the two stems
    ([stem_swapped] differing by exactly the critical server), R₂'s view
    must be identical in corresponding executions — verified
    structurally, not assumed. *)
