type effect = server:int -> reader:int -> int list -> int list

let honest ~server:_ ~reader:_ digits = digits

let flip digits = match digits with [ a; b ] -> [ b; a ] | other -> other

let flip_servers servers ~server ~reader digits =
  if reader = 2 && List.mem server servers then flip digits else digits

let seeded_effect ~seed ~flip_probability_pct ~server ~reader digits =
  if reader = 2 && Hashtbl.hash (seed, server) mod 100 < flip_probability_pct
  then flip digits
  else digits

type crucial_strategy = {
  cname : string;
  cdecide : (int * int list) list -> int;
}

let last_digit = function [] -> None | digits -> Some (List.nth digits (List.length digits - 1))

let crucial_of_last_digits () =
  {
    cname = "crucial-last-unanimous-else-2";
    cdecide =
      (fun servers ->
        let lasts = List.filter_map (fun (_, d) -> last_digit d) servers in
        match lasts with
        | [] -> 2
        | d :: rest -> if List.for_all (Int.equal d) rest then d else 2);
  }

let crucial_majority =
  {
    cname = "crucial-majority";
    cdecide =
      (fun servers ->
        let lasts = List.filter_map (fun (_, d) -> last_digit d) servers in
        let ones = List.length (List.filter (Int.equal 1) lasts) in
        let twos = List.length (List.filter (Int.equal 2) lasts) in
        if ones > twos then 1 else 2);
  }

type outcome =
  | Too_few_unaffected of { sigma1 : int list; sigma2 : int list }
  | Anchor_violation of { expected : int; got : int; at : string }
  | Critical of {
      sigma1 : int list;
      sigma2 : int list;
      i1 : int;
      returns : int array;
    }

let run ~s ~effect strategy =
  (* Σ₁: servers whose crucial info the blind R₂⁽¹⁾ changes in either
     direction.  (§4.2 eliminates the "12"→"21" flips directly, and
     argues servers that always end in "12" whatever the writes did
     cannot decide R₁'s return — we sieve both kinds out.) *)
  let sigma1 =
    List.filter
      (fun srv ->
        effect ~server:srv ~reader:2 [ 1; 2 ] <> [ 1; 2 ]
        || effect ~server:srv ~reader:2 [ 2; 1 ] <> [ 2; 1 ])
      (List.init s (fun i -> i))
  in
  let sigma2 =
    List.filter (fun srv -> not (List.mem srv sigma1)) (List.init s (fun i -> i))
  in
  let x = List.length sigma2 in
  if x < 3 then Too_few_unaffected { sigma1; sigma2 }
  else begin
    (* α̂_j: the first j servers of Σ₂ hold "21", the rest of Σ₂ "12";
       Σ₁ servers hold "12" flipped to "21" by R₂⁽¹⁾ — identically in
       every execution of the chain.  R₁'s crucial view is the
       post-effect digit list on every server. *)
    let exec_view j =
      List.init s (fun srv ->
          let base =
            if List.mem srv sigma1 then [ 1; 2 ]
            else begin
              let pos =
                match List.find_index (Int.equal srv) sigma2 with
                | Some p -> p
                | None -> assert false
              in
              if pos < j then [ 2; 1 ] else [ 1; 2 ]
            end
          in
          (srv, effect ~server:srv ~reader:2 base))
    in
    let returns = Array.init (x + 1) (fun j -> strategy.cdecide (exec_view j)) in
    if returns.(0) <> 2 then
      Anchor_violation
        { expected = 2; got = returns.(0); at = "alpha-hat_0 (W1 < W2 < R1)" }
    else if returns.(x) <> 1 then
      Anchor_violation
        {
          expected = 1;
          got = returns.(x);
          at = "alpha-hat_x (all crucial info reads 21)";
        }
    else begin
      let rec first i =
        if i > x then assert false
        else if returns.(i - 1) = 2 && returns.(i) = 1 then i
        else first (i + 1)
      in
      Critical { sigma1; sigma2; i1 = first 1; returns }
    end
  end
