lib/impossibility/token.mli: Format
