lib/impossibility/strategy.ml: Array Exec_model Format Hashtbl Int List Printf Token
