lib/impossibility/report.mli: Format Strategy
