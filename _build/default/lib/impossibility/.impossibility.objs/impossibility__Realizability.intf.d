lib/impossibility/realizability.mli: Exec_model
