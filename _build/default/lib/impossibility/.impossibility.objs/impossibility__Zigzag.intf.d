lib/impossibility/zigzag.mli: Chain_beta Exec_model
