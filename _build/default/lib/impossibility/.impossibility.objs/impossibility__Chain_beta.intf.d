lib/impossibility/chain_beta.mli: Exec_model
