lib/impossibility/realizability.ml: Exec_model Hashtbl List Option Token
