lib/impossibility/token.ml: Format Stdlib
