lib/impossibility/sieve.ml: Array Hashtbl Int List
