lib/impossibility/k_round.mli: Exec_model Strategy W1r2_theorem
