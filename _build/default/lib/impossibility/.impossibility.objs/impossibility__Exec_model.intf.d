lib/impossibility/exec_model.mli: Format Token
