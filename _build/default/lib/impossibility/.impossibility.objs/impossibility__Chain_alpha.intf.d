lib/impossibility/chain_alpha.mli: Exec_model Strategy Token
