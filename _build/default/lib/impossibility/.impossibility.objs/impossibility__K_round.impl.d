lib/impossibility/k_round.ml: Array Exec_model Format Hashtbl Int List Printf Strategy Token W1r2_theorem
