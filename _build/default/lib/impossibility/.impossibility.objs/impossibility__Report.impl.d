lib/impossibility/report.ml: Array Chain_alpha Chain_beta Exec_model Format Strategy W1r2_theorem Zigzag
