lib/impossibility/chain_beta.ml: Array Chain_alpha Exec_model Printf Token
