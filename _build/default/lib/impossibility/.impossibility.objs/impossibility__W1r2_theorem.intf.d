lib/impossibility/w1r2_theorem.mli: Exec_model Format Strategy
