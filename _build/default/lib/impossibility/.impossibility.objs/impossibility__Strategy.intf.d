lib/impossibility/strategy.mli: Exec_model
