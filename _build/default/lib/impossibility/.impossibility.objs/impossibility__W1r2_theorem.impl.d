lib/impossibility/w1r2_theorem.ml: Array Chain_alpha Chain_beta Exec_model Format List Printf Strategy Zigzag
