lib/impossibility/zigzag.ml: Array Chain_beta Exec_model List Printf Token
