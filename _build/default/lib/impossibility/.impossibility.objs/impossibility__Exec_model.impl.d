lib/impossibility/exec_model.ml: Array Format Hashtbl List Token
