lib/impossibility/sieve.mli:
