lib/impossibility/chain_alpha.ml: Array Exec_model Printf Strategy Token
