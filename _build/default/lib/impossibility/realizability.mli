(** Realizability of abstract executions in the message-passing model.

    The chain argument is only sound if every execution it constructs is
    a *legal* execution of the system: processes are sequential, each
    round-trip completes with [S − t] replies (so with t = 1 it may skip
    at most one server), and the per-server arrival orders are consistent
    with some timing of the underlying asynchronous network.

    This module certifies exactly that for the executions of §3, under
    their intended temporal story: the two writes are concurrent with
    each other and precede both reads; the reads are concurrent with each
    other; within a reader, round 1 precedes round 2.  Under asynchrony
    the only constraints this story imposes on per-server arrival orders
    are (i) each token appears at most once per server, (ii) a reader's
    round 2 never arrives before its round 1 on the same server (its
    round 2 is only *sent* after round 1 completed), and (iii) write
    tokens precede read tokens on every server (both writes completed —
    hence were received wherever they are received at all — before any
    read round was sent... except that a write's message may itself be
    delayed past read arrivals; we therefore only *warn* on (iii) and
    treat it as a separate check, [writes_first], which all chain
    executions do satisfy).

    The skip budget is the load-bearing condition: a round that is
    missing from more than [t] servers could not have completed. *)

type report = {
  tokens_unique : bool;
  round_order_ok : bool;   (** (ii) above. *)
  writes_first : bool;     (** (iii): writes precede reads on every server. *)
  skip_budget_ok : bool;   (** Every write/read round present on ≥ S − t servers. *)
  max_skips : int;         (** Largest number of servers any round misses. *)
}

val check : t:int -> Exec_model.t -> report
(** Certify an execution against crash budget [t].  Rounds and writes
    are discovered from the tokens present (a token type that appears on
    zero servers is not counted as "skipping everywhere" — it simply is
    not part of the execution). *)

val realizable : t:int -> Exec_model.t -> bool
(** All four report fields hold. *)
