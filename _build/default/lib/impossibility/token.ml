type t = W of int | R of { reader : int; round : int }

let equal a b = a = b

let compare = Stdlib.compare

let is_write = function W _ -> true | R _ -> false

let digit = function W d -> Some d | R _ -> None

let pp ppf = function
  | W d -> Format.fprintf ppf "W%d" d
  | R { reader; round } -> Format.fprintf ppf "R%d(%d)" reader round

let w1 = W 1

let w2 = W 2

let r ~reader ~round = R { reader; round }
