type t = {
  stem_swapped : int;
  critical : int;
  execs : Exec_model.t array;
}

let r1_1 = Token.r ~reader:1 ~round:1
let r1_2 = Token.r ~reader:1 ~round:2
let r2_1 = Token.r ~reader:2 ~round:1
let r2_2 = Token.r ~reader:2 ~round:2

let beta_exec ~s ~stem_swapped ~critical ~read_swapped =
  let arrivals =
    Array.init s (fun srv ->
        let writes = Chain_alpha.writes_for ~swapped:stem_swapped srv in
        if srv = critical then
          (* R2 (both rounds) skips the critical server. *)
          writes @ [ r1_1; r1_2 ]
        else
          let round2 =
            if srv < read_swapped then [ r2_2; r1_2 ] else [ r1_2; r2_2 ]
          in
          writes @ [ r1_1; r2_1 ] @ round2)
  in
  Exec_model.make
    ~label:(Printf.sprintf "beta[stem=%d]_%d" stem_swapped read_swapped)
    arrivals

let build ~s ~stem_swapped ~critical =
  {
    stem_swapped;
    critical;
    execs =
      Array.init (s + 1) (fun j ->
          beta_exec ~s ~stem_swapped ~critical ~read_swapped:j);
  }

let exec t j = t.execs.(j)

let r2_views_agree a b =
  Array.length a.execs = Array.length b.execs
  && begin
       let ok = ref true in
       Array.iteri
         (fun j ea ->
           let va = Exec_model.view ea ~reader:2 in
           let vb = Exec_model.view b.execs.(j) ~reader:2 in
           if not (Exec_model.view_equal va vb) then ok := false)
         a.execs;
       !ok
     end
