let pp ~s strategy ppf =
  let line fmt = Format.fprintf ppf (fmt ^^ "@,") in
  Format.fprintf ppf "@[<v>";
  line "Theorem 1 walk for strategy %S at S = %d" strategy.Strategy.name s;
  line "";
  (match Chain_alpha.run ~s strategy with
  | Chain_alpha.Anchor_violation { exec; expected; got; description } ->
    line "Phase 1 (chain α): SEQUENTIAL ANCHOR VIOLATION.";
    line "  %s" description;
    line "  expected %d, strategy returned %d, in:" expected got;
    Format.fprintf ppf "  @[<v>%a@]@," Exec_model.pp exec;
    line "The candidate is not atomic even on sequential executions; done."
  | Chain_alpha.Critical { i1; returns } ->
    line "Phase 1 (chain α): swap the writes one server at a time.";
    Array.iteri
      (fun i ret ->
        line "  α_%d (servers 0..%d see W2 first)  →  R1 returns %d" i (i - 1)
          ret)
      returns;
    line "  critical server: s_%d (0-based %d)" i1 (i1 - 1);
    line "";
    let critical = i1 - 1 in
    let chain' = Chain_beta.build ~s ~stem_swapped:(i1 - 1) ~critical in
    let chain'' = Chain_beta.build ~s ~stem_swapped:i1 ~critical in
    line "Phase 2 (chains β′/β″): append R2, both rounds skipping s_%d." i1;
    line "  R2's views agree across the two chains: %b (verified, §3.3)"
      (Chain_beta.r2_views_agree chain' chain'');
    let eval exec reader = Strategy.decide strategy (Exec_model.view exec ~reader) in
    let x = eval (Chain_beta.exec chain' s) 2 in
    let head' = eval (Chain_beta.exec chain' 0) 1 in
    let head'' = eval (Chain_beta.exec chain'' 0) 1 in
    line "  R2's pinned return in both tails: %d" x;
    line "  R1's head returns: β′₀ → %d, β″₀ → %d" head' head'';
    let chosen =
      if head' <> x then Some ("β′", chain')
      else if head'' <> x then Some ("β″", chain'')
      else None
    in
    (match chosen with
    | None ->
      line "  both heads coincide with x: falling back to the full sweep (§4)."
    | Some (name, _) -> line "  chosen chain: %s (head ≠ x forces a break)" name);
    line "";
    line "Phase 3 (zigzag chain Z): walk β₀ ≈ γ₀ ≈ β₁ ≈ … ≈ β_%d." s;
    let chain = match chosen with Some (_, c) -> c | None -> chain' in
    for k = 0 to s - 1 do
      let step = Zigzag.build_step ~chain ~k in
      let report = Zigzag.verify_step ~chain step in
      line "  step k=%d: links %s%s" k
        (if Zigzag.link_ok report then "hold" else "FAIL")
        (if step.Zigzag.temp_k = None then " (k = i1−1 special case)" else "")
    done;
    line "";
    let finding, stats = W1r2_theorem.run ~s strategy in
    line "Verdict (%d executions scanned, %d links verified, %d failures):"
      stats.W1r2_theorem.executions_scanned stats.W1r2_theorem.links_checked
      stats.W1r2_theorem.links_failed;
    Format.fprintf ppf "  @[<v>%a@]@," W1r2_theorem.pp_finding finding);
  Format.fprintf ppf "@]"

let explain ~s strategy = Format.asprintf "%t" (pp ~s strategy)
