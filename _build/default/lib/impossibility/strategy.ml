type t = { name : string; decide : Exec_model.view -> int }

let decide t view =
  let d = t.decide view in
  if d <> 1 && d <> 2 then
    invalid_arg
      (Printf.sprintf "Strategy %s returned %d (must be 1 or 2)" t.name d);
  d

(* The digit written last according to one prefix, if any writes are
   visible in it. *)
let last_digit prefix =
  match List.rev (Exec_model.digits_of_prefix prefix) with
  | [] -> None
  | d :: _ -> Some d

let last_digits entries =
  List.filter_map (fun (e : Exec_model.view_entry) -> last_digit e.prefix) entries

let unanimous = function
  | [] -> None
  | d :: rest -> if List.for_all (Int.equal d) rest then Some d else None

let majority ~default digits =
  let ones = List.length (List.filter (Int.equal 1) digits) in
  let twos = List.length (List.filter (Int.equal 2) digits) in
  if ones > twos then 1 else if twos > ones then 2 else default

let last_unanimous_else default =
  {
    name = Printf.sprintf "last-unanimous-else-%d" default;
    decide =
      (fun v ->
        match unanimous (last_digits v.Exec_model.round2) with
        | Some d -> d
        | None -> default);
  }

let majority_last =
  {
    name = "majority-last";
    decide = (fun v -> majority ~default:2 (last_digits v.Exec_model.round2));
  }

let weighted_last =
  {
    name = "weighted-last";
    decide =
      (fun v ->
        majority ~default:2
          (last_digits v.Exec_model.round1 @ last_digits v.Exec_model.round2));
  }

let first_server_rules =
  {
    name = "first-server-rules";
    decide =
      (fun v ->
        match last_digits v.Exec_model.round2 with
        | d :: _ -> d
        | [] -> 2);
  }

let round1_majority =
  {
    name = "round1-majority";
    decide = (fun v -> majority ~default:2 (last_digits v.Exec_model.round1));
  }

let latest_arrival =
  (* Score each digit by how close to the end of each prefix its write
     sits; the digit with the freshest aggregate position wins. *)
  {
    name = "latest-arrival";
    decide =
      (fun v ->
        let score = Array.make 3 0 in
        List.iter
          (fun (e : Exec_model.view_entry) ->
            let digits = Exec_model.digits_of_prefix e.prefix in
            List.iteri (fun pos d -> score.(d) <- score.(d) + pos + 1) digits)
          v.Exec_model.round2;
        if score.(1) > score.(2) then 1 else 2);
  }

let reader_aware =
  {
    name = "reader-aware";
    decide =
      (fun v ->
        let sees_other (e : Exec_model.view_entry) =
          List.exists
            (fun tok ->
              match tok with
              | Token.R { reader; _ } -> reader <> v.Exec_model.reader
              | Token.W _ -> false)
            e.Exec_model.prefix
        in
        let entries = v.Exec_model.round2 in
        let with_other = List.length (List.filter sees_other entries) in
        if 2 * with_other > List.length entries then begin
          (* Coordination visible: trust the freshest digit anywhere. *)
          let freshest =
            List.fold_left
              (fun acc (e : Exec_model.view_entry) ->
                match last_digit e.Exec_model.prefix with
                | Some d -> Some d
                | None -> acc)
              None entries
          in
          match freshest with Some d -> d | None -> 2
        end
        else majority ~default:2 (last_digits entries));
  }

let pessimistic_quorum =
  {
    name = "pessimistic-quorum";
    decide =
      (fun v ->
        let all_one entries =
          entries <> []
          && List.for_all
               (fun (e : Exec_model.view_entry) ->
                 last_digit e.Exec_model.prefix = Some 1)
               entries
        in
        if all_one v.Exec_model.round1 && all_one v.Exec_model.round2 then 1
        else 2);
  }

let natural =
  [
    last_unanimous_else 2;
    last_unanimous_else 1;
    majority_last;
    weighted_last;
    first_server_rules;
    round1_majority;
    latest_arrival;
    reader_aware;
    pessimistic_quorum;
  ]

let view_fingerprint (v : Exec_model.view) =
  let entry (e : Exec_model.view_entry) =
    (e.server, List.map (Format.asprintf "%a" Token.pp) e.prefix)
  in
  Hashtbl.hash (v.reader, List.map entry v.round1, List.map entry v.round2)

let seeded seed =
  {
    name = Printf.sprintf "seeded-%d" seed;
    decide =
      (fun v ->
        match unanimous (last_digits v.Exec_model.round2) with
        | Some d -> d
        | None -> 1 + (Hashtbl.hash (seed, view_fingerprint v) land 1));
  }

let seeded_wild seed =
  {
    name = Printf.sprintf "seeded-wild-%d" seed;
    decide = (fun v -> 1 + (Hashtbl.hash (seed, view_fingerprint v) land 1));
  }
