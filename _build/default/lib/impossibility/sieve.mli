(** §4: the crucial-info model and sieve-based construction (Fig. 8).

    The chain argument of §3 assumed a read's *first* round-trip does not
    affect what other reads return.  §4 lifts that assumption: in the
    crucial-info model the only server state that can matter to a read's
    return is the order in which the two writes arrived ("12" vs "21"),
    so the only possible effect of a blind first round is flipping that
    order.  The sieve partitions the servers into Σ₁ (servers whose
    crucial info R₂⁽¹⁾ flips) and Σ₂ (unaffected), and re-runs chain α on
    Σ₂ alone: the anchors still hold (a flip cannot excuse a read from
    returning the value of the latest preceding write), the chain is just
    shorter, and a critical server is found inside Σ₂ — provided Σ₂ keeps
    at least 3 servers, which any correct implementation must ensure. *)

type effect = server:int -> reader:int -> int list -> int list
(** What a reader's first round does to a server's crucial info (the
    write-digit order).  [honest] is the identity. *)

val honest : effect

val flip_servers : int list -> effect
(** Flips "12"→"21" (and back) on the listed servers when reader 2's
    first round arrives; identity elsewhere. *)

val seeded_effect : seed:int -> flip_probability_pct:int -> effect
(** Deterministic pseudo-random flipping, for the fig8 experiment. *)

type crucial_strategy = {
  cname : string;
  cdecide : (int * int list) list -> int;
      (** Per-server crucial info, ascending server id → return value. *)
}

val crucial_of_last_digits : unit -> crucial_strategy
(** Return the digit written last on all servers if unanimous, else 2 —
    the canonical crucial-info reader. *)

val crucial_majority : crucial_strategy

type outcome =
  | Too_few_unaffected of { sigma1 : int list; sigma2 : int list }
      (** |Σ₂| < 3: the implementation destroyed too many servers'
          crucial info for any correct read to exist (§4.2 requires at
          least 3 unaffected servers when t = 1). *)
  | Anchor_violation of { expected : int; got : int; at : string }
  | Critical of {
      sigma1 : int list;
      sigma2 : int list;
      i1 : int;   (** 1-based position within Σ₂ of the critical flip. *)
      returns : int array;
    }

val run : s:int -> effect:effect -> crucial_strategy -> outcome
(** Replay Fig. 8: build α̂₀ (every server "12", then Σ₁ flipped by
    R₂⁽¹⁾), swap one Σ₂ server at a time up to α̂ₓ, evaluate the strategy
    on R₁'s crucial view after R₁⁽¹⁾R₂⁽¹⁾ and before R₁⁽²⁾'s reply, and
    locate the critical server within Σ₂. *)
