(** Phase 3: horizontal and diagonal links, and the zigzag chain Z (§3.4).

    For the chosen chain β, each step k ∈ [0, S−1] yields intermediate
    executions (Figs. 4–7):

    - horizontal link βₖ ≈ tempₖ ≈ γₖ, where tempₖ moves R₂⁽²⁾'s skip
      from the critical server to s_{k+1} (adding it back *after* R₁⁽²⁾
      on the critical server, behind R₁'s back), and γₖ additionally has
      R₁⁽²⁾ skip s_{k+1};
    - diagonal link βₖ₊₁ ≈ temp′ₖ ≈ γ′ₖ, built symmetrically, with
      γ′ₖ = γₖ (verified structurally).

    Each ≈ holds because one of the two readers gets an *identical view*
    in the linked executions — this module re-verifies every view
    equality per instance rather than trusting the construction, which is
    precisely what reproducing Figs. 4–7 means. *)

type step = {
  k : int;
  temp_k : Exec_model.t option;   (** Absent in the k = critical case. *)
  gamma_k : Exec_model.t;
  temp'_k : Exec_model.t option;
  gamma'_k : Exec_model.t;
}

type link_report = {
  h_r1_beta_temp : bool;      (** R₁ view equal in βₖ and tempₖ. *)
  h_r2_temp_gamma : bool;     (** R₂ view equal in tempₖ and γₖ. *)
  d_r2_beta_temp' : bool;     (** R₂ view equal in βₖ₊₁ and temp′ₖ. *)
  d_r1_temp'_gamma' : bool;   (** R₁ view equal in temp′ₖ and γ′ₖ. *)
  gammas_equal : bool;        (** γ′ₖ = γₖ as executions. *)
}

val link_ok : link_report -> bool

val build_step : chain:Chain_beta.t -> k:int -> step
(** Requires [0 ≤ k ≤ S−1]. *)

val verify_step : chain:Chain_beta.t -> step -> link_report
(** Structural verification of all the view equalities of Figs. 4–7.
    For the k = critical special case the temp executions are absent and
    the corresponding direct equalities (βₖ vs γₖ for R₂, βₖ₊₁ vs γ′ₖ
    for R₂) are checked instead and reported in the same fields. *)

val all_executions : chain:Chain_beta.t -> (string * Exec_model.t) list
(** Chain Z in order: β₀, temp₀, γ₀, temp′₀, β₁, …, β_S, labelled. *)
