(** Abstract executions of the full-info model.

    An execution is, for each server, the sequence of tokens (write
    arrivals and read-round arrivals) the server receives, in order.  A
    round that *skips* a server simply has no token there.  This is the
    exact data the impossibility proof manipulates: "swap two operations
    on server s", "let a round skip s", "add R₂⁽²⁾ back after R₁⁽²⁾" are
    all list surgeries on one server's sequence.

    What a reader returns can depend only on its {!view}: for each of its
    two rounds and each server the round reached, the prefix of that
    server's sequence that precedes the round's arrival.  Two executions
    that give a reader equal views are *indistinguishable* to it — the
    pillar of every chain argument in §3. *)

type t

val make : label:string -> Token.t list array -> t
(** Raises [Invalid_argument] if a token repeats on a server or a
    reader's round 2 precedes its round 1 somewhere. *)

val label : t -> string
val relabel : t -> string -> t
val servers : t -> int
val arrivals : t -> int -> Token.t list

(** {1 Surgery} *)

val remove : t -> server:int -> Token.t -> t
(** Remove a token from one server (the round now skips it).  No-op if
    absent. *)

val insert_after : t -> server:int -> after:Token.t -> Token.t -> t
(** Insert a token immediately after another on one server.  Raises if
    [after] is absent or the token already present. *)

val append : t -> server:int -> Token.t -> t

val equal : t -> t -> bool
(** Same per-server sequences (labels ignored). *)

(** {1 Views} *)

type view_entry = { server : int; prefix : Token.t list }

type view = {
  reader : int;
  round1 : view_entry list; (** Servers round 1 reached, ascending id. *)
  round2 : view_entry list;
}

val view : t -> reader:int -> view

val view_equal : view -> view -> bool

val digits_of_prefix : Token.t list -> int list
(** Just the write digits of a prefix, in order — the *crucial
    information* of §4.1 ("12", "21", "1", …). *)

val pp : Format.formatter -> t -> unit
val pp_view : Format.formatter -> view -> unit
