(** Events arriving at a server, in the full-info model (§4.1).

    The impossibility proof studies executions with two one-round writes
    — [W₁ = write(1)] and [W₂ = write(2)] — and two two-round reads [R₁],
    [R₂].  What a server knows is exactly the sequence of these tokens it
    has received; what a reader learns from a server is the prefix of
    that sequence preceding its own round's arrival. *)

type t =
  | W of int  (** [W d]: the write of digit [d] (1 or 2) arrives. *)
  | R of { reader : int; round : int }
      (** Round [round ∈ {1,2}] of reader [reader ∈ {1,2}] arrives. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val is_write : t -> bool
val digit : t -> int option
(** [digit (W d)] = [Some d]. *)

val pp : Format.formatter -> t -> unit

val w1 : t
val w2 : t
val r : reader:int -> round:int -> t
