(** Theorem 1, executable: no fast-write (W1R2) strategy is atomic.

    Given any candidate read strategy, the driver replays the paper's
    three-phase construction and produces a *concrete violating
    execution*:

    + Phase 1 evaluates the sequential anchors of chain α; a strategy
      that already returns the wrong value there violates atomicity on a
      sequential execution (finding {!Anchor_violation}).
    + Otherwise the critical server exists; Phase 2 builds chains β′/β″
      (R₂ skipping the critical server), verifies structurally that R₂'s
      views coincide across the two chains, reads off R₂'s pinned return
      x, and picks the chain whose head return differs from x.
    + Phase 3 walks the zigzag chain Z.  Every link is a verified view
      equality, so a pure strategy returns equal values across each link;
      since the endpoints force different values, some *single execution*
      in Z must have its two reads disagree — and two reads that both
      follow both writes must return the same value in any atomic
      register.  That execution is the violation ({!Read_disagreement}).

    The pigeonhole in step 3 is exhaustive, so the driver always returns
    a finding; {!Unresolved} exists only as an honest escape hatch for
    strategies outside the model's reach (none of the shipped or
    generated families hit it — the test suite asserts as much). *)

type finding =
  | Anchor_violation of {
      exec : Exec_model.t;
      expected : int;
      got : int;
      description : string;
    }
  | Read_disagreement of {
      exec : Exec_model.t;
      stage : string;     (** Which Z execution, e.g. ["gamma_3"]. *)
      r1 : int;
      r2 : int;
    }
      (** In [exec] both writes precede both reads, yet the strategy
          returns different values to R₁ and R₂ — atomicity violated. *)
  | Unresolved of { detail : string }

type stats = {
  s : int;
  i1 : int option;          (** Critical server (1-based), if reached. *)
  chosen_stem : int option; (** stem_swapped of the chosen chain. *)
  links_checked : int;
  links_failed : int;       (** Structural link failures (must be 0). *)
  executions_scanned : int;
}

val run : s:int -> Strategy.t -> finding * stats

val found_violation : finding -> bool

val pp_finding : Format.formatter -> finding -> unit
