type step = {
  k : int;
  temp_k : Exec_model.t option;
  gamma_k : Exec_model.t;
  temp'_k : Exec_model.t option;
  gamma'_k : Exec_model.t;
}

type link_report = {
  h_r1_beta_temp : bool;
  h_r2_temp_gamma : bool;
  d_r2_beta_temp' : bool;
  d_r1_temp'_gamma' : bool;
  gammas_equal : bool;
}

let link_ok r =
  r.h_r1_beta_temp && r.h_r2_temp_gamma && r.d_r2_beta_temp'
  && r.d_r1_temp'_gamma' && r.gammas_equal

let r1_2 = Token.r ~reader:1 ~round:2
let r2_2 = Token.r ~reader:2 ~round:2

let build_step ~chain ~k =
  let critical = chain.Chain_beta.critical in
  let beta_k = Chain_beta.exec chain k in
  let beta_k1 = Chain_beta.exec chain (k + 1) in
  if k = critical then begin
    (* Simpler case (§3.4.1/§3.4.2, "k + 1 = i1"): on s_{k+1} only
       R1(2) is present (R2 skips it); just let R1(2) skip it too. *)
    let gamma_k =
      Exec_model.relabel
        (Exec_model.remove beta_k ~server:k r1_2)
        (Printf.sprintf "gamma_%d" k)
    in
    let gamma'_k =
      Exec_model.relabel
        (Exec_model.remove beta_k1 ~server:k r1_2)
        (Printf.sprintf "gamma'_%d" k)
    in
    { k; temp_k = None; gamma_k; temp'_k = None; gamma'_k }
  end
  else begin
    (* Horizontal: temp_k moves R2(2)'s skip from the critical server to
       s_{k+1}, re-adding it on the critical server after R1(2). *)
    let temp_k =
      Exec_model.remove beta_k ~server:k r2_2
      |> fun e ->
      Exec_model.insert_after e ~server:critical ~after:r1_2 r2_2
      |> fun e -> Exec_model.relabel e (Printf.sprintf "temp_%d" k)
    in
    let gamma_k =
      Exec_model.relabel
        (Exec_model.remove temp_k ~server:k r1_2)
        (Printf.sprintf "gamma_%d" k)
    in
    (* Diagonal: temp'_k lets R1(2) skip s_{k+1} in beta_{k+1}; gamma'_k
       then moves R2(2)'s skip to s_{k+1} as in the horizontal case. *)
    let temp'_k =
      Exec_model.relabel
        (Exec_model.remove beta_k1 ~server:k r1_2)
        (Printf.sprintf "temp'_%d" k)
    in
    let gamma'_k =
      Exec_model.remove temp'_k ~server:k r2_2
      |> fun e ->
      Exec_model.insert_after e ~server:critical ~after:r1_2 r2_2
      |> fun e -> Exec_model.relabel e (Printf.sprintf "gamma'_%d" k)
    in
    { k; temp_k = Some temp_k; gamma_k; temp'_k = Some temp'_k; gamma'_k }
  end

let view_eq e1 e2 ~reader =
  Exec_model.view_equal (Exec_model.view e1 ~reader) (Exec_model.view e2 ~reader)

let verify_step ~chain step =
  let beta_k = Chain_beta.exec chain step.k in
  let beta_k1 = Chain_beta.exec chain (step.k + 1) in
  match (step.temp_k, step.temp'_k) with
  | Some temp_k, Some temp'_k ->
    {
      h_r1_beta_temp = view_eq beta_k temp_k ~reader:1;
      h_r2_temp_gamma = view_eq temp_k step.gamma_k ~reader:2;
      d_r2_beta_temp' = view_eq beta_k1 temp'_k ~reader:2;
      d_r1_temp'_gamma' = view_eq temp'_k step.gamma'_k ~reader:1;
      gammas_equal = Exec_model.equal step.gamma_k step.gamma'_k;
    }
  | _ ->
    (* k = critical: the direct equalities of the simpler case. *)
    {
      h_r1_beta_temp = true;
      h_r2_temp_gamma = view_eq beta_k step.gamma_k ~reader:2;
      d_r2_beta_temp' = view_eq beta_k1 step.gamma'_k ~reader:2;
      d_r1_temp'_gamma' = true;
      gammas_equal = Exec_model.equal step.gamma_k step.gamma'_k;
    }

let all_executions ~chain =
  let s = Array.length chain.Chain_beta.execs - 1 in
  let acc = ref [] in
  for k = 0 to s - 1 do
    let step = build_step ~chain ~k in
    acc := (Printf.sprintf "beta_%d" k, Chain_beta.exec chain k) :: !acc;
    (match step.temp_k with
    | Some e -> acc := (Exec_model.label e, e) :: !acc
    | None -> ());
    acc := (Exec_model.label step.gamma_k, step.gamma_k) :: !acc;
    match step.temp'_k with
    | Some e -> acc := (Exec_model.label e, e) :: !acc
    | None -> ()
  done;
  acc := (Printf.sprintf "beta_%d" s, Chain_beta.exec chain s) :: !acc;
  List.rev !acc
