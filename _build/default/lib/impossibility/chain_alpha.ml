type outcome =
  | Anchor_violation of {
      exec : Exec_model.t;
      expected : int;
      got : int;
      description : string;
    }
  | Critical of { i1 : int; returns : int array }

let writes_for ~swapped srv =
  if srv < swapped then [ Token.w2; Token.w1 ] else [ Token.w1; Token.w2 ]

let exec ~s ~swapped =
  let arrivals =
    Array.init s (fun srv ->
        writes_for ~swapped srv
        @ [ Token.r ~reader:1 ~round:1; Token.r ~reader:1 ~round:2 ])
  in
  Exec_model.make ~label:(Printf.sprintf "alpha_%d" swapped) arrivals

let run ~s strategy =
  if s < 3 then invalid_arg "Chain_alpha.run: the proof needs S >= 3";
  let returns =
    Array.init (s + 1) (fun i ->
        Strategy.decide strategy (Exec_model.view (exec ~s ~swapped:i) ~reader:1))
  in
  if returns.(0) <> 2 then
    Anchor_violation
      {
        exec = exec ~s ~swapped:0;
        expected = 2;
        got = returns.(0);
        description =
          "alpha_head is the reader view of the sequential execution W1 < W2 < \
           R1, whose read must return 2";
      }
  else if returns.(s) <> 1 then
    Anchor_violation
      {
        exec = exec ~s ~swapped:s;
        expected = 1;
        got = returns.(s);
        description =
          "alpha_tail is the reader view of the sequential execution W2 < W1 < \
           R1, whose read must return 1";
      }
  else begin
    (* The sequence starts at 2 and ends at 1 over {1,2}, so the first
       index holding a 1 is preceded by a 2: the critical flip. *)
    let rec first i =
      if i > s then assert false
      else if returns.(i - 1) = 2 && returns.(i) = 1 then i
      else first (i + 1)
    in
    Critical { i1 = first 1; returns }
  end
