(** Append-only event trace.

    Records what happened during a run (sends, deliveries, drops, crashes,
    protocol-level notes) with virtual timestamps.  Used for debugging,
    for the determinism regression test (same seed ⇒ byte-identical
    trace), and for the worked examples that print executions. *)

type entry = { time : float; tag : string; detail : string }

type t

val create : unit -> t

val add : t -> time:float -> tag:string -> string -> unit

val length : t -> int

val entries : t -> entry list
(** In chronological (insertion) order. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val fingerprint : t -> int
(** A cheap structural hash of the whole trace, for determinism tests. *)
