(** Discrete-event simulation engine.

    The engine owns a virtual clock (the "discrete global clock" of the
    paper's system model, §2.1 — processes cannot read it, but the
    simulator and the checkers can) and a priority queue of pending
    actions.  Running the engine repeatedly extracts the earliest action,
    advances the clock to its timestamp, and executes it.  Actions may
    schedule further actions.

    Determinism: events at equal times are executed in scheduling order
    (a monotone sequence number breaks ties), and all randomness comes
    from the engine's seeded {!Rng.t}, so a run is a pure function of the
    seed and the initial schedule. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh engine at time 0.  Default seed is 42. *)

val now : t -> float
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's master random stream.  Components should [Rng.split] it
    rather than share it, to keep their draws decorrelated. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** [schedule_at t ~time f] runs [f] when the clock reaches [time].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] is [schedule_at t ~time:(now t +. delay) f].
    Negative delays are clipped to zero. *)

val step : t -> bool
(** Execute the next pending event.  Returns [false] when none remain. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Run until quiescence, or until the clock would pass [until], or until
    [max_events] events have been executed, whichever comes first. *)

val stop : t -> unit
(** Request that [run] return after the current event. *)

val pending : t -> int
(** Number of scheduled-but-not-executed events. *)

val processed : t -> int
(** Total number of events executed so far. *)

val is_quiescent : t -> bool
