(** Imperative binary min-heap.

    The event queue of the discrete-event engine.  Elements are ordered by
    a comparison function fixed at creation; ties must be broken by the
    caller (the engine uses a monotone sequence number) so that extraction
    order is deterministic. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (smallest element extracted first). *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum, or [None] when empty. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in arbitrary (heap) order. *)
