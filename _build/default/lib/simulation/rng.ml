(* Splitmix64: tiny, fast, and statistically solid for simulation use.
   Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let nonneg_int t =
  (* 62 usable bits, always non-negative. *)
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t ~bound =
  assert (bound > 0);
  nonneg_int t mod bound

let int_in_range t ~lo ~hi =
  assert (lo <= hi);
  lo + int t ~bound:(hi - lo + 1)

let unit_float t =
  (* 53 random bits into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let float t ~bound = unit_float t *. bound

let float_in_range t ~lo ~hi = lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  let u = unit_float t in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t ~bound:(Array.length arr))
