(** Asynchronous message-passing network with adversarial control.

    Implements the communication substrate of the paper's system model
    (Fig. 1): bidirectional reliable channels between clients and servers,
    no server-to-server communication, crash faults.  "Reliable" means no
    spontaneous loss; messages to/from crashed nodes are discarded, and an
    adversary may *delay* messages arbitrarily — including the paper's
    "skip" construction, where the messages between one operation and one
    server are held until the rest of the execution has finished.

    The network is polymorphic in the message payload so each protocol
    instantiates it with its own message type. *)

type 'msg envelope = {
  id : int;          (** Unique, monotonically increasing per network. *)
  src : int;
  dst : int;
  sent_at : float;
  payload : 'msg;
}

(** What the adversarial filter decides for a message at send time. *)
type action =
  | Deliver            (** Deliver after a latency-model delay. *)
  | Delay of float     (** Deliver after exactly this delay. *)
  | Hold               (** Park the message until [release_held]. *)
  | Drop               (** Silently discard (models a crashed endpoint). *)

type 'msg t

val create :
  Engine.t -> latency:Latency.t -> ?trace:Trace.t -> unit -> 'msg t
(** A network whose default behaviour is to deliver every message after a
    delay drawn from [latency] using a stream split from the engine RNG. *)

val engine : 'msg t -> Engine.t

val register : 'msg t -> node:int -> ('msg envelope -> unit) -> unit
(** Install the delivery handler for [node].  Re-registering replaces the
    handler.  Messages to unregistered nodes raise at delivery time. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Asynchronous send.  Consults [forbid], crash state, then the filter. *)

val set_filter : 'msg t -> ('msg envelope -> action) option -> unit
(** Install or remove the adversarial filter (applied at send time). *)

val forbid : 'msg t -> (src:int -> dst:int -> bool) -> unit
(** [forbid t p] makes any send with [p ~src ~dst = true] raise
    [Invalid_argument].  Used to enforce "servers never talk to servers". *)

val crash : 'msg t -> int -> unit
(** Crash a node: its in-flight and future messages (in both directions)
    are discarded and its handler is never invoked again. *)

val is_crashed : 'msg t -> int -> bool
val crashed_count : 'msg t -> int

val release_held : ?keep:('msg envelope -> bool) -> 'msg t -> unit
(** Deliver (immediately, in original send order) every held message not
    matched by [keep]; messages matched by [keep] stay held. *)

val held_count : 'msg t -> int

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  held_ever : int;
}

val stats : 'msg t -> stats
