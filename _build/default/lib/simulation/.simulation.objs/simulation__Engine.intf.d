lib/simulation/engine.mli: Rng
