lib/simulation/heap.ml: Array
