lib/simulation/heap.mli:
