lib/simulation/network.mli: Engine Latency Trace
