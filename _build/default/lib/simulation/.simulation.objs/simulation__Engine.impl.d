lib/simulation/engine.ml: Heap Printf Rng
