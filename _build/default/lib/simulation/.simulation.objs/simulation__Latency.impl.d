lib/simulation/latency.ml: Printf Rng
