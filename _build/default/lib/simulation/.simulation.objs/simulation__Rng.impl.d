lib/simulation/rng.ml: Array Int64
