lib/simulation/latency.mli: Rng
