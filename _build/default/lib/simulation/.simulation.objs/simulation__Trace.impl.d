lib/simulation/trace.ml: Format Hashtbl List
