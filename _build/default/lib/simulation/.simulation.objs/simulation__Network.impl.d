lib/simulation/network.ml: Engine Hashtbl Latency List Printf Rng Trace
