lib/simulation/rng.mli:
