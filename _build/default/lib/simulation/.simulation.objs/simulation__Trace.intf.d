lib/simulation/trace.mli: Format
