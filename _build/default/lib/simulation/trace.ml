type entry = { time : float; tag : string; detail : string }

type t = { mutable rev_entries : entry list; mutable count : int }

let create () = { rev_entries = []; count = 0 }

let add t ~time ~tag detail =
  t.rev_entries <- { time; tag; detail } :: t.rev_entries;
  t.count <- t.count + 1

let length t = t.count

let entries t = List.rev t.rev_entries

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "@[%10.3f %-8s %s@]@." e.time e.tag e.detail)
    (entries t)

let to_string t = Format.asprintf "%a" pp t

let fingerprint t =
  List.fold_left
    (fun acc e -> Hashtbl.hash (acc, e.time, e.tag, e.detail))
    0 (entries t)
