(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator flows through a value of
    type {!t}, seeded explicitly, so that a simulation run is a pure
    function of its seed: same seed, same schedule, same history.  The
    generator is splittable, which lets independent components (network
    latency, workload think times, fault injection) draw from decorrelated
    streams derived from one master seed. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed.  Two generators
    built from the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    decorrelated from [t]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in [\[lo, hi\]] inclusive.  Requires [lo <= hi]. *)

val float : t -> bound:float -> float
(** Uniform in [\[0, bound)]. *)

val float_in_range : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle driven by [t]. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
