type event = { time : float; seq : int; action : unit -> unit }

type t = {
  mutable clock : float;
  mutable seq : int;
  queue : event Heap.t;
  master_rng : Rng.t;
  mutable executed : int;
  mutable stop_requested : bool;
}

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 42) () =
  {
    clock = 0.0;
    seq = 0;
    queue = Heap.create ~cmp:compare_event;
    master_rng = Rng.create ~seed;
    executed = 0;
    stop_requested = false;
  }

let now t = t.clock

let rng t = t.master_rng

let schedule_at t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time
         t.clock);
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push t.queue { time; seq; action }

let schedule t ~delay action =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) action

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    t.executed <- t.executed + 1;
    ev.action ();
    true

let stop t = t.stop_requested <- true

let run ?until ?max_events t =
  t.stop_requested <- false;
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue () =
    (not t.stop_requested)
    && !budget > 0
    &&
    match Heap.peek t.queue with
    | None -> false
    | Some ev -> ( match until with None -> true | Some u -> ev.time <= u)
  in
  while continue () do
    decr budget;
    ignore (step t : bool)
  done

let pending t = Heap.size t.queue

let processed t = t.executed

let is_quiescent t = Heap.is_empty t.queue
