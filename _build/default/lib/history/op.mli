(** Read/write operations on the shared register.

    An operation records who invoked it, what it did, when it was invoked
    and when it responded (on the discrete global clock of §2.1 — the
    clock the processes themselves cannot read, but the specification and
    the checkers can). *)

(** Client processes.  Readers and writers are disjoint sets in the
    paper's model; the constructors keep them apart. *)
type proc = Writer of int | Reader of int

val proc_equal : proc -> proc -> bool
val compare_proc : proc -> proc -> int
val pp_proc : Format.formatter -> proc -> unit

type kind =
  | Write of int  (** [write(v)] — only writers invoke this. *)
  | Read          (** [read()] — only readers invoke this. *)

type t = {
  id : int;              (** Unique within a history. *)
  proc : proc;
  kind : kind;
  inv : float;           (** Invocation timestamp [O.s]. *)
  resp : float option;   (** Response timestamp [O.f]; [None] if pending. *)
  result : int option;   (** Value returned by a completed read. *)
}

val write : id:int -> proc:proc -> value:int -> inv:float -> resp:float option -> t
val read : id:int -> proc:proc -> inv:float -> resp:float option -> result:int option -> t

val is_write : t -> bool
val is_read : t -> bool
val is_complete : t -> bool

val written_value : t -> int option
(** The value a write stores; [None] for reads. *)

val value_of : t -> int option
(** The value an operation "carries": written value for a write, returned
    value for a completed read. *)

val precedes : t -> t -> bool
(** [precedes o1 o2] is the real-time order [O1 ≺σ O2]: [o1] responded
    before [o2] was invoked.  Pending operations precede nothing. *)

val concurrent : t -> t -> bool
(** Neither precedes the other. *)

val pp : Format.formatter -> t -> unit
