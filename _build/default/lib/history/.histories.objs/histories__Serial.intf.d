lib/history/serial.mli: History
