lib/history/recorder.ml: History List Op
