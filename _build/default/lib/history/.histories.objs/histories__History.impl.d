lib/history/history.ml: Format Hashtbl List Op Printf
