lib/history/op.ml: Format
