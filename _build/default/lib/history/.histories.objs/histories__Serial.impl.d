lib/history/serial.ml: History List Op Option Printf Result String
