(** Executions of clients accessing the shared register (§2.1).

    A history is the sequence of invocation and response events of read
    and write operations, represented as a set of {!Op.t} values carrying
    their timestamps.  This module provides well-formedness (each client
    is sequential), the real-time partial order, and the conventions the
    checkers rely on (an initial value, unique written values). *)

type t

val initial_value : int
(** The value the register holds before any write (written by the paper's
    notional [wr_{0,⊥}]).  Workloads must not write this value. *)

val of_ops : Op.t list -> t
(** Build a history; operations are re-sorted by invocation time (ties by
    id) and ids must be unique. *)

val ops : t -> Op.t list
(** In invocation order. *)

val length : t -> int
val writes : t -> Op.t list
val reads : t -> Op.t list
val find : t -> int -> Op.t option

val procs : t -> Op.proc list
(** Distinct processes appearing, in order of first appearance. *)

val well_formed : t -> (unit, string) result
(** Checks that: ids are unique; [resp >= inv] on completed operations;
    each process's operations are sequential (no two overlap, at most one
    pending and it is last); writers only write and readers only read. *)

val unique_writes : t -> bool
(** All written values are pairwise distinct and differ from
    {!initial_value}.  Precondition of the polynomial atomicity checker. *)

val strip_pending_reads : t -> t
(** Remove reads that never responded.  A pending read imposes no
    atomicity obligation, so checkers may discard them. *)

val pending_writes : t -> Op.t list

val complete_writes : t -> at:float -> t
(** Give every pending write a response at time [at] (conventionally past
    every other event): a pending write may always be linearized as having
    taken effect.  Checkers try histories both with and without pending
    writes; including them with a late response is the permissive choice. *)

val max_time : t -> float
(** Largest timestamp appearing in the history (0 if empty). *)

val restrict : t -> f:(Op.t -> bool) -> t

val pp : Format.formatter -> t -> unit
