type proc = Writer of int | Reader of int

let proc_equal a b = a = b

let compare_proc a b =
  match (a, b) with
  | Writer i, Writer j -> compare i j
  | Reader i, Reader j -> compare i j
  | Writer _, Reader _ -> -1
  | Reader _, Writer _ -> 1

let pp_proc ppf = function
  | Writer i -> Format.fprintf ppf "w%d" i
  | Reader i -> Format.fprintf ppf "r%d" i

type kind = Write of int | Read

type t = {
  id : int;
  proc : proc;
  kind : kind;
  inv : float;
  resp : float option;
  result : int option;
}

let write ~id ~proc ~value ~inv ~resp =
  { id; proc; kind = Write value; inv; resp; result = None }

let read ~id ~proc ~inv ~resp ~result = { id; proc; kind = Read; inv; resp; result }

let is_write t = match t.kind with Write _ -> true | Read -> false

let is_read t = not (is_write t)

let is_complete t = t.resp <> None

let written_value t = match t.kind with Write v -> Some v | Read -> None

let value_of t = match t.kind with Write v -> Some v | Read -> t.result

let precedes o1 o2 =
  match o1.resp with None -> false | Some f -> f < o2.inv

let concurrent o1 o2 = (not (precedes o1 o2)) && not (precedes o2 o1)

let pp ppf t =
  let pp_time ppf = function
    | None -> Format.fprintf ppf "…"
    | Some f -> Format.fprintf ppf "%.3f" f
  in
  match t.kind with
  | Write v ->
    Format.fprintf ppf "@[#%d %a: write(%d) [%.3f, %a]@]" t.id pp_proc t.proc v
      t.inv pp_time t.resp
  | Read ->
    let pp_res ppf = function
      | None -> Format.fprintf ppf "?"
      | Some v -> Format.fprintf ppf "%d" v
    in
    Format.fprintf ppf "@[#%d %a: read() -> %a [%.3f, %a]@]" t.id pp_proc
      t.proc pp_res t.result t.inv pp_time t.resp
