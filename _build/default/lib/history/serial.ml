let float_to_string f = Printf.sprintf "%h" f

let resp_to_string = function None -> "-" | Some f -> float_to_string f

let op_to_string (o : Op.t) =
  let proc =
    match o.Op.proc with
    | Op.Writer i -> Printf.sprintf "w%d" i
    | Op.Reader i -> Printf.sprintf "r%d" i
  in
  match o.Op.kind with
  | Op.Write v ->
    Printf.sprintf "w %d %s %d %s %s" o.Op.id proc v (float_to_string o.Op.inv)
      (resp_to_string o.Op.resp)
  | Op.Read ->
    Printf.sprintf "r %d %s %s %s %s" o.Op.id proc (float_to_string o.Op.inv)
      (resp_to_string o.Op.resp)
      (match o.Op.result with None -> "-" | Some v -> string_of_int v)

let to_string h =
  String.concat "\n" (List.map op_to_string (History.ops h)) ^ "\n"

let parse_proc s =
  if String.length s < 2 then Error (Printf.sprintf "bad process %S" s)
  else
    let idx = String.sub s 1 (String.length s - 1) in
    match (s.[0], int_of_string_opt idx) with
    | 'w', Some i -> Ok (Op.Writer i)
    | 'r', Some i -> Ok (Op.Reader i)
    | _ -> Error (Printf.sprintf "bad process %S" s)

let parse_float s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "bad float %S" s)

let parse_resp s =
  if s = "-" then Ok None
  else match parse_float s with Ok f -> Ok (Some f) | Error e -> Error e

let parse_line line =
  let ( let* ) r f = Result.bind r f in
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | [ "w"; id; proc; value; inv; resp ] ->
    let* id =
      Option.to_result ~none:(Printf.sprintf "bad id %S" id) (int_of_string_opt id)
    in
    let* proc = parse_proc proc in
    let* value =
      Option.to_result ~none:(Printf.sprintf "bad value %S" value)
        (int_of_string_opt value)
    in
    let* inv = parse_float inv in
    let* resp = parse_resp resp in
    Ok (Some (Op.write ~id ~proc ~value ~inv ~resp))
  | [ "r"; id; proc; inv; resp; result ] ->
    let* id =
      Option.to_result ~none:(Printf.sprintf "bad id %S" id) (int_of_string_opt id)
    in
    let* proc = parse_proc proc in
    let* inv = parse_float inv in
    let* resp = parse_resp resp in
    let* result =
      if result = "-" then Ok None
      else
        match int_of_string_opt result with
        | Some v -> Ok (Some v)
        | None -> Error (Printf.sprintf "bad result %S" result)
    in
    Ok (Some (Op.read ~id ~proc ~inv ~resp ~result))
  | [] -> Ok None
  | first :: _ when String.length first > 0 && first.[0] = '#' -> Ok None
  | _ -> Error (Printf.sprintf "unparseable line %S" line)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (History.of_ops (List.rev acc))
    | line :: rest -> (
      match parse_line line with
      | Ok None -> go acc (lineno + 1) rest
      | Ok (Some op) -> go (op :: acc) (lineno + 1) rest
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  match go [] 1 lines with
  | exception Invalid_argument msg -> Error msg
  | result -> result

let to_file h ~path =
  let oc = open_out path in
  output_string oc (to_string h);
  close_out oc

let of_file ~path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text
