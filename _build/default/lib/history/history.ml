type t = { sorted : Op.t list }

let initial_value = 0

let compare_op (a : Op.t) (b : Op.t) =
  let c = compare a.Op.inv b.Op.inv in
  if c <> 0 then c else compare a.Op.id b.Op.id

let of_ops ops =
  let sorted = List.sort compare_op ops in
  let ids = Hashtbl.create (List.length sorted) in
  List.iter
    (fun (o : Op.t) ->
      if Hashtbl.mem ids o.Op.id then
        invalid_arg (Printf.sprintf "History.of_ops: duplicate op id %d" o.Op.id);
      Hashtbl.replace ids o.Op.id ())
    sorted;
  { sorted }

let ops t = t.sorted

let length t = List.length t.sorted

let writes t = List.filter Op.is_write t.sorted

let reads t = List.filter Op.is_read t.sorted

let find t id = List.find_opt (fun (o : Op.t) -> o.Op.id = id) t.sorted

let procs t =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc (o : Op.t) ->
      if Hashtbl.mem seen o.Op.proc then acc
      else begin
        Hashtbl.replace seen o.Op.proc ();
        o.Op.proc :: acc
      end)
    [] t.sorted
  |> List.rev

let well_formed t =
  let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
  let check_op (o : Op.t) =
    let* () =
      match (o.Op.proc, o.Op.kind) with
      | Op.Writer _, Op.Write _ | Op.Reader _, Op.Read -> Ok ()
      | Op.Writer _, Op.Read ->
        Error (Printf.sprintf "op #%d: a writer invoked read()" o.Op.id)
      | Op.Reader _, Op.Write _ ->
        Error (Printf.sprintf "op #%d: a reader invoked write()" o.Op.id)
    in
    match o.Op.resp with
    | Some f when f < o.Op.inv ->
      Error (Printf.sprintf "op #%d: response %.3f before invocation %.3f" o.Op.id f o.Op.inv)
    | _ -> Ok ()
  in
  let rec check_all = function
    | [] -> Ok ()
    | o :: rest ->
      let* () = check_op o in
      check_all rest
  in
  let check_proc_sequential proc =
    let mine =
      List.filter (fun (o : Op.t) -> Op.proc_equal o.Op.proc proc) t.sorted
    in
    let rec go = function
      | [] | [ _ ] -> Ok ()
      | a :: (b :: _ as rest) ->
        (match a.Op.resp with
        | None ->
          Error
            (Format.asprintf "process %a has an operation after a pending one"
               Op.pp_proc proc)
        | Some f ->
          if f > b.Op.inv then
            Error
              (Format.asprintf "process %a has overlapping operations #%d,#%d"
                 Op.pp_proc proc a.Op.id b.Op.id)
          else go rest)
    in
    go mine
  in
  let rec check_procs = function
    | [] -> Ok ()
    | p :: rest ->
      let* () = check_proc_sequential p in
      check_procs rest
  in
  let* () = check_all t.sorted in
  check_procs (procs t)

let unique_writes t =
  let tbl = Hashtbl.create 64 in
  List.for_all
    (fun (o : Op.t) ->
      match Op.written_value o with
      | None -> true
      | Some v ->
        if v = initial_value || Hashtbl.mem tbl v then false
        else begin
          Hashtbl.replace tbl v ();
          true
        end)
    t.sorted

let strip_pending_reads t =
  { sorted = List.filter (fun (o : Op.t) -> Op.is_write o || Op.is_complete o) t.sorted }

let pending_writes t =
  List.filter (fun (o : Op.t) -> Op.is_write o && not (Op.is_complete o)) t.sorted

let max_time t =
  List.fold_left
    (fun acc (o : Op.t) ->
      let m = match o.Op.resp with None -> o.Op.inv | Some f -> f in
      max acc m)
    0.0 t.sorted

let complete_writes t ~at =
  {
    sorted =
      List.map
        (fun (o : Op.t) ->
          if Op.is_write o && not (Op.is_complete o) then { o with Op.resp = Some at }
          else o)
        t.sorted;
  }

let restrict t ~f = { sorted = List.filter f t.sorted }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun o -> Format.fprintf ppf "%a@," Op.pp o) t.sorted;
  Format.fprintf ppf "@]"
