(** Plain-text history serialization.

    One operation per line, whitespace-separated:

    {v
    w <id> w<widx> <value> <inv> <resp|->
    r <id> r<ridx> <inv> <resp|-> <result|->
    v}

    ["-"] marks a pending response / absent result.  Lines starting with
    [#] and blank lines are ignored.  The format round-trips exactly
    (floats are printed with full precision), so recorded histories can
    be re-checked, diffed, and shipped as bug reports. *)

val to_string : History.t -> string

val of_string : string -> (History.t, string) result
(** Parse; the error carries the offending line. *)

val to_file : History.t -> path:string -> unit

val of_file : path:string -> (History.t, string) result
