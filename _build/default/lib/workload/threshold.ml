open Protocol

type verdict = {
  s : int;
  t : int;
  r : int;
  predicted_possible : bool;
  atomic : bool;
  mwa_failure : string option;
  witness : string option;
}

let attack ~register ~s ~t ~r =
  let env =
    Env.make ~seed:1 ~latency:(Simulation.Latency.constant 1.0) ~s ~t ~w:2 ~r ()
  in
  let topology = env.Env.topology in
  let adversary = Adversary.certificate_starvation ~topology ~t () in
  let plans = Adversary.threshold_plans ~topology in
  let out =
    Runtime.run ~register ~env ~plans
      ~adversary:(Adversary.apply adversary) ()
  in
  let atomic = Checker.Atomicity.is_atomic out.Runtime.history in
  let witness =
    match Checker.Atomicity.check out.Runtime.history with
    | Ok () -> None
    | Error w -> Some (Checker.Witness.short w)
  in
  let mwa_failure =
    match Checker.Mw_properties.failures (Checker.Mw_properties.check out.Runtime.tagged) with
    | [] -> None
    | (name, _) :: _ -> Some name
  in
  {
    s;
    t;
    r;
    predicted_possible = Quorums.Bounds.w2r1_possible ~s ~t ~r;
    atomic;
    mwa_failure;
    witness;
  }

let sweep ~register ~s ~t ~r_max =
  List.init (r_max - 1) (fun i -> attack ~register ~s ~t ~r:(i + 2))

let boundary_matches v = v.predicted_possible = v.atomic

let pp_verdict ppf v =
  Format.fprintf ppf "S=%d t=%d R=%d predicted=%s measured=%s%s" v.s v.t v.r
    (if v.predicted_possible then "possible" else "impossible")
    (if v.atomic then "atomic" else "violated")
    (match (v.witness, v.mwa_failure) with
    | Some w, Some m -> Printf.sprintf " (%s, %s)" w m
    | Some w, None -> Printf.sprintf " (%s)" w
    | None, Some m -> Printf.sprintf " (%s)" m
    | None, None -> "")
