open Protocol
open Simulation

type spec = {
  writers : int;
  readers : int;
  writes_per_writer : int;
  reads_per_reader : int;
  mean_think : float;
  start_spread : float;
  seed : int;
}

let default =
  {
    writers = 2;
    readers = 2;
    writes_per_writer = 3;
    reads_per_reader = 5;
    mean_think = 10.0;
    start_spread = 5.0;
    seed = 42;
  }

let steps_for rng ~count ~op ~mean_think =
  let rec go n acc =
    if n <= 0 then List.rev acc
    else
      let think = Rng.exponential rng ~mean:mean_think in
      let acc = if acc = [] then [ op ] else op :: Runtime.Think think :: acc in
      go (n - 1) acc
  in
  go count []

let plans spec =
  let rng = Rng.create ~seed:spec.seed in
  let writer_plans =
    List.init spec.writers (fun i ->
        {
          Runtime.proc = Histories.Op.Writer i;
          start_at = Rng.float rng ~bound:spec.start_spread;
          steps =
            steps_for rng ~count:spec.writes_per_writer ~op:Runtime.Write
              ~mean_think:spec.mean_think;
        })
  in
  let reader_plans =
    List.init spec.readers (fun i ->
        {
          Runtime.proc = Histories.Op.Reader i;
          start_at = Rng.float rng ~bound:spec.start_spread;
          steps =
            steps_for rng ~count:spec.reads_per_reader ~op:Runtime.Read
              ~mean_think:spec.mean_think;
        })
  in
  writer_plans @ reader_plans

let closed_loop spec ~duration =
  (* Approximate per-op cost: think time plus a couple of round-trips;
     the engine stops at quiescence anyway, this only sizes the plans. *)
  let per_op = spec.mean_think +. 1.0 in
  let count = max 1 (int_of_float (duration /. per_op)) in
  plans
    { spec with writes_per_writer = count; reads_per_reader = count }
