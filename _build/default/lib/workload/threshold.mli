(** The fast-read possibility threshold experiment (Fig. 9 + §5.2).

    For each reader count R, run the W2R1 register (Algorithm 1 & 2)
    against the certificate-starvation adversary and ask the checkers
    whether atomicity (and MWA0–MWA4) survived.  The paper predicts a
    sharp boundary at [R < S/t − 2]: below it the implementation is
    proven correct; at and above it no fast-read implementation exists,
    and the adversary exhibits the new/old inversion concretely. *)

type verdict = {
  s : int;
  t : int;
  r : int;
  predicted_possible : bool;    (** [R < S/t − 2] (and t < S/2). *)
  atomic : bool;                (** Checker verdict on the run. *)
  mwa_failure : string option;  (** First MWA property violated, if any. *)
  witness : string option;      (** Short witness classification. *)
}

val attack : register:Protocol.Register_intf.t -> s:int -> t:int -> r:int -> verdict
(** One run of the certificate-starvation schedule ([W = 2] writers). *)

val sweep :
  register:Protocol.Register_intf.t -> s:int -> t:int -> r_max:int -> verdict list
(** [attack] for R = 2 … r_max. *)

val boundary_matches : verdict -> bool
(** Did the empirical verdict land on the predicted side?  (In the
    possible regime the run must be atomic; in the impossible regime this
    particular adversary must have produced a violation.) *)

val pp_verdict : Format.formatter -> verdict -> unit
