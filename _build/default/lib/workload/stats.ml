open Histories

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let empty =
  { count = 0; mean = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0 }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))
  end

let of_latencies lats =
  match lats with
  | [] -> empty
  | _ ->
    let sorted = Array.of_list lats in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    {
      count = n;
      mean = sum /. float_of_int n;
      min = sorted.(0);
      max = sorted.(n - 1);
      p50 = percentile sorted 0.50;
      p95 = percentile sorted 0.95;
      p99 = percentile sorted 0.99;
    }

let latencies_of ~keep h =
  List.filter_map
    (fun (o : Op.t) ->
      match o.Op.resp with
      | Some f when keep o -> Some (f -. o.Op.inv)
      | _ -> None)
    (History.ops h)

let read_latencies h = latencies_of ~keep:Op.is_read h

let write_latencies h = latencies_of ~keep:Op.is_write h

let reads h = of_latencies (read_latencies h)

let writes h = of_latencies (write_latencies h)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f" s.count
    s.mean s.p50 s.p95 s.p99 s.max
