(** Randomized workload generation.

    Turns a compact spec into concrete client plans: per-operation think
    times drawn from an exponential distribution, jittered client start
    times, and optional read-heavy or write-heavy mixes.  Deterministic
    in the seed, like everything else in the simulator. *)

open Protocol

type spec = {
  writers : int;
  readers : int;
  writes_per_writer : int;
  reads_per_reader : int;
  mean_think : float;     (** Mean think time between a client's ops. *)
  start_spread : float;   (** Client start times uniform in [0, spread). *)
  seed : int;
}

val default : spec
(** 2 writers × 3 writes, 2 readers × 5 reads, mean think 10, spread 5. *)

val plans : spec -> Runtime.plan list
(** One plan per client, think times exponential with the given mean. *)

val closed_loop :
  spec -> duration:float -> Runtime.plan list
(** Clients issue operations back-to-back (think times still drawn, so
    schedules vary) until their expected makespan reaches [duration]:
    the op counts in [spec] are ignored and derived from [duration]. *)
