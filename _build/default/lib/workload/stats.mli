(** Latency statistics over histories.

    Operation latency is response time minus invocation time on the
    simulator's virtual clock; under a given latency model this directly
    reflects round-trip counts, which is the paper's cost measure
    ("the latency of read and write operations is mainly decided by the
    number of round-trips"). *)

open Histories

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val empty : summary

val of_latencies : float list -> summary

val read_latencies : History.t -> float list
(** Latencies of completed reads. *)

val write_latencies : History.t -> float list

val reads : History.t -> summary
val writes : History.t -> summary

val pp_summary : Format.formatter -> summary -> unit
