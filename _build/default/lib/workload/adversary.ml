open Protocol
open Simulation

type rule = src:int -> dst:int -> now:float -> Network.action option

type t = { rules : rule list; crashes : (float * int) list }

let none = { rules = []; crashes = [] }

let of_rules rules = { rules; crashes = [] }

let compose ts =
  {
    rules = List.concat_map (fun t -> t.rules) ts;
    crashes = List.concat_map (fun t -> t.crashes) ts;
  }

let apply t ctl engine =
  if t.rules <> [] then
    ctl.Control.set_route
      (Some
         (fun ~src ~dst ~now ->
           let rec go = function
             | [] -> Network.Deliver
             | r :: rest -> (
               match r ~src ~dst ~now with Some a -> a | None -> go rest)
           in
           go t.rules));
  List.iter
    (fun (time, srv) ->
      Engine.schedule_at engine ~time (fun () -> ctl.Control.crash_server srv))
    t.crashes

let crash_at crashes = { rules = []; crashes }

let crash_random ~seed ~t ~at ~s =
  let rng = Rng.create ~seed in
  let all = Array.init s (fun i -> i) in
  Rng.shuffle rng all;
  crash_at (List.init t (fun i -> (at, all.(i))))

let hold_route ?(from_time = 0.0) ~src ~dst () =
  of_rules
    [
      (fun ~src:s ~dst:d ~now ->
        if s = src && d = dst && now >= from_time then Some Network.Hold else None);
    ]

let delay_route ~delay ~src ~dst =
  of_rules
    [
      (fun ~src:s ~dst:d ~now:_ ->
        if s = src && d = dst then Some (Network.Delay delay) else None);
    ]

let random_skips ~seed ~topology ~t_budget ~window =
  of_rules
    [
      (fun ~src ~dst ~now ->
        (* Only shape client->server traffic; replies flow freely so a
           round-trip completes from the servers the request reached. *)
        if not (Topology.is_client topology src && Topology.is_server topology dst)
        then None
        else begin
          let epoch = int_of_float (now /. window) in
          (* Exactly the [t_budget] servers with the smallest pseudo-random
             rank are skipped by this client in this epoch, so no
             round-trip ever lacks its S − t quorum. *)
          let s = topology.Topology.servers in
          let rank d = (Hashtbl.hash (seed, src, d, epoch), d) in
          let mine = rank dst in
          let smaller = ref 0 in
          for d = 0 to s - 1 do
            if d <> dst && rank d < mine then incr smaller
          done;
          if !smaller < t_budget then Some Network.Hold else None
        end);
    ]

let partition ~groups ~from_time ~until =
  of_rules
    [
      (fun ~src ~dst ~now ->
        if now >= from_time && now < until && groups src <> groups dst then
          Some (Network.Delay (until -. now))
        else None);
    ]

(* ------------------------------------------------------------------ *)
(* The Fig. 9 experiment                                                *)
(* ------------------------------------------------------------------ *)

(* Timing constants for unit latency: a round-trip started at time T has
   its requests arriving at T+1 and replies at T+2; the next round's
   requests leave at T+2. *)
let w0_start = 0.0
let w1_start = 10.0
let reader_gap = 10.0
let readers_start = 30.0

let last_reader_start topology =
  readers_start +. (float_of_int topology.Topology.readers *. reader_gap) +. 50.0

let certificate_starvation ~topology ~t () =
  let block dst = dst < t in
  let w0 = Topology.writer_node topology 0 in
  let w1 =
    if topology.Topology.writers > 1 then Some (Topology.writer_node topology 1)
    else None
  in
  let last_reader =
    Topology.reader_node topology (topology.Topology.readers - 1)
  in
  of_rules
    [
      (* Writer 0's second round (messages sent after its first round
         returned, i.e. after time w0_start + 2 - epsilon) reaches only
         the certificate block. *)
      (fun ~src ~dst ~now ->
        if src = w0 && Topology.is_server topology dst && now > w0_start +. 1.5
           && not (block dst)
        then Some Network.Hold
        else None);
      (* Writer 1 never gets past its first round. *)
      (fun ~src ~dst ~now ->
        match w1 with
        | Some w1 when src = w1 && Topology.is_server topology dst
                       && now > w1_start +. 1.5 ->
          Some Network.Hold
        | _ -> None);
      (* The last reader skips the certificate block. *)
      (fun ~src ~dst ~now:_ ->
        if src = last_reader && Topology.is_server topology dst && block dst then
          Some Network.Hold
        else None);
    ]

let threshold_plans ~topology =
  let open Runtime in
  let writers =
    write_plan ~writer:0 ~start_at:w0_start 1
    ::
    (if topology.Topology.writers > 1 then [ write_plan ~writer:1 ~start_at:w1_start 1 ]
     else [])
  in
  let readers =
    List.init topology.Topology.readers (fun i ->
        let start_at =
          if i = topology.Topology.readers - 1 then last_reader_start topology
          else readers_start +. (float_of_int i *. reader_gap)
        in
        read_plan ~reader:i ~start_at 1)
  in
  writers @ readers
