open Protocol

type violation = {
  order : int list;
  skips : (int * int) list;
  witness : Checker.Witness.t;
}

type outcome = {
  runs : int;
  exhaustive : bool;
  violations : int;
  first : violation option;
}

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let slot_duration = 100.0

(* One run: ops placed at their slots, the skip pattern realized by a
   time-windowed filter.  digits.(rs) = 0 for no skip, or 1 + server. *)
let run_one ~register ~s ~w ~r ~order ~digits =
  let env =
    Env.make ~seed:1 ~latency:(Simulation.Latency.constant 1.0) ~s ~t:1 ~w ~r ()
  in
  let topology = env.Env.topology in
  let n = w + r in
  let slot_of = Array.make n 0 in
  List.iteri (fun slot op -> slot_of.(op) <- slot) order;
  let node_of op =
    if op < w then Topology.writer_node topology op
    else Topology.reader_node topology (op - w)
  in
  let start_of op = float_of_int slot_of.(op) *. slot_duration in
  let plans =
    List.init n (fun op ->
        if op < w then Runtime.write_plan ~writer:op ~start_at:(start_of op) 1
        else Runtime.read_plan ~reader:(op - w) ~start_at:(start_of op) 1)
  in
  let adversary _ctl _engine = () in
  ignore adversary;
  let route ~src ~dst ~now =
    if not (Topology.is_server topology dst) then Simulation.Network.Deliver
    else begin
      (* Which op and round does this message belong to? *)
      let rec find op = if op >= n then None else if node_of op = src then Some op else find (op + 1) in
      match find 0 with
      | None -> Simulation.Network.Deliver
      | Some op ->
        let start = start_of op in
        let round = if now < start +. 1.5 then 0 else 1 in
        let digit = digits.((op * 2) + round) in
        if digit = 1 + dst then Simulation.Network.Hold
        else Simulation.Network.Deliver
    end
  in
  let adversary ctl _engine = ctl.Control.set_route (Some route) in
  let out = Runtime.run ~register ~env ~plans ~adversary () in
  Checker.Atomicity.check out.Runtime.history

let explore ?(max_runs = 100_000) ~register ~s ~w ~r () =
  let n = w + r in
  let digit_count = 2 * n in
  let base = s + 1 in
  let orders = permutations (List.init n (fun i -> i)) in
  let digits = Array.make digit_count 0 in
  let runs = ref 0 in
  let violations = ref 0 in
  let first = ref None in
  let truncated = ref false in
  (try
     List.iter
       (fun order ->
         Array.fill digits 0 digit_count 0;
         let continue = ref true in
         while !continue do
           if !runs >= max_runs then begin
             truncated := true;
             raise Exit
           end;
           incr runs;
           (match run_one ~register ~s ~w ~r ~order ~digits with
           | Ok () -> ()
           | Error witness ->
             incr violations;
             if !first = None then
               first :=
                 Some
                   {
                     order;
                     skips =
                       Array.to_list digits
                       |> List.mapi (fun rs d -> (rs, d - 1))
                       |> List.filter (fun (_, srv) -> srv >= 0);
                     witness;
                   });
           (* Mixed-radix increment. *)
           let rec inc i =
             if i >= digit_count then continue := false
             else if digits.(i) + 1 < base then digits.(i) <- digits.(i) + 1
             else begin
               digits.(i) <- 0;
               inc (i + 1)
             end
           in
           inc 0
         done)
       orders
   with Exit -> ());
  {
    runs = !runs;
    exhaustive = not !truncated;
    violations = !violations;
    first = !first;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "%d runs%s, %d violations%s" o.runs
    (if o.exhaustive then " (exhaustive)" else " (truncated)")
    o.violations
    (match o.first with
    | None -> ""
    | Some v ->
      Format.asprintf "; first: order [%s], skips [%s], %s"
        (String.concat ";" (List.map string_of_int v.order))
        (String.concat ";"
           (List.map (fun (rs, srv) -> Printf.sprintf "r%d->s%d" rs srv) v.skips))
        (Checker.Witness.short v.witness))
