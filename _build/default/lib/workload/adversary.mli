(** Named adversaries: schedule shapers and fault plans.

    An adversary bundles route rules (deciding per-message fates from
    endpoints and time) and crash plans.  {!apply} turns it into the
    callback {!Protocol.Runtime.run} accepts.  All adversaries here
    respect the model — they delay or crash within the [t] budget, they
    never forge or reorder within a channel — so any atomicity violation
    they expose is the protocol's fault, not the adversary's. *)

open Protocol
open Simulation

type rule = src:int -> dst:int -> now:float -> Network.action option
(** [None] means "no opinion"; the first rule with an opinion wins,
    default {!Network.Deliver}. *)

type t

val apply : t -> Control.t -> Engine.t -> unit
(** What [Runtime.run ~adversary] wants. *)

val none : t

val of_rules : rule list -> t

val compose : t list -> t
(** Route rules concatenate (earlier adversaries take precedence);
    crash plans union. *)

val crash_at : (float * int) list -> t
(** [(time, server_index)] pairs.  The caller is responsible for staying
    within the cluster's [t] budget. *)

val crash_random : seed:int -> t:int -> at:float -> s:int -> t
(** Crash a pseudo-randomly chosen set of [t] distinct servers at [at]. *)

val hold_route : ?from_time:float -> src:int -> dst:int -> unit -> t
(** Hold every message on one directed link from [from_time] on (the
    paper's "skip": delivery happens when the runtime releases held
    messages after the execution proper). *)

val delay_route : delay:float -> src:int -> dst:int -> t

val random_skips :
  seed:int -> topology:Topology.t -> t_budget:int -> window:float -> t
(** In each time window of the given length, every client independently
    "skips" a pseudo-random set of at most [t_budget] servers: its
    messages to them are held.  Keeps every round-trip completable while
    exploring the schedule space the proofs range over. *)

val partition :
  groups:(int -> int) -> from_time:float -> until:float -> t
(** Between [from_time] and [until], messages crossing group boundaries
    are delayed to [until] (the partition heals by itself).  [groups]
    maps a node id to its side.  Within-group traffic is untouched. *)

val certificate_starvation : topology:Topology.t -> t:int -> unit -> t
(** The fast-read killer (Fig. 9 / §5.1, adapted to Algorithm 1 & 2):

    - writer 0's second-round updates reach only the first [t] servers
      (the {i certificate block}), so its value v₁ lives on [t] servers
      while the write stays in progress;
    - writer 1 stays in its first round forever (its query still lands on
      the block, enrolling w₁ in v₁'s [updated] set);
    - readers 0 … R−2 read normally, each visit enrolling them in the
      block's [updated] set for v₁, until the set reaches R+1 clients —
      at which point the admissible predicate certifies v₁ from the
      block alone iff [R ≥ S/t − 2];
    - the last reader reads while skipping the block and finds no trace
      of v₁.

    In the unsafe regime some reader returns v₁ and the last reader then
    returns the older value — a new/old inversion (MWA4).  In the safe
    regime [R < S/t − 2] the block alone can never certify v₁ and every
    read returns the old value consistently.  Pair with
    {!threshold_plans} and a [Latency.constant 1.0] environment (the
    filter windows assume unit delays). *)

val threshold_plans : topology:Topology.t -> Runtime.plan list
(** The operation schedule matching {!certificate_starvation}: one write
    per writer, one read per reader, timed so the filter windows land
    between rounds. *)
