lib/workload/adversary.mli: Control Engine Network Protocol Runtime Simulation Topology
