lib/workload/adversary.ml: Array Control Engine Hashtbl List Network Protocol Rng Runtime Simulation Topology
