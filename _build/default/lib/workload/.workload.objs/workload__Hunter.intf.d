lib/workload/hunter.mli: Checker Format Protocol Register_intf
