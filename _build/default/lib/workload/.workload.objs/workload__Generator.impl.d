lib/workload/generator.ml: Histories List Protocol Rng Runtime Simulation
