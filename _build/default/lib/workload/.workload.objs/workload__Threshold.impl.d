lib/workload/threshold.ml: Adversary Checker Env Format List Printf Protocol Quorums Runtime Simulation
