lib/workload/generator.mli: Protocol Runtime
