lib/workload/exhaustive.ml: Array Checker Control Env Format List Printf Protocol Runtime Simulation String Topology
