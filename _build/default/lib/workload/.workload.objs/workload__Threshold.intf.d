lib/workload/threshold.mli: Format Protocol
