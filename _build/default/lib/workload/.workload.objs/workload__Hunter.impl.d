lib/workload/hunter.ml: Adversary Checker Env Format List Protocol Runtime Simulation Threshold
