lib/workload/exhaustive.mli: Checker Format Protocol Register_intf
