lib/workload/stats.mli: Format Histories History
