lib/workload/stats.ml: Array Format Histories History List Op Stdlib
