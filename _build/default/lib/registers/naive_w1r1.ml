(** The doubly-naive candidate: fast write *and* fast read (W1R1).

    Writers behave like {!Naive_w1r2}; readers do one query round and
    return the maximum value seen, with no write-back and no
    admissibility certificate.  DGLV10 proved this design point empty for
    [W ≥ 2, R ≥ 2, t ≥ 1]; here even the single-writer regime breaks for
    [R ≥ S/t − 2]-style schedules because nothing prevents new/old
    inversions between readers that observe disjoint quorums. *)

let name = "naive fast-write/fast-read"

let design_point = Quorums.Bounds.W1R1

type cluster = {
  base : Cluster_base.t;
  clocks : Tstamp.t ref array;
}

let create env =
  let base = Cluster_base.create env in
  { base; clocks = Array.init (Protocol.Env.w env) (fun _ -> ref Tstamp.initial) }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k =
  Client_core.one_round_write c.base ~writer ~wid:writer ~payload:value
    ~clock:c.clocks.(writer) ~learn:true ~k

let read c ~reader ~k = Client_core.one_round_read_max c.base ~reader ~k
