let abd_mwmr : Protocol.Register_intf.t = (module Abd_mwmr)

let abd_swmr : Protocol.Register_intf.t = (module Abd_swmr)

let fastread_w2r1 : Protocol.Register_intf.t = (module Fastread_w2r1)

let dglv_w1r1 : Protocol.Register_intf.t = (module Dglv_w1r1)

let naive_w1r2 : Protocol.Register_intf.t = (module Naive_w1r2)

let naive_w1r1 : Protocol.Register_intf.t = (module Naive_w1r1)

let adaptive : Protocol.Register_intf.t = (module Adaptive_read)

let slow_write_w3r1 : Protocol.Register_intf.t = (module Slow_write_w3r1)

let all =
  [ abd_mwmr; abd_swmr; fastread_w2r1; dglv_w1r1; naive_w1r2; naive_w1r1;
    adaptive; slow_write_w3r1 ]

let multi_writer = [ abd_mwmr; naive_w1r2; fastread_w2r1; naive_w1r1 ]

let name (r : Protocol.Register_intf.t) =
  let module R = (val r) in
  R.name

let design_point (r : Protocol.Register_intf.t) =
  let module R = (val r) in
  R.design_point

let find needle =
  let lower = String.lowercase_ascii needle in
  let contains hay =
    let hay = String.lowercase_ascii hay in
    let n = String.length lower and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = lower || go (i + 1)) in
    n = 0 || go 0
  in
  List.find_opt (fun r -> contains (name r)) all
