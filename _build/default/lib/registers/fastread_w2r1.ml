(** The paper's W2R1 implementation (Algorithm 1 & 2, §5.2, Appendix A).

    Writes take two rounds: the writer queries all servers for the
    maximum timestamp (propagating its own last value — the [(read,
    maxTS)] message) and then updates [(maxTS + 1, wᵢ)] everywhere, so
    non-concurrent writes from different writers are ordered by timestamp
    and concurrent ones by writer id (MWA0).

    Reads are *fast*: a single round.  The reader sends its [valQueue]
    (servers fold it in before replying — that propagation is what lets
    later readers certify values), collects [S − t] READACKs, and returns
    the largest value [admissible] with some degree [a ∈ [1, R+1]].

    Atomic exactly when [R < S/t − 2]; beyond that threshold the
    admissible predicate degenerates (see `fig9`). *)

let name = "Huang et al. W2R1"

let design_point = Quorums.Bounds.W2R1

type cluster = {
  base : Cluster_base.t;
  last_written : Wire.value ref array; (* per writer *)
  val_queues : Wire.value list ref array; (* per reader *)
  mutable probe : (Client_core.read_probe -> unit) option;
}

let create env =
  let base = Cluster_base.create env in
  {
    base;
    last_written =
      Array.init (Protocol.Env.w env) (fun _ -> ref Wire.initial_value_entry);
    val_queues =
      Array.init (Protocol.Env.r env) (fun _ -> ref [ Wire.initial_value_entry ]);
    probe = None;
  }

(** Install an observation hook on every fast read (lemma tests). *)
let set_probe c probe = c.probe <- probe

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k =
  Client_core.two_round_write c.base ~writer ~payload:value
    ~last_written:c.last_written.(writer) ~k

let read c ~reader ~k =
  Client_core.fast_read ?probe:c.probe c.base ~reader
    ~val_queue:c.val_queues.(reader) ~k
