lib/registers/abd_swmr.mli: Checker Protocol Quorums
