lib/registers/replica.mli: Wire
