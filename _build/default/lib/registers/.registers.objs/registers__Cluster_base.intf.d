lib/registers/cluster_base.mli: Control Env Message Network Protocol Replica Round_trip Simulation Wire
