lib/registers/fastread_w2r1.mli: Checker Client_core Protocol Quorums
