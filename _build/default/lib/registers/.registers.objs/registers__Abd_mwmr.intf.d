lib/registers/abd_mwmr.mli: Checker Protocol Quorums
