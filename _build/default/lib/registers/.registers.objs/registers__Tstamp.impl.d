lib/registers/tstamp.ml: Checker Stdlib
