lib/registers/client_core.mli: Checker Cluster_base Tstamp Wire
