lib/registers/registry.mli: Protocol Quorums
