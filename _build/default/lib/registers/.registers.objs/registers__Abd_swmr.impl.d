lib/registers/abd_swmr.ml: Client_core Cluster_base Protocol Quorums Tstamp
