lib/registers/client_core.ml: Array Cluster_base Hashtbl Int List Protocol Round_trip Set Tstamp Wire
