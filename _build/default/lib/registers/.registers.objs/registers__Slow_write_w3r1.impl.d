lib/registers/slow_write_w3r1.ml: Array Client_core Cluster_base Protocol Quorums Tstamp Wire
