lib/registers/replica.ml: Hashtbl Int List Set Tstamp Wire
