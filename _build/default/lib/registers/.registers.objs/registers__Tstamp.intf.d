lib/registers/tstamp.mli: Checker Format
