lib/registers/naive_w1r2.mli: Checker Protocol Quorums
