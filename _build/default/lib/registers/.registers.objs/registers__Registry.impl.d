lib/registers/registry.ml: Abd_mwmr Abd_swmr Adaptive_read Dglv_w1r1 Fastread_w2r1 List Naive_w1r1 Naive_w1r2 Protocol Slow_write_w3r1 String
