lib/registers/fastread_w2r1.ml: Array Client_core Cluster_base Protocol Quorums Wire
