lib/registers/cluster_base.ml: Array Control Env Message Network Protocol Replica Round_trip Server Simulation Topology Wire
