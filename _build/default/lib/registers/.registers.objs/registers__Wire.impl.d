lib/registers/wire.ml: Format Histories List Tstamp
