lib/registers/naive_w1r1.mli: Checker Protocol Quorums
