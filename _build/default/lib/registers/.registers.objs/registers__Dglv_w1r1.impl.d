lib/registers/dglv_w1r1.ml: Array Client_core Cluster_base Protocol Quorums Tstamp Wire
