lib/registers/naive_w1r2.ml: Array Client_core Cluster_base Protocol Quorums Tstamp
