lib/registers/wire.mli: Format Tstamp
