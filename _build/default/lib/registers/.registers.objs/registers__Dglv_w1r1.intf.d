lib/registers/dglv_w1r1.mli: Checker Protocol Quorums
