lib/registers/adaptive_read.ml: Array Client_core Cluster_base Env List Protocol Quorums Round_trip Tstamp Wire
