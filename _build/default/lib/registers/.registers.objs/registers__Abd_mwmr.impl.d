lib/registers/abd_mwmr.ml: Array Client_core Cluster_base Protocol Quorums Wire
