lib/registers/adaptive_read.mli: Checker Protocol Quorums
