type value = { tag : Tstamp.t; payload : int }

let initial_value_entry =
  { tag = Tstamp.initial; payload = Histories.History.initial_value }

let compare_value a b = Tstamp.compare a.tag b.tag

let value_max a b = if compare_value a b >= 0 then a else b

let pp_value ppf v = Format.fprintf ppf "%a=%d" Tstamp.pp v.tag v.payload

type req = Query of value list | Update of value

type rep =
  | Read_ack of { current : value; vector : (value * int list) list }
  | Write_ack of { current : value }

let pp_req ppf = function
  | Query vs ->
    Format.fprintf ppf "query[%a]" (Format.pp_print_list pp_value) vs
  | Update v -> Format.fprintf ppf "update[%a]" pp_value v

let pp_rep ppf = function
  | Read_ack { current; vector } ->
    Format.fprintf ppf "read_ack[cur=%a, |vec|=%d]" pp_value current
      (List.length vector)
  | Write_ack { current } -> Format.fprintf ppf "write_ack[cur=%a]" pp_value current
