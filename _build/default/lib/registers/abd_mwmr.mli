(** See the module implementation header for the protocol description.
    Implements {!Protocol.Register_intf.S}. *)

val name : string
val design_point : Quorums.Bounds.design_point

type cluster

val create : Protocol.Env.t -> cluster
val control : cluster -> Protocol.Control.t

val write :
  cluster ->
  writer:int ->
  value:int ->
  k:(Checker.Mw_properties.tag option -> unit) ->
  unit

val read :
  cluster -> reader:int -> k:(int -> Checker.Mw_properties.tag option -> unit) -> unit
