(** The doomed candidate: a best-effort multi-writer *fast write* (W1R2).

    Writers pick timestamps from purely local knowledge — a local clock
    folded with every timestamp the servers have ever ACKed back to them
    — and update all servers in a single round.  Reads are the full slow
    two-round read with write-back, so all the blame for any violation
    falls on the fast write.

    Theorem 1 says no choice of local strategy can make this atomic with
    [W ≥ 2, R ≥ 2, t ≥ 1]; the learning writer is deliberately the
    strongest cheap attempt, and the checker still finds stale reads:
    two non-concurrent writes by different writers can obtain inverted
    timestamps because the later writer hasn't yet *heard* about the
    earlier write (it never queries before writing — that query is
    precisely the second round Theorem 1 proves necessary). *)

let name = "naive fast-write"

let design_point = Quorums.Bounds.W1R2

type cluster = {
  base : Cluster_base.t;
  clocks : Tstamp.t ref array; (* per writer: local clock + learned info *)
}

let create env =
  let base = Cluster_base.create env in
  { base; clocks = Array.init (Protocol.Env.w env) (fun _ -> ref Tstamp.initial) }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k =
  Client_core.one_round_write c.base ~writer ~wid:writer ~payload:value
    ~clock:c.clocks.(writer) ~learn:true ~k

let read c ~reader ~k = Client_core.two_round_read c.base ~reader ~k
