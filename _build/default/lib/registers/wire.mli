(** The wire protocol shared by every register implementation.

    All protocols in this repository exchange the same two request forms
    — a *query/propagate* ([Read]) carrying the client's value queue, and
    an *update* ([Write]) carrying one value — and the same replies.
    Following the paper's full-info model (§4.1), servers answer queries
    with their entire value vector (value → set of clients that updated
    it); each client protocol then uses as much or as little of that
    information as its algorithm needs.  This keeps one server
    implementation honest across all six protocols: they differ only in
    client logic and round counts. *)

type value = { tag : Tstamp.t; payload : int }
(** A register value: its timestamp identity and the stored integer. *)

val initial_value_entry : value
val compare_value : value -> value -> int
val value_max : value -> value -> value
val pp_value : Format.formatter -> value -> unit

type req =
  | Query of value list
      (** The reader's [(read, valQueue)] / the writer's [(read, maxTS)]
          message: the server folds every carried value into its state
          ({i before} replying — Algorithm 2, line 20) and answers with a
          {!Read_ack}. *)
  | Update of value
      (** The [(write, val)] message; answered with a {!Write_ack}. *)

type rep =
  | Read_ack of {
      current : value;             (** The server's [valᵢ]. *)
      vector : (value * int list) list;
          (** The full value vector: every value the server has seen with
              the client node ids in its [updated] set. *)
    }
  | Write_ack of { current : value }
      (** ACK; [current] lets best-effort writers learn timestamps. *)

val pp_req : Format.formatter -> req -> unit
val pp_rep : Format.formatter -> rep -> unit
