(** Timestamps [(ts, wid)] — the value identifiers of §5.2.

    A value written by writer [wᵢ] is denoted [(ts, wᵢ)] where [ts] is a
    version number; values are totally ordered lexicographically, writer
    ids breaking ties between concurrent writes ("when we have equal ts
    values … the lexicographical order").  The type is an alias of the
    checker's {!Checker.Mw_properties.tag} so protocol output feeds the
    MWA property checker without conversion. *)

type t = Checker.Mw_properties.tag = { ts : int; wid : int }

val initial : t
(** [(0, ⊥)], with ⊥ encoded as writer id −1. *)

val compare : t -> t -> int
(** Lexicographic: [ts] first, then [wid]. *)

val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val max : t -> t -> t

val next : t -> wid:int -> t
(** [next m ~wid] = [(m.ts + 1, wid)] — the timestamp a writer picks
    after observing maximum [m]. *)

val pp : Format.formatter -> t -> unit
