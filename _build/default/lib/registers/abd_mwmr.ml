(** LS97: the multi-writer W2R2 baseline (Lynch & Shvartsman 1997).

    Two-round writes (query [maxTS], then update [(maxTS+1, wᵢ)]) and
    two-round reads (query, then write back the maximum before
    returning).  Atomic whenever [t < S/2] — the top of the Fig. 2
    lattice and the "slow but safe" reference every fast variant is
    measured against. *)

let name = "LS97 ABD-MW"

let design_point = Quorums.Bounds.W2R2

type cluster = {
  base : Cluster_base.t;
  last_written : Wire.value ref array; (* per writer *)
}

let create env =
  let base = Cluster_base.create env in
  {
    base;
    last_written =
      Array.init (Protocol.Env.w env) (fun _ -> ref Wire.initial_value_entry);
  }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k =
  Client_core.two_round_write c.base ~writer ~payload:value
    ~last_written:c.last_written.(writer) ~k

let read c ~reader ~k = Client_core.two_round_read c.base ~reader ~k
