(** DGLV10: the single-writer *fast* register (Dutta, Guerraoui, Levy &
    Vukolić, "Fast access to distributed atomic memory").

    Both operations are one round-trip: the single writer numbers its own
    writes locally and updates all servers in one round; readers use the
    admissible-predicate fast read.  Atomic exactly when [W = 1] and
    [R < S/t − 2] — the W1R1 design point on the single-writer side of
    the boundary that this paper's Table 1 closes for [W ≥ 2]. *)

let name = "DGLV10 SW-fast"

let design_point = Quorums.Bounds.W1R1

type cluster = {
  base : Cluster_base.t;
  clock : Tstamp.t ref;
  val_queues : Wire.value list ref array;
}

let create env =
  if Protocol.Env.w env <> 1 then
    invalid_arg "Dglv_w1r1.create: the single-writer protocol needs exactly 1 writer";
  let base = Cluster_base.create env in
  {
    base;
    clock = ref Tstamp.initial;
    val_queues =
      Array.init (Protocol.Env.r env) (fun _ -> ref [ Wire.initial_value_entry ]);
  }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k =
  assert (writer = 0);
  Client_core.one_round_write c.base ~writer ~wid:0 ~payload:value ~clock:c.clock
    ~learn:false ~k

let read c ~reader ~k =
  Client_core.fast_read c.base ~reader ~val_queue:c.val_queues.(reader) ~k
