(** The server replica (Algorithm 2).

    State per server: [valᵢ], the largest value seen, and [valuevector],
    a map from each value ever received to the set of clients that have
    propagated it to this server ([updated]).  [update(val, c)]:

    - if [val > valᵢ]: record [val] with [updated = {c}] and set
      [valᵢ ← val];
    - otherwise: add [c] to [val]'s [updated] set.

    On [(write, val)] the server updates and ACKs; on [(read, valQueue)]
    it updates with every queued value {i before} replying with its full
    state.  Note the server never contacts other servers — the paper's
    model has no server-to-server channel at all. *)

type t

val create : unit -> t

val handle : t -> client:int -> Wire.req -> Wire.rep
(** Process one request, mutating the replica. *)

val current : t -> Wire.value
(** [valᵢ], for tests and traces. *)

val vector_size : t -> int
(** Number of distinct values in the valuevector. *)

val updated_set : t -> Wire.value -> int list
(** The [updated] set recorded for a value (sorted), or [[]]. *)
