(** ABD'95: the single-writer register (Attiya, Bar-Noy & Dolev).

    The lone writer numbers its own writes, so a write is *fast* — one
    update round — while reads take two rounds (query + write-back).
    This is the W1R2 design point at [W = 1]: it exists, and it marks the
    exact boundary of Theorem 1, which kills W1R2 as soon as [W ≥ 2].
    The cluster refuses multi-writer environments. *)

let name = "ABD'95 SWMR"

let design_point = Quorums.Bounds.W1R2

type cluster = { base : Cluster_base.t; clock : Tstamp.t ref }

let create env =
  if Protocol.Env.w env <> 1 then
    invalid_arg "Abd_swmr.create: the single-writer protocol needs exactly 1 writer";
  { base = Cluster_base.create env; clock = ref Tstamp.initial }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k =
  assert (writer = 0);
  Client_core.one_round_write c.base ~writer ~wid:0 ~payload:value ~clock:c.clock
    ~learn:false ~k

let read c ~reader ~k = Client_core.two_round_read c.base ~reader ~k
