(** WkR1 with k = 3: a three-round write with the fast read.

    §5.1 notes the fast-read impossibility "does not depend on how many
    round-trips a write operation has" — slowing writes down further buys
    nothing for readers.  This register makes that executable: writes
    take *three* rounds (query, update, and a redundant confirm round
    re-sending the same value), reads are the admissible fast read.  The
    threshold experiment shows it lives and dies at exactly the same
    [R < S/t − 2] boundary as the two-round-write version. *)

let name = "W3R1 (3-round write)"

let design_point = Quorums.Bounds.W2R1 (* reads fast; writes ≥ 2 rounds *)

type cluster = {
  base : Cluster_base.t;
  last_written : Wire.value ref array;
  val_queues : Wire.value list ref array;
}

let create env =
  let base = Cluster_base.create env in
  {
    base;
    last_written =
      Array.init (Protocol.Env.w env) (fun _ -> ref Wire.initial_value_entry);
    val_queues =
      Array.init (Protocol.Env.r env) (fun _ -> ref [ Wire.initial_value_entry ]);
  }

let control c = c.base.Cluster_base.ctl

let write c ~writer ~value ~k =
  let ep = c.base.Cluster_base.writer_eps.(writer) in
  let last_written = c.last_written.(writer) in
  Protocol.Round_trip.exec ep (Wire.Query [ !last_written ]) (fun replies ->
      let maxv = Client_core.max_current replies in
      let tag = Tstamp.next maxv.Wire.tag ~wid:writer in
      let v = { Wire.tag; payload = value } in
      last_written := v;
      Protocol.Round_trip.exec ep (Wire.Update v) (fun _ ->
          (* The redundant third round: re-announce the same value. *)
          Protocol.Round_trip.exec ep (Wire.Update v) (fun _ -> k (Some tag))))

let read c ~reader ~k =
  Client_core.fast_read c.base ~reader ~val_queue:c.val_queues.(reader) ~k
