type t = Checker.Mw_properties.tag = { ts : int; wid : int }

let initial = { ts = 0; wid = -1 }

let compare a b =
  let c = Stdlib.compare a.ts b.ts in
  if c <> 0 then c else Stdlib.compare a.wid b.wid

let equal a b = compare a b = 0

let ( < ) a b = compare a b < 0

let ( >= ) a b = compare a b >= 0

let max a b = if a < b then b else a

let next m ~wid = { ts = m.ts + 1; wid }

let pp = Checker.Mw_properties.pp_tag
