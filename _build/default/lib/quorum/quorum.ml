type t = { servers : int; quorum_size : int }

let threshold ~servers ~quorum_size =
  if servers <= 0 then invalid_arg "Quorum.threshold: servers must be positive";
  if quorum_size <= 0 || quorum_size > servers then
    invalid_arg "Quorum.threshold: quorum_size out of range";
  { servers; quorum_size }

let majority ~servers = threshold ~servers ~quorum_size:((servers / 2) + 1)

let crash_tolerant ~servers ~t =
  if t < 0 || t >= servers then
    invalid_arg "Quorum.crash_tolerant: need 0 <= t < servers";
  threshold ~servers ~quorum_size:(servers - t)

let servers t = t.servers

let quorum_size t = t.quorum_size

let is_quorum t ids =
  let distinct = List.sort_uniq compare ids in
  List.for_all (fun i -> i >= 0 && i < t.servers) distinct
  && List.length distinct >= t.quorum_size

let always_intersecting t = (2 * t.quorum_size) > t.servers

let intersection_at_least t = max 0 ((2 * t.quorum_size) - t.servers)

let available_under t ~crashed = t.servers - crashed >= t.quorum_size

let tolerates t = t.servers - t.quorum_size

let pp ppf t =
  Format.fprintf ppf "threshold(%d of %d)" t.quorum_size t.servers
