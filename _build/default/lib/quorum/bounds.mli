(** The possibility/impossibility predicates of the paper's Table 1.

    Each function answers: in a system with [s] servers of which up to [t]
    may crash, [w] writers and [r] readers, does an atomic register
    implementation exist at this design point?  These are the
    *theoretical* verdicts; the `table1` benchmark compares them against
    the checker's empirical verdicts on simulated runs. *)

type design_point = W2R2 | W1R2 | W2R1 | W1R1

val pp_design_point : Format.formatter -> design_point -> unit
val design_point_to_string : design_point -> string
val all_design_points : design_point list

val write_rounds : design_point -> int
val read_rounds : design_point -> int

val w2r2_possible : s:int -> t:int -> bool
(** [LS97]: possible iff [t < S/2] (majority of servers correct). *)

val w1r2_possible : s:int -> t:int -> w:int -> r:int -> bool
(** This paper, Theorem 1: impossible whenever [W ≥ 2], [R ≥ 2] and
    [t ≥ 1].  With a single writer, ABD'95 gives a W1R2 implementation
    (provided [t < S/2]); with [t = 0] one round trivially suffices. *)

val fast_read_threshold : s:int -> t:int -> int
(** The largest reader count for which fast reads are possible:
    readers must satisfy [R < S/t − 2], i.e. the threshold is
    [⌈S/t⌉ − 2] readers are too many at exactly [R ≥ S/t − 2].
    Returns the max admissible R (can be ≤ 0, meaning no fast-read
    implementation for any number of readers).  Requires [t ≥ 1]. *)

val w2r1_possible : s:int -> t:int -> r:int -> bool
(** This paper, §5: possible iff [R < S/t − 2] (and [t < S/2]).
    With [t = 0] fast reads are trivially possible. *)

val w1r1_possible : s:int -> t:int -> w:int -> r:int -> bool
(** [DGLV10]: impossible for [W ≥ 2, R ≥ 2, t ≥ 1]; for a single writer
    possible iff [R < S/t − 2]. *)

val possible : design_point -> s:int -> t:int -> w:int -> r:int -> bool
(** Dispatch over the four design points. *)

val latency_rank : design_point -> int
(** Total round-trips (write + read); lower means faster.  Orders the
    Hasse diagram of Fig. 2. *)
