type design_point = W2R2 | W1R2 | W2R1 | W1R1

let design_point_to_string = function
  | W2R2 -> "W2R2"
  | W1R2 -> "W1R2"
  | W2R1 -> "W2R1"
  | W1R1 -> "W1R1"

let pp_design_point ppf p = Format.pp_print_string ppf (design_point_to_string p)

let all_design_points = [ W2R2; W1R2; W2R1; W1R1 ]

let write_rounds = function W2R2 | W2R1 -> 2 | W1R2 | W1R1 -> 1

let read_rounds = function W2R2 | W1R2 -> 2 | W2R1 | W1R1 -> 1

let check_st ~s ~t =
  if s < 2 then invalid_arg "Bounds: need at least 2 servers";
  if t < 0 || t >= s then invalid_arg "Bounds: need 0 <= t < s"

let w2r2_possible ~s ~t =
  check_st ~s ~t;
  2 * t < s

(* R < S/t − 2 over the reals, i.e. t·(R + 2) < S. *)
let fast_read_cond ~s ~t ~r = t * (r + 2) < s

let fast_read_threshold ~s ~t =
  check_st ~s ~t;
  if t = 0 then max_int else ((s - 1) / t) - 2

let w1r2_possible ~s ~t ~w ~r =
  check_st ~s ~t;
  ignore r;
  if t = 0 then true (* no crashes: one round to all servers suffices *)
  else if w <= 1 then w2r2_possible ~s ~t (* ABD'95 single-writer fast write *)
  else false (* Theorem 1: W ≥ 2, R ≥ 2 (implied), t ≥ 1 *)

let w2r1_possible ~s ~t ~r =
  check_st ~s ~t;
  if t = 0 then true else w2r2_possible ~s ~t && fast_read_cond ~s ~t ~r

let w1r1_possible ~s ~t ~w ~r =
  check_st ~s ~t;
  if t = 0 then true
  else if w <= 1 then w2r2_possible ~s ~t && fast_read_cond ~s ~t ~r
  else false (* DGLV10 multi-writer fast read-write impossibility *)

let possible point ~s ~t ~w ~r =
  match point with
  | W2R2 -> w2r2_possible ~s ~t
  | W1R2 -> w1r2_possible ~s ~t ~w ~r
  | W2R1 -> w2r1_possible ~s ~t ~r
  | W1R1 -> w1r1_possible ~s ~t ~w ~r

let latency_rank p = write_rounds p + read_rounds p
