lib/quorum/coterie.ml: Format Int List Printf Set
