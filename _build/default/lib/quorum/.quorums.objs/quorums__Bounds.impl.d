lib/quorum/bounds.ml: Format
