lib/quorum/bounds.mli: Format
