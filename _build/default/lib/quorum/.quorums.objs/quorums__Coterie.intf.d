lib/quorum/coterie.mli: Format
