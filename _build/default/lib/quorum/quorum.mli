(** Quorum systems over a set of servers [{0, …, S−1}].

    The protocols in this repository all use threshold quorums — any
    [S − t] servers — which is what "wait for S − t replies" implements.
    This module makes the quorum structure explicit so its properties
    (intersection, availability under ≤ t crashes) can be stated and
    tested independently of any protocol. *)

type t
(** A quorum system: a universe size and a family of quorums. *)

val threshold : servers:int -> quorum_size:int -> t
(** All subsets of size [quorum_size] (represented implicitly). *)

val majority : servers:int -> t
(** Threshold system with quorums of size [⌊S/2⌋ + 1]. *)

val crash_tolerant : servers:int -> t:int -> t
(** Threshold system with quorums of size [S − t] — the paper's
    "wait for S − t replies" rule. *)

val servers : t -> int
val quorum_size : t -> int

val is_quorum : t -> int list -> bool
(** Does this set of (distinct, in-range) server ids contain a quorum? *)

val always_intersecting : t -> bool
(** Every two quorums share at least one server: [2·size > S]. *)

val intersection_at_least : t -> int
(** Minimum possible overlap of two quorums: [max 0 (2·size − S)]. *)

val available_under : t -> crashed:int -> bool
(** Some quorum survives when [crashed] servers have failed. *)

val tolerates : t -> int
(** Largest number of crashes under which a quorum always survives. *)

val pp : Format.formatter -> t -> unit
