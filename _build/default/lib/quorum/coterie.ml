module Iset = Set.Make (Int)

type t = { universe : int; quorums : Iset.t list }

let of_sets ~universe sets =
  if universe <= 0 then invalid_arg "Coterie: universe must be positive";
  if sets = [] then invalid_arg "Coterie: empty family";
  List.iter
    (fun q ->
      if Iset.is_empty q then invalid_arg "Coterie: empty quorum";
      Iset.iter
        (fun x ->
          if x < 0 || x >= universe then
            invalid_arg (Printf.sprintf "Coterie: server %d out of range" x))
        q)
    sets;
  let deduped =
    List.sort_uniq Iset.compare sets
  in
  { universe; quorums = deduped }

let of_lists ~universe lists =
  of_sets ~universe (List.map Iset.of_list lists)

let universe t = t.universe

let quorums t = List.map Iset.elements t.quorums

(* All subsets of [0..n-1] of a given size. *)
let rec subsets_of_size n size start =
  if size = 0 then [ Iset.empty ]
  else if start >= n then []
  else
    List.map (Iset.add start) (subsets_of_size n (size - 1) (start + 1))
    @ subsets_of_size n size (start + 1)

let threshold ~universe ~size =
  if size <= 0 || size > universe then invalid_arg "Coterie.threshold: bad size";
  of_sets ~universe (subsets_of_size universe size 0)

let majority ~universe = threshold ~universe ~size:((universe / 2) + 1)

let grid ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Coterie.grid: bad dimensions";
  let universe = rows * cols in
  let row r = Iset.of_list (List.init cols (fun c -> (r * cols) + c)) in
  let col c = Iset.of_list (List.init rows (fun r -> (r * cols) + c)) in
  let sets =
    List.concat_map
      (fun r -> List.init cols (fun c -> Iset.union (row r) (col c)))
      (List.init rows (fun r -> r))
  in
  of_sets ~universe sets

let is_quorum t members =
  let m = Iset.of_list members in
  List.exists (fun q -> Iset.subset q m) t.quorums

let pairwise_intersecting t =
  let rec go = function
    | [] -> true
    | q :: rest ->
      List.for_all (fun q' -> not (Iset.is_empty (Iset.inter q q'))) rest
      && go rest
  in
  go t.quorums

let is_minimal t =
  let rec go = function
    | [] -> true
    | q :: rest ->
      List.for_all
        (fun q' -> not (Iset.subset q q') && not (Iset.subset q' q))
        rest
      && go rest
  in
  go t.quorums

let min_quorum_size t =
  List.fold_left (fun acc q -> min acc (Iset.cardinal q)) max_int t.quorums

let max_quorum_size t =
  List.fold_left (fun acc q -> max acc (Iset.cardinal q)) 0 t.quorums

let available_under t ~crashed =
  let dead = Iset.of_list crashed in
  List.exists (fun q -> Iset.is_empty (Iset.inter q dead)) t.quorums

let crash_tolerance t =
  (* Smallest hitting set of the family, minus one: search f upward. *)
  let n = t.universe in
  let kills_all f =
    (* Does some f-subset intersect every quorum? *)
    let rec search chosen start remaining =
      if remaining = 0 then
        List.for_all (fun q -> not (Iset.is_empty (Iset.inter q chosen))) t.quorums
      else if start >= n then false
      else
        search (Iset.add start chosen) (start + 1) (remaining - 1)
        || search chosen (start + 1) remaining
    in
    search Iset.empty 0 f
  in
  let rec go f = if f >= n then n else if kills_all (f + 1) then f else go (f + 1) in
  go 0

let pp ppf t =
  Format.fprintf ppf "coterie over %d servers, %d quorums (sizes %d..%d)"
    t.universe (List.length t.quorums) (min_quorum_size t) (max_quorum_size t)
