(** Explicit quorum families (coteries).

    The register protocols only need threshold quorums ({!Quorum}), but
    the quorum-system theory the paper builds on is about general
    families: any set of mutually intersecting server subsets supports an
    ABD-style register, trading availability against load.  This module
    provides the classical constructions and the predicates that justify
    them, so the repository's quorum layer is a usable library rather
    than a single special case. *)

type t

val of_lists : universe:int -> int list list -> t
(** Build from explicit quorums (deduplicated, each within range).
    Raises on empty families, empty quorums, or out-of-range members. *)

val universe : t -> int
val quorums : t -> int list list
(** Sorted members, sorted lexicographically. *)

val majority : universe:int -> t
(** All subsets of size ⌊n/2⌋+1 — materialised; keep [universe] small. *)

val threshold : universe:int -> size:int -> t
(** All subsets of the given size. *)

val grid : rows:int -> cols:int -> t
(** Servers arranged in a rows×cols grid; a quorum is one full row plus
    one full column.  Quorum size Θ(√n) versus the majority's Θ(n). *)

val is_quorum : t -> int list -> bool
(** Does the set contain some quorum of the family? *)

val pairwise_intersecting : t -> bool
(** The coterie property: every two quorums share a server — the
    precondition for register atomicity over the family. *)

val is_minimal : t -> bool
(** No quorum strictly contains another (coterie minimality). *)

val min_quorum_size : t -> int
val max_quorum_size : t -> int

val available_under : t -> crashed:int list -> bool
(** Some quorum avoids every crashed server. *)

val crash_tolerance : t -> int
(** Largest [f] such that every f-subset of servers leaves some quorum
    alive.  (Exponential in principle; fine for the sizes used here.) *)

val pp : Format.formatter -> t -> unit
