(* Tests for the execution/history model of §2.1. *)

open Histories

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let w ?(id = 0) ?(proc = 0) ~v ~inv ~resp () =
  Op.write ~id ~proc:(Op.Writer proc) ~value:v ~inv ~resp

let r ?(id = 0) ?(proc = 0) ~inv ~resp ~result () =
  Op.read ~id ~proc:(Op.Reader proc) ~inv ~resp ~result

(* ------------------------------------------------------------------ *)
(* Op                                                                   *)
(* ------------------------------------------------------------------ *)

let test_precedes () =
  let a = w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) () in
  let b = w ~id:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) () in
  check bool "a < b" true (Op.precedes a b);
  check bool "not b < a" false (Op.precedes b a);
  check bool "not concurrent" false (Op.concurrent a b)

let test_concurrent_overlap () =
  let a = w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 5.0) () in
  let b = w ~id:1 ~v:2 ~inv:2.0 ~resp:(Some 7.0) () in
  check bool "concurrent" true (Op.concurrent a b)

let test_pending_precedes_nothing () =
  let a = w ~id:0 ~v:1 ~inv:0.0 ~resp:None () in
  let b = w ~id:1 ~v:2 ~inv:10.0 ~resp:(Some 11.0) () in
  check bool "pending precedes nothing" false (Op.precedes a b);
  check bool "b precedes pending? no" false (Op.precedes b a);
  check bool "b started after a's inv, still concurrent" true (Op.concurrent a b)

let test_touching_endpoints_not_preceding () =
  (* O1.f = O2.s is not O1 ≺ O2 (strict inequality in the definition). *)
  let a = w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 2.0) () in
  let b = w ~id:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) () in
  check bool "touching is concurrent" true (Op.concurrent a b)

let test_value_of () =
  check (Alcotest.option int) "write value" (Some 9)
    (Op.value_of (w ~v:9 ~inv:0.0 ~resp:None ()));
  check (Alcotest.option int) "read result" (Some 4)
    (Op.value_of (r ~inv:0.0 ~resp:(Some 1.0) ~result:(Some 4) ()))

(* ------------------------------------------------------------------ *)
(* History                                                              *)
(* ------------------------------------------------------------------ *)

let test_of_ops_sorts () =
  let h =
    History.of_ops
      [
        w ~id:1 ~v:2 ~inv:5.0 ~resp:(Some 6.0) ();
        w ~id:0 ~v:1 ~inv:1.0 ~resp:(Some 2.0) ();
      ]
  in
  match History.ops h with
  | [ a; b ] ->
    check int "first by inv" 0 a.Op.id;
    check int "second" 1 b.Op.id
  | _ -> Alcotest.fail "expected two ops"

let test_of_ops_rejects_duplicate_ids () =
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "History.of_ops: duplicate op id 0") (fun () ->
      ignore
        (History.of_ops
           [
             w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
             w ~id:0 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) ();
           ]))

let test_well_formed_ok () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) ();
        r ~id:2 ~inv:4.0 ~resp:(Some 5.0) ~result:(Some 2) ();
      ]
  in
  check bool "well formed" true (History.well_formed h = Ok ())

let test_well_formed_catches_overlap () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 5.0) ();
        w ~id:1 ~v:2 ~inv:2.0 ~resp:(Some 7.0) ();
      ]
  in
  check bool "same-process overlap rejected" true
    (Result.is_error (History.well_formed h))

let test_well_formed_catches_role_confusion () =
  let bad =
    Op.read ~id:0 ~proc:(Op.Writer 0) ~inv:0.0 ~resp:(Some 1.0) ~result:(Some 0)
  in
  check bool "writer invoking read rejected" true
    (Result.is_error (History.well_formed (History.of_ops [ bad ])))

let test_well_formed_catches_resp_before_inv () =
  let h = History.of_ops [ w ~id:0 ~v:1 ~inv:5.0 ~resp:(Some 1.0) () ] in
  check bool "resp before inv rejected" true
    (Result.is_error (History.well_formed h))

let test_well_formed_catches_op_after_pending () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:None ();
        w ~id:1 ~v:2 ~inv:5.0 ~resp:(Some 6.0) ();
      ]
  in
  check bool "op after pending rejected" true
    (Result.is_error (History.well_formed h))

let test_different_procs_may_overlap () =
  let h =
    History.of_ops
      [
        w ~id:0 ~proc:0 ~v:1 ~inv:0.0 ~resp:(Some 5.0) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 7.0) ();
      ]
  in
  check bool "cross-process overlap fine" true (History.well_formed h = Ok ())

let test_unique_writes () =
  let dup =
    History.of_ops
      [
        w ~id:0 ~proc:0 ~v:7 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~proc:1 ~v:7 ~inv:2.0 ~resp:(Some 3.0) ();
      ]
  in
  check bool "duplicate values" false (History.unique_writes dup);
  let initial =
    History.of_ops
      [ w ~id:0 ~v:History.initial_value ~inv:0.0 ~resp:(Some 1.0) () ]
  in
  check bool "initial value write rejected" false (History.unique_writes initial)

let test_strip_pending_reads () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:None ();
        r ~id:1 ~inv:0.0 ~resp:None ~result:None ();
      ]
  in
  let h' = History.strip_pending_reads h in
  check int "read dropped, write kept" 1 (History.length h');
  check int "pending writes" 1 (List.length (History.pending_writes h'))

let test_complete_writes () =
  let h = History.of_ops [ w ~id:0 ~v:1 ~inv:0.0 ~resp:None () ] in
  let h' = History.complete_writes h ~at:100.0 in
  check int "no pending writes left" 0 (List.length (History.pending_writes h'))

let test_max_time () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 3.0) ();
        r ~id:1 ~inv:4.0 ~resp:None ~result:None ();
      ]
  in
  check bool "max time" true (History.max_time h = 4.0)

let test_procs_and_restrict () =
  let h =
    History.of_ops
      [
        w ~id:0 ~proc:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        r ~id:1 ~proc:0 ~inv:2.0 ~resp:(Some 3.0) ~result:(Some 1) ();
        w ~id:2 ~proc:1 ~v:2 ~inv:4.0 ~resp:(Some 5.0) ();
      ]
  in
  check int "three procs" 3 (List.length (History.procs h));
  check int "writes only" 2 (History.length (History.restrict h ~f:Op.is_write))

(* ------------------------------------------------------------------ *)
(* Recorder                                                             *)
(* ------------------------------------------------------------------ *)

let test_recorder_flow () =
  let rec_ = Recorder.create () in
  let v1 = Recorder.fresh_value rec_ in
  let v2 = Recorder.fresh_value rec_ in
  check bool "fresh values distinct and non-initial" true
    (v1 <> v2 && v1 <> History.initial_value && v2 <> History.initial_value);
  let hw = Recorder.begin_write rec_ ~proc:(Op.Writer 0) ~value:v1 ~now:0.0 in
  Recorder.finish_write rec_ hw ~now:1.0;
  let hr = Recorder.begin_read rec_ ~proc:(Op.Reader 0) ~now:2.0 in
  Recorder.finish_read rec_ hr ~now:3.0 ~result:v1;
  let hp = Recorder.begin_read rec_ ~proc:(Op.Reader 1) ~now:4.0 in
  ignore (Recorder.handle_id hp);
  let h = Recorder.snapshot rec_ in
  check int "three ops" 3 (History.length h);
  check int "two completed" 2 (Recorder.completed rec_);
  check bool "well formed" true (History.well_formed h = Ok ());
  check bool "unique writes" true (History.unique_writes h)

let test_recorder_ids_increase () =
  let rec_ = Recorder.create () in
  let h1 = Recorder.begin_read rec_ ~proc:(Op.Reader 0) ~now:0.0 in
  Recorder.finish_read rec_ h1 ~now:1.0 ~result:0;
  let h2 = Recorder.begin_read rec_ ~proc:(Op.Reader 0) ~now:2.0 in
  check bool "ids increase" true (Recorder.handle_id h2 > Recorder.handle_id h1)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "history"
    [
      ( "op",
        [
          tc "precedes" test_precedes;
          tc "concurrent overlap" test_concurrent_overlap;
          tc "pending precedes nothing" test_pending_precedes_nothing;
          tc "touching endpoints" test_touching_endpoints_not_preceding;
          tc "value_of" test_value_of;
        ] );
      ( "history",
        [
          tc "of_ops sorts" test_of_ops_sorts;
          tc "duplicate ids" test_of_ops_rejects_duplicate_ids;
          tc "well-formed ok" test_well_formed_ok;
          tc "overlap caught" test_well_formed_catches_overlap;
          tc "role confusion caught" test_well_formed_catches_role_confusion;
          tc "resp<inv caught" test_well_formed_catches_resp_before_inv;
          tc "op after pending caught" test_well_formed_catches_op_after_pending;
          tc "cross-process overlap ok" test_different_procs_may_overlap;
          tc "unique writes" test_unique_writes;
          tc "strip pending reads" test_strip_pending_reads;
          tc "complete writes" test_complete_writes;
          tc "max time" test_max_time;
          tc "procs and restrict" test_procs_and_restrict;
        ] );
      ( "recorder",
        [
          tc "flow" test_recorder_flow;
          tc "ids increase" test_recorder_ids_increase;
        ] );
    ]
