(* Tests for the public facade. *)

let check = Alcotest.check
let bool = Alcotest.bool

let test_version () =
  check bool "version string" true (String.length Mwregister.version > 0)

let test_run_and_check_atomic () =
  let v =
    Mwregister.run_and_check ~register:Mwregister.Registry.fastread_w2r1 ~s:5
      ~t:1 ~w:2 ~r:2
      [
        Mwregister.Runtime.write_plan ~writer:0 ~think:10.0 3;
        Mwregister.Runtime.write_plan ~writer:1 ~start_at:2.0 ~think:12.0 3;
        Mwregister.Runtime.read_plan ~reader:0 ~start_at:1.0 ~think:8.0 5;
        Mwregister.Runtime.read_plan ~reader:1 ~start_at:3.0 ~think:9.0 5;
      ]
  in
  check bool "atomic" true (v.Mwregister.consistency = Mwregister.Consistency.Atomic);
  check bool "no witness" true (v.Mwregister.atomicity_witness = None);
  check bool "no MWA failures" true (v.Mwregister.mwa_failures = []);
  check bool "wait-free" true v.Mwregister.wait_free

let test_run_and_check_violation () =
  let v =
    Mwregister.run_and_check ~register:Mwregister.Registry.naive_w1r2 ~s:5 ~t:1
      ~w:2 ~r:2
      [
        Mwregister.Runtime.write_plan ~writer:1 ~start_at:0.0 1;
        Mwregister.Runtime.write_plan ~writer:0 ~start_at:100.0 1;
        Mwregister.Runtime.read_plan ~reader:0 ~start_at:200.0 1;
      ]
  in
  check bool "not atomic" true
    (v.Mwregister.consistency <> Mwregister.Consistency.Atomic);
  check bool "witness produced" true (v.Mwregister.atomicity_witness <> None)

let test_facade_reaches_impossibility () =
  let finding, _ =
    Mwregister.Impossible.W1r2_theorem.run ~s:4
      Mwregister.Impossible.Strategy.majority_last
  in
  check bool "theorem reachable through facade" true
    (Mwregister.Impossible.W1r2_theorem.found_violation finding)

let test_facade_bounds () =
  check bool "Table 1 reachable" false
    (Mwregister.Bounds.w1r2_possible ~s:9 ~t:1 ~w:2 ~r:2)

let test_facade_extensions_reachable () =
  (* Every extension module is re-exported through the facade. *)
  check bool "Interval" true
    (Mwregister.Interval.is_atomic (Mwregister.History.of_ops []));
  check bool "Coterie" true
    (Mwregister.Coterie.pairwise_intersecting
       (Mwregister.Coterie.grid ~rows:2 ~cols:2));
  check bool "Staleness" true
    (Mwregister.Staleness.max_staleness (Mwregister.History.of_ops []) = 0);
  check bool "Serial" true
    (Mwregister.Serial.of_string "" = Ok (Mwregister.History.of_ops []));
  (let found, _ =
     Mwregister.Hunter.hunt ~shapes:[ Mwregister.Hunter.Inversion ]
       ~register:Mwregister.Registry.naive_w1r2 ~s:5 ~t:1 ~w:2 ~r:2 ()
   in
   check bool "Hunter" true (found <> None));
  check bool "Report" true
    (String.length
       (Mwregister.Impossible.Report.explain ~s:3
          Mwregister.Impossible.Strategy.majority_last)
    > 100);
  check bool "K_round" true
    (Mwregister.Impossible.W1r2_theorem.found_violation
       (fst
          (Mwregister.Impossible.K_round.run ~s:3
             (Mwregister.Impossible.K_round.round_vote ~k:3))));
  check bool "Generator" true
    (List.length (Mwregister.Generator.plans Mwregister.Generator.default) = 4)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core"
    [
      ( "facade",
        [
          tc "version" test_version;
          tc "run_and_check atomic" test_run_and_check_atomic;
          tc "run_and_check violation" test_run_and_check_violation;
          tc "impossibility reachable" test_facade_reaches_impossibility;
          tc "bounds reachable" test_facade_bounds;
          tc "extensions reachable" test_facade_extensions_reachable;
        ] );
    ]
