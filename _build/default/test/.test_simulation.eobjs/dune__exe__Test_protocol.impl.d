test/test_protocol.ml: Alcotest Array Checker Control Engine Env Histories Latency List Network Option Protocol Registers Round_trip Runtime Server Simulation Topology
