test/test_simulation.ml: Alcotest Array Engine Heap Latency List Network Option Printf QCheck QCheck_alcotest Rng Simulation Trace
