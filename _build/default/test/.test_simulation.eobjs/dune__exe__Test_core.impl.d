test/test_core.ml: Alcotest List Mwregister String
