test/test_checker.ml: Alcotest Atomicity Checker Consistency Float Format Histories History Interval Linearizability List Mw_properties Op QCheck QCheck_alcotest Result Witness
