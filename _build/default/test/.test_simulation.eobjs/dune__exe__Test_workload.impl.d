test/test_workload.ml: Adversary Alcotest Checker Env Format Histories List Printf Protocol Registers Runtime Simulation Stats Threshold Workload
