test/test_extensions.ml: Alcotest Checker Env Histories History Impossibility List Op Printf Protocol QCheck QCheck_alcotest Registers Result Runtime Serial Simulation String Workload
