test/test_impossibility.ml: Alcotest Array Chain_alpha Chain_beta Exec_model Format Impossibility List Printf QCheck QCheck_alcotest Sieve Strategy Token W1r2_theorem Zigzag
