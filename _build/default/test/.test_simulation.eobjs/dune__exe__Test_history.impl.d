test/test_history.ml: Alcotest Histories History List Op Recorder Result
