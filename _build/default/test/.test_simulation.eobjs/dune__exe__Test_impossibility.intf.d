test/test_impossibility.mli:
