test/test_quorum.ml: Alcotest Bounds Coterie List QCheck QCheck_alcotest Quorum Quorums
