test/test_registers.ml: Alcotest Checker Client_core Control Env Histories List Protocol Quorums Registers Registry Replica Runtime Simulation Tstamp Wire
