test/test_properties.ml: Adversary Alcotest Checker Env Hashtbl Histories List Printf Protocol QCheck QCheck_alcotest Quorums Registers Runtime Simulation Topology Workload
