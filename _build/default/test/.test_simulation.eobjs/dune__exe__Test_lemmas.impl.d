test/test_lemmas.ml: Alcotest Client_core Control Env Fastread_w2r1 List Protocol Registers Simulation Tstamp Workload
