(* Tests for the extension modules: staleness metrics (§7 future work),
   history serialization, the linearization witness, the adaptive
   register, the W1Rk generalization, realizability certification,
   workload generation, the partition adversary, and the exhaustive
   small-world explorer. *)

open Histories
open Protocol

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let w ~id ?(proc = 0) ~v ~inv ~resp () =
  Op.write ~id ~proc:(Op.Writer proc) ~value:v ~inv ~resp

let r ~id ?(proc = 0) ~inv ~resp ~result () =
  Op.read ~id ~proc:(Op.Reader proc) ~inv ~resp ~result

(* ------------------------------------------------------------------ *)
(* Staleness                                                            *)
(* ------------------------------------------------------------------ *)

let three_writes_then_read result =
  History.of_ops
    [
      w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
      w ~id:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) ();
      w ~id:2 ~v:3 ~inv:4.0 ~resp:(Some 5.0) ();
      r ~id:3 ~inv:6.0 ~resp:(Some 7.0) ~result:(Some result) ();
    ]

let test_staleness_fresh () =
  let h = three_writes_then_read 3 in
  check int "fresh read staleness 0" 0 (Checker.Staleness.max_staleness h);
  check bool "stale fraction 0" true (Checker.Staleness.stale_fraction h = 0.0);
  check bool "bounded by 0" true (Checker.Staleness.bounded_by h ~k:0)

let test_staleness_counts_missed_writes () =
  let h = three_writes_then_read 1 in
  check int "two writes missed" 2 (Checker.Staleness.max_staleness h);
  check bool "stale fraction 1" true (Checker.Staleness.stale_fraction h = 1.0);
  check bool "bounded by 2 but not 1" true
    (Checker.Staleness.bounded_by h ~k:2 && not (Checker.Staleness.bounded_by h ~k:1))

let test_staleness_initial_value () =
  let h = three_writes_then_read History.initial_value in
  check int "initial after 3 writes" 3 (Checker.Staleness.max_staleness h)

let test_staleness_concurrent_write_not_counted () =
  (* A write concurrent with the read is not "missed". *)
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 50.0) ();
        r ~id:2 ~inv:3.0 ~resp:(Some 4.0) ~result:(Some 1) ();
      ]
  in
  check int "no staleness" 0 (Checker.Staleness.max_staleness h)

let test_staleness_histogram () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) ();
        r ~id:2 ~inv:4.0 ~resp:(Some 5.0) ~result:(Some 2) ();
        r ~id:3 ~inv:6.0 ~resp:(Some 7.0) ~result:(Some 1) ();
      ]
  in
  check
    (Alcotest.list (Alcotest.pair int int))
    "histogram" [ (0, 1); (1, 1) ]
    (Checker.Staleness.histogram h)

let test_staleness_unwritten () =
  let h = History.of_ops [ r ~id:0 ~inv:0.0 ~resp:(Some 1.0) ~result:(Some 77) () ] in
  check bool "unwritten is max_int" true
    (Checker.Staleness.max_staleness h = max_int)

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let test_serial_roundtrip () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.125 ~resp:(Some 1.5) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:2.25 ~resp:None ();
        r ~id:2 ~inv:3.0 ~resp:(Some 4.0) ~result:(Some 1) ();
        r ~id:3 ~proc:1 ~inv:5.0 ~resp:None ~result:None ();
      ]
  in
  match Serial.of_string (Serial.to_string h) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok h' ->
    check int "same size" (History.length h) (History.length h');
    List.iter2
      (fun (a : Op.t) (b : Op.t) ->
        check bool "op preserved" true
          (a.Op.id = b.Op.id && a.Op.proc = b.Op.proc && a.Op.kind = b.Op.kind
          && a.Op.inv = b.Op.inv && a.Op.resp = b.Op.resp
          && a.Op.result = b.Op.result))
      (History.ops h) (History.ops h')

let test_serial_comments_and_blanks () =
  let text = "# a comment\n\nw 0 w0 5 0x1p+0 0x1p+1\n" in
  match Serial.of_string text with
  | Ok h -> check int "one op" 1 (History.length h)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_serial_rejects_garbage () =
  check bool "bad line rejected" true
    (Result.is_error (Serial.of_string "nonsense here\n"));
  check bool "bad float rejected" true
    (Result.is_error (Serial.of_string "w 0 w0 5 notafloat -\n"))

let serial_roundtrip_property =
  QCheck.Test.make ~name:"serialization round-trips protocol histories" ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let env = Env.make ~seed ~s:4 ~t:1 ~w:2 ~r:2 () in
      let plans =
        [
          Runtime.write_plan ~writer:0 ~think:9.0 3;
          Runtime.write_plan ~writer:1 ~start_at:1.0 ~think:11.0 3;
          Runtime.read_plan ~reader:0 ~start_at:2.0 ~think:7.0 4;
          Runtime.read_plan ~reader:1 ~start_at:3.0 ~think:8.0 4;
        ]
      in
      let out = Runtime.run ~register:Registers.Registry.abd_mwmr ~env ~plans () in
      let h = out.Runtime.history in
      match Serial.of_string (Serial.to_string h) with
      | Error _ -> false
      | Ok h' -> Serial.to_string h = Serial.to_string h')

(* ------------------------------------------------------------------ *)
(* Linearization witness                                                *)
(* ------------------------------------------------------------------ *)

let test_linearization_simple () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        r ~id:1 ~inv:2.0 ~resp:(Some 3.0) ~result:(Some 1) ();
        w ~id:2 ~proc:1 ~v:2 ~inv:4.0 ~resp:(Some 5.0) ();
      ]
  in
  match Checker.Atomicity.linearization h with
  | None -> Alcotest.fail "atomic history must have a linearization"
  | Some order -> check int "all ops present" 3 (List.length order)

let test_linearization_none_when_violated () =
  let h = three_writes_then_read 1 in
  check bool "no witness for violation" true
    (Checker.Atomicity.linearization h = None)

(* The witness generator agrees with the checker and the oracle on random
   protocol histories, and its output is always spec-valid (it
   self-validates, so Some means valid by construction — we re-check the
   real-time order independently here). *)
let linearization_property =
  QCheck.Test.make ~name:"linearization exists iff atomic, and respects order"
    ~count:60
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let env = Env.make ~seed ~s:4 ~t:1 ~w:2 ~r:2 () in
      let plans =
        [
          Runtime.write_plan ~writer:0 ~think:6.0 3;
          Runtime.write_plan ~writer:1 ~start_at:1.0 ~think:8.0 3;
          Runtime.read_plan ~reader:0 ~start_at:2.0 ~think:5.0 4;
          Runtime.read_plan ~reader:1 ~start_at:3.0 ~think:7.0 4;
        ]
      in
      let out = Runtime.run ~register:Registers.Registry.fastread_w2r1 ~env ~plans () in
      let h = out.Runtime.history in
      match Checker.Atomicity.linearization h with
      | None -> not (Checker.Atomicity.is_atomic h)
      | Some order ->
        Checker.Atomicity.is_atomic h
        &&
        let rec no_inversion = function
          | [] -> true
          | a :: rest ->
            List.for_all (fun b -> not (Op.precedes b a)) rest && no_inversion rest
        in
        no_inversion order)

(* ------------------------------------------------------------------ *)
(* Adaptive register                                                    *)
(* ------------------------------------------------------------------ *)

let test_adaptive_beyond_threshold () =
  (* S=6, t=1: strict fast reads impossible at R >= 4; adaptive stays
     atomic under the very attack that breaks Algorithm 1 & 2. *)
  List.iter
    (fun rr ->
      let v =
        Workload.Threshold.attack ~register:Registers.Registry.adaptive ~s:6
          ~t:1 ~r:rr
      in
      check bool (Printf.sprintf "adaptive atomic at R=%d" rr) true
        v.Workload.Threshold.atomic)
    [ 2; 4; 6 ]

let test_adaptive_mostly_fast_when_quiet () =
  (* Sequential reads with no contention take the fast path. *)
  let env =
    Env.make ~seed:3 ~latency:(Simulation.Latency.constant 2.0) ~s:6 ~t:1 ~w:2
      ~r:2 ()
  in
  let plans =
    [
      Runtime.write_plan ~writer:0 1;
      Runtime.read_plan ~reader:0 ~start_at:100.0 ~think:20.0 5;
      Runtime.read_plan ~reader:1 ~start_at:105.0 ~think:20.0 5;
    ]
  in
  let out = Runtime.run ~register:Registers.Registry.adaptive ~env ~plans () in
  let reads = Workload.Stats.reads out.Runtime.history in
  (* All quiet reads should be one round-trip = 4.0. *)
  check bool "quiet reads are fast" true (reads.Workload.Stats.p95 <= 4.0 +. 0.001);
  check bool "atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)

(* ------------------------------------------------------------------ *)
(* W1Rk generalization                                                  *)
(* ------------------------------------------------------------------ *)

let test_k_round_convictions () =
  List.iter
    (fun k ->
      List.iter
        (fun strat ->
          let finding, stats = Impossibility.K_round.run ~s:4 strat in
          check bool
            (Printf.sprintf "%s convicted" strat.Impossibility.K_round.name)
            true
            (Impossibility.W1r2_theorem.found_violation finding);
          check int "no link failures" 0 stats.Impossibility.W1r2_theorem.links_failed)
        [
          Impossibility.K_round.majority_of_last_round ~k;
          Impossibility.K_round.round_vote ~k;
          Impossibility.K_round.seeded ~k 11;
        ])
    [ 2; 3; 5 ]

let test_k_round_validation () =
  check bool "k=1 rejected" true
    (try
       ignore (Impossibility.K_round.collapse (Impossibility.K_round.round_vote ~k:1));
       false
     with Invalid_argument _ -> true)

let k_round_seeded_property =
  QCheck.Test.make ~name:"every seeded k-round strategy convicted" ~count:80
    QCheck.(pair (int_range 0 10_000) (pair (int_range 2 5) (int_range 3 6)))
    (fun (seed, (k, s)) ->
      let finding, _ =
        Impossibility.K_round.run ~s (Impossibility.K_round.seeded ~k seed)
      in
      Impossibility.W1r2_theorem.found_violation finding)

(* ------------------------------------------------------------------ *)
(* Realizability                                                        *)
(* ------------------------------------------------------------------ *)

let test_realizability_chain_executions () =
  for s = 3 to 5 do
    for i1 = 1 to s do
      let chain =
        Impossibility.Chain_beta.build ~s ~stem_swapped:(i1 - 1) ~critical:(i1 - 1)
      in
      List.iter
        (fun (label, e) ->
          check bool
            (Printf.sprintf "realizable: %s (S=%d,i1=%d)" label s i1)
            true
            (Impossibility.Realizability.realizable ~t:1 e))
        (Impossibility.Zigzag.all_executions ~chain)
    done
  done

let test_realizability_catches_budget () =
  (* A round skipping 2 of 3 servers cannot complete with t = 1. *)
  let e =
    Impossibility.Exec_model.make ~label:"bad"
      [|
        [ Impossibility.Token.w1; Impossibility.Token.w2 ];
        [ Impossibility.Token.w1; Impossibility.Token.w2 ];
        [ Impossibility.Token.w1; Impossibility.Token.w2;
          Impossibility.Token.r ~reader:1 ~round:1 ];
      |]
  in
  let report = Impossibility.Realizability.check ~t:1 e in
  check bool "budget violation detected" false
    report.Impossibility.Realizability.skip_budget_ok;
  check int "max skips" 2 report.Impossibility.Realizability.max_skips

let test_realizability_catches_read_before_write () =
  let e =
    Impossibility.Exec_model.make ~label:"bad"
      [| [ Impossibility.Token.r ~reader:1 ~round:1; Impossibility.Token.w1 ] |]
  in
  let report = Impossibility.Realizability.check ~t:0 e in
  check bool "writes-first violated" false
    report.Impossibility.Realizability.writes_first

(* ------------------------------------------------------------------ *)
(* Generator                                                            *)
(* ------------------------------------------------------------------ *)

let test_generator_shapes () =
  let spec = { Workload.Generator.default with Workload.Generator.seed = 9 } in
  let plans = Workload.Generator.plans spec in
  check int "one plan per client" 4 (List.length plans);
  (* Same seed, same plans. *)
  check bool "deterministic" true (plans = Workload.Generator.plans spec);
  check bool "different seed differs" true
    (plans <> Workload.Generator.plans { spec with Workload.Generator.seed = 10 })

let test_generator_runs_atomic () =
  for seed = 1 to 5 do
    let spec = { Workload.Generator.default with Workload.Generator.seed = seed } in
    let env = Env.make ~seed ~s:5 ~t:1 ~w:2 ~r:2 () in
    let out =
      Runtime.run ~register:Registers.Registry.abd_mwmr ~env
        ~plans:(Workload.Generator.plans spec) ()
    in
    check bool "atomic" true (Checker.Atomicity.is_atomic out.Runtime.history);
    check bool "well-formed" true
      (History.well_formed out.Runtime.history = Ok ())
  done

let test_generator_closed_loop () =
  let spec = Workload.Generator.default in
  let plans = Workload.Generator.closed_loop spec ~duration:200.0 in
  let total_steps =
    List.fold_left (fun acc p -> acc + List.length p.Runtime.steps) 0 plans
  in
  check bool "scales with duration" true (total_steps > 20)

(* ------------------------------------------------------------------ *)
(* Partition adversary                                                  *)
(* ------------------------------------------------------------------ *)

let test_partition_heals () =
  (* Cut servers {3,4} off from everyone during [10, 200); with quorum 4
     of 5 unreachable... quorum 4 needs 4 of the 3 reachable servers, so
     ops stall during the partition and finish after it heals. *)
  let env =
    Env.make ~seed:4 ~latency:(Simulation.Latency.constant 1.0) ~s:5 ~t:1 ~w:2
      ~r:2 ()
  in
  let groups node = if node = 3 || node = 4 then 1 else 0 in
  let adversary =
    Workload.Adversary.apply
      (Workload.Adversary.partition ~groups ~from_time:10.0 ~until:200.0)
  in
  let plans = [ Runtime.write_plan ~writer:0 ~start_at:20.0 1 ] in
  let out = Runtime.run ~register:Registers.Registry.abd_mwmr ~env ~plans ~adversary () in
  match History.ops out.Runtime.history with
  | [ op ] ->
    check bool "completed after heal" true
      (match op.Op.resp with Some f -> f >= 200.0 | None -> false);
    check bool "atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)
  | _ -> Alcotest.fail "expected one op"

(* ------------------------------------------------------------------ *)
(* Exhaustive explorer                                                  *)
(* ------------------------------------------------------------------ *)

let test_exhaustive_correct_protocols_clean () =
  List.iter
    (fun register ->
      let o =
        Workload.Exhaustive.explore ~register ~s:3 ~w:2 ~r:1 ()
      in
      check bool "exhaustive" true o.Workload.Exhaustive.exhaustive;
      check int
        (Registers.Registry.name register ^ ": no violations")
        0 o.Workload.Exhaustive.violations)
    [ Registers.Registry.abd_mwmr; Registers.Registry.adaptive ]

let test_exhaustive_finds_naive_counterexample () =
  let o =
    Workload.Exhaustive.explore ~register:Registers.Registry.naive_w1r2 ~s:3
      ~w:2 ~r:1 ()
  in
  check bool "violations found" true (o.Workload.Exhaustive.violations > 0);
  match o.Workload.Exhaustive.first with
  | Some v ->
    check Alcotest.string "stale read witness" "stale-read"
      (Checker.Witness.short v.Workload.Exhaustive.witness)
  | None -> Alcotest.fail "expected a first counterexample"

let test_exhaustive_truncation () =
  let o =
    Workload.Exhaustive.explore ~max_runs:100
      ~register:Registers.Registry.abd_mwmr ~s:3 ~w:2 ~r:1 ()
  in
  check bool "truncated" false o.Workload.Exhaustive.exhaustive;
  check int "capped" 100 o.Workload.Exhaustive.runs

(* ------------------------------------------------------------------ *)
(* Interval checker: direct unit cases (the property suite in
   test_checker cross-validates it on random histories).              *)
(* ------------------------------------------------------------------ *)

let test_interval_accepts_sequential () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        r ~id:1 ~inv:2.0 ~resp:(Some 3.0) ~result:(Some 1) ();
      ]
  in
  check bool "atomic" true (Checker.Interval.is_atomic h)

let test_interval_rejects_stale () =
  let h = three_writes_then_read 1 in
  check bool "stale rejected" false (Checker.Interval.is_atomic h);
  match Checker.Interval.check h with
  | Error wit ->
    check bool "cycle or stale witness" true
      (List.mem (Checker.Witness.short wit) [ "ordering-cycle"; "stale-read" ])
  | Ok () -> Alcotest.fail "expected error"

let test_interval_rejects_inversion () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 20.0) ();
        r ~id:2 ~proc:0 ~inv:3.0 ~resp:(Some 4.0) ~result:(Some 2) ();
        r ~id:3 ~proc:1 ~inv:5.0 ~resp:(Some 6.0) ~result:(Some 1) ();
      ]
  in
  check bool "new/old inversion rejected" false (Checker.Interval.is_atomic h)

let test_interval_pending_write () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:None ();
        r ~id:1 ~inv:5.0 ~resp:(Some 6.0) ~result:(Some 1) ();
      ]
  in
  check bool "pending write readable" true (Checker.Interval.is_atomic h)

(* ------------------------------------------------------------------ *)
(* Theorem 1 narrated report                                            *)
(* ------------------------------------------------------------------ *)

let test_report_narrates_walk () =
  let text =
    Impossibility.Report.explain ~s:4 Impossibility.Strategy.majority_last
  in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check bool "mentions critical server" true (contains "critical server");
  check bool "mentions zigzag" true (contains "zigzag");
  check bool "ends with a verdict" true (contains "Verdict");
  check bool "contains the witness" true (contains "read disagreement")

let test_report_anchor_case () =
  let bad = { Impossibility.Strategy.name = "always-1"; decide = (fun _ -> 1) } in
  let text = Impossibility.Report.explain ~s:4 bad in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check bool "anchor narrated" true (contains "SEQUENTIAL ANCHOR VIOLATION")

(* ------------------------------------------------------------------ *)
(* W3R1: write rounds don't matter (§5.1)                               *)
(* ------------------------------------------------------------------ *)

let test_w3r1_write_is_three_rounds () =
  let env =
    Env.make ~seed:2 ~latency:(Simulation.Latency.constant 2.0) ~s:5 ~t:1 ~w:1
      ~r:1 ()
  in
  let out =
    Runtime.run ~register:Registers.Registry.slow_write_w3r1 ~env
      ~plans:[ Runtime.write_plan ~writer:0 1; Runtime.read_plan ~reader:0 ~start_at:100.0 1 ]
      ()
  in
  let writes = Workload.Stats.writes out.Runtime.history in
  let reads = Workload.Stats.reads out.Runtime.history in
  check bool "write = 3 RTTs" true (abs_float (writes.Workload.Stats.mean -. 12.0) < 0.001);
  check bool "read = 1 RTT" true (abs_float (reads.Workload.Stats.mean -. 4.0) < 0.001)

let test_w3r1_atomic_safe_regime () =
  for seed = 1 to 5 do
    let env =
      Env.make ~seed ~latency:(Simulation.Latency.uniform ~lo:1.0 ~hi:8.0) ~s:6
        ~t:1 ~w:2 ~r:2 ()
    in
    let plans =
      [
        Runtime.write_plan ~writer:0 ~think:12.0 3;
        Runtime.write_plan ~writer:1 ~start_at:2.0 ~think:15.0 3;
        Runtime.read_plan ~reader:0 ~start_at:1.0 ~think:9.0 5;
        Runtime.read_plan ~reader:1 ~start_at:3.0 ~think:11.0 5;
      ]
    in
    let out = Runtime.run ~register:Registers.Registry.slow_write_w3r1 ~env ~plans () in
    check bool "atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)
  done

(* ------------------------------------------------------------------ *)
(* Hunter                                                               *)
(* ------------------------------------------------------------------ *)

let test_hunter_finds_naive_violation () =
  let found, _runs =
    Workload.Hunter.hunt ~seeds_per_shape:20
      ~register:Registers.Registry.naive_w1r2 ~s:5 ~t:1 ~w:2 ~r:2 ()
  in
  match found with
  | Some f ->
    check bool "witness attached" true
      (String.length (Checker.Witness.short f.Workload.Hunter.witness) > 0)
  | None -> Alcotest.fail "hunter must break the naive fast write"

let test_hunter_clean_on_correct_protocol () =
  let found, runs =
    Workload.Hunter.hunt ~seeds_per_shape:15
      ~register:Registers.Registry.abd_mwmr ~s:5 ~t:1 ~w:2 ~r:2 ()
  in
  check bool "no violation" true (found = None);
  check bool "ran the budget" true (runs > 40)

let test_hunter_starvation_shape () =
  (* The starvation shape alone breaks strict W2R1 past the threshold. *)
  let found, _ =
    Workload.Hunter.hunt ~shapes:[ Workload.Hunter.Starvation ]
      ~register:Registers.Registry.fastread_w2r1 ~s:6 ~t:1 ~w:2 ~r:4 ()
  in
  check bool "starvation finds it" true (found <> None)

(* ------------------------------------------------------------------ *)
(* Adaptive internals                                                   *)
(* ------------------------------------------------------------------ *)

let test_adaptive_safe_degrees () =
  check (Alcotest.list int) "S=6 t=1" [ 1; 2; 3; 4 ]
    (Registers.Adaptive_read.safe_degrees ~s:6 ~t:1);
  check (Alcotest.list int) "S=8 t=2" [ 1; 2 ]
    (Registers.Adaptive_read.safe_degrees ~s:8 ~t:2);
  check (Alcotest.list int) "S=3 t=1" [ 1 ]
    (Registers.Adaptive_read.safe_degrees ~s:3 ~t:1)

let test_adaptive_fast_fraction () =
  let env =
    Env.make ~seed:3 ~latency:(Simulation.Latency.constant 2.0) ~s:6 ~t:1 ~w:1
      ~r:1 ()
  in
  let cluster = Registers.Adaptive_read.create env in
  check bool "empty fraction is 1" true
    (Registers.Adaptive_read.fast_fraction cluster = 1.0);
  let engine = env.Env.engine in
  Registers.Adaptive_read.write cluster ~writer:0 ~value:5 ~k:(fun _ ->
      Registers.Adaptive_read.read cluster ~reader:0 ~k:(fun v _ ->
          check int "reads the write" 5 v));
  Simulation.Engine.run engine;
  check bool "quiet read was fast" true
    (Registers.Adaptive_read.fast_fraction cluster = 1.0)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "extensions"
    [
      ( "staleness",
        [
          tc "fresh read" test_staleness_fresh;
          tc "missed writes counted" test_staleness_counts_missed_writes;
          tc "initial value" test_staleness_initial_value;
          tc "concurrent not counted" test_staleness_concurrent_write_not_counted;
          tc "histogram" test_staleness_histogram;
          tc "unwritten" test_staleness_unwritten;
        ] );
      ( "serial",
        [
          tc "round trip" test_serial_roundtrip;
          tc "comments and blanks" test_serial_comments_and_blanks;
          tc "rejects garbage" test_serial_rejects_garbage;
          QCheck_alcotest.to_alcotest serial_roundtrip_property;
        ] );
      ( "linearization",
        [
          tc "simple" test_linearization_simple;
          tc "none on violation" test_linearization_none_when_violated;
          QCheck_alcotest.to_alcotest linearization_property;
        ] );
      ( "adaptive",
        [
          tc "beyond threshold" test_adaptive_beyond_threshold;
          tc "mostly fast when quiet" test_adaptive_mostly_fast_when_quiet;
        ] );
      ( "k-round",
        [
          tc "convictions" test_k_round_convictions;
          tc "validation" test_k_round_validation;
          QCheck_alcotest.to_alcotest k_round_seeded_property;
        ] );
      ( "realizability",
        [
          tc "chain executions realizable" test_realizability_chain_executions;
          tc "budget violations caught" test_realizability_catches_budget;
          tc "read-before-write caught" test_realizability_catches_read_before_write;
        ] );
      ( "generator",
        [
          tc "shapes" test_generator_shapes;
          tc "runs atomic" test_generator_runs_atomic;
          tc "closed loop" test_generator_closed_loop;
        ] );
      ("partition", [ tc "heals" test_partition_heals ]);
      ( "exhaustive",
        [
          tc "correct protocols clean" test_exhaustive_correct_protocols_clean;
          tc "naive counterexample" test_exhaustive_finds_naive_counterexample;
          tc "truncation" test_exhaustive_truncation;
        ] );
      ( "interval-checker",
        [
          tc "accepts sequential" test_interval_accepts_sequential;
          tc "rejects stale" test_interval_rejects_stale;
          tc "rejects inversion" test_interval_rejects_inversion;
          tc "pending write" test_interval_pending_write;
        ] );
      ( "report",
        [
          tc "narrates walk" test_report_narrates_walk;
          tc "anchor case" test_report_anchor_case;
        ] );
      ( "w3r1",
        [
          tc "three-round writes, fast reads" test_w3r1_write_is_three_rounds;
          tc "atomic in safe regime" test_w3r1_atomic_safe_regime;
        ] );
      ( "hunter",
        [
          tc "finds naive violation" test_hunter_finds_naive_violation;
          tc "clean on correct protocol" test_hunter_clean_on_correct_protocol;
          tc "starvation shape" test_hunter_starvation_shape;
        ] );
      ( "adaptive-internals",
        [
          tc "safe degrees" test_adaptive_safe_degrees;
          tc "fast fraction" test_adaptive_fast_fraction;
        ] );
    ]
