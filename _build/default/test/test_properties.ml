(* Cross-cutting property tests: randomized workloads, fault injection,
   and determinism, across all protocols.  These are the "is the whole
   stack sound" tests — every run of a provably-correct protocol, under
   any within-model schedule, must be wait-free, atomic, and satisfy
   MWA0–MWA4. *)

open Protocol
open Workload

(* ------------------------------------------------------------------ *)
(* Random workload generation                                           *)
(* ------------------------------------------------------------------ *)

type scenario = {
  seed : int;
  s : int;
  t : int;
  w : int;
  r : int;
  latency_kind : int;
  crash : bool;
  skips : bool;
}

let scenario_gen ~multi_writer =
  let open QCheck.Gen in
  let* seed = int_range 0 1_000_000 in
  let* s = int_range 3 8 in
  let* t = int_range 1 ((s - 1) / 2) in
  let* w = if multi_writer then int_range 2 3 else return 1 in
  (* Stay in the fast-read-safe regime so every protocol must be atomic:
     R <= max(1, threshold). *)
  let max_r = max 1 (Quorums.Bounds.fast_read_threshold ~s ~t) in
  let* r = int_range 1 (min 3 max_r) in
  let* latency_kind = int_range 0 2 in
  let* crash = bool in
  let* skips = bool in
  return { seed; s; t; w; r; latency_kind; crash; skips }

let print_scenario sc =
  Printf.sprintf "{seed=%d S=%d t=%d W=%d R=%d lat=%d crash=%b skips=%b}" sc.seed
    sc.s sc.t sc.w sc.r sc.latency_kind sc.crash sc.skips

let latency_of = function
  | 0 -> Simulation.Latency.constant 2.0
  | 1 -> Simulation.Latency.uniform ~lo:1.0 ~hi:10.0
  | _ -> Simulation.Latency.exponential ~mean:4.0

let plans_for sc =
  let writers =
    List.init sc.w (fun i ->
        Runtime.write_plan ~writer:i
          ~start_at:(float_of_int (i * 3))
          ~think:(10.0 +. float_of_int (7 * i))
          3)
  in
  let readers =
    List.init sc.r (fun i ->
        Runtime.read_plan ~reader:i
          ~start_at:(1.0 +. float_of_int i)
          ~think:(8.0 +. float_of_int (5 * i))
          5)
  in
  writers @ readers

let adversary_for sc =
  let topology = Topology.make ~servers:sc.s ~writers:sc.w ~readers:sc.r in
  Adversary.compose
    ((if sc.crash then [ Adversary.crash_random ~seed:sc.seed ~t:sc.t ~at:20.0 ~s:sc.s ] else [])
    @
    if sc.skips then
      [ Adversary.random_skips ~seed:sc.seed ~topology ~t_budget:sc.t ~window:30.0 ]
    else [])

let run_scenario register sc =
  let env = Env.make ~seed:sc.seed ~latency:(latency_of sc.latency_kind) ~s:sc.s ~t:sc.t ~w:sc.w ~r:sc.r () in
  Runtime.run ~register ~env ~plans:(plans_for sc)
    ~adversary:(Adversary.apply (adversary_for sc)) ()

(* Crashing t servers *and* skipping t more can exceed the fault budget
   (a round-trip may wait on a held message to a crashed-adjacent
   quorum).  The runtime releases held messages at the end, so ops
   complete eventually; wait-freedom within the run is only asserted
   when at most one mechanism is active. *)
let correctness_property register =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: random schedules stay atomic" (Registers.Registry.name register))
    ~count:120
    (QCheck.make ~print:print_scenario
       (scenario_gen
          ~multi_writer:
            (List.exists
               (fun p -> Registers.Registry.name p = Registers.Registry.name register)
               Registers.Registry.multi_writer)))
    (fun sc ->
      QCheck.assume (not (sc.crash && sc.skips));
      let out = run_scenario register sc in
      let h = out.Runtime.history in
      Histories.History.well_formed h = Ok ()
      && List.for_all Histories.Op.is_complete (Histories.History.ops h)
      && Checker.Atomicity.is_atomic h
      && Checker.Mw_properties.check_ok out.Runtime.tagged = Ok ())

(* ------------------------------------------------------------------ *)
(* Determinism                                                          *)
(* ------------------------------------------------------------------ *)

let history_fingerprint h =
  Hashtbl.hash
    (List.map
       (fun (o : Histories.Op.t) ->
         (o.Histories.Op.id, o.Histories.Op.proc, o.Histories.Op.kind,
          o.Histories.Op.inv, o.Histories.Op.resp, o.Histories.Op.result))
       (Histories.History.ops h))

let determinism_property register =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: same seed, same history" (Registers.Registry.name register))
    ~count:40
    (QCheck.make ~print:print_scenario (scenario_gen ~multi_writer:true))
    (fun sc ->
      let out1 = run_scenario register sc in
      let out2 = run_scenario register sc in
      history_fingerprint out1.Runtime.history
      = history_fingerprint out2.Runtime.history)

let seed_sensitivity =
  QCheck.Test.make ~name:"different seeds usually differ" ~count:20
    (QCheck.make ~print:print_scenario (scenario_gen ~multi_writer:true))
    (fun sc ->
      QCheck.assume (sc.latency_kind > 0);
      let out1 = run_scenario Registers.Registry.abd_mwmr sc in
      let out2 = run_scenario Registers.Registry.abd_mwmr { sc with seed = sc.seed + 1 } in
      (* Timing fingerprints should differ under random latency. *)
      history_fingerprint out1.Runtime.history
      <> history_fingerprint out2.Runtime.history)

(* ------------------------------------------------------------------ *)
(* Degraded modes: what the naive protocols still guarantee             *)
(* ------------------------------------------------------------------ *)

(* Even the doomed candidates never fabricate values: every read returns
   the initial value or something some write stored. *)
let naive_never_fabricates =
  QCheck.Test.make ~name:"naive protocols never return unwritten values"
    ~count:60
    (QCheck.make ~print:print_scenario (scenario_gen ~multi_writer:true))
    (fun sc ->
      List.for_all
        (fun register ->
          let out = run_scenario register sc in
          match Checker.Atomicity.check out.Runtime.history with
          | Ok () -> true
          | Error w -> Checker.Witness.short w <> "unwritten-value")
        [ Registers.Registry.naive_w1r2; Registers.Registry.naive_w1r1 ])

(* With a single writer the naive fast write *is* ABD'95's fast write:
   Theorem 1's W >= 2 hypothesis is tight. *)
let naive_single_writer_atomic =
  QCheck.Test.make ~name:"naive fast-write is atomic with a single writer"
    ~count:60
    (QCheck.make ~print:print_scenario (scenario_gen ~multi_writer:false))
    (fun sc ->
      QCheck.assume (not (sc.crash && sc.skips));
      let out = run_scenario Registers.Registry.naive_w1r2 { sc with w = 1 } in
      Checker.Atomicity.is_atomic out.Runtime.history)

(* The adaptive register is atomic even beyond the fast-read threshold. *)
let adaptive_atomic_any_r =
  QCheck.Test.make ~name:"adaptive register atomic at any reader count"
    ~count:60
    (QCheck.make ~print:print_scenario (scenario_gen ~multi_writer:true))
    (fun sc ->
      QCheck.assume (not (sc.crash && sc.skips));
      let sc = { sc with r = min 5 (sc.r + 3) } (* push past thresholds *) in
      let out = run_scenario Registers.Registry.adaptive sc in
      Checker.Atomicity.is_atomic out.Runtime.history
      && Checker.Mw_properties.check_ok out.Runtime.tagged = Ok ())

(* Wait-freedom under crash-only faults, all protocols. *)
let wait_freedom_under_crash =
  QCheck.Test.make ~name:"wait-free under <= t crashes" ~count:80
    (QCheck.make ~print:print_scenario (scenario_gen ~multi_writer:true))
    (fun sc ->
      let sc = { sc with crash = true; skips = false } in
      List.for_all
        (fun register ->
          let out = run_scenario register sc in
          List.for_all Histories.Op.is_complete
            (Histories.History.ops out.Runtime.history))
        Registers.Registry.multi_writer)

let () =
  Alcotest.run "properties"
    [
      ( "correctness",
        List.map QCheck_alcotest.to_alcotest
          [
            correctness_property Registers.Registry.abd_mwmr;
            correctness_property Registers.Registry.fastread_w2r1;
            correctness_property Registers.Registry.abd_swmr;
            correctness_property Registers.Registry.dglv_w1r1;
          ] );
      ( "determinism",
        List.map QCheck_alcotest.to_alcotest
          [
            determinism_property Registers.Registry.abd_mwmr;
            determinism_property Registers.Registry.fastread_w2r1;
            seed_sensitivity;
          ] );
      ( "degraded-modes",
        List.map QCheck_alcotest.to_alcotest
          [
            naive_never_fabricates;
            naive_single_writer_atomic;
            adaptive_atomic_any_r;
            wait_freedom_under_crash;
          ] );
    ]
