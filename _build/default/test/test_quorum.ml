(* Tests for quorum systems and the Table 1 possibility predicates. *)

open Quorums

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let test_threshold_basics () =
  let q = Quorum.threshold ~servers:5 ~quorum_size:4 in
  check int "servers" 5 (Quorum.servers q);
  check int "size" 4 (Quorum.quorum_size q);
  check bool "is quorum" true (Quorum.is_quorum q [ 0; 1; 2; 3 ]);
  check bool "too small" false (Quorum.is_quorum q [ 0; 1; 2 ]);
  check bool "duplicates don't count" false (Quorum.is_quorum q [ 0; 0; 1; 2 ]);
  check bool "out of range" false (Quorum.is_quorum q [ 0; 1; 2; 9 ])

let test_threshold_validation () =
  check bool "bad size raises" true
    (try ignore (Quorum.threshold ~servers:3 ~quorum_size:0); false
     with Invalid_argument _ -> true);
  check bool "oversize raises" true
    (try ignore (Quorum.threshold ~servers:3 ~quorum_size:4); false
     with Invalid_argument _ -> true)

let test_majority () =
  check int "5 -> 3" 3 (Quorum.quorum_size (Quorum.majority ~servers:5));
  check int "6 -> 4" 4 (Quorum.quorum_size (Quorum.majority ~servers:6));
  check bool "majorities intersect" true
    (Quorum.always_intersecting (Quorum.majority ~servers:7))

let test_crash_tolerant () =
  let q = Quorum.crash_tolerant ~servers:5 ~t:2 in
  check int "S - t" 3 (Quorum.quorum_size q);
  check int "tolerates" 2 (Quorum.tolerates q);
  check bool "available under t crashes" true (Quorum.available_under q ~crashed:2);
  check bool "unavailable beyond" false (Quorum.available_under q ~crashed:3)

let test_intersection () =
  (* S - t quorums intersect iff 2t < S: the ABD condition. *)
  let good = Quorum.crash_tolerant ~servers:5 ~t:2 in
  check bool "t < S/2 intersects" true (Quorum.always_intersecting good);
  check int "overlap at least" 1 (Quorum.intersection_at_least good);
  let bad = Quorum.crash_tolerant ~servers:4 ~t:2 in
  check bool "t >= S/2 does not" false (Quorum.always_intersecting bad)

(* ------------------------------------------------------------------ *)
(* Coteries                                                             *)
(* ------------------------------------------------------------------ *)

let test_coterie_majority () =
  let c = Coterie.majority ~universe:5 in
  check bool "intersecting" true (Coterie.pairwise_intersecting c);
  check bool "minimal" true (Coterie.is_minimal c);
  check int "quorum size" 3 (Coterie.min_quorum_size c);
  check int "tolerates" 2 (Coterie.crash_tolerance c);
  check bool "is_quorum" true (Coterie.is_quorum c [ 0; 2; 4 ]);
  check bool "too small" false (Coterie.is_quorum c [ 0; 2 ])

let test_coterie_grid () =
  let c = Coterie.grid ~rows:3 ~cols:3 in
  check bool "intersecting" true (Coterie.pairwise_intersecting c);
  (* Row 0 + column 0 = {0,1,2,3,6}. *)
  check bool "row+col is a quorum" true (Coterie.is_quorum c [ 0; 1; 2; 3; 6 ]);
  check bool "a bare row is not" false (Coterie.is_quorum c [ 0; 1; 2 ]);
  check int "quorum size 2*3-1" 5 (Coterie.min_quorum_size c);
  (* Killing a full row kills every quorum: tolerance < rows. *)
  check bool "row crash fatal" false (Coterie.available_under c ~crashed:[ 0; 1; 2 ]);
  check bool "scattered crashes survivable" true
    (Coterie.available_under c ~crashed:[ 0; 4 ])

let test_coterie_grid_vs_majority_size () =
  (* The point of grids: o(n) quorums. *)
  let g = Coterie.grid ~rows:4 ~cols:4 in
  let m = Coterie.majority ~universe:16 in
  check bool "grid quorums smaller" true
    (Coterie.min_quorum_size g < Coterie.min_quorum_size m)

let test_coterie_validation () =
  check bool "empty family" true
    (try ignore (Coterie.of_lists ~universe:3 []); false
     with Invalid_argument _ -> true);
  check bool "out of range" true
    (try ignore (Coterie.of_lists ~universe:3 [ [ 5 ] ]); false
     with Invalid_argument _ -> true);
  check bool "non-intersecting detectable" false
    (Coterie.pairwise_intersecting (Coterie.of_lists ~universe:4 [ [ 0; 1 ]; [ 2; 3 ] ]))

let test_coterie_threshold_matches_quorum () =
  let c = Coterie.threshold ~universe:5 ~size:4 in
  let q = Quorum.crash_tolerant ~servers:5 ~t:1 in
  check bool "same tolerance" true (Coterie.crash_tolerance c = Quorum.tolerates q);
  check bool "same min size" true (Coterie.min_quorum_size c = Quorum.quorum_size q)

let coterie_intersection_property =
  QCheck.Test.make ~name:"threshold coteries intersect iff 2*size > n" ~count:200
    QCheck.(pair (int_range 2 7) (int_range 1 7))
    (fun (n, size) ->
      QCheck.assume (size <= n);
      Coterie.pairwise_intersecting (Coterie.threshold ~universe:n ~size)
      = (2 * size > n))

(* ------------------------------------------------------------------ *)
(* Table 1 predicates                                                   *)
(* ------------------------------------------------------------------ *)

let test_w2r2_row () =
  (* Possible iff t < S/2. *)
  check bool "S=5 t=2" true (Bounds.w2r2_possible ~s:5 ~t:2);
  check bool "S=4 t=2" false (Bounds.w2r2_possible ~s:4 ~t:2);
  check bool "S=2 t=1" false (Bounds.w2r2_possible ~s:2 ~t:1);
  check bool "S=3 t=1" true (Bounds.w2r2_possible ~s:3 ~t:1)

let test_w1r2_row () =
  (* This paper: impossible for W >= 2, R >= 2, t >= 1. *)
  check bool "multi-writer impossible" false
    (Bounds.w1r2_possible ~s:10 ~t:1 ~w:2 ~r:2);
  check bool "even with many servers" false
    (Bounds.w1r2_possible ~s:100 ~t:1 ~w:3 ~r:2);
  (* Boundary cases where it IS possible: *)
  check bool "single writer (ABD'95)" true (Bounds.w1r2_possible ~s:5 ~t:2 ~w:1 ~r:9);
  check bool "t=0 trivial" true (Bounds.w1r2_possible ~s:3 ~t:0 ~w:5 ~r:5)

let test_w2r1_row () =
  (* Possible iff R < S/t - 2. *)
  check bool "S=6 t=1 R=3" true (Bounds.w2r1_possible ~s:6 ~t:1 ~r:3);
  check bool "S=6 t=1 R=4" false (Bounds.w2r1_possible ~s:6 ~t:1 ~r:4);
  check bool "S=8 t=2 R=1" true (Bounds.w2r1_possible ~s:8 ~t:2 ~r:1);
  check bool "S=8 t=2 R=2" false (Bounds.w2r1_possible ~s:8 ~t:2 ~r:2);
  check bool "S=9 t=2 R=2" true (Bounds.w2r1_possible ~s:9 ~t:2 ~r:2);
  check bool "t=0 trivial" true (Bounds.w2r1_possible ~s:4 ~t:0 ~r:50)

let test_w1r1_row () =
  check bool "multi-writer impossible" false
    (Bounds.w1r1_possible ~s:20 ~t:1 ~w:2 ~r:2);
  check bool "single-writer DGLV regime" true
    (Bounds.w1r1_possible ~s:6 ~t:1 ~w:1 ~r:3);
  check bool "single-writer beyond threshold" false
    (Bounds.w1r1_possible ~s:6 ~t:1 ~w:1 ~r:4)

let test_fast_read_threshold () =
  check int "S=6 t=1 -> R<=3" 3 (Bounds.fast_read_threshold ~s:6 ~t:1);
  check int "S=9 t=2 -> R<=2" 2 (Bounds.fast_read_threshold ~s:9 ~t:2);
  check int "S=8 t=2 -> R<=1" 1 (Bounds.fast_read_threshold ~s:8 ~t:2);
  check int "S=4 t=1 -> R<=1" 1 (Bounds.fast_read_threshold ~s:4 ~t:1);
  check bool "t=0 unbounded" true (Bounds.fast_read_threshold ~s:4 ~t:0 > 1000)

let threshold_consistency =
  QCheck.Test.make ~name:"fast_read_threshold matches w2r1_possible" ~count:500
    QCheck.(pair (int_range 3 30) (int_range 1 5))
    (fun (s, t) ->
      QCheck.assume (t < s);
      let thr = Bounds.fast_read_threshold ~s ~t in
      let w2r2 = Bounds.w2r2_possible ~s ~t in
      List.for_all
        (fun r -> Bounds.w2r1_possible ~s ~t ~r = (r <= thr && w2r2))
        (List.init 10 (fun i -> i + 1)))

let test_rounds_and_rank () =
  check int "W2R2 writes" 2 (Bounds.write_rounds Bounds.W2R2);
  check int "W1R2 writes" 1 (Bounds.write_rounds Bounds.W1R2);
  check int "W2R1 reads" 1 (Bounds.read_rounds Bounds.W2R1);
  check int "W1R1 total" 2 (Bounds.latency_rank Bounds.W1R1);
  check int "W2R2 total" 4 (Bounds.latency_rank Bounds.W2R2);
  check bool "lattice ordering" true
    (Bounds.latency_rank Bounds.W1R1 < Bounds.latency_rank Bounds.W1R2
    && Bounds.latency_rank Bounds.W1R2 < Bounds.latency_rank Bounds.W2R2)

let test_dispatch () =
  List.iter
    (fun p ->
      check bool
        (Bounds.design_point_to_string p ^ " dispatch consistent")
        (Bounds.possible p ~s:6 ~t:1 ~w:2 ~r:2)
        (match p with
        | Bounds.W2R2 -> Bounds.w2r2_possible ~s:6 ~t:1
        | Bounds.W1R2 -> Bounds.w1r2_possible ~s:6 ~t:1 ~w:2 ~r:2
        | Bounds.W2R1 -> Bounds.w2r1_possible ~s:6 ~t:1 ~r:2
        | Bounds.W1R1 -> Bounds.w1r1_possible ~s:6 ~t:1 ~w:2 ~r:2))
    Bounds.all_design_points

let test_validation () =
  check bool "s<2 raises" true
    (try ignore (Bounds.w2r2_possible ~s:1 ~t:0); false
     with Invalid_argument _ -> true);
  check bool "t>=s raises" true
    (try ignore (Bounds.w2r1_possible ~s:3 ~t:3 ~r:1); false
     with Invalid_argument _ -> true)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "quorum"
    [
      ( "quorum-systems",
        [
          tc "threshold basics" test_threshold_basics;
          tc "validation" test_threshold_validation;
          tc "majority" test_majority;
          tc "crash tolerant" test_crash_tolerant;
          tc "intersection" test_intersection;
        ] );
      ( "coteries",
        [
          tc "majority" test_coterie_majority;
          tc "grid" test_coterie_grid;
          tc "grid vs majority size" test_coterie_grid_vs_majority_size;
          tc "validation" test_coterie_validation;
          tc "threshold matches Quorum" test_coterie_threshold_matches_quorum;
          QCheck_alcotest.to_alcotest coterie_intersection_property;
        ] );
      ( "table1",
        [
          tc "W2R2 row" test_w2r2_row;
          tc "W1R2 row" test_w1r2_row;
          tc "W2R1 row" test_w2r1_row;
          tc "W1R1 row" test_w1r1_row;
          tc "fast-read threshold" test_fast_read_threshold;
          QCheck_alcotest.to_alcotest threshold_consistency;
          tc "rounds and rank" test_rounds_and_rank;
          tc "dispatch" test_dispatch;
          tc "validation" test_validation;
        ] );
    ]
