(* Appendix-A lemmas as observable properties of Algorithm 1 & 2 runs.

   The MWA0–MWA4 properties are checked elsewhere on the history level;
   here we probe the reader's internals (via
   [Registers.Fastread_w2r1.set_probe]) and assert the supporting lemmas
   the correctness proof rests on, over randomized safe-regime runs:

   - Lemma 2: a read returns a value whose timestamp is maxTS or
     maxTS − 1 (maxTS = largest timestamp among its replies).
   - Lemma 3: the reader's valQueue maximum is always admissible, so the
     descending scan never falls off the end (no fallback).
   - Lemma 4 / MWA1: returned timestamps are non-negative.
   - degree bound: the admissibility degree used lies in [1, R+1].
   - safe-regime sanity: in the proven regime the degree's certificate
     has margin (S − a·t > 0). *)

open Protocol
open Registers

let check = Alcotest.check
let bool = Alcotest.bool

let run_probed ~seed ~s ~t ~w ~r ~adversarial =
  let env =
    Env.make ~seed
      ~latency:(Simulation.Latency.uniform ~lo:1.0 ~hi:8.0)
      ~s ~t ~w ~r ()
  in
  let cluster = Fastread_w2r1.create env in
  let probes = ref [] in
  Fastread_w2r1.set_probe cluster (Some (fun p -> probes := p :: !probes));
  (* Drive the cluster directly (the registry's first-class module would
     hide the probe-carrying cluster type). *)
  let engine = env.Env.engine in
  (if adversarial then
     let topology = env.Env.topology in
     let adv =
       Workload.Adversary.random_skips ~seed ~topology ~t_budget:t ~window:30.0
     in
     Workload.Adversary.apply adv (Fastread_w2r1.control cluster) engine);
  let value = ref 0 in
  let rec writer_loop i n =
    if n > 0 then begin
      incr value;
      let v = !value in
      Fastread_w2r1.write cluster ~writer:i ~value:v ~k:(fun _ ->
          Simulation.Engine.schedule engine ~delay:10.0 (fun () ->
              writer_loop i (n - 1)))
    end
  in
  let rec reader_loop i n =
    if n > 0 then
      Fastread_w2r1.read cluster ~reader:i ~k:(fun _ _ ->
          Simulation.Engine.schedule engine ~delay:7.0 (fun () ->
              reader_loop i (n - 1)))
  in
  for i = 0 to w - 1 do
    Simulation.Engine.schedule_at engine
      ~time:(float_of_int (3 * i))
      (fun () -> writer_loop i 3)
  done;
  for i = 0 to r - 1 do
    Simulation.Engine.schedule_at engine
      ~time:(1.0 +. float_of_int i)
      (fun () -> reader_loop i 6)
  done;
  Simulation.Engine.run engine;
  (Fastread_w2r1.control cluster).Control.release_held ();
  Simulation.Engine.run engine;
  List.rev !probes

let configs = [ (5, 1, 2, 2); (6, 1, 3, 3); (9, 2, 2, 2); (7, 1, 2, 4) ]

let for_all_probes ~adversarial f =
  List.for_all
    (fun (s, t, w, r) ->
      List.for_all
        (fun seed ->
          let probes = run_probed ~seed ~s ~t ~w ~r ~adversarial in
          probes <> [] && List.for_all (f ~s ~t ~r) probes)
        [ 1; 2; 3; 4; 5 ])
    configs

let test_lemma2 () =
  (* Returned timestamp is maxTS or maxTS − 1. *)
  check bool "benign" true
    (for_all_probes ~adversarial:false (fun ~s:_ ~t:_ ~r:_ p ->
         p.Client_core.returned.Tstamp.ts >= p.Client_core.max_seen.Tstamp.ts - 1));
  check bool "adversarial" true
    (for_all_probes ~adversarial:true (fun ~s:_ ~t:_ ~r:_ p ->
         p.Client_core.returned.Tstamp.ts >= p.Client_core.max_seen.Tstamp.ts - 1))

let test_lemma3_no_fallback () =
  check bool "scan never falls through" true
    (for_all_probes ~adversarial:true (fun ~s:_ ~t:_ ~r:_ p ->
         not p.Client_core.fallback))

let test_mwa1_nonnegative () =
  check bool "non-negative timestamps" true
    (for_all_probes ~adversarial:true (fun ~s:_ ~t:_ ~r:_ p ->
         p.Client_core.returned.Tstamp.ts >= 0))

let test_degree_bounds () =
  check bool "degree in [1, R+1]" true
    (for_all_probes ~adversarial:true (fun ~s:_ ~t:_ ~r p ->
         match p.Client_core.degree with
         | None -> false
         | Some a -> a >= 1 && a <= r + 1))

let test_safe_regime_margin () =
  (* In the proven regime R < S/t − 2, the degree used keeps the
     certificate requirement positive: S − a·t ≥ S − (R+1)·t > t ≥ 1. *)
  check bool "certificate margin" true
    (for_all_probes ~adversarial:true (fun ~s ~t ~r:_ p ->
         match p.Client_core.degree with
         | None -> false
         | Some a -> s - (a * t) > t))

let test_lemma2_few_skips () =
  (* Lemma 2's corollary: a reader never scans past more than one
     candidate in the safe regime (the value below maxTS is admissible). *)
  check bool "at most a couple of candidates skipped" true
    (for_all_probes ~adversarial:true (fun ~s:_ ~t:_ ~r:_ p ->
         p.Client_core.candidates_skipped
         <= p.Client_core.max_seen.Tstamp.ts + 1))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "lemmas"
    [
      ( "appendix-a",
        [
          tc "Lemma 2: returns maxTS or maxTS-1" test_lemma2;
          tc "Lemma 3: no fallback" test_lemma3_no_fallback;
          tc "MWA1: non-negative timestamps" test_mwa1_nonnegative;
          tc "degree bounds" test_degree_bounds;
          tc "safe-regime certificate margin" test_safe_regime_margin;
          tc "bounded candidate scan" test_lemma2_few_skips;
        ] );
    ]
