(* Tests for the client–server round-trip framework (§2.2). *)

open Protocol
open Simulation

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Topology                                                             *)
(* ------------------------------------------------------------------ *)

let topo = Topology.make ~servers:3 ~writers:2 ~readers:2

let test_topology_layout () =
  check int "node count" 7 (Topology.node_count topo);
  check int "server 1" 1 (Topology.server_node topo 1);
  check int "writer 0" 3 (Topology.writer_node topo 0);
  check int "reader 1" 6 (Topology.reader_node topo 1);
  check bool "is_server" true (Topology.is_server topo 2);
  check bool "is_client" true (Topology.is_client topo 4);
  check bool "not both" false (Topology.is_client topo 0)

let test_topology_proc_of_node () =
  check bool "server none" true (Topology.proc_of_node topo 0 = None);
  check bool "writer" true
    (Topology.proc_of_node topo 4 = Some (Histories.Op.Writer 1));
  check bool "reader" true
    (Topology.proc_of_node topo 5 = Some (Histories.Op.Reader 0))

let test_topology_forbidden () =
  check bool "server-server" true (Topology.forbidden topo ~src:0 ~dst:1);
  check bool "client-client" true (Topology.forbidden topo ~src:3 ~dst:5);
  check bool "client-server ok" false (Topology.forbidden topo ~src:3 ~dst:0);
  check bool "server-client ok" false (Topology.forbidden topo ~src:0 ~dst:3)

let test_topology_validation () =
  check bool "needs 2 servers" true
    (try ignore (Topology.make ~servers:1 ~writers:1 ~readers:1); false
     with Invalid_argument _ -> true);
  check bool "server_node range" true
    (try ignore (Topology.server_node topo 5); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Round_trip + Server                                                  *)
(* ------------------------------------------------------------------ *)

(* A toy echo protocol: request is an int, reply is the server id * 100
   + the request. *)
let make_rig ?(latency = Latency.constant 1.0) ~servers ~quorum () =
  let e = Engine.create () in
  let net = Network.create e ~latency () in
  for srv = 0 to servers - 1 do
    Server.attach ~net ~node:srv ~handler:(fun ~client:_ req -> (srv * 100) + req)
  done;
  let rt =
    Round_trip.create ~net ~node:servers
      ~servers:(Array.init servers (fun i -> i))
      ~quorum
  in
  (e, net, rt)

let test_round_trip_completes_at_quorum () =
  let e, _, rt = make_rig ~servers:5 ~quorum:4 () in
  let got = ref None in
  Round_trip.exec rt 7 (fun replies -> got := Some replies);
  Engine.run e;
  (match !got with
  | None -> Alcotest.fail "round trip never completed"
  | Some replies ->
    check int "exactly quorum replies" 4 (List.length replies);
    List.iter
      (fun (srv, rep) -> check int "echoed" ((srv * 100) + 7) rep)
      replies);
  check int "started" 1 (Round_trip.rounds_started rt);
  check int "completed" 1 (Round_trip.rounds_completed rt);
  check int "one late reply" 1 (Round_trip.late_replies rt)

let test_round_trip_fires_once () =
  let e, _, rt = make_rig ~servers:3 ~quorum:2 () in
  let fires = ref 0 in
  Round_trip.exec rt 1 (fun _ -> incr fires);
  Engine.run e;
  check int "fires once" 1 !fires

let test_round_trip_sequential_rounds () =
  let e, _, rt = make_rig ~servers:3 ~quorum:3 () in
  let log = ref [] in
  Round_trip.exec rt 1 (fun _ ->
      log := "first" :: !log;
      Round_trip.exec rt 2 (fun _ -> log := "second" :: !log));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "chained rounds" [ "first"; "second" ]
    (List.rev !log)

let test_round_trip_skipping () =
  let e, _, rt = make_rig ~servers:5 ~quorum:4 () in
  let got = ref [] in
  Round_trip.exec_skipping rt ~skip:[ 2 ] 9 (fun replies -> got := replies);
  Engine.run e;
  check int "quorum reached without skipped server" 4 (List.length !got);
  check bool "server 2 absent" true
    (not (List.exists (fun (srv, _) -> srv = 2) !got))

let test_round_trip_blocks_without_quorum () =
  let e, net, rt = make_rig ~servers:3 ~quorum:3 () in
  Network.crash net 0;
  let fired = ref false in
  Round_trip.exec rt 1 (fun _ -> fired := true);
  Engine.run e;
  check bool "cannot reach 3 of 2 alive" false !fired

let test_round_trip_tolerates_crash_within_budget () =
  let e, net, rt = make_rig ~servers:3 ~quorum:2 () in
  Network.crash net 0;
  let fired = ref false in
  Round_trip.exec rt 1 (fun _ -> fired := true);
  Engine.run e;
  check bool "2 of 3 suffice" true !fired

let test_quorum_validation () =
  let e = Engine.create () in
  let net = Network.create e ~latency:(Latency.constant 1.0) () in
  check bool "quorum 0 rejected" true
    (try
       ignore (Round_trip.create ~net ~node:9 ~servers:[| 0; 1 |] ~quorum:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Env                                                                  *)
(* ------------------------------------------------------------------ *)

let test_env () =
  let env = Env.make ~s:5 ~t:2 ~w:2 ~r:3 () in
  check int "quorum size" 3 (Env.quorum_size env);
  check int "s" 5 (Env.s env);
  check int "t" 2 (Env.t_ env);
  check int "w" 2 (Env.w env);
  check int "r" 3 (Env.r env);
  check bool "bad t rejected" true
    (try ignore (Env.make ~s:3 ~t:3 ~w:1 ~r:1 ()); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Runtime                                                              *)
(* ------------------------------------------------------------------ *)

let run_simple ?adversary ?(s = 3) ?(t = 1) ?(w = 2) ?(r = 2) ?(seed = 1) plans =
  let env = Env.make ~seed ~s ~t ~w ~r () in
  Runtime.run ~register:Registers.Registry.abd_mwmr ~env ~plans ?adversary ()

let test_runtime_history_well_formed () =
  let out =
    run_simple
      [
        Runtime.write_plan ~writer:0 ~think:5.0 3;
        Runtime.write_plan ~writer:1 ~start_at:2.0 ~think:7.0 3;
        Runtime.read_plan ~reader:0 ~start_at:1.0 ~think:4.0 5;
        Runtime.read_plan ~reader:1 ~start_at:3.0 ~think:6.0 5;
      ]
  in
  let h = out.Runtime.history in
  check bool "well formed" true (Histories.History.well_formed h = Ok ());
  check bool "unique writes" true (Histories.History.unique_writes h);
  check int "all 16 ops present" 16 (Histories.History.length h);
  check bool "all complete (wait-free)" true
    (List.for_all Histories.Op.is_complete (Histories.History.ops h))

let test_runtime_tags_cover_ops () =
  let out =
    run_simple [ Runtime.write_plan ~writer:0 1; Runtime.read_plan ~reader:0 ~start_at:50.0 1 ]
  in
  List.iter
    (fun (t : Checker.Mw_properties.tagged) ->
      check bool "tag present" true (t.Checker.Mw_properties.tag <> None))
    out.Runtime.tagged

let test_runtime_think_time_spacing () =
  let out = run_simple [ Runtime.write_plan ~writer:0 ~think:100.0 2 ] in
  match Histories.History.ops out.Runtime.history with
  | [ a; b ] ->
    check bool "second op starts after think" true
      (b.Histories.Op.inv -. Option.get a.Histories.Op.resp >= 99.0)
  | _ -> Alcotest.fail "expected 2 ops"

let test_runtime_wrong_role_plan_rejected () =
  check bool "reader plan with write raises" true
    (try
       ignore
         (run_simple
            [ { Runtime.proc = Histories.Op.Reader 0; start_at = 0.0; steps = [ Runtime.Write ] } ]);
       false
     with Invalid_argument _ -> true)

let test_runtime_adversary_crash () =
  let crashed = ref (-1) in
  let adversary ctl engine =
    Engine.schedule_at engine ~time:1.0 (fun () ->
        ctl.Control.crash_server 0;
        crashed := ctl.Control.crashed_servers ())
  in
  let out =
    run_simple ~adversary
      [ Runtime.write_plan ~writer:0 ~start_at:5.0 2; Runtime.read_plan ~reader:0 ~start_at:6.0 2 ]
  in
  check int "one server crashed" 1 !crashed;
  check bool "ops still complete with t=1" true
    (List.for_all Histories.Op.is_complete (Histories.History.ops out.Runtime.history))

let test_runtime_hold_then_release () =
  (* Hold all traffic to server 2; ABD still completes on the other two
     (t=1), and held messages flow after the run. *)
  let adversary ctl _ =
    ctl.Control.set_route
      (Some
         (fun ~src:_ ~dst ~now:_ ->
           if dst = 2 then Simulation.Network.Hold else Simulation.Network.Deliver))
  in
  let out = run_simple ~adversary [ Runtime.write_plan ~writer:0 2 ] in
  check bool "writes completed" true
    (List.for_all Histories.Op.is_complete (Histories.History.ops out.Runtime.history));
  check bool "history atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "protocol"
    [
      ( "topology",
        [
          tc "layout" test_topology_layout;
          tc "proc_of_node" test_topology_proc_of_node;
          tc "forbidden links" test_topology_forbidden;
          tc "validation" test_topology_validation;
        ] );
      ( "round-trip",
        [
          tc "completes at quorum" test_round_trip_completes_at_quorum;
          tc "fires once" test_round_trip_fires_once;
          tc "sequential rounds" test_round_trip_sequential_rounds;
          tc "skipping" test_round_trip_skipping;
          tc "blocks without quorum" test_round_trip_blocks_without_quorum;
          tc "tolerates crash in budget" test_round_trip_tolerates_crash_within_budget;
          tc "quorum validation" test_quorum_validation;
        ] );
      ("env", [ tc "accessors and validation" test_env ]);
      ( "runtime",
        [
          tc "well-formed history" test_runtime_history_well_formed;
          tc "tags cover ops" test_runtime_tags_cover_ops;
          tc "think-time spacing" test_runtime_think_time_spacing;
          tc "wrong-role plan rejected" test_runtime_wrong_role_plan_rejected;
          tc "adversary crash" test_runtime_adversary_crash;
          tc "hold then release" test_runtime_hold_then_release;
        ] );
    ]
