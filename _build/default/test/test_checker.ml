(* Tests for the atomicity checker, the brute-force oracle, the weaker
   consistency levels, and the MWA0–MWA4 property checker. *)

open Histories
open Checker

let check = Alcotest.check
let bool = Alcotest.bool

let w ~id ?(proc = 0) ~v ~inv ~resp () =
  Op.write ~id ~proc:(Op.Writer proc) ~value:v ~inv ~resp

let r ~id ?(proc = 0) ~inv ~resp ~result () =
  Op.read ~id ~proc:(Op.Reader proc) ~inv ~resp ~result

let atomic h = Atomicity.is_atomic h

let witness_short h =
  match Atomicity.check h with
  | Ok () -> "ok"
  | Error wit -> Witness.short wit

(* ------------------------------------------------------------------ *)
(* Atomicity: handcrafted cases                                         *)
(* ------------------------------------------------------------------ *)

let test_empty_history () = check bool "empty atomic" true (atomic (History.of_ops []))

let test_sequential_ok () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        r ~id:1 ~inv:2.0 ~resp:(Some 3.0) ~result:(Some 1) ();
        w ~id:2 ~proc:1 ~v:2 ~inv:4.0 ~resp:(Some 5.0) ();
        r ~id:3 ~inv:6.0 ~resp:(Some 7.0) ~result:(Some 2) ();
      ]
  in
  check bool "sequential atomic" true (atomic h)

let test_read_initial_ok () =
  let h =
    History.of_ops [ r ~id:0 ~inv:0.0 ~resp:(Some 1.0) ~result:(Some History.initial_value) () ]
  in
  check bool "initial read atomic" true (atomic h)

let test_read_initial_after_write_bad () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        r ~id:1 ~inv:2.0 ~resp:(Some 3.0) ~result:(Some History.initial_value) ();
      ]
  in
  check bool "initial after write not atomic" false (atomic h);
  check Alcotest.string "classified as stale" "stale-read" (witness_short h)

let test_unwritten_value () =
  let h = History.of_ops [ r ~id:0 ~inv:0.0 ~resp:(Some 1.0) ~result:(Some 99) () ] in
  check Alcotest.string "unwritten" "unwritten-value" (witness_short h)

let test_future_read () =
  let h =
    History.of_ops
      [
        r ~id:0 ~inv:0.0 ~resp:(Some 1.0) ~result:(Some 5) ();
        w ~id:1 ~v:5 ~inv:2.0 ~resp:(Some 3.0) ();
      ]
  in
  check Alcotest.string "future read" "future-read" (witness_short h)

let test_stale_read () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) ();
        r ~id:2 ~inv:4.0 ~resp:(Some 5.0) ~result:(Some 1) ();
      ]
  in
  check Alcotest.string "stale" "stale-read" (witness_short h)

let test_concurrent_write_either_value_ok () =
  (* Read concurrent with a write: both old and new values legal. *)
  let base result =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 10.0) ();
        r ~id:2 ~inv:3.0 ~resp:(Some 4.0) ~result:(Some result) ();
      ]
  in
  check bool "old value ok" true (atomic (base 1));
  check bool "new value ok" true (atomic (base 2))

let test_new_old_inversion () =
  (* Both reads concurrent with the write, but sequential with each
     other: new-then-old is the classic atomicity violation. *)
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 20.0) ();
        r ~id:2 ~proc:0 ~inv:3.0 ~resp:(Some 4.0) ~result:(Some 2) ();
        r ~id:3 ~proc:1 ~inv:5.0 ~resp:(Some 6.0) ~result:(Some 1) ();
      ]
  in
  check bool "inversion rejected" false (atomic h);
  (* The reversed order (old then new) is fine. *)
  let h' =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 20.0) ();
        r ~id:2 ~proc:0 ~inv:3.0 ~resp:(Some 4.0) ~result:(Some 1) ();
        r ~id:3 ~proc:1 ~inv:5.0 ~resp:(Some 6.0) ~result:(Some 2) ();
      ]
  in
  check bool "old then new fine" true (atomic h')

let test_pending_write_may_take_effect () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:None ();
        r ~id:1 ~inv:5.0 ~resp:(Some 6.0) ~result:(Some 1) ();
      ]
  in
  check bool "pending write readable" true (atomic h);
  let h' =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:None ();
        r ~id:1 ~inv:5.0 ~resp:(Some 6.0) ~result:(Some History.initial_value) ();
      ]
  in
  check bool "pending write ignorable" true (atomic h')

let test_pending_read_ignored () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        r ~id:1 ~inv:2.0 ~resp:None ~result:None ();
      ]
  in
  check bool "pending read ignored" true (atomic h)

let test_cycle_via_two_readers () =
  (* w1 || w2; reader A sees 1 then 2, reader B sees 2 then 1: the write
     order obligations form a cycle. *)
  let h =
    History.of_ops
      [
        w ~id:0 ~proc:0 ~v:1 ~inv:0.0 ~resp:(Some 100.0) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:0.0 ~resp:(Some 100.0) ();
        r ~id:2 ~proc:0 ~inv:1.0 ~resp:(Some 2.0) ~result:(Some 1) ();
        r ~id:3 ~proc:0 ~inv:3.0 ~resp:(Some 4.0) ~result:(Some 2) ();
        r ~id:4 ~proc:1 ~inv:1.0 ~resp:(Some 2.0) ~result:(Some 2) ();
        r ~id:5 ~proc:1 ~inv:3.0 ~resp:(Some 4.0) ~result:(Some 1) ();
      ]
  in
  check bool "conflicting orders rejected" false (atomic h);
  check Alcotest.string "cycle witness" "ordering-cycle" (witness_short h)

let test_rejects_non_unique () =
  let h =
    History.of_ops
      [
        w ~id:0 ~proc:0 ~v:5 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~proc:1 ~v:5 ~inv:2.0 ~resp:(Some 3.0) ();
      ]
  in
  check bool "invalid-arg on duplicate values" true
    (try
       ignore (Atomicity.check h);
       false
     with Invalid_argument _ -> true)

let test_obligation_edges_nonempty () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) ();
        r ~id:2 ~inv:4.0 ~resp:(Some 5.0) ~result:(Some 2) ();
      ]
  in
  check bool "edges exist" true (List.length (Atomicity.obligation_edges h) >= 1)

(* ------------------------------------------------------------------ *)
(* Linearizability oracle                                               *)
(* ------------------------------------------------------------------ *)

let test_oracle_simple () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        r ~id:1 ~inv:2.0 ~resp:(Some 3.0) ~result:(Some 1) ();
      ]
  in
  (match Linearizability.linearize h with
  | Some order -> check Alcotest.int "both ops in order" 2 (List.length order)
  | None -> Alcotest.fail "should linearize");
  check bool "check" true (Linearizability.check h)

let test_oracle_rejects_stale () =
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) ();
        r ~id:2 ~inv:4.0 ~resp:(Some 5.0) ~result:(Some 1) ();
      ]
  in
  check bool "oracle rejects" false (Linearizability.check h)

let test_oracle_size_limit () =
  let ops =
    List.init 70 (fun i -> w ~id:i ~proc:0 ~v:(i + 1) ~inv:(float_of_int (2 * i)) ~resp:(Some (float_of_int ((2 * i) + 1))) ())
  in
  check bool "too large raises" true
    (try
       ignore (Linearizability.check (History.of_ops ops));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Oracle cross-validation (the key property test)                      *)
(* ------------------------------------------------------------------ *)

(* Random small well-formed histories with unique writes.  Reads return
   a value from the written pool, the initial value, or (rarely) garbage,
   so both accept and reject paths are exercised. *)
let history_gen =
  let open QCheck.Gen in
  let* n_writers = int_range 1 3 in
  let* n_readers = int_range 1 3 in
  let* ops_per_proc = int_range 1 3 in
  let value_pool = List.init (n_writers * ops_per_proc) (fun i -> i + 1) in
  let op_times = float_range 0.0 20.0 in
  let gen_proc_ops ~writer pidx =
    let* base_times =
      list_repeat ops_per_proc (pair op_times (float_range 0.1 5.0))
    in
    let sorted = List.sort compare (List.map fst base_times) in
    let durs = List.map snd base_times in
    (* Space the ops out sequentially: inv_i >= resp_{i-1}. *)
    let rec build acc time = function
      | [], _ | _, [] -> return (List.rev acc)
      | t :: ts, d :: ds ->
        let inv = Float.max time t in
        let resp = inv +. d in
        build ((inv, resp) :: acc) (resp +. 0.01) (ts, ds)
    in
    let* intervals = build [] 0.0 (sorted, durs) in
    let* ops =
      flatten_l
        (List.mapi
           (fun i (inv, resp) ->
             let id = (pidx * 100) + i in
             if writer then
               let v = (pidx * ops_per_proc) + i + 1 in
               let* pending = frequency [ (9, return false); (1, return true) ] in
               return
                 (w ~id ~proc:pidx ~v ~inv ~resp:(if pending then None else Some resp) ())
             else
               let* result =
                 frequency
                   [
                     (6, oneofl (History.initial_value :: value_pool));
                     (1, return 999);
                   ]
               in
               return (r ~id ~proc:(pidx - 10) ~inv ~resp:(Some resp) ~result:(Some result) ()))
           intervals)
    in
    (* A pending write must be its process's last op: truncate after it. *)
    let rec cut = function
      | [] -> []
      | (o : Op.t) :: rest -> if Op.is_complete o then o :: cut rest else [ o ]
    in
    return (cut ops)
  in
  let* writer_ops =
    flatten_l (List.init n_writers (fun i -> gen_proc_ops ~writer:true i))
  in
  let* reader_ops =
    flatten_l (List.init n_readers (fun i -> gen_proc_ops ~writer:false (i + 10)))
  in
  return (History.of_ops (List.concat (writer_ops @ reader_ops)))

let history_arb =
  QCheck.make
    ~print:(fun h -> Format.asprintf "%a" History.pp h)
    history_gen

let interval_equivalence =
  QCheck.Test.make ~name:"interval checker agrees with saturation checker"
    ~count:2000 history_arb (fun h ->
      QCheck.assume (History.well_formed h = Ok ());
      QCheck.assume (History.unique_writes h);
      Interval.is_atomic h = Atomicity.is_atomic h)

let oracle_equivalence =
  QCheck.Test.make ~name:"atomicity checker agrees with brute-force oracle"
    ~count:2000 history_arb (fun h ->
      QCheck.assume (History.well_formed h = Ok ());
      QCheck.assume (History.unique_writes h);
      let fast =
        match Atomicity.check h with
        | Ok () -> true
        | Error w -> (
          (* Unwritten garbage values: the oracle agrees they fail. *)
          match w.Witness.reason with _ -> false)
      in
      let slow = Linearizability.check h in
      fast = slow)

let atomic_implies_regular =
  QCheck.Test.make ~name:"atomic histories are regular" ~count:500 history_arb
    (fun h ->
      QCheck.assume (History.well_formed h = Ok ());
      QCheck.assume (History.unique_writes h);
      QCheck.assume (Atomicity.is_atomic h);
      Consistency.check_regular h = Ok ())

let regular_implies_safe =
  QCheck.Test.make ~name:"regular histories are safe" ~count:500 history_arb
    (fun h ->
      QCheck.assume (History.well_formed h = Ok ());
      QCheck.assume (History.unique_writes h);
      QCheck.assume (Consistency.check_regular h = Ok ());
      Consistency.check_safe h = Ok ())

(* ------------------------------------------------------------------ *)
(* Consistency ladder                                                   *)
(* ------------------------------------------------------------------ *)

let test_regular_not_atomic () =
  (* New/old inversion is regular (each read individually fine) but not
     atomic. *)
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 20.0) ();
        r ~id:2 ~proc:0 ~inv:3.0 ~resp:(Some 4.0) ~result:(Some 2) ();
        r ~id:3 ~proc:1 ~inv:5.0 ~resp:(Some 6.0) ~result:(Some 1) ();
      ]
  in
  check bool "not atomic" false (Atomicity.is_atomic h);
  check bool "regular" true (Consistency.check_regular h = Ok ());
  check Alcotest.string "classified regular" "regular"
    (Consistency.level_to_string (Consistency.classify h))

let test_safe_not_regular () =
  (* A read overlapping a write may return anything written; here it
     returns a value two writes stale — not regular, still safe. *)
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) ();
        w ~id:2 ~proc:1 ~v:3 ~inv:4.0 ~resp:(Some 20.0) ();
        r ~id:3 ~inv:5.0 ~resp:(Some 6.0) ~result:(Some 1) ();
      ]
  in
  check bool "not regular" true (Result.is_error (Consistency.check_regular h));
  check bool "safe" true (Consistency.check_safe h = Ok ());
  check Alcotest.string "classified safe" "safe"
    (Consistency.level_to_string (Consistency.classify h))

let test_inconsistent () =
  (* Stale read with no concurrent write: not even safe. *)
  let h =
    History.of_ops
      [
        w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ();
        w ~id:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) ();
        r ~id:2 ~inv:4.0 ~resp:(Some 5.0) ~result:(Some 1) ();
      ]
  in
  check Alcotest.string "classified inconsistent" "inconsistent"
    (Consistency.level_to_string (Consistency.classify h))

let test_level_order () =
  check bool "ladder ordered" true
    Consistency.(
      compare_level Inconsistent Safe < 0
      && compare_level Safe Regular < 0
      && compare_level Regular Atomic < 0)

(* ------------------------------------------------------------------ *)
(* MWA properties                                                       *)
(* ------------------------------------------------------------------ *)

let tag ts wid = { Mw_properties.ts; wid }

let tw ~id ?(proc = 0) ~v ~inv ~resp t =
  { Mw_properties.op = w ~id ~proc ~v ~inv ~resp (); tag = Some t }

let tr ~id ?(proc = 0) ~inv ~resp ~result t =
  { Mw_properties.op = r ~id ~proc ~inv ~resp ~result (); tag = Some t }

let test_mwa_all_ok () =
  let tagged =
    [
      tw ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) (tag 1 0);
      tr ~id:1 ~inv:2.0 ~resp:(Some 3.0) ~result:(Some 1) (tag 1 0);
      tw ~id:2 ~proc:1 ~v:2 ~inv:4.0 ~resp:(Some 5.0) (tag 2 1);
      tr ~id:3 ~inv:6.0 ~resp:(Some 7.0) ~result:(Some 2) (tag 2 1);
    ]
  in
  check bool "all ok" true (Mw_properties.all_ok (Mw_properties.check tagged))

let test_mwa0_violation () =
  let tagged =
    [
      tw ~id:0 ~proc:1 ~v:1 ~inv:0.0 ~resp:(Some 1.0) (tag 1 1);
      tw ~id:1 ~proc:0 ~v:2 ~inv:2.0 ~resp:(Some 3.0) (tag 1 0);
    ]
  in
  let report = Mw_properties.check tagged in
  check bool "MWA0 fails" true (report.Mw_properties.mwa0 <> None)

let test_mwa1_violation () =
  let tagged = [ tr ~id:0 ~inv:0.0 ~resp:(Some 1.0) ~result:(Some 0) (tag (-1) 0) ] in
  check bool "MWA1 fails" true ((Mw_properties.check tagged).Mw_properties.mwa1 <> None)

let test_mwa2_violation () =
  let tagged =
    [
      tw ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) (tag 5 0);
      tr ~id:1 ~inv:2.0 ~resp:(Some 3.0) ~result:(Some 0) (tag 1 0);
    ]
  in
  check bool "MWA2 fails" true ((Mw_properties.check tagged).Mw_properties.mwa2 <> None)

let test_mwa3_violation () =
  let tagged =
    [
      tr ~id:0 ~inv:0.0 ~resp:(Some 1.0) ~result:(Some 1) (tag 1 0);
      tw ~id:1 ~v:1 ~inv:2.0 ~resp:(Some 3.0) (tag 1 0);
    ]
  in
  check bool "MWA3 fails" true ((Mw_properties.check tagged).Mw_properties.mwa3 <> None)

let test_mwa3_no_such_write () =
  let tagged = [ tr ~id:0 ~inv:0.0 ~resp:(Some 1.0) ~result:(Some 1) (tag 7 3) ] in
  check bool "MWA3 fails on phantom tag" true
    ((Mw_properties.check tagged).Mw_properties.mwa3 <> None)

let test_mwa4_violation () =
  let tagged =
    [
      tw ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 100.0) (tag 1 0);
      tr ~id:1 ~proc:0 ~inv:1.0 ~resp:(Some 2.0) ~result:(Some 1) (tag 1 0);
      tr ~id:2 ~proc:1 ~inv:3.0 ~resp:(Some 4.0) ~result:(Some 0)
        Mw_properties.initial_tag;
    ]
  in
  check bool "MWA4 fails (new/old inversion)" true
    ((Mw_properties.check tagged).Mw_properties.mwa4 <> None)

let test_mwa_initial_tag_reads_ok () =
  let tagged =
    [ tr ~id:0 ~inv:0.0 ~resp:(Some 1.0) ~result:(Some 0) Mw_properties.initial_tag ]
  in
  check bool "initial read fine" true (Mw_properties.all_ok (Mw_properties.check tagged))

let test_tag_order () =
  let cmp = Mw_properties.compare_tag in
  check bool "ts dominates" true (cmp (tag 1 5) (tag 2 0) < 0);
  check bool "wid breaks ties" true (cmp (tag 2 0) (tag 2 1) < 0);
  check bool "initial smallest" true (cmp Mw_properties.initial_tag (tag 0 0) < 0)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "checker"
    [
      ( "atomicity",
        [
          tc "empty" test_empty_history;
          tc "sequential ok" test_sequential_ok;
          tc "read initial ok" test_read_initial_ok;
          tc "initial after write bad" test_read_initial_after_write_bad;
          tc "unwritten value" test_unwritten_value;
          tc "future read" test_future_read;
          tc "stale read" test_stale_read;
          tc "concurrent write, either value" test_concurrent_write_either_value_ok;
          tc "new/old inversion" test_new_old_inversion;
          tc "pending write both ways" test_pending_write_may_take_effect;
          tc "pending read ignored" test_pending_read_ignored;
          tc "reader order cycle" test_cycle_via_two_readers;
          tc "rejects non-unique" test_rejects_non_unique;
          tc "obligation edges" test_obligation_edges_nonempty;
        ] );
      ( "oracle",
        [
          tc "simple" test_oracle_simple;
          tc "rejects stale" test_oracle_rejects_stale;
          tc "size limit" test_oracle_size_limit;
          QCheck_alcotest.to_alcotest oracle_equivalence;
          QCheck_alcotest.to_alcotest interval_equivalence;
        ] );
      ( "consistency",
        [
          tc "regular not atomic" test_regular_not_atomic;
          tc "safe not regular" test_safe_not_regular;
          tc "inconsistent" test_inconsistent;
          tc "level order" test_level_order;
          QCheck_alcotest.to_alcotest atomic_implies_regular;
          QCheck_alcotest.to_alcotest regular_implies_safe;
        ] );
      ( "mw-properties",
        [
          tc "all ok" test_mwa_all_ok;
          tc "MWA0" test_mwa0_violation;
          tc "MWA1" test_mwa1_violation;
          tc "MWA2" test_mwa2_violation;
          tc "MWA3" test_mwa3_violation;
          tc "MWA3 phantom" test_mwa3_no_such_write;
          tc "MWA4" test_mwa4_violation;
          tc "initial tag ok" test_mwa_initial_tag_reads_ok;
          tc "tag order" test_tag_order;
        ] );
    ]
