(* Live quickstart: the same W2R1 register as examples/quickstart.ml,
   but over real TCP sockets instead of the simulator — five server
   daemons on loopback, one writer and one reader doing genuine network
   round trips, and the recorded wall-clock history linearized.

     dune exec examples/live_quickstart.exe *)

open Mwregister

let () =
  print_endline "== mwregister live quickstart ==";
  print_endline "";
  print_endline
    "Cluster: 5 real server daemons on 127.0.0.1 (1 may crash), running the";
  print_endline
    "paper's W2R1 register over TCP: two-round writes, one-round fast reads.";
  print_endline "";

  let cluster = Live.Cluster.start ~s:5 ~tol:1 () in
  Fun.protect
    ~finally:(fun () -> Live.Cluster.shutdown cluster)
    (fun () ->
      Array.iteri
        (fun i _ -> Printf.printf "server %d listening on 127.0.0.1:%d\n" i
            (Live.Cluster.port cluster i))
        (Live.Cluster.addrs cluster);
      print_endline "";

      let res =
        Live.Session.run ~register:Registry.fastread_w2r1 ~cluster
          {
            Live.Session.writers = 1;
            readers = 1;
            writes_per_writer = 5;
            reads_per_reader = 8;
            write_think = 0.002;
            read_think = 0.001;
          }
      in
      let h = res.Live.Session.history in

      Printf.printf "ran %d operations in %.1f ms (%.0f ops/s)\n"
        (History.length h)
        (1e3 *. res.Live.Session.duration)
        (float_of_int (History.length h) /. res.Live.Session.duration);
      Printf.printf "round trips: %.2f per write, %.2f per read\n"
        res.Live.Session.write_rounds res.Live.Session.read_rounds;
      print_endline "";

      (match Atomicity.linearization h with
      | Some order ->
        print_endline "The history is atomic; one witnessing linearization:";
        List.iter (fun o -> Format.printf "  %a@." Op.pp o) order
      | None ->
        print_endline "ATOMICITY VIOLATION (this should never happen):";
        (match Atomicity.check h with
        | Error w -> Format.printf "  %a@." Witness.pp w
        | Ok () -> ()));
      print_endline "";
      print_endline
        "Same algorithm body, same checker — only the endpoint changed from";
      print_endline
        "the discrete-event simulator to real sockets (lib/transport).")
