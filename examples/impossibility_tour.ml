(* A guided tour of the impossibility machinery: watch the three-phase
   chain argument of §3 convict a concrete fast-write strategy, then see
   the sieve of §4 and the fast-read threshold of §5.

     dune exec examples/impossibility_tour.exe *)

open Mwregister
open Mwregister.Impossible

let hr () = print_endline (String.make 74 '-')

let () =
  print_endline "== Theorem 1, executable: no fast write can be atomic ==";
  print_endline "";
  print_endline
    "Candidate: the 'majority-last' reader — return the digit written last";
  print_endline
    "on a majority of the servers your second round reached.  Sounds fine?";
  print_endline "";

  let s = 4 in
  let strategy = Strategy.majority_last in

  (* Phase 1: chain alpha. *)
  hr ();
  print_endline "Phase 1 (chain α): swap the two writes one server at a time.";
  (match Chain_alpha.run ~s strategy with
  | Chain_alpha.Critical { i1; returns } ->
    Array.iteri
      (fun i ret ->
        Printf.printf "  α_%d: servers 0..%d see W2 first -> read returns %d\n" i
          (i - 1) ret)
      returns;
    Printf.printf
      "  critical server: s_%d (the swap that flips the return 2 -> 1)\n" i1
  | Chain_alpha.Anchor_violation _ -> assert false);

  (* Phase 2+3 via the driver. *)
  hr ();
  print_endline
    "Phases 2-3 (chains β and Z): append a second reader that skips the";
  print_endline
    "critical server, then zigzag through view-preserving surgeries until";
  print_endline "atomicity snaps:";
  print_endline "";
  let finding, stats = W1r2_theorem.run ~s strategy in
  Format.printf "%a@." W1r2_theorem.pp_finding finding;
  Printf.printf
    "\n(links verified: %d, failures: %d — every ≈ step of Figs. 4-7 checked)\n"
    stats.W1r2_theorem.links_checked stats.W1r2_theorem.links_failed;

  (* The execution is realizable: both writes are concurrent, both reads
     follow them, each round skips at most one server — and yet the two
     reads disagree. *)
  hr ();
  print_endline "The sieve (§4, Fig. 8): what if a read's first round tampers";
  print_endline "with servers?  Eliminate the affected ones and rerun chain α:";
  (match
     Sieve.run ~s:8
       ~effect:(Sieve.flip_servers [ 1; 5 ])
       (Sieve.crucial_of_last_digits ())
   with
  | Sieve.Critical { sigma1; sigma2; i1; _ } ->
    Printf.printf
      "  Σ1 (affected, eliminated) = {%s}; Σ2 keeps %d servers; critical at %d\n"
      (String.concat ", " (List.map string_of_int sigma1))
      (List.length sigma2) i1
  | Sieve.Too_few_unaffected _ | Sieve.Anchor_violation _ -> assert false);

  hr ();
  print_endline "And the other side of Table 1 — fast READS exist, up to a";
  print_endline "threshold (§5, Fig. 9).  S=6, t=1: the boundary is R < 4.";
  List.iter
    (fun v -> Format.printf "  %a@." Threshold.pp_verdict v)
    (Threshold.sweep ~register:Registry.fastread_w2r1 ~s:6 ~t:1 ~r_max:5);
  print_endline "";
  print_endline
    "Every row of the paper's Table 1, reproduced by execution rather than";
  print_endline "by trust."
