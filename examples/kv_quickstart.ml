(* KV quickstart: the register stack generalised to a sharded keyspace.

   Two shard groups of three servers each run on loopback; a consistent
   hash ring assigns every key to exactly one group.  Two clients first
   operate by hand on keys that land on *different* shards — showing the
   per-key W2R2 register running unchanged under the router — and then a
   small YCSB mix-A session drives the whole keyspace and has the
   atomicity checker pass verdicts on the hottest keys.

     dune exec examples/kv_quickstart.exe *)

open Mwregister
module Client_core = Registers.Client_core

let () =
  print_endline "== mwregister kv quickstart ==";
  print_endline "";
  print_endline
    "Keyspace: 2 shard groups x 3 servers (each tolerating 1 crash); a";
  print_endline
    "consistent-hash ring places every key on exactly one group, where it";
  print_endline "is one more multi-writer ABD register.";
  print_endline "";

  let kc = Kv.Cluster.start ~groups:2 ~s:3 ~tol:1 () in
  Fun.protect ~finally:(fun () -> Kv.Cluster.shutdown kc) @@ fun () ->
  (* Pick one key per shard group so the two clients demonstrably cross
     different quorum systems. *)
  let key_in g =
    let rec scan i =
      let k = Printf.sprintf "demo%d" i in
      if Kv.Cluster.group_of kc k = g then k else scan (i + 1)
    in
    scan 0
  in
  let k0 = key_in 0 and k1 = key_in 1 in
  Printf.printf "key %S -> shard group 0; key %S -> shard group 1\n" k0 k1;
  print_endline "";

  let router = Kv.Router.create ~clients:2 kc in
  Fun.protect ~finally:(fun () -> Kv.Router.shutdown router) @@ fun () ->
  let algo = Registry.client_algo Registry.abd_mwmr in
  let with_client index key payload =
    let cl = Kv.Router.client router ~index in
    Fun.protect ~finally:(fun () -> Kv.Router.close_client cl) @@ fun () ->
    let ctx = Kv.Router.key_ctx cl key in
    let write = algo.Client_core.new_writer ctx ~writer:index in
    write ~payload ~k:(fun _ -> ());
    let read = algo.Client_core.new_reader ctx ~reader:index in
    let got = ref min_int in
    read ~k:(fun v _ -> got := v);
    Printf.printf "client %d: wrote %S := %d, read back %d (shard %d)\n"
      index key payload !got (Kv.Cluster.group_of kc key)
  in
  with_client 0 k0 111;
  with_client 1 k1 222;
  print_endline "";

  print_endline
    "Now a YCSB mix-A session (50/50 reads and writes, zipfian skew) over";
  print_endline "200 keys, with per-key atomicity verdicts on the 4 hottest:";
  print_endline "";
  let res =
    Kv.Session.run ~cluster:kc
      {
        Kv.Session.default_spec with
        clients = 4;
        ops_per_client = 50;
        keys = 200;
        sample_keys = 4;
        seed = 7;
      }
  in
  Printf.printf "ran %d operations in %.1f ms (%.0f ops/s)\n"
    res.Kv.Session.ops
    (1e3 *. res.Kv.Session.duration)
    res.Kv.Session.throughput;
  Printf.printf "per-group operations: %s\n"
    (String.concat " "
       (Array.to_list (Array.map string_of_int res.Kv.Session.group_ops)));
  List.iter
    (fun v ->
      Printf.printf "key %-13s %3d ops  %s\n" v.Kv.Session.vkey
        v.Kv.Session.vops
        (if v.Kv.Session.atomic then "atomic" else "VIOLATION"))
    res.Kv.Session.verdicts;
  print_endline "";
  print_endline
    "Same protocol bodies, same checker — the keyspace is just many";
  print_endline "registers behind a hash ring."
